"""Figure 10: per-iteration execution-time traces.

Regenerates the iteration-time series of Gunrock, GSwitch and TileBFS
on the paper's four trace matrices (cant, in-2004, msdoor, roadNet-TX).
Operators are built through the runtime registry, so repeated
constructions on the same matrix reuse the cached tiling plan — the
hit/miss stats are registered alongside the tables.
"""

import pytest

from repro.bench import run_fig10
from repro.gpusim import Device, RTX3090
from repro.matrices import get_matrix
from repro.runtime import plan_cache_stats

TRACE_MATRICES = ("cant", "in-2004", "msdoor", "roadNet-TX")


def test_fig10_traces(register, benchmark):
    result = benchmark.pedantic(run_fig10,
                                kwargs={"names": TRACE_MATRICES},
                                rounds=1, iterations=1)
    register("fig10", result.text)
    assert len(result.rows) == len(TRACE_MATRICES) * 3
    # every algorithm produces a non-trivial trace on every matrix
    for row in result.rows:
        assert row[2] >= 2       # iterations
        assert row[3] > 0        # total ms


def test_fig10_kernel_switching_visible(register, benchmark, make_operator):
    """§4.5: TileBFS switches kernels across a traversal — the trace on
    in-2004 (power-law) must use more than one kernel."""
    coo = get_matrix("in-2004")
    bfs = make_operator("tilebfs", coo, device=Device(RTX3090))
    res = benchmark.pedantic(bfs.run, args=(0,), rounds=1, iterations=1)
    kernels = {it.kernel for it in res.iterations}
    register("fig10_kernels",
             f"in-2004 kernels used across {len(res.iterations)} "
             f"iterations: {sorted(kernels)}")
    assert len(kernels) >= 2


@pytest.mark.parametrize("name", TRACE_MATRICES)
def test_single_trace(benchmark, make_operator, name):
    coo = get_matrix(name)
    bfs = make_operator("tilebfs", coo, device=Device(RTX3090))
    res = benchmark.pedantic(bfs.run, args=(0,), rounds=2, iterations=1)
    assert len(res.iterations) >= 2


def test_fig10_plan_cache_reuse(register, make_operator):
    """Re-preparing TileBFS on a matrix the earlier tests already tiled
    must hit the plan cache instead of re-running COO extraction."""
    before = plan_cache_stats()
    for name in TRACE_MATRICES:
        coo = get_matrix(name)
        make_operator("tilebfs", coo, device=Device(RTX3090))
        make_operator("tilebfs", coo, device=Device(RTX3090))
    after = plan_cache_stats()
    hits = after["hits"] - before["hits"]
    total = hits + after["misses"] - before["misses"]
    register("fig10_plan_cache",
             f"plan cache over the fig10 trace matrices: {hits}/{total} "
             f"construction lookups served from cache "
             f"(process-wide: {after})")
    # the second construction per matrix is always a hit
    assert hits >= len(TRACE_MATRICES)
