"""Extension bench: bit-parallel multi-source BFS batching gain.

Measures the simulated-time advantage of packing up to 64 sources into
one word-parallel traversal versus running them one at a time — the
batching that makes multi-pivot analytics affordable.
"""

import pytest

from repro.bench.report import format_table
from repro.core import MultiSourceBFS
from repro.gpusim import Device, RTX3090
from repro.matrices import get_matrix


def test_msbfs_batching_table(register, benchmark):
    coo = get_matrix("cant")

    def run():
        rows = []
        for k in (1, 4, 16, 64):
            srcs = list(range(k))
            dev_b = Device(RTX3090)
            MultiSourceBFS(coo, device=dev_b).run(srcs)
            dev_s = Device(RTX3090)
            ms = MultiSourceBFS(coo, device=dev_s)
            for s in srcs:
                ms.run([s])
            rows.append([k, dev_b.elapsed_ms, dev_s.elapsed_ms,
                         dev_s.elapsed_ms / dev_b.elapsed_ms])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    register("extension_msbfs",
             format_table(["sources", "batched ms", "sequential ms",
                           "batching gain"],
                          rows,
                          title="Extension - MS-BFS batching on 'cant' "
                                "(simulated ms)"))
    # batching must pay increasingly with k
    gains = [r[3] for r in rows]
    assert gains[-1] > gains[0]
    assert gains[-1] > 4.0


def test_msbfs_run_wallclock(benchmark):
    coo = get_matrix("cavity23")
    ms = MultiSourceBFS(coo, device=Device(RTX3090))
    res = benchmark.pedantic(ms.run, args=(list(range(32)),),
                             rounds=3, iterations=1)
    assert res.levels.shape[0] == 32
