"""Micro-benchmarks of the substrate formats (wall-clock regression
tracking for the vectorized NumPy implementations).

Not a paper figure — these guard the building blocks every experiment
rests on: conversions, matvec, tiled construction, bitmask packing.
"""

import numpy as np
import pytest

from repro.formats import to_bsr, to_csc, to_csr
from repro.matrices import fem_like, rmat
from repro.tiles import BitTiledMatrix, BitVector, TiledVector
from repro.vectors import random_sparse_vector


@pytest.fixture(scope="module")
def fem():
    return fem_like(16384, nnz_per_row=32, block=16, seed=1)


@pytest.fixture(scope="module")
def web():
    return rmat(13, edge_factor=10, seed=2)


class TestConversions:
    def test_coo_to_csr(self, benchmark, fem):
        csr = benchmark(to_csr, fem)
        assert csr.nnz == fem.nnz

    def test_coo_to_csc(self, benchmark, fem):
        csc = benchmark(to_csc, fem)
        assert csc.nnz == fem.nnz

    def test_coo_to_bsr(self, benchmark, fem):
        bsr = benchmark(to_bsr, fem, 16)
        assert bsr.n_blocks > 0

    def test_bitmask_csc(self, benchmark, web):
        bm = benchmark(BitTiledMatrix.from_coo, web, 32, "csc")
        assert bm.n_nonempty_tiles > 0


class TestMatvec:
    def test_csr_matvec(self, benchmark, fem):
        csr = to_csr(fem)
        x = np.random.default_rng(0).random(fem.shape[1])
        y = benchmark(csr.matvec, x)
        assert y.shape == (fem.shape[0],)

    def test_csc_matvec(self, benchmark, fem):
        csc = to_csc(fem)
        x = np.random.default_rng(0).random(fem.shape[1])
        y = benchmark(csc.matvec, x)
        assert y.shape == (fem.shape[0],)

    def test_bsr_matvec(self, benchmark, fem):
        bsr = to_bsr(fem, 16)
        x = np.random.default_rng(0).random(fem.shape[1])
        y = benchmark(bsr.matvec, x)
        assert y.shape == (fem.shape[0],)


class TestVectorStructures:
    def test_tiled_vector_from_sparse(self, benchmark, fem):
        x = random_sparse_vector(fem.shape[1], 0.05)
        tv = benchmark(TiledVector.from_sparse, x.indices, x.values,
                       fem.shape[1], 16)
        assert tv.nnz == x.nnz

    def test_bitvector_roundtrip(self, benchmark):
        idx = np.sort(np.random.default_rng(1).choice(
            1 << 20, size=10_000, replace=False))

        def roundtrip():
            v = BitVector.from_indices(idx, 1 << 20, 64)
            return v.to_indices()

        out = benchmark(roundtrip)
        assert np.array_equal(out, idx)
