"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module times its kernels with pytest-benchmark *and*
registers the paper-style table produced by the corresponding
:mod:`repro.bench` runner.  The tables are printed in the terminal
summary and written to ``benchmarks/results/<experiment>.txt`` so the
numbers survive the run.
"""

from __future__ import annotations

import pathlib
from typing import Dict

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_TABLES: Dict[str, str] = {}


def register_table(experiment: str, text: str) -> None:
    """Record one experiment's printable table for the summary."""
    _TABLES[experiment] = text
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n",
                                                   encoding="utf-8")


def save_csv(experiment: str, headers, rows) -> None:
    """Write an experiment's per-matrix detail rows as CSV (plot-ready;
    not shown in the terminal summary)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{experiment}.csv", "w",
              encoding="utf-8") as fh:
        fh.write(",".join(str(h) for h in headers) + "\n")
        for row in rows:
            fh.write(",".join(str(c) for c in row) + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("paper reproduction tables")
    for name in sorted(_TABLES):
        terminalreporter.write_line("")
        for line in _TABLES[name].splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def register():
    return register_table


@pytest.fixture(scope="session")
def register_csv():
    return save_csv


@pytest.fixture(scope="session")
def make_operator():
    """Build prepared operators by registry name — benchmarks dispatch
    through :func:`repro.runtime.create_operator` instead of importing
    implementation classes."""
    from repro.runtime import create_operator

    return create_operator
