#!/usr/bin/env python
"""Wall-clock regression guard over committed benchmark baselines.

Compares a freshly measured wall-clock report (typically the CI smoke
run) against a committed baseline and fails when any speedup shared by
both drops below ``--floor`` (default 0.6) times its recorded value.
Speedup *ratios* are compared, not raw milliseconds, so the guard
holds across host machines of different speed; labels present on only
one side are ignored so new benchmark rows can land without churn —
but a whole report *section* recorded in the baseline and missing from
the current report fails hard (a bench run that silently dropped a
workload must not pass).

Usage::

    PYTHONPATH=src python benchmarks/check_wallclock_regression.py \
        --current BENCH_wallclock.ci.json \
        --committed BENCH_wallclock.smoke.json
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    from repro.bench.wallclock import check_regression
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.wallclock import check_regression


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly measured report (JSON)")
    parser.add_argument("--committed", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_wallclock.smoke.json",
                        help="committed baseline report (JSON)")
    parser.add_argument("--floor", type=float, default=0.6,
                        help="minimum fraction of the committed speedup")
    parser.add_argument("--fastpath-floor", type=float, default=0.6,
                        help="floor for the fused fast-path section "
                             "(fails when its end-to-end speedup drops "
                             "below this fraction of the committed "
                             "value; default 0.6)")
    parser.add_argument("--parallel-floor", type=float, default=0.8,
                        help="floor for the parallel worker-sweep "
                             "section; its guarded speedup is the "
                             "modeled multi-device critical-path "
                             "ratio — deterministic, so it gets a "
                             "tighter floor than timed sections "
                             "(default 0.8)")
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text(encoding="utf-8"))
    committed = json.loads(args.committed.read_text(encoding="utf-8"))
    failures = check_regression(
        current, committed, floor=args.floor,
        section_floors={"fastpath": args.fastpath_floor,
                        "parallel": args.parallel_floor})
    if failures:
        print(f"wall-clock regression: {len(failures)} failure(s) vs "
              f"the committed baseline (floor {args.floor:g}x)")
        for f in failures:
            if f.get("missing"):
                print(f"  {f['label']}: present in the committed "
                      f"baseline but missing from the current report")
            else:
                print(f"  {f['label']}: {f['current_speedup']:.2f}x < "
                      f"{f['floor']:.2f}x "
                      f"(committed {f['committed_speedup']:.2f}x)")
        return 1
    print(f"no wall-clock regressions vs {args.committed.name} "
          f"(floor {args.floor:g}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
