"""Figure 8: BFS GTEPS of GSwitch / Gunrock / TileBFS on the 12
representative matrices (RTX 3090)."""

import pytest

from repro.bench import geomean, run_fig8


def test_fig8_gteps_table(register, benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    register("fig8", result.text)
    assert len(result.rows) == 12
    # paper: TileBFS leads on the FEM-dominated representative set
    wins = sum(1 for r in result.rows if r[3] >= max(r[1], r[2]))
    assert wins >= 6
    # and on the dense-tile flagship 'ldoor' specifically (paper §4.3)
    ldoor = next(r for r in result.rows if r[0] == "ldoor")
    assert ldoor[3] >= max(ldoor[1], ldoor[2])


def test_fig8_geomean_positive(register, benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    tile_over_gunrock = geomean([r[3] / r[2] for r in result.rows])
    tile_over_gswitch = geomean([r[3] / r[1] for r in result.rows])
    register("fig8_geomeans",
             f"Fig 8 geomeans: TileBFS/Gunrock {tile_over_gunrock:.2f}x, "
             f"TileBFS/GSwitch {tile_over_gswitch:.2f}x")
    assert tile_over_gunrock > 0.8
    assert tile_over_gswitch > 1.0
