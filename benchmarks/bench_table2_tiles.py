"""Table 2: tile counts of the representative matrices.

Regenerates the paper's Table 2 (size / nnz / #tiles at 16, 32, 64) on
the synthetic stand-ins, and benchmarks the tile-counting pass and the
tiled-format construction it is based on.
"""

import pytest

from repro.bench import run_table2
from repro.matrices import get_matrix
from repro.tiles import TiledMatrix, count_nonempty_tiles


@pytest.fixture(scope="module")
def ldoor():
    return get_matrix("ldoor")


def test_table2_rows(register, benchmark):
    """Produce the full Table 2 and register it for the summary."""
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    register("table2", result.text)
    assert len(result.rows) == 12
    for row in result.rows:
        # tile counts must shrink monotonically with tile size
        assert row[3] >= row[4] >= row[5] >= 1


@pytest.mark.parametrize("nt", [16, 32, 64])
def test_count_tiles(benchmark, ldoor, nt):
    """Tile-occupancy counting pass at each paper tile size."""
    count = benchmark(count_nonempty_tiles, ldoor, nt)
    assert count > 0


def test_tiled_construction(benchmark, ldoor):
    """Full tiled-format construction (the Fig. 11 preprocessing)."""
    tm = benchmark.pedantic(TiledMatrix.from_coo, args=(ldoor, 16),
                            rounds=2, iterations=1)
    assert tm.nnz == ldoor.nnz
