"""Figure 11: format-conversion overhead vs one BFS run.

The paper: conversion "does not exceed a single BFS processing time in
normal cases, and does not exceed 10x ... in most cases".
"""

import pytest

from repro.bench import run_fig11
from repro.formats import to_coo
from repro.matrices import get_matrix
from repro.tiles import BitTiledMatrix, TiledMatrix


def test_fig11_conversion_table(register, benchmark):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    register("fig11", result.text)
    ratios = [row[3] for row in result.rows]
    # the paper's bound: <= 10x a single BFS on most matrices
    within_10x = sum(1 for r in ratios if r <= 10.0)
    assert within_10x >= len(ratios) - 1
    # and <= 1 BFS "in normal cases" (the majority)
    assert sum(1 for r in ratios if r <= 1.0) > len(ratios) / 2


@pytest.mark.parametrize("name", ["cant", "msdoor"])
def test_wallclock_tiled_conversion(benchmark, name):
    """Wall-clock of the host-side tiled-format construction."""
    coo = get_matrix(name)
    tm = benchmark.pedantic(TiledMatrix.from_coo, args=(coo, 16),
                            rounds=2, iterations=1)
    assert tm.nnz == coo.nnz


@pytest.mark.parametrize("orientation", ["csc", "csr"])
def test_wallclock_bitmask_conversion(benchmark, orientation):
    coo = get_matrix("cant")
    bm = benchmark.pedantic(BitTiledMatrix.from_coo,
                            args=(coo, 32, orientation),
                            rounds=2, iterations=1)
    assert bm.n_nonempty_tiles > 0
