"""§1 claim bench: SpMSpV "via SpGEMM" and "via SpMV" vs the real thing.

The paper's introduction motivates a dedicated SpMSpV with two
strawmen: calling an SpMV (wastes space and computation on the zeros of
the densified vector) or calling an SpGEMM (Gustavson row-row with a
one-column multiplier — terrible locality).  This bench puts numbers on
both against TileSpMSpV across the four sparsities.
"""

import pytest

from repro.baselines import SpMSpVViaSpGEMM, TileSpMV
from repro.bench.report import format_table
from repro.core import TileSpMSpV
from repro.gpusim import Device, RTX3090
from repro.matrices import get_matrix
from repro.vectors import PAPER_SPARSITIES, random_sparse_vector


def test_section1_strawmen_table(register, benchmark):
    coo = get_matrix("msdoor")

    def run():
        algs = {
            "TileSpMSpV": TileSpMSpV(coo, nt=16),
            "via SpMV": TileSpMV(coo, nt=16),
            "via SpGEMM": SpMSpVViaSpGEMM(coo),
        }
        rows = []
        for s in PAPER_SPARSITIES:
            x = random_sparse_vector(coo.shape[1], s)
            times = {}
            for name, alg in algs.items():
                dev = Device(RTX3090)
                alg.device = dev
                alg.multiply(x)
                times[name] = dev.elapsed_ms
            rows.append([s, times["TileSpMSpV"], times["via SpMV"],
                         times["via SpGEMM"],
                         times["via SpMV"] / times["TileSpMSpV"],
                         times["via SpGEMM"] / times["TileSpMSpV"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    register("section1_strawmen", format_table(
        ["sparsity", "TileSpMSpV ms", "via SpMV ms", "via SpGEMM ms",
         "SpMV penalty", "SpGEMM penalty"],
        rows,
        title="§1 - computing SpMSpV by calling SpMV / SpGEMM "
              "(msdoor stand-in, simulated ms)"))
    for row in rows:
        # both strawmen must lose at every sparsity (the §1 claim)
        assert row[4] > 1.0 and row[5] > 1.0


def test_spgemm_wallclock(benchmark):
    from repro.formats import spgemm, to_csr

    coo = get_matrix("cavity23")
    csr = to_csr(coo)
    C = benchmark.pedantic(spgemm, args=(csr, csr), rounds=2,
                           iterations=1)
    assert C.nnz > 0
