#!/usr/bin/env python
"""Open-loop load-generator benchmark of the async serving layer.

Drives :class:`~repro.serving.GraphQueryService` with seeded Poisson
arrivals over a mixed query stream (hot/cold multiplies, BFS,
PageRank) and sweeps the offered rate across the service's calibrated
capacity, writing per-rate latency percentiles, goodput, and reject
rates to ``BENCH_serving.json`` — the saturation-knee record future
PRs are guarded against.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py          # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke  # CI

The run is virtual-time deterministic (seeded arrivals, modeled
service times, a settable clock): the same commit produces the same
JSON on every machine, so CI holds it to tight floors; see
:mod:`repro.bench.serving` for the methodology.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    from repro.bench.serving import run_serving_bench
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.serving import run_serving_bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workload / three rates for CI")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="offered-rate multipliers of capacity")
    parser.add_argument("--requests", type=int, default=600,
                        help="open-loop arrivals per rate point")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--max-batch", type=int, default=8,
                        help="coalescing size budget")
    parser.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="coalescing latency budget")
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_serving.json")
    args = parser.parse_args(argv)

    result = run_serving_bench(
        rates=args.rates, n_requests=args.requests, seed=args.seed,
        max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
        smoke=args.smoke,
        progress=lambda m: print(f"  .. {m}", file=sys.stderr))
    args.out.write_text(json.dumps(result, indent=2) + "\n",
                        encoding="utf-8")

    meta = result["meta"]
    print(f"workload: hot {meta['hot']}, {len(meta['cold'])} cold; "
          f"mix {meta['mix']}")
    print(f"capacity {meta['capacity_rps']:.0f} rps "
          f"(mean {meta['mean_service_ms']:.4f} ms/req); "
          f"admission: depth<={meta['max_pending']}, "
          f"backlog<={meta['max_backlog_ms']:.4f} ms")
    print(f"{'rate':>6} {'offered':>10} {'goodput':>10} {'reject':>7} "
          f"{'p50 ms':>8} {'p99 ms':>8} {'batch':>6}")
    for r in result["rates"]:
        print(f"{r['rate']:>5g}x {r['offered_rps']:>10.0f} "
              f"{r['goodput_rps']:>10.0f} {r['reject_rate']:>6.1%} "
              f"{r['p50_ms']:>8.3f} {r['p99_ms']:>8.3f} "
              f"{r['mean_batch_size']:>6.2f}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
