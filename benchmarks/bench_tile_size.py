"""Ablation: tile-size choice (nt = 16 / 32 / 64).

Table 2 lists tile counts at all three sizes and §3.4 fixes the BFS
rule (order > 10,000 → 64, else 32); this bench measures what those
choices actually trade: smaller tiles skip more precisely (less wasted
payload) but carry more metadata per nonzero.
"""

import pytest

from repro.bench.report import format_table
from repro.core import TileBFS, TileSpMSpV
from repro.gpusim import Device, RTX3090
from repro.matrices import get_matrix
from repro.vectors import random_sparse_vector

TILE_SIZES = (16, 32, 64)
MATRICES = ("cant", "ldoor", "roadNet-TX", "in-2004")


def test_tile_size_ablation_table(register, benchmark):
    def run():
        rows = []
        for name in MATRICES:
            coo = get_matrix(name)
            x = random_sparse_vector(coo.shape[1], 0.01)
            spmspv_ms = {}
            bfs_ms = {}
            for nt in TILE_SIZES:
                dev = Device(RTX3090)
                TileSpMSpV(coo, nt=nt, device=dev).multiply(x)
                spmspv_ms[nt] = dev.elapsed_ms
                dev = Device(RTX3090)
                bfs_ms[nt] = TileBFS(coo, nt=nt,
                                     device=dev).run(0).simulated_ms
            rows.append([name] + [spmspv_ms[nt] for nt in TILE_SIZES]
                        + [bfs_ms[nt] for nt in TILE_SIZES])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = (["Matrix"]
               + [f"SpMSpV ms nt={nt}" for nt in TILE_SIZES]
               + [f"BFS ms nt={nt}" for nt in TILE_SIZES])
    register("ablation_tile_size",
             format_table(headers, rows,
                          title="Ablation - tile size (simulated ms, "
                                "sparsity 0.01 / BFS from vertex 0)"))
    for row in rows:
        assert all(v > 0 for v in row[1:])


def test_paper_nt_rule_is_reasonable(register, benchmark):
    """§3.4's rule (order > 10,000 → 64): on the large FEM matrix the
    64-tile BFS should be within ~2x of the best choice."""
    coo = get_matrix("ldoor")

    def run_all():
        out = {}
        for nt in TILE_SIZES:
            dev = Device(RTX3090)
            out[nt] = TileBFS(coo, nt=nt,
                              device=dev).run(0).simulated_ms
        return out

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    best = min(times.values())
    register("ablation_nt_rule",
             f"ldoor BFS ms by nt: " +
             ", ".join(f"{nt}: {t:.3f}" for nt, t in times.items()) +
             f" (paper's rule picks 64; best/64 ratio "
             f"{times[64] / best:.2f})")
    assert times[64] <= 2.5 * best
