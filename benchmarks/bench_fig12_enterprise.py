"""Figure 12: TileBFS vs Enterprise on the six matrices of the
Enterprise paper (FB, KR, TW, audikw_1, roadCA, europe.osm)."""

import pytest

from repro.baselines import EnterpriseBFS
from repro.bench import run_fig12
from repro.core import TileBFS
from repro.gpusim import Device, RTX3090
from repro.matrices import get_matrix


def test_fig12_table(register, benchmark):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    register("fig12", result.text)
    assert len(result.rows) == 6
    # paper: TileBFS outperforms Enterprise on most matrices, with the
    # biggest win on the low-tile-occupancy FEM matrix audikw_1
    wins = sum(1 for r in result.rows if r[3] > 1.0)
    assert wins >= 3
    audikw = next(r for r in result.rows if r[0] == "audikw_1")
    assert audikw[3] > 1.0


def test_enterprise_run(benchmark):
    coo = get_matrix("audikw_1")
    bfs = EnterpriseBFS(coo, device=Device(RTX3090))
    res = benchmark.pedantic(bfs.run, args=(0,), rounds=3, iterations=1)
    assert res.n_reached > 1


def test_tilebfs_run_same_matrix(benchmark):
    coo = get_matrix("audikw_1")
    bfs = TileBFS(coo, device=Device(RTX3090))
    res = benchmark.pedantic(bfs.run, args=(0,), rounds=3, iterations=1)
    assert res.n_reached > 1
