"""Figure 7: BFS vs Gunrock / GSwitch on both simulated GPUs.

Regenerates the geomean/max speedup and %-won table over the square
sweep matrices, and benchmarks one full traversal of each algorithm.
"""

import pytest

from repro.baselines import GSwitchBFS, GunrockBFS
from repro.bench import run_fig7
from repro.core import TileBFS
from repro.gpusim import Device, RTX3060, RTX3090
from repro.matrices import get_matrix, sweep_entries


@pytest.fixture(scope="module")
def matrix():
    return get_matrix("ldoor")


def test_fig7_speedup_table(register, register_csv, benchmark):
    result = benchmark.pedantic(
        run_fig7, kwargs={"entries": sweep_entries(max_n=10_000)},
        rounds=1, iterations=1)
    register("fig7", result.text)
    register_csv("fig7_detail", result.extra["detail_headers"],
                 result.extra["detail_rows"])
    by_key = {(r[0], r[1]): r for r in result.rows}
    for spec in ("RTX 3060", "RTX 3090"):
        for rival in ("Gunrock", "GSwitch"):
            geo, won = by_key[(spec, rival)][2], by_key[(spec, rival)][4]
            # the paper wins on >68% of matrices with geomean > 1
            assert geo > 1.0, (spec, rival)
            assert won > 50.0, (spec, rival)


def test_tilebfs_run(benchmark, matrix):
    bfs = TileBFS(matrix, device=Device(RTX3090))
    res = benchmark.pedantic(bfs.run, args=(0,), rounds=3, iterations=1)
    assert res.n_reached > 1


def test_gunrock_run(benchmark, matrix):
    bfs = GunrockBFS(matrix, device=Device(RTX3090))
    res = benchmark.pedantic(bfs.run, args=(0,), rounds=3, iterations=1)
    assert res.n_reached > 1


def test_gswitch_run(benchmark, matrix):
    bfs = GSwitchBFS(matrix, device=Device(RTX3090))
    res = benchmark.pedantic(bfs.run, args=(0,), rounds=3, iterations=1)
    assert res.n_reached > 1


def test_tilebfs_scales_3060_to_3090(register, benchmark):
    """§4.3's scalability claim: the bigger card pays off on a matrix
    large enough to saturate it (smaller ones are latency/launch-bound
    and tie — also a paper observation)."""
    from repro.matrices import fem_like

    big = fem_like(40_000, nnz_per_row=60, seed=99)

    def run_both():
        out = {}
        for spec in (RTX3060, RTX3090):
            dev = Device(spec)
            out[spec.name] = TileBFS(big, device=dev).run(0).simulated_ms
        return out

    times = benchmark.pedantic(run_both, rounds=1, iterations=1)
    register("fig7_scaling",
             f"TileBFS on fem-40k (nnz={big.nnz}): "
             f"RTX 3060 {times['RTX 3060']:.3f} ms, "
             f"RTX 3090 {times['RTX 3090']:.3f} ms "
             f"(speedup {times['RTX 3060'] / times['RTX 3090']:.2f}x)")
    assert times["RTX 3090"] < times["RTX 3060"]
