"""Figure 9: stacking the directional-optimization kernels.

K1 (Push-CSC only) → K1+K2 (+Push-CSR) → K1+K2+K3 (+Pull-CSC) on the
representative matrices, reported in GTEPS like the paper's bars.
"""

import pytest

from repro.bench import geomean, run_fig9
from repro.core import KernelSelector, TileBFS
from repro.gpusim import Device, RTX3090
from repro.matrices import get_matrix


def test_fig9_ablation_table(register, benchmark):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    register("fig9", result.text)
    assert len(result.rows) == 12
    # adding Push-CSR must help on the dense-frontier FEM matrices
    gains = [r[2] / r[1] for r in result.rows]
    assert geomean(gains) > 1.0
    # the full rule must never regress catastrophically vs K1+K2
    for r in result.rows:
        assert r[3] > 0.7 * r[2], r[0]


@pytest.mark.parametrize("selector,label", [
    (KernelSelector.k1(), "K1"),
    (KernelSelector.k1_k2(), "K1+K2"),
    (KernelSelector.k1_k2_k3(), "K1+K2+K3"),
], ids=["K1", "K1K2", "K1K2K3"])
def test_ablation_point_run(benchmark, selector, label):
    """Wall-clock of one traversal at each ablation point."""
    coo = get_matrix("pdb1HYS")
    bfs = TileBFS(coo, selector=selector, device=Device(RTX3090))
    res = benchmark.pedantic(bfs.run, args=(0,), rounds=3, iterations=1)
    assert res.n_reached > 1
