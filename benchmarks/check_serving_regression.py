#!/usr/bin/env python
"""Serving-benchmark regression guard over committed baselines.

Compares a freshly generated serving report (typically the CI smoke
run) against a committed baseline: every rate point of the baseline
must still be present, keep goodput at >= ``--floor`` times its
committed value, and keep p99 latency at <= ``1/floor`` times its
committed value.  The serving benchmark is virtual-time deterministic,
so the default floor is tight — a failure means the serving or
batching code path changed its behaviour, not that the CI machine was
slow.

Usage::

    PYTHONPATH=src python benchmarks/check_serving_regression.py \
        --current BENCH_serving.ci.json \
        --committed BENCH_serving.smoke.json
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    from repro.bench.serving import check_serving_regression
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.serving import check_serving_regression


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly generated report (JSON)")
    parser.add_argument("--committed", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_serving.smoke.json",
                        help="committed baseline report (JSON)")
    parser.add_argument("--floor", type=float, default=0.9,
                        help="minimum fraction of committed goodput "
                             "(and 1/floor ceiling on p99)")
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text(encoding="utf-8"))
    committed = json.loads(args.committed.read_text(encoding="utf-8"))
    failures = check_serving_regression(current, committed,
                                        floor=args.floor)
    if failures:
        print(f"serving regression: {len(failures)} failure(s) vs "
              f"the committed baseline (floor {args.floor:g})")
        for f in failures:
            if f.get("missing"):
                print(f"  {f['label']}: present in the committed "
                      f"baseline but missing from the current report")
            elif "floor" in f:
                print(f"  {f['label']}: {f['current']:.1f} < "
                      f"{f['floor']:.1f} (committed {f['committed']:.1f})")
            else:
                print(f"  {f['label']}: {f['current']:.3f} > "
                      f"{f['ceiling']:.3f} "
                      f"(committed {f['committed']:.3f})")
        return 1
    print(f"no serving regressions vs {args.committed.name} "
          f"(floor {args.floor:g})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
