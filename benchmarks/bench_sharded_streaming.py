#!/usr/bin/env python
"""Out-of-core streaming demo: a scale-20+ R-MAT through the sharded
engine under a resident-set budget smaller than the total tile bytes.

The matrix (2**scale vertices, power-law degrees) is partitioned into
row-strip shards written as mmap tile directories; the resident-set
manager is budgeted to a fraction of the total tile footprint, so a
full SpMSpV or BFS *must* stream shards through memory — exactly the
regime where a dense representation (2**40 * 8 bytes at scale 20) is
unrepresentable.  Prints per-phase scheduler skip counts and the
resident-set load/evict traffic.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharded_streaming.py \
        [--scale 20] [--edge-factor 8] [--shards 16] \
        [--budget-fraction 0.25] [--store DIR] [--workers 1,2,4]

With ``--workers`` the whole workload repeats per worker count (each
count reopens the store cold): multi-worker runs execute shards on the
parallel pool and additionally report the modeled multi-device
critical-path speedup from the replayed timeline.
"""

import argparse
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    from repro.core import TileBFS, TileSpMSpV
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core import TileBFS, TileSpMSpV

from repro.matrices.generators import rmat
from repro.parallel import ParallelConfig
from repro.runtime import ExecutionContext
from repro.shards import ShardedTiledMatrix
from repro.vectors import random_sparse_vector


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if n < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} TiB"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=20,
                        help="RMAT scale (2**scale vertices; default 20)")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--nt", type=int, default=16)
    parser.add_argument("--shards", type=int, default=16)
    parser.add_argument("--budget-fraction", type=float, default=0.25,
                        help="resident-set budget as a fraction of the "
                             "total tile bytes (default 0.25)")
    parser.add_argument("--store", type=pathlib.Path, default=None,
                        help="shard directory (default: a temp dir)")
    parser.add_argument("--sparsities", default="0.00001,0.0001,0.001",
                        help="comma-separated input sparsities for the "
                             "SpMSpV sweep")
    parser.add_argument("--source", type=int, default=0,
                        help="BFS source vertex")
    parser.add_argument("--workers", default="1",
                        help="comma-separated worker counts to sweep "
                             "(default 1; e.g. 1,2,4)")
    args = parser.parse_args(argv)
    worker_counts = [max(1, int(w)) for w in args.workers.split(",")]

    n = 1 << args.scale
    dense_bytes = float(n) * n * 8
    print(f"RMAT scale={args.scale} edge_factor={args.edge_factor}: "
          f"n={n}, dense would need {fmt_bytes(dense_bytes)} — "
          f"only the sharded tiled form is materializable")

    t0 = time.perf_counter()
    coo = rmat(args.scale, edge_factor=args.edge_factor, seed=7)
    print(f"generated nnz={coo.nnz} in {time.perf_counter() - t0:.1f}s")

    store_ctx = (tempfile.TemporaryDirectory(prefix="shards-")
                 if args.store is None else None)
    store_dir = (pathlib.Path(store_ctx.name) if store_ctx
                 else args.store)
    try:
        t0 = time.perf_counter()
        sm = ShardedTiledMatrix.from_coo(
            coo, nt=args.nt, n_shards=args.shards,
            store_dir=store_dir)
        total = sm.total_tile_bytes
        budget = max(1, int(total * args.budget_fraction))
        print(f"partitioned into {args.shards} shards "
              f"({fmt_bytes(total)} on disk) in "
              f"{time.perf_counter() - t0:.1f}s; resident budget "
              f"{fmt_bytes(budget)} "
              f"({100 * args.budget_fraction:.0f}% of tile bytes)")

        for w in worker_counts:
            # reopen per worker count: every sweep streams from cold
            sm = ShardedTiledMatrix.open(store_dir, budget_bytes=budget)
            cfg = ParallelConfig(workers=w)
            backend = cfg.resolved_backend(sm.store)
            print(f"-- workers={w} (backend={backend}) --")

            # ---- SpMSpV sweep ----------------------------------------
            op = TileSpMSpV(sm, parallel=cfg)
            print(f"{'sparsity':>10} {'nnz(y)':>9} {'ms':>9} "
                  f"{'exec':>5} {'skip':>5} {'loaded':>10} "
                  f"{'evicted':>10}")
            for s in (float(f) for f in args.sparsities.split(",")):
                before = op._sharded.stats()
                x = random_sparse_vector(n, s, seed=11)
                t0 = time.perf_counter()
                y = op.multiply(x)
                ms = (time.perf_counter() - t0) * 1e3
                after = op._sharded.stats()
                print(f"{s:>10g} {y.nnz:>9} {ms:>9.1f} "
                      f"{after['shards_executed'] - before['shards_executed']:>5} "
                      f"{after['shards_skipped'] - before['shards_skipped']:>5} "
                      f"{fmt_bytes(after['loaded_bytes'] - before['loaded_bytes']):>10} "
                      f"{fmt_bytes(after['evicted_bytes'] - before['evicted_bytes']):>10}")

            # ---- BFS end-to-end --------------------------------------
            ctx = ExecutionContext(mode="production")
            bfs = TileBFS(sm, device=ctx, parallel=cfg)
            t0 = time.perf_counter()
            res = bfs.run(args.source)
            ms = (time.perf_counter() - t0) * 1e3
            reached = int((res.levels >= 0).sum())
            stats = bfs._sharded.stats()
            print(f"BFS from {args.source}: {reached}/{n} reached in "
                  f"{len(res.iterations)} layers, {ms:.1f} ms host")
            print(f"  scheduler: {stats['schedule_calls']} passes, "
                  f"{stats['shards_executed']} shard executions, "
                  f"{stats['shards_skipped']} skipped")
            print(f"  resident set: {stats['loads']} loads "
                  f"({fmt_bytes(stats['loaded_bytes'])}), "
                  f"{stats['hits']} hits, {stats['evictions']} evictions "
                  f"({fmt_bytes(stats['evicted_bytes'])}), "
                  f"{fmt_bytes(stats['resident_bytes'])} resident of "
                  f"{fmt_bytes(stats['budget_bytes'])} budget")
            if w > 1:
                mt = bfs._sharded.multi_timeline(w)
                print(f"  modeled: critical path "
                      f"{mt.critical_path_ms:.3f} ms of "
                      f"{mt.sum_of_work_ms:.3f} ms total work = "
                      f"{mt.modeled_speedup:.2f}x on {w} devices")
            assert stats["evictions"] > 0, \
                "budget never bound — not an out-of-core run"
    finally:
        if store_ctx is not None:
            store_ctx.cleanup()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
