"""Ablation: CSR-form vs CSC-form vs adaptive SpMSpV kernels.

The paper's §3.2.3 defines both kernel forms; its related work (Li et
al. [31]) selects between SpMV/SpMSpV by input sparsity.  This bench
measures the crossover the adaptive mode arbitrates: the column form
wins at extreme input sparsity (touches only active tile columns), the
row form wins once the input is dense enough that the atomic merge
dominates.
"""

import pytest

from repro.bench.report import format_table
from repro.core import TileSpMSpV
from repro.gpusim import Device, RTX3090
from repro.matrices import get_matrix
from repro.vectors import random_sparse_vector

SPARSITIES = (0.1, 0.01, 0.001, 0.0001, 0.00001)


def test_mode_crossover_table(register, benchmark):
    coo = get_matrix("ldoor")

    def run():
        ops = {mode: TileSpMSpV(coo, nt=16, mode=mode)
               for mode in ("csr", "csc", "adaptive")}
        ops["csc"].multiply(random_sparse_vector(coo.shape[1], 0.001))
        rows = []
        for s in SPARSITIES:
            x = random_sparse_vector(coo.shape[1], s)
            times = {}
            for mode, op in ops.items():
                dev = Device(RTX3090)
                op.device = dev
                op.multiply(x)
                times[mode] = dev.elapsed_ms
            rows.append([s, times["csr"], times["csc"],
                         times["adaptive"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    register("ablation_modes",
             format_table(["sparsity", "csr ms", "csc ms", "adaptive ms"],
                          rows,
                          title="Ablation - SpMSpV kernel form on ldoor "
                                "(simulated ms)"))
    # the column form must win at the sparsest point...
    assert rows[-1][2] < rows[-1][1]
    # ...and the row form at the densest
    assert rows[0][1] < rows[0][2]
    # adaptive tracks the winner within 30% at the extremes
    assert rows[-1][3] < 1.3 * min(rows[-1][1], rows[-1][2])
    assert rows[0][3] < 1.3 * min(rows[0][1], rows[0][2])


@pytest.mark.parametrize("mode", ["csr", "csc", "adaptive"])
def test_mode_multiply_wallclock(benchmark, mode):
    coo = get_matrix("msdoor")
    op = TileSpMSpV(coo, nt=16, mode=mode)
    x = random_sparse_vector(coo.shape[1], 0.001)
    op.multiply(x)   # warm the lazy transpose tiling outside the timer
    y = benchmark(op.multiply, x)
    assert y.nnz > 0
