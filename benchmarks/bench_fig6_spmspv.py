"""Figure 6: SpMSpV performance vs TileSpMV / cuSPARSE-BSR / CombBLAS.

Regenerates the geomean/max speedup table at the paper's four vector
sparsities over the distribution sweep, and benchmarks one multiply of
each algorithm on a representative FEM matrix for wall-clock tracking.
"""

import pytest

from repro.baselines import CombBLASSpMSpV, CuSparseBSRMV, TileSpMV
from repro.bench import run_fig6
from repro.core import TileSpMSpV
from repro.gpusim import Device, RTX3090
from repro.matrices import get_matrix, sweep_entries
from repro.vectors import random_sparse_vector


@pytest.fixture(scope="module")
def matrix():
    return get_matrix("msdoor")


@pytest.fixture(scope="module")
def x001(matrix):
    return random_sparse_vector(matrix.shape[1], 0.01)


def test_fig6_speedup_table(register, register_csv, benchmark):
    """The headline Figure-6 table: TileSpMSpV wins at every sparsity,
    and the gap to the SpMV baselines widens as x gets sparser."""
    result = benchmark.pedantic(
        run_fig6, kwargs={"entries": sweep_entries(max_n=16384)},
        rounds=1, iterations=1)
    register("fig6", result.text)
    register_csv("fig6_detail", result.extra["detail_headers"],
                 result.extra["detail_rows"])
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    for rival in ("TileSpMV", "cuSPARSE", "CombBLAS"):
        assert by_key[(0.01, rival)] > 1.0, rival
        assert by_key[(0.001, rival)] > 1.0, rival
    # Fig. 6 trend: SpMV baselines fall further behind at lower sparsity
    assert by_key[(0.001, "TileSpMV")] > by_key[(0.1, "TileSpMV")]
    assert by_key[(0.001, "cuSPARSE")] > by_key[(0.1, "cuSPARSE")]


def test_tilespmspv_multiply(benchmark, matrix, x001):
    op = TileSpMSpV(matrix, nt=16, device=Device(RTX3090))
    y = benchmark(op.multiply, x001)
    assert y.nnz > 0


def test_tilespmv_multiply(benchmark, matrix, x001):
    op = TileSpMV(matrix, nt=16, device=Device(RTX3090))
    y = benchmark(op.multiply, x001)
    assert y.nnz > 0


def test_cusparse_bsr_multiply(benchmark, matrix, x001):
    op = CuSparseBSRMV(matrix, 16, device=Device(RTX3090))
    y = benchmark(op.multiply, x001)
    assert y.nnz > 0


def test_combblas_multiply(benchmark, matrix, x001):
    op = CombBLASSpMSpV(matrix, device=Device(RTX3090))
    y = benchmark(op.multiply, x001)
    assert y.nnz > 0
