#!/usr/bin/env python
"""Wall-clock benchmark of the active-set execution engine.

Times the production SpMSpV kernels against the preserved O(nnz) seed
oracles at swept frontier densities (multiply in CSR / CSC / batched
form, plus an end-to-end BFS) and writes the measurements to
``BENCH_wallclock.json`` — the perf trajectory future PRs append to.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py          # full
    PYTHONPATH=src python benchmarks/bench_wallclock.py --smoke  # CI

Unlike the other ``bench_*`` modules (pytest-benchmark over *simulated*
GPU time), this is a standalone CLI measuring *host* wall-clock time;
see :mod:`repro.bench.wallclock` for the methodology.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:
    from repro.bench.wallclock import run_wallclock
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.wallclock import run_wallclock


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small matrix / few repeats for CI")
    parser.add_argument("--scale", type=int, default=17,
                        help="RMAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--nt", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--out", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_wallclock.json")
    args = parser.parse_args(argv)

    result = run_wallclock(scale=args.scale, edge_factor=args.edge_factor,
                           nt=args.nt, repeats=args.repeats,
                           smoke=args.smoke,
                           progress=lambda m: print(f"  .. {m}",
                                                    file=sys.stderr))
    args.out.write_text(json.dumps(result, indent=2) + "\n",
                        encoding="utf-8")

    meta = result["meta"]
    print(f"{meta['matrix']}: n={meta['n']} nnz={meta['nnz']} "
          f"nt={meta['nt']}")
    print(f"{'form':>8} {'density':>9} {'act.cols':>9} "
          f"{'ref ms':>9} {'new ms':>9} {'speedup':>8}")
    for r in result["multiply"]:
        print(f"{r['form']:>8} {r['density']:>9g} "
              f"{r['active_col_fraction']:>9.4f} {r['ref_ms']:>9.3f} "
              f"{r['new_ms']:>9.3f} {r['speedup']:>7.1f}x")
    b = result["bfs"]
    print(f"{'bfs':>8} {'-':>9} {'-':>9} {b['ref_ms']:>9.3f} "
          f"{b['new_ms']:>9.3f} {b['speedup']:>7.1f}x "
          f"({b['iterations']} iterations, {b['reached']} reached)")

    print("TileBFS kernels (forced):")
    print(f"{'kernel':>10} {'density':>9} {'visited':>9} "
          f"{'ref ms':>9} {'new ms':>9} {'speedup':>8}")
    for r in result["bfs_kernels"]:
        print(f"{r['kernel']:>10} {r['density']:>9g} "
              f"{r['visited_fraction']:>9g} {r['ref_ms']:>9.3f} "
              f"{r['new_ms']:>9.3f} {r['speedup']:>7.1f}x")
    t = result["tilebfs"]
    print(f"{'tilebfs':>10} end-to-end (nt={t['nt']}): "
          f"{t['ref_ms']:.3f} -> {t['new_ms']:.3f} ms "
          f"= {t['speedup']:.1f}x "
          f"({t['iterations']} iterations, {t['reached']} reached)")
    f = result["fastpath"]
    print(f"{'fastpath':>10} end-to-end (tier={f['tier']}): "
          f"{f['ref_ms']:.3f} -> {f['new_ms']:.3f} ms "
          f"= {f['speedup']:.1f}x "
          f"({f['iterations']} iterations, {f['reached']} reached)")
    s = result["msbfs"]
    print(f"{'msbfs':>10} end-to-end ({s['sources']} sources): "
          f"{s['ref_ms']:.3f} -> {s['new_ms']:.3f} ms "
          f"= {s['speedup']:.1f}x")
    print("Batched engine (coalesced union launch vs looped singles):")
    print(f"{'batch':>6} {'density':>9} {'loop ms':>9} {'batch ms':>9} "
          f"{'speedup':>8} {'bytes':>7}")
    for r in result["batched"]:
        print(f"{r['batch']:>6} {r['density']:>9g} {r['ref_ms']:>9.3f} "
              f"{r['new_ms']:>9.3f} {r['speedup']:>7.1f}x "
              f"{r['bytes_ratio']:>6.2f}x")
    print("SpMM dense-block kernels (merge-path vs row-per-warp):")
    print(f"{'B':>6} {'density':>9} {'rw ms':>9} {'mp ms':>9} "
          f"{'speedup':>8} {'bytes':>7}")
    for r in result["spmm"]:
        print(f"{r['batch']:>6} {r['density']:>9g} {r['ref_ms']:>9.3f} "
              f"{r['new_ms']:>9.3f} {r['speedup']:>7.1f}x "
              f"{r['bytes_ratio']:>6.2f}x")
    print("Sharded out-of-core engine (row strips vs one in-core tiling):")
    print(f"{'shards':>7} {'density':>9} {'ref ms':>9} {'new ms':>9} "
          f"{'speedup':>8} {'exec':>5} {'skip':>5}")
    for r in result["sharded"]:
        print(f"{r['n_shards']:>7} {r['density']:>9g} "
              f"{r['ref_ms']:>9.3f} {r['new_ms']:>9.3f} "
              f"{r['speedup']:>7.1f}x {r['shards_executed']:>5} "
              f"{r['shards_skipped']:>5}")
    print("Parallel shard execution (worker sweep, modeled multi-device "
          "critical path):")
    print(f"{'workers':>8} {'shards':>7} {'wall ms':>9} {'wall x':>7} "
          f"{'crit ms':>9} {'work ms':>9} {'pred x':>7} {'model x':>8} "
          f"{'agree':>6}")
    for r in result["parallel"]:
        print(f"{r['workers']:>8} {r['n_shards']:>7} "
              f"{r['wall_ms']:>9.3f} {r['wall_speedup']:>6.1f}x "
              f"{r['critical_path_ms']:>9.4f} "
              f"{r['sum_of_work_ms']:>9.4f} "
              f"{r['predicted_speedup']:>6.1f}x "
              f"{r['speedup']:>7.1f}x "
              f"{r['model_agreement']:>6.3f}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
