"""§4.2 ablation: very-sparse-tile COO extraction.

The paper reports a 1.6x gain on 'cryg10000' (1.10% of non-empty tiles
moved to the COO side matrix).  This bench regenerates the ablation on
a cryg-like bands-plus-dust matrix and on two graph classes where
extraction does *not* pay (small launch-bound cases), which the paper's
"once it is required" phrasing anticipates.
"""

import pytest

from repro.bench import run_extraction
from repro.core import TileSpMSpV
from repro.gpusim import Device, RTX3090
from repro.vectors import random_sparse_vector


def test_extraction_ablation_table(register, benchmark):
    result = benchmark.pedantic(run_extraction, rounds=1, iterations=1)
    register("extraction", result.text)
    cryg = result.rows[0]
    # the paper's 1.6x on cryg10000; require a clear win on the
    # bands+dust profile
    assert cryg[3] > 1.3
    # a sizeable share of nonzeros must actually have been extracted
    assert cryg[4] > 10.0


@pytest.mark.parametrize("threshold", [0, 2],
                         ids=["no-extract", "extract"])
def test_multiply_with_without_extraction(benchmark, threshold):
    """Wall-clock of one multiply at both ablation points."""
    from repro.bench.harness import _mix_scatter

    coo = _mix_scatter(seed=5, n=60_000)
    op = TileSpMSpV(coo, nt=16, extract_threshold=threshold,
                    device=Device(RTX3090))
    x = random_sparse_vector(coo.shape[1], 0.01)
    y = benchmark(op.multiply, x)
    assert y.nnz > 0
