#!/usr/bin/env python3
"""A tour of the storage structures the paper builds on (§3.2).

Shows, on one matrix:

* the classic formats (COO / CSR / CSC / BSR) and their footprints,
* the tiled structure with nibble-packed indices (§3.2.1),
* very-sparse-tile extraction into a COO side matrix,
* the tiled sparse vector and its O(1) lookup formula (Figure 3),
* the bitmask tiles (A1/A2) and bit vectors TileBFS runs on (Fig. 5),
* Matrix Market round-tripping for interoperability.

Run:  python examples/format_tour.py
"""

import io

import numpy as np

from repro.formats import (read_matrix_market, to_bsr, to_csc, to_csr,
                           write_matrix_market)
from repro.matrices import fem_like
from repro.tiles import (BitTiledMatrix, BitVector, TiledMatrix,
                         TiledVector, split_very_sparse_tiles, tile_stats)


def main() -> None:
    A = fem_like(2048, nnz_per_row=30, block=8, seed=6)
    print(f"matrix: {A.shape[0]}x{A.shape[1]}, nnz={A.nnz}\n")

    # -- classic formats ------------------------------------------------
    csr, csc, bsr = to_csr(A), to_csc(A), to_bsr(A, 16)
    print("classic formats:")
    print(f"  COO  {A.row.nbytes + A.col.nbytes + A.val.nbytes:>9} bytes")
    print(f"  CSR  {csr.indptr.nbytes + csr.indices.nbytes + csr.data.nbytes:>9} bytes")
    print(f"  CSC  {csc.indptr.nbytes + csc.indices.nbytes + csc.data.nbytes:>9} bytes")
    print(f"  BSR  {bsr.blocks.nbytes + bsr.indptr.nbytes + bsr.indices.nbytes:>9} bytes  "
          f"(dense blocks, fill ratio {bsr.fill_ratio():.3f})")

    # -- tiled structure (§3.2.1) ---------------------------------------
    tm = TiledMatrix.from_coo(A, 16)
    st = tile_stats(A, 16)
    print(f"\ntiled (nt=16): {tm.n_nonempty_tiles} tiles, "
          f"{tm.nbytes()} bytes "
          f"(1-byte nibble-packed local indices: "
          f"{tm.index_bytes_per_entry()} B/entry)")
    print(f"  non-empty tile fraction {st.nonempty_tile_fraction:.4f}, "
          f"in-tile density {st.in_tile_density:.3f}")

    # -- very-sparse-tile extraction ------------------------------------
    hy = split_very_sparse_tiles(A, 16, threshold=2)
    print(f"  extraction at threshold 2: {hy.side.nnz} nonzeros "
          f"({100 * hy.extracted_fraction:.2f}%) moved to the COO side "
          f"matrix")

    # -- tiled sparse vector (Figure 3) ----------------------------------
    x = np.zeros(16)
    x[[0, 2, 3, 9, 11]] = [1, 5, 2, 4, 3]
    tv = TiledVector.from_dense(x, 4)
    print(f"\nFigure-3 vector: x_ptr={tv.x_ptr.tolist()} "
          f"x_tile={tv.x_tile.tolist()}")
    i = 9
    t = tv.x_ptr[i // 4]
    print(f"  O(1) lookup of x[{i}]: x_tile[x_ptr[{i // 4}]*4 + {i % 4}]"
          f" = x_tile[{t * 4 + i % 4}] = {tv.get(i)}")

    # -- bitmask tiles and bit vectors (Figure 5) ------------------------
    a1 = BitTiledMatrix.from_coo(A, 32, "csc")
    a2 = BitTiledMatrix.from_coo(A, 32, "csr")
    print(f"\nbitmask tiles (nt=32): A1(csc) {a1.nbytes()} bytes, "
          f"A2(csr) {a2.nbytes()} bytes "
          f"(vs {tm.nbytes()} for value-carrying tiles)")
    frontier = BitVector.from_indices(np.array([0, 100, 999]),
                                      A.shape[0], 32)
    print(f"frontier bitvector: {frontier.count()} set bits in "
          f"{frontier.nbytes()} bytes; "
          f"tiles touched: {frontier.nonzero_tile_ids().tolist()}")

    # -- Matrix Market round trip ----------------------------------------
    buf = io.StringIO()
    write_matrix_market(A, buf)
    buf.seek(0)
    back = read_matrix_market(buf)
    print(f"\nMatrix Market round trip: nnz {A.nnz} -> {back.nnz}, "
          f"values preserved: "
          f"{np.allclose(back.to_dense(), A.to_dense())}")


if __name__ == "__main__":
    main()
