#!/usr/bin/env python3
"""Graph analytics on top of SpMSpV: betweenness centrality and RCM.

The paper's introduction motivates fast SpMSpV with exactly these
applications (§1: BFS, betweenness centrality, reverse Cuthill-McKee
ordering).  This example runs both on a small social-network-style
graph, with every matrix-vector product going through TileSpMSpV and
every level structure through TileBFS.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro import Device, RTX3090
from repro.formats import COOMatrix
from repro.graphs import bandwidth, betweenness_centrality, rcm_ordering
from repro.matrices import banded, rmat


def centrality_demo() -> None:
    print("=== betweenness centrality (Brandes via SpMSpV) ===")
    A = rmat(9, edge_factor=6, seed=3)
    device = Device(RTX3090)
    # exact BC routes one forward+backward sweep per vertex through
    # the TileSpMSpV operator; use pivots for speed on bigger graphs
    pivots = list(range(0, A.shape[0], 8))
    bc = betweenness_centrality(A, sources=pivots, nt=16, device=device)
    top = np.argsort(bc)[::-1][:5]
    print(f"graph: n={A.shape[0]}, nnz={A.nnz}, "
          f"{len(pivots)} Brandes pivots")
    print("top-5 central vertices:")
    degrees = np.bincount(A.row, minlength=A.shape[0])
    for v in top:
        print(f"  vertex {v:>4}: bc={bc[v]:.5f}  degree={degrees[v]}")
    print(f"simulated GPU time across all sweeps: "
          f"{device.elapsed_ms:.3f} ms\n")


def rcm_demo() -> None:
    print("=== reverse Cuthill-McKee ordering (via TileBFS levels) ===")
    # a banded matrix scrambled by a random permutation: RCM should
    # recover a narrow band
    A = banded(3000, bandwidth=3, extra_bands=0, seed=4)
    rng = np.random.default_rng(5)
    shuffle = rng.permutation(A.shape[0])
    scrambled = COOMatrix(A.shape, shuffle[A.row], shuffle[A.col], A.val)

    before = bandwidth(scrambled)
    perm = rcm_ordering(scrambled, nt=16)
    after = bandwidth(scrambled, perm)
    print(f"matrix: n={A.shape[0]}, nnz={A.nnz}")
    print(f"bandwidth scrambled: {before}")
    print(f"bandwidth after RCM: {after}  "
          f"({before / after:.1f}x narrower)")


def main() -> None:
    centrality_demo()
    rcm_demo()


if __name__ == "__main__":
    main()
