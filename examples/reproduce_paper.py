#!/usr/bin/env python3
"""Reproduce the paper's evaluation tables from the command line.

Thin demonstration wrapper over :mod:`repro.bench`: picks three of the
lighter experiments so the script finishes in about a minute.  For the
full set (including the Figure 6/7 sweeps) run::

    python -m repro.bench            # everything
    python -m repro.bench fig6       # one experiment
    pytest benchmarks/ --benchmark-only

Run:  python examples/reproduce_paper.py
"""

from repro.bench import run_extraction, run_fig9, run_fig12, run_table2


def main() -> None:
    for runner in (run_table2, run_fig9, run_fig12, run_extraction):
        result = runner()
        print(result.text)
        print()
    print("Full per-experiment index: DESIGN.md; paper-vs-measured "
          "comparison: EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
