#!/usr/bin/env python3
"""Quickstart: sparse matrix-sparse vector multiplication with TileSpMSpV.

Walks the paper's core pipeline end to end:

1. build a sparse matrix (a FEM-style stiffness pattern),
2. preprocess it once into the tiled format (§3.2),
3. multiply against sparse vectors of several sparsities (§3.3),
4. read the simulated-GPU timing and compare against the baselines.

Run:  python examples/quickstart.py
"""

from repro import Device, RTX3090, TileSpMSpV, random_sparse_vector
from repro.baselines import CombBLASSpMSpV, CuSparseBSRMV, TileSpMV
from repro.matrices import fem_like
from repro.tiles import tile_stats


def main() -> None:
    # -- 1. a matrix: 8192 x 8192 FEM-style, ~40 nonzeros per row ------
    A = fem_like(8192, nnz_per_row=40, block=16, seed=42)
    print(f"matrix: {A.shape[0]}x{A.shape[1]}, nnz={A.nnz}")
    st = tile_stats(A, 16)
    print(f"tiles(16): {st.n_nonempty_tiles} non-empty "
          f"({100 * st.nonempty_tile_fraction:.2f}% of the grid, "
          f"avg {st.avg_nnz_per_tile:.1f} nnz/tile)")

    # -- 2. preprocess once: tiled storage + very-sparse-tile extraction
    device = Device(RTX3090)
    op = TileSpMSpV(A, nt=16, device=device)
    print(f"operator: {op!r}\n")

    # -- 3. multiply at the paper's four vector sparsities -------------
    print(f"{'sparsity':>10} {'x nnz':>8} {'y nnz':>8} "
          f"{'simulated us':>13}")
    for sparsity in (0.1, 0.01, 0.001, 0.0001):
        x = random_sparse_vector(A.shape[1], sparsity)   # seed 1, §4.2
        device.reset()
        y = op.multiply(x)
        print(f"{sparsity:>10} {x.nnz:>8} {y.nnz:>8} "
              f"{1000 * device.elapsed_ms:>13.2f}")

    # -- 4. the Figure-6 comparison on this matrix ---------------------
    print("\nvs the paper's baselines at sparsity 0.01:")
    x = random_sparse_vector(A.shape[1], 0.01)
    rivals = {
        "TileSpMSpV (this work)": op,
        "TileSpMV  (dense-x SpMV)": TileSpMV(A, nt=16),
        "cuSPARSE BSR (bsrmv)": CuSparseBSRMV(A, 16),
        "CombBLAS  (SpMSpV-bucket)": CombBLASSpMSpV(A),
    }
    times = {}
    for name, alg in rivals.items():
        dev = Device(RTX3090)
        alg.device = dev
        alg.multiply(x)
        times[name] = dev.elapsed_ms
    base = times["TileSpMSpV (this work)"]
    for name, t in times.items():
        print(f"  {name:<28} {1000 * t:>10.2f} us   "
              f"({t / base:>5.2f}x of TileSpMSpV)")


if __name__ == "__main__":
    main()
