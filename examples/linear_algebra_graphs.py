#!/usr/bin/env python3
"""Graphs as linear algebra: CC, SSSP, PageRank and batched BC on one
matrix, with a profiler view of the simulated GPU timeline.

Everything here runs through the tiled kernels — the GraphBLAS thesis
the paper builds on (§1: "utilizing sparse linear algebra for
accelerating graph problems").

Run:  python examples/linear_algebra_graphs.py
"""

import numpy as np

from repro import Device, RTX3090, TileSpMSpV, random_sparse_vector
from repro.gpusim import format_profile
from repro.graphs import connected_components, pagerank, sssp
from repro.matrices import rmat


def main() -> None:
    A = rmat(12, edge_factor=8, seed=11)
    n = A.shape[0]
    device = Device(RTX3090)
    print(f"graph: n={n}, nnz={A.nnz} (R-MAT)\n")

    # -- connected components (min-label propagation) -------------------
    labels = connected_components(A, nt=16, device=device)
    sizes = np.bincount(labels)
    sizes = sizes[sizes > 0]
    print(f"connected components: {len(sizes)} "
          f"(largest {sizes.max()} vertices)")

    # -- single-source shortest paths ((min,+) relaxation) --------------
    dist = sssp(A, source=0, nt=16, device=device)
    finite = np.isfinite(dist)
    print(f"sssp from 0: reached {finite.sum()} vertices, "
          f"max distance {dist[finite].max():.3f}")

    # -- PageRank (dense-iterate SpMV path) ------------------------------
    ranks, iters = pagerank(A, nt=16, device=device)
    top = np.argsort(ranks)[::-1][:3]
    print(f"pagerank: converged in {iters} iterations; "
          f"top vertices {top.tolist()}")

    # -- batched SpMSpV (multi-source frontier matrix) -------------------
    op = TileSpMSpV(A, nt=16, device=device)
    frontiers = [random_sparse_vector(n, 0.001, seed=s)
                 for s in range(8)]
    ys = op.multiply_batch(frontiers)
    print(f"batched SpMSpV: 8 frontiers in one launch -> "
          f"{[y.nnz for y in ys]} result nonzeros")

    # -- what the simulated GPU actually did -----------------------------
    print()
    print(format_profile(device, title="simulated timeline "
                                       "(all four workloads)"))


if __name__ == "__main__":
    main()
