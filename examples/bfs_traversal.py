#!/usr/bin/env python3
"""TileBFS: bitmask-tiled breadth-first search with directional
optimization (paper §3.4).

Demonstrates, on a power-law web graph and a road network:

* the automatic nt selection (order > 10,000 → 64x64 tiles),
* the per-iteration kernel switching between Push-CSC, Push-CSR and
  Pull-CSC (the Figure-10 trace),
* the comparison against the Gunrock / GSwitch / Enterprise baselines.

Run:  python examples/bfs_traversal.py
"""

from collections import Counter

from repro import Device, RTX3090, TileBFS
from repro.baselines import EnterpriseBFS, GSwitchBFS, GunrockBFS
from repro.matrices import rmat, road_network


def traverse(name, A, source=0):
    print(f"=== {name}: n={A.shape[0]}, nnz={A.nnz} ===")
    device = Device(RTX3090)
    bfs = TileBFS(A, device=device)
    print(f"tile size chosen by the paper's rule: {bfs.nt}x{bfs.nt}")
    res = bfs.run(source)
    print(f"reached {res.n_reached}/{A.shape[0]} vertices, "
          f"depth {res.depth}, simulated {res.simulated_ms:.4f} ms "
          f"({res.gteps(A.nnz):.2f} GTEPS)")

    kernel_mix = Counter(it.kernel for it in res.iterations)
    print(f"kernel mix over {len(res.iterations)} iterations: "
          f"{dict(kernel_mix)}")
    print("first iterations (kernel, frontier size, simulated us):")
    for it in res.iterations[:6]:
        print(f"  depth {it.depth:>3}: {it.kernel:<9} "
              f"frontier={it.frontier_size:>6} "
              f"{1000 * it.simulated_ms:>8.2f} us")

    print("baselines on the same traversal:")
    for rival_name, cls in (("Gunrock", GunrockBFS),
                            ("GSwitch", GSwitchBFS),
                            ("Enterprise", EnterpriseBFS)):
        dev = Device(RTX3090)
        rres = cls(A, device=dev).run(source)
        assert (rres.levels == res.levels).all(), "baselines must agree"
        print(f"  {rival_name:<11} {rres.simulated_ms:>9.4f} ms  "
              f"(TileBFS speedup "
              f"{rres.simulated_ms / res.simulated_ms:>5.2f}x)")
    print()


def main() -> None:
    # a scale-free web graph ('in-2004' class): frontier explodes,
    # TileBFS switches Push-CSC -> Push-CSR (and sometimes Pull-CSC)
    traverse("R-MAT web graph", rmat(14, edge_factor=12, seed=1))

    # a road network ('roadNet-TX' class): tiny frontiers for hundreds
    # of iterations — the launch-overhead regime, where the paper
    # itself reports mixed results vs GSwitch
    traverse("road network", road_network(100, seed=2))


if __name__ == "__main__":
    main()
