#!/usr/bin/env python3
"""Generalized semirings over the tiled kernels (GraphBLAS style).

The paper frames TileBFS as SpMSpV over the (OR, AND) semiring (§3.4).
The library generalises this: any semiring whose additive identity is
multiplicatively absorbing runs through the same tiled kernels.  This
example uses

* (min, +)  — single-source shortest paths by repeated relaxation,
* (max, *)  — widest-path / reliability propagation,

and cross-checks both against scipy/dense references.

Run:  python examples/semiring_algebra.py
"""

import numpy as np

from repro import MIN_PLUS, MAX_TIMES, SparseVector, TileSpMSpV
from repro.formats import COOMatrix


def shortest_paths_demo() -> None:
    print("=== (min, +): SSSP by semiring relaxation ===")
    # a small weighted digraph; A[i, j] = weight of edge j -> i
    edges = [  # (src, dst, weight)
        (0, 1, 4.0), (0, 2, 1.0), (2, 1, 2.0), (1, 3, 1.0),
        (2, 3, 5.0), (3, 4, 3.0), (1, 4, 7.0),
    ]
    n = 5
    rows = np.array([d for _, d, _ in edges])
    cols = np.array([s for s, _, _ in edges])
    vals = np.array([w for _, _, w in edges])
    A = COOMatrix((n, n), rows, cols, vals)

    op = TileSpMSpV(A, nt=4, semiring=MIN_PLUS)
    dist = np.full(n, np.inf)
    dist[0] = 0.0
    frontier = SparseVector(n, np.array([0]), np.array([0.0]))
    # Bellman-Ford: n-1 rounds of y = A (min.+) x, keeping improvements
    for _ in range(n - 1):
        y = op.multiply(frontier)
        improved = y.indices[y.values < dist[y.indices] - 1e-12]
        if len(improved) == 0:
            break
        new_dist = y.to_dense()[improved]
        dist[improved] = new_dist
        frontier = SparseVector(n, improved, new_dist)

    expected = [0.0, 3.0, 1.0, 4.0, 7.0]
    print(f"distances from vertex 0: {dist.tolist()}")
    assert np.allclose(dist, expected), "SSSP mismatch"
    print(f"expected               : {expected}  ✓\n")


def reliability_demo() -> None:
    print("=== (max, *): most-reliable path propagation ===")
    # A[i, j] = success probability of link j -> i
    n = 4
    A = COOMatrix((n, n),
                  np.array([1, 2, 3, 3]),
                  np.array([0, 0, 1, 2]),
                  np.array([0.9, 0.5, 0.8, 0.95]))
    op = TileSpMSpV(A, nt=4, semiring=MAX_TIMES)
    x = SparseVector(n, np.array([0]), np.array([1.0]))
    hop1 = op.multiply(x)
    hop2 = op.multiply(hop1)
    print(f"reliability after 1 hop: {hop1.to_dense().tolist()}")
    print(f"reliability after 2 hops: {hop2.to_dense().tolist()}")
    # best two-hop route to vertex 3: max(0.9*0.8, 0.5*0.95) = 0.72
    assert np.isclose(hop2.to_dense()[3], 0.72)
    print("best 2-hop route to vertex 3 = 0.9 x 0.8 = 0.72  ✓")


def main() -> None:
    shortest_paths_demo()
    reliability_demo()


if __name__ == "__main__":
    main()
