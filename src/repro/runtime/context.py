"""The launch context: one API between operators and the device.

Before the runtime existed, every operator hand-rolled the same three
lines at each kernel boundary::

    if self.device is not None:
        ms = self.device.submit(name, counters).total_ms

:class:`ExecutionContext` centralises that: operators call
:meth:`ExecutionContext.launch` unconditionally; the None-device case
(functional execution with no accounting) is handled here, once, and a
:class:`~repro.runtime.tracing.Tracer` — when attached — observes every
priced launch with its operator tag and phase.

Operators accept either a raw :class:`~repro.gpusim.Device` (the
historical API, still supported everywhere) or an
:class:`ExecutionContext`; :meth:`ExecutionContext.wrap` normalises the
two.  Passing one shared context to several operators is how a traced
multi-operator workload is assembled — each operator scopes the context
with its own tag, while the device timeline and the tracer are shared.

Production mode
---------------
``ExecutionContext(device, mode="production")`` compiles gpusim
accounting out of the hot path: :meth:`launch` stops submitting to the
device (and the compiled fast path skips building counters at all) and
instead appends the launch — or a zero-argument *counter closure* via
:meth:`defer` — to a replay log shared by every scoped view.
:meth:`replay` prices that log into a modeled timeline on demand, so
the full trace stays available after the fact and matches a
counters-on run launch for launch.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

from ..gpusim import Device, KernelCounters, KernelTime
from .tracing import Tracer

__all__ = ["ExecutionContext"]

_MODES = ("modeled", "production")


class ExecutionContext:
    """Execution state shared by an operator's kernel launches.

    Parameters
    ----------
    device:
        The simulated GPU receiving priced launch records, or ``None``
        for functional-only execution (no accounting at all — the
        single place that check lives).
    tracer:
        Optional structured-trace collector; sees every priced launch.
    operator:
        Tag naming the operator this context is scoped to (e.g.
        ``"tilespmspv"``); recorded on trace events.
    mode:
        ``"modeled"`` (default) prices every launch inline;
        ``"production"`` records launches (or deferred counter
        closures) into a replay log instead — see :meth:`replay`.
    """

    def __init__(self, device: Optional[Device] = None,
                 tracer: Optional[Tracer] = None,
                 operator: Optional[str] = None,
                 mode: str = "modeled",
                 _replay_log: Optional[list] = None):
        if mode not in _MODES:
            raise ValueError(f"unknown execution mode {mode!r}; "
                             f"expected one of {_MODES}")
        self.device = device
        self.tracer = tracer
        self.operator = operator
        self.mode = mode
        # shared across every scoped view so one replay covers a whole
        # multi-operator workload in launch order
        self._replay_log: List[Tuple] = ([] if _replay_log is None
                                         else _replay_log)

    # ------------------------------------------------------------------
    @classmethod
    def wrap(cls, device: Union["ExecutionContext", Device, None],
             operator: Optional[str] = None) -> "ExecutionContext":
        """Normalise a ``device=`` argument into a context.

        A raw :class:`Device` (or ``None``) gets a fresh private
        context; an existing context is scoped to ``operator`` while
        sharing its device, tracer, mode, and replay log.
        """
        if isinstance(device, ExecutionContext):
            return device.scoped(operator)
        return cls(device, operator=operator)

    def scoped(self, operator: Optional[str]) -> "ExecutionContext":
        """A view of this context tagged with ``operator`` (device,
        tracer, mode, and replay log shared)."""
        return ExecutionContext(self.device, tracer=self.tracer,
                                operator=operator or self.operator,
                                mode=self.mode,
                                _replay_log=self._replay_log)

    # ------------------------------------------------------------------
    @property
    def production(self) -> bool:
        """True when accounting is deferred to :meth:`replay`."""
        return self.mode == "production"

    @property
    def active(self) -> bool:
        """True when launches are priced inline right now — the guard
        hot loops test *before* building counters, tags, or launch
        names (the cheap-when-off contract)."""
        return self.device is not None and self.mode == "modeled"

    @property
    def accounting(self) -> bool:
        """True when a launch leaves any record at all (inline pricing
        or the production replay log) — the guard for building launch
        *metadata* such as shard tags."""
        return self.active or self.mode == "production"

    # ------------------------------------------------------------------
    def launch(self, name: str, counters: KernelCounters,
               tag: Optional[str] = None,
               phase: Optional[str] = None) -> float:
        """Submit one kernel launch; returns its priced time in ms.

        With no device attached this is a no-op returning ``0.0`` — the
        functional result of the caller is identical either way.  In
        production mode the launch is appended to the replay log (the
        counters are kept as-is, not priced) and ``0.0`` is returned.
        The launch record appended to the device timeline is exactly
        what a direct ``device.submit(name, counters, tag)`` would
        append.
        """
        if self.mode == "production":
            self._replay_log.append((name, counters, tag, phase,
                                     self.operator))
            return 0.0
        if self.device is None:
            return 0.0
        t: KernelTime = self.device.submit(name, counters, tag)
        if self.tracer is not None:
            self.tracer.record(name=name, counters=counters, time=t,
                               operator=self.operator, phase=phase,
                               tag=tag)
        return t.total_ms

    def defer(self, name: str,
              counter_fn: Callable[[], KernelCounters],
              tag: Optional[str] = None,
              phase: Optional[str] = None) -> None:
        """Record a production-mode launch whose counters are computed
        lazily at :meth:`replay` time.

        The fast path uses this to compile accounting out entirely:
        ``counter_fn`` captures the (cheap, immutable) inputs the
        modeled counters are a pure function of, and nothing counter-
        related runs until someone asks for the timeline.  No-op
        outside production mode.
        """
        if self.mode == "production":
            self._replay_log.append((name, counter_fn, tag, phase,
                                     self.operator))

    # ------------------------------------------------------------------
    @property
    def deferred_launches(self) -> int:
        """Entries currently in the production replay log."""
        return len(self._replay_log)

    def replay(self, device: Optional[Device] = None,
               tracer: Optional[Tracer] = None) -> Device:
        """Price the production replay log into a modeled timeline.

        Walks the log in launch order, resolving deferred counter
        closures, and submits each launch to ``device`` (a fresh
        :class:`~repro.gpusim.Device` when omitted) exactly as a
        counters-on run would have; ``tracer`` observes every replayed
        launch with its original operator tag and phase.  The log is
        left intact so the timeline can be re-derived; call
        :meth:`clear_replay` to start a new measurement window.
        """
        if device is None:
            device = Device()
        for name, counters, tag, phase, operator in list(self._replay_log):
            c = counters() if callable(counters) else counters
            t = device.submit(name, c, tag)
            if tracer is not None:
                tracer.record(name=name, counters=c, time=t,
                              operator=operator, phase=phase, tag=tag)
        return device

    def clear_replay(self) -> None:
        """Drop the production replay log."""
        self._replay_log.clear()

    # ------------------------------------------------------------------
    @property
    def elapsed_ms(self) -> float:
        """Total simulated ms on the attached device (0.0 if none)."""
        return self.device.elapsed_ms if self.device is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ExecutionContext operator={self.operator!r} "
                f"device={self.device!r} "
                f"traced={self.tracer is not None}>")
