"""The launch context: one API between operators and the device.

Before the runtime existed, every operator hand-rolled the same three
lines at each kernel boundary::

    if self.device is not None:
        ms = self.device.submit(name, counters).total_ms

:class:`ExecutionContext` centralises that: operators call
:meth:`ExecutionContext.launch` unconditionally; the None-device case
(functional execution with no accounting) is handled here, once, and a
:class:`~repro.runtime.tracing.Tracer` — when attached — observes every
priced launch with its operator tag and phase.

Operators accept either a raw :class:`~repro.gpusim.Device` (the
historical API, still supported everywhere) or an
:class:`ExecutionContext`; :meth:`ExecutionContext.wrap` normalises the
two.  Passing one shared context to several operators is how a traced
multi-operator workload is assembled — each operator scopes the context
with its own tag, while the device timeline and the tracer are shared.
"""

from __future__ import annotations

from typing import Optional, Union

from ..gpusim import Device, KernelCounters, KernelTime
from .tracing import Tracer

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """Execution state shared by an operator's kernel launches.

    Parameters
    ----------
    device:
        The simulated GPU receiving priced launch records, or ``None``
        for functional-only execution (no accounting at all — the
        single place that check lives).
    tracer:
        Optional structured-trace collector; sees every priced launch.
    operator:
        Tag naming the operator this context is scoped to (e.g.
        ``"tilespmspv"``); recorded on trace events.
    """

    def __init__(self, device: Optional[Device] = None,
                 tracer: Optional[Tracer] = None,
                 operator: Optional[str] = None):
        self.device = device
        self.tracer = tracer
        self.operator = operator

    # ------------------------------------------------------------------
    @classmethod
    def wrap(cls, device: Union["ExecutionContext", Device, None],
             operator: Optional[str] = None) -> "ExecutionContext":
        """Normalise a ``device=`` argument into a context.

        A raw :class:`Device` (or ``None``) gets a fresh private
        context; an existing context is scoped to ``operator`` while
        sharing its device and tracer.
        """
        if isinstance(device, ExecutionContext):
            return device.scoped(operator)
        return cls(device, operator=operator)

    def scoped(self, operator: Optional[str]) -> "ExecutionContext":
        """A view of this context tagged with ``operator`` (device and
        tracer shared)."""
        return ExecutionContext(self.device, tracer=self.tracer,
                                operator=operator or self.operator)

    # ------------------------------------------------------------------
    def launch(self, name: str, counters: KernelCounters,
               tag: Optional[str] = None,
               phase: Optional[str] = None) -> float:
        """Submit one kernel launch; returns its priced time in ms.

        With no device attached this is a no-op returning ``0.0`` — the
        functional result of the caller is identical either way.  The
        launch record appended to the device timeline is exactly what a
        direct ``device.submit(name, counters, tag)`` would append.
        """
        if self.device is None:
            return 0.0
        t: KernelTime = self.device.submit(name, counters, tag)
        if self.tracer is not None:
            self.tracer.record(name=name, counters=counters, time=t,
                               operator=self.operator, phase=phase,
                               tag=tag)
        return t.total_ms

    # ------------------------------------------------------------------
    @property
    def elapsed_ms(self) -> float:
        """Total simulated ms on the attached device (0.0 if none)."""
        return self.device.elapsed_ms if self.device is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ExecutionContext operator={self.operator!r} "
                f"device={self.device!r} "
                f"traced={self.tracer is not None}>")
