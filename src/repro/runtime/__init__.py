"""Kernel-execution runtime: the single path every operator launches
through.

The paper's pipeline is *preprocess once, multiply many times* (the
Fig. 11 amortisation argument).  This package owns that lifecycle for
every operator in the repo — core algorithms and baselines alike:

* :class:`ExecutionContext` — wraps the simulated
  :class:`~repro.gpusim.Device`; every kernel launch goes through
  :meth:`ExecutionContext.launch`, so None-device accounting is skipped
  in exactly one place and structured tracing sees every launch.
* :class:`PlanCache` / :class:`OperatorPlan` — memoises the expensive
  preprocessing (tiling, COO extraction, bitmask compression) keyed by
  ``(matrix id, nt, extract_threshold, semiring, mode)``, so repeated
  operator construction over the same matrix reuses it.  Hit/miss
  stats are exposed for benchmarks.
* :class:`Tracer` — per-launch trace events (operator, phase,
  counters, priced time) exportable as JSONL or Chrome
  ``trace_event`` JSON (``python -m repro.bench trace``).
* the operator registry — maps names like ``"tilespmspv"`` or
  ``"enterprise"`` to factories, so the bench harness and the CLI
  dispatch by name instead of hard-coded imports.
* :class:`BatchQueue` — request coalescing in front of the batched
  multi-vector engine: enqueue ``(vector, semiring)`` requests against
  one matrix handle, dispatch compatible groups through a single
  coalesced launch under size/latency budgets.
"""

from .batch_queue import BatchQueue, BatchTicket
from .context import ExecutionContext
from .plan import (OperatorPlan, PlanCache, default_plan_cache,
                   matrix_token, plan_cache_stats, reset_plan_cache)
from .registry import (OperatorEntry, available_operators,
                      create_operator, operator_aliases, operator_kind,
                      register_operator, resolve_operator)
from .tracing import Tracer, TraceEvent

__all__ = [
    "BatchQueue", "BatchTicket",
    "ExecutionContext",
    "OperatorPlan", "PlanCache", "default_plan_cache", "matrix_token",
    "plan_cache_stats", "reset_plan_cache",
    "Tracer", "TraceEvent",
    "register_operator", "create_operator", "resolve_operator",
    "available_operators", "operator_aliases", "operator_kind",
    "OperatorEntry",
]
