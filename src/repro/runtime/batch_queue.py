"""Request coalescing: many callers, one batched launch.

A service multiplying one matrix against heavy query traffic should
not pay one kernel launch (and one pass over the stored tiles) per
request — the batched engine
(:class:`~repro.core.batched.BatchedSpMSpV`) amortises both across a
batch.  :class:`BatchQueue` is the scheduler in front of it: callers
enqueue ``(vector, semiring)`` requests against a matrix handle and
get a :class:`BatchTicket` back; the queue groups *compatible*
requests (same semiring — different algebras cannot share a launch)
and dispatches a group through the batched kernel when any of:

* the group reaches ``max_batch`` requests (size budget);
* the group's oldest request has waited ``max_delay_ms`` (latency
  budget, checked on every submit);
* the caller forces it — :meth:`BatchQueue.flush`, or
  :meth:`BatchTicket.result` on a pending ticket.

Every dispatch launches under a ``batch=<id> size=<B>`` tag, so traces
and the device timeline attribute each launch to its batch; results
are extracted per request, so callers never see their batchmates.

The coalescing policy is deliberately deterministic (no background
thread): time only enters through the injectable ``clock`` callable,
which tests replace with a fake to pin down the latency budget.  An
external scheduler (the asyncio service layer in
:mod:`repro.serving`) drives time-based dispatch through the same
clock via :meth:`BatchQueue.next_deadline_ms` /
:meth:`BatchQueue.dispatch_overdue` — no caller ever needs a bare
``time.monotonic()`` next to the queue, so fake-clock determinism
extends all the way up the stack.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..semiring import PLUS_TIMES, Semiring
from .context import ExecutionContext

__all__ = ["BatchQueue", "BatchTicket"]


class BatchTicket:
    """A pending (or completed) request enqueued on a
    :class:`BatchQueue`.

    Attributes
    ----------
    semiring:
        The request's algebra (its compatibility group).
    output:
        Requested result form (``"sparse"`` or ``"dense"``).
    done:
        Whether the request has been dispatched.
    batch_id / batch_size:
        Set at dispatch time: which batch served the request and how
        many requests shared its launch.
    """

    __slots__ = ("_queue", "_x", "semiring", "output", "done",
                 "batch_id", "batch_size", "_result")

    def __init__(self, queue: "BatchQueue", x, semiring: Semiring,
                 output: str):
        self._queue = queue
        self._x = x
        self.semiring = semiring
        self.output = output
        self.done = False
        self.batch_id: Optional[int] = None
        self.batch_size: Optional[int] = None
        self._result = None

    def result(self):
        """The request's result, dispatching its group if still
        pending (a blocking ``get``)."""
        if not self.done:
            self._queue.flush(self.semiring)
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (f"batch={self.batch_id} size={self.batch_size}"
                 if self.done else "pending")
        return f"<BatchTicket {self.semiring.name} {state}>"


class BatchQueue:
    """Request-coalescing scheduler over one matrix handle.

    Parameters
    ----------
    matrix:
        The shared sparse matrix (any form
        :class:`~repro.core.batched.BatchedSpMSpV` accepts).
    nt, extract_threshold:
        Forwarded to the engine; the underlying tiling is shared with
        any ``TileSpMSpV``/``BatchedSpMSpV`` over the same matrix via
        the plan cache.
    device:
        Optional simulated GPU or shared
        :class:`~repro.runtime.ExecutionContext`; all dispatched
        launches land on it.
    max_batch:
        Size budget: a compatibility group dispatches as soon as it
        holds this many requests (``1`` degenerates to the
        single-vector path, launch for launch).
    max_delay_ms:
        Latency budget: on every submit, any group whose oldest
        request is at least this old (per ``clock``) is dispatched.
        ``None`` (default) disables time-based dispatch — groups wait
        for the size budget or an explicit flush.
    clock:
        Monotonic time source in seconds (injectable for tests);
        defaults to :func:`time.monotonic`.
    plan_cache:
        Forwarded to the engine.
    shard_affinity:
        When the matrix is sharded and running multi-worker
        (``REPRO_WORKERS``/:class:`~repro.parallel.ParallelConfig`),
        seed the work scheduler's sticky shard→worker map from each
        worker's current resident set right before every dispatch, so
        a batch's shards route to the workers that already hold them
        resident.  On by default; harmless (a no-op) for unsharded
        matrices and single-worker runs.
    parallel:
        Optional :class:`~repro.parallel.ParallelConfig` forwarded to
        the engine (``None`` reads ``REPRO_WORKERS`` per dispatch).
    on_dispatch:
        Optional callback invoked after every dispatch with
        ``(tickets, batch_id, modeled_ms)`` — the just-served tickets
        (already ``done``), the batch id stamped on their launches,
        and the simulated device milliseconds the batch cost (0.0
        with no device attached or in production mode).  The serving
        layer uses this to resolve awaiting futures and to price
        completions on its virtual-time server model.
    tag_prefix:
        Prepended verbatim to every ``batch=<id> size=<B>`` launch
        tag.  A service hosting several queues on one tracer sets
        this (e.g. ``"mat=hot;"``) so batch ids stay unambiguous
        across queues.
    """

    def __init__(self, matrix, nt: int = 16, extract_threshold: int = 2,
                 device=None, max_batch: int = 32,
                 max_delay_ms: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 plan_cache=None, shard_affinity: bool = True,
                 parallel=None,
                 on_dispatch: Optional[Callable] = None,
                 tag_prefix: str = ""):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms is not None and max_delay_ms < 0:
            raise ValueError(
                f"max_delay_ms must be >= 0, got {max_delay_ms}")
        self._matrix = matrix
        self._nt = nt
        self._extract_threshold = extract_threshold
        self._plan_cache = plan_cache
        self.shard_affinity = bool(shard_affinity)
        self._parallel = parallel
        self._affinity_seeded = 0
        self.max_batch = int(max_batch)
        self.max_delay_ms = max_delay_ms
        self._clock = clock
        self._on_dispatch = on_dispatch
        self._tag_prefix = str(tag_prefix)
        self.ctx = ExecutionContext.wrap(device, operator="batch_queue")
        self._engines: Dict[Semiring, object] = {}
        self._pending: Dict[Semiring, List[BatchTicket]] = {}
        self._oldest: Dict[Semiring, float] = {}
        self._next_batch_id = 0
        self._requests = 0
        self._batches = 0
        self._dispatched = 0

    # ------------------------------------------------------------------
    def _engine(self, semiring: Semiring):
        engine = self._engines.get(semiring)
        if engine is None:
            from ..core.batched import BatchedSpMSpV
            engine = BatchedSpMSpV(
                self._matrix, nt=self._nt,
                extract_threshold=self._extract_threshold,
                semiring=semiring, device=self.ctx,
                plan_cache=self._plan_cache,
                parallel=self._parallel)
            self._engines[semiring] = engine
        return engine

    def warm(self, semiring: Semiring = PLUS_TIMES) -> None:
        """Build the engine (and therefore the cached preprocessing
        plan) for ``semiring`` now, ahead of the first dispatch — the
        hook the serving layer uses to pre-tile and pin hot matrices
        before traffic arrives."""
        self._engine(semiring)

    # ------------------------------------------------------------------
    def submit(self, x, semiring: Semiring = PLUS_TIMES,
               output: str = "sparse") -> BatchTicket:
        """Enqueue one multiply request; returns its ticket.

        The request may be dispatched before this returns (size or
        latency budget hit) — check ``ticket.done``.
        """
        if output not in ("sparse", "dense"):
            raise ValueError(f"unknown output mode {output!r}")
        ticket = BatchTicket(self, x, semiring, output)
        group = self._pending.setdefault(semiring, [])
        if not group:
            self._oldest[semiring] = self._clock()
        group.append(ticket)
        self._requests += 1
        if len(group) >= self.max_batch:
            self._dispatch(semiring)
        self._dispatch_overdue()
        return ticket

    def flush(self, semiring: Optional[Semiring] = None) -> int:
        """Dispatch pending requests now; returns how many were
        served.  With ``semiring`` only that compatibility group is
        flushed, otherwise all of them (in first-enqueued order)."""
        if semiring is not None:
            return self._dispatch(semiring)
        served = 0
        for s in sorted(self._pending, key=lambda s: self._oldest.get(
                s, float("inf"))):
            served += self._dispatch(s)
        return served

    @property
    def pending(self) -> int:
        """Requests enqueued but not yet dispatched."""
        return sum(len(g) for g in self._pending.values())

    def stats(self) -> Dict[str, float]:
        """Coalescing effectiveness counters."""
        return {
            "requests": self._requests,
            "batches": self._batches,
            "dispatched": self._dispatched,
            "pending": self.pending,
            "mean_batch_size": (self._dispatched / self._batches
                                if self._batches else 0.0),
            "affinity_seeded": self._affinity_seeded,
        }

    def next_deadline_ms(self) -> Optional[float]:
        """Milliseconds (per the injectable clock) until the earliest
        latency-budget deadline among pending groups — possibly
        negative when a group is already overdue; ``None`` when no
        deadline is armed (no ``max_delay_ms``, or nothing pending).

        This is the only deadline arithmetic an external dispatch loop
        needs, and it runs entirely on the injectable clock, so a
        fake-clock test of the async service layer stays deterministic.
        """
        if self.max_delay_ms is None:
            return None
        oldest = [self._oldest[s] for s in self._pending
                  if self._pending[s]]
        if not oldest:
            return None
        deadline = min(oldest) + self.max_delay_ms / 1e3
        return (deadline - self._clock()) * 1e3

    def dispatch_overdue(self) -> int:
        """Dispatch every group whose oldest request has exhausted the
        latency budget (per the injectable clock); returns how many
        requests were served.  Called implicitly on every submit and
        explicitly by external dispatch loops."""
        if self.max_delay_ms is None:
            return 0
        served = 0
        now = self._clock()
        for s in list(self._pending):
            # Same expression as next_deadline_ms() — a group whose
            # reported deadline is <= 0 ms is guaranteed to dispatch
            # here, so an external loop never spins on a deadline this
            # method disagrees with by one float rounding step.
            if (self._pending[s]
                    and now >= self._oldest[s]
                    + self.max_delay_ms / 1e3):
                served += self._dispatch(s)
        return served

    # ------------------------------------------------------------------
    def _dispatch_overdue(self) -> None:
        self.dispatch_overdue()

    def _dispatch(self, semiring: Semiring) -> int:
        group = self._pending.get(semiring) or []
        if not group:
            return 0
        self._pending[semiring] = []
        self._oldest.pop(semiring, None)
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        engine = self._engine(semiring)
        if self.shard_affinity:
            sharded = getattr(engine, "_sharded", None)
            if sharded is not None:
                self._affinity_seeded += \
                    sharded.seed_affinity_from_residency()
        elapsed_before = self.ctx.elapsed_ms
        Y = engine.multiply_batch([t._x for t in group], output="dense",
                                  tag=f"{self._tag_prefix}"
                                      f"batch={batch_id} "
                                      f"size={len(group)}")
        modeled_ms = self.ctx.elapsed_ms - elapsed_before
        for b, ticket in enumerate(group):
            if ticket.output == "dense":
                ticket._result = Y[b].copy()
            else:
                ticket._result = engine.sparsify(Y[b])
            ticket.done = True
            ticket.batch_id = batch_id
            ticket.batch_size = len(group)
            ticket._x = None          # release the enqueued vector
        self._batches += 1
        self._dispatched += len(group)
        if self._on_dispatch is not None:
            self._on_dispatch(group, batch_id, modeled_ms)
        return len(group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (f"<BatchQueue max_batch={self.max_batch} "
                f"pending={s['pending']} requests={s['requests']} "
                f"batches={s['batches']}>")
