"""The operator registry: dispatch by name, not by import.

The bench harness, the CLI, and the benchmark suite used to hard-code
one import + constructor per algorithm.  The registry replaces that
with a single lookup table: every operator — the paper's algorithms
and all eight baselines — registers a factory under a stable name, and
callers build instances with :func:`create_operator`.

Adding a new baseline is one registration::

    from repro.runtime import register_operator

    @register_operator("mybfs", kind="bfs",
                       summary="my shiny traversal")
    def _make_mybfs(matrix, device=None, **kwargs):
        from mypkg import MyBFS
        return MyBFS(matrix, device=device, **kwargs)

Factories import their implementation lazily so this module can be
imported from anywhere (including the packages that define the
operators) without cycles.

``kind`` groups operators by how they are driven: ``"spmspv"`` /
``"spmv"`` expose ``multiply(x)``, ``"spmm"`` exposes
``multiply_block(X)`` (and ``multiply(x)`` as the B = 1 case),
``"bfs"`` exposes ``run(source)``, ``"msbfs"`` exposes
``run(sources)``.

``capabilities`` describes the constructor/algebra surface the
differential verification harness (:mod:`repro.verify`) needs to drive
an operator generically:

* ``"semiring"`` — the factory accepts a ``semiring=`` kwarg (without
  it, the operator is verified under plus-times only);
* ``"nt"`` — the factory accepts a tile-size ``nt=`` kwarg;
* ``"rectangular"`` — non-square matrices are supported;
* ``"batch"`` — the operator exposes ``multiply_batch(xs)``;
* ``"dense-x"`` — ``multiply`` also accepts a dense ndarray input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ReproError

__all__ = ["register_operator", "create_operator", "resolve_operator",
           "available_operators", "operator_aliases", "operator_kind",
           "OperatorEntry"]

#: Operator groupings the drivers understand.
KINDS = ("spmspv", "spmv", "spmm", "bfs", "msbfs")


@dataclass(frozen=True)
class OperatorEntry:
    """One registered operator factory.

    ``name`` is always the canonical registration name, even when the
    entry was resolved through an alias; ``aliases`` lists the other
    names the entry answers to.
    """

    name: str
    kind: str
    summary: str
    factory: Callable
    aliases: Tuple[str, ...] = ()
    capabilities: frozenset = field(default_factory=frozenset)


#: Canonical name -> entry.
_REGISTRY: Dict[str, OperatorEntry] = {}
#: Alias -> canonical name (kept apart so enumeration never
#: double-counts an operator registered under several names).
_ALIASES: Dict[str, str] = {}


def register_operator(name: str, kind: str = "spmspv",
                      summary: str = "",
                      aliases: tuple = (),
                      capabilities=()) -> Callable:
    """Decorator registering ``factory(matrix, device=None, **kwargs)``
    under ``name`` (and ``aliases``)."""
    if kind not in KINDS:
        raise ReproError(f"unknown operator kind {kind!r}; "
                         f"expected one of {KINDS}")

    def _register(factory: Callable) -> Callable:
        for n in (name, *aliases):
            if n in _REGISTRY or n in _ALIASES:
                raise ReproError(
                    f"operator {n!r} is already registered")
        _REGISTRY[name] = OperatorEntry(
            name=name, kind=kind, summary=summary, factory=factory,
            aliases=tuple(aliases),
            capabilities=frozenset(capabilities))
        for alias in aliases:
            _ALIASES[alias] = name
        return factory

    return _register


def resolve_operator(name: str) -> OperatorEntry:
    """The registry entry for ``name`` (canonical or alias; raises with
    the known names).  The returned entry always carries the canonical
    ``name``."""
    entry = _REGISTRY.get(_ALIASES.get(name, name))
    if entry is None:
        raise ReproError(
            f"unknown operator {name!r}; "
            f"available: {sorted([*_REGISTRY, *_ALIASES])}")
    return entry


def create_operator(name: str, matrix, device=None, **kwargs):
    """Build a prepared operator by registry name.

    ``device`` accepts a :class:`~repro.gpusim.Device`, an
    :class:`~repro.runtime.ExecutionContext`, or ``None``, exactly like
    the operator constructors themselves.
    """
    return resolve_operator(name).factory(matrix, device=device, **kwargs)


def available_operators(kind: Optional[str] = None) -> List[str]:
    """Sorted *canonical* registered names, optionally filtered by
    ``kind``.  Aliases are never listed here (each operator appears
    exactly once); see :func:`operator_aliases` for the alias map."""
    return sorted(n for n, e in _REGISTRY.items()
                  if kind is None or e.kind == kind)


def operator_aliases() -> Dict[str, str]:
    """The alias map: alias name -> canonical operator name."""
    return dict(_ALIASES)


def operator_kind(name: str) -> str:
    """The ``kind`` of a registered operator."""
    return resolve_operator(name).kind


# ----------------------------------------------------------------------
# Built-in operators.  Implementations are imported lazily inside each
# factory: the registry stays import-cycle-free and costs nothing until
# an operator is actually built.
# ----------------------------------------------------------------------
@register_operator("tilespmspv", kind="spmspv",
                   summary="TileSpMSpV (paper §3.3) — the primary "
                           "contribution",
                   aliases=("spmspv",),
                   capabilities=("semiring", "nt", "rectangular",
                                 "dense-x"))
def _make_tilespmspv(matrix, device=None, **kwargs):
    from ..core.spmspv import TileSpMSpV
    return TileSpMSpV(matrix, device=device, **kwargs)


@register_operator("batched-spmspv", kind="spmspv",
                   summary="batched multi-vector SpMSpV — one matrix "
                           "against B sparse vectors per launch",
                   capabilities=("semiring", "nt", "rectangular",
                                 "batch", "dense-x"))
def _make_batched_spmspv(matrix, device=None, **kwargs):
    from ..core.batched import BatchedSpMSpV
    return BatchedSpMSpV(matrix, device=device, **kwargs)


@register_operator("sharded-spmspv", kind="spmspv",
                   summary="row-strip sharded out-of-core SpMSpV — "
                           "mmap-backed shards, schedule/skip, "
                           "scatter-gather combine",
                   capabilities=("semiring", "nt", "rectangular",
                                 "dense-x"))
def _make_sharded_spmspv(matrix, device=None, **kwargs):
    from ..shards.engine import ShardedSpMSpV
    return ShardedSpMSpV(matrix, device=device, **kwargs)


@register_operator("tilebfs", kind="bfs",
                   summary="TileBFS (paper §3.4) — directional "
                           "optimization over bitmask tiles",
                   aliases=("bfs",),
                   capabilities=("nt",))
def _make_tilebfs(matrix, device=None, **kwargs):
    from ..core.tilebfs import TileBFS
    return TileBFS(matrix, device=device, **kwargs)


@register_operator("msbfs", kind="msbfs",
                   summary="bit-parallel multi-source BFS extension",
                   capabilities=("nt",))
def _make_msbfs(matrix, device=None, **kwargs):
    from ..core.msbfs import MultiSourceBFS
    return MultiSourceBFS(matrix, device=device, **kwargs)


@register_operator("tilespmv", kind="spmv",
                   summary="TileSpMV baseline (IPDPS '21) — dense "
                           "input vector",
                   capabilities=("semiring", "nt", "rectangular",
                                 "dense-x"))
def _make_tilespmv(matrix, device=None, **kwargs):
    from ..baselines.tilespmv import TileSpMV
    return TileSpMV(matrix, device=device, **kwargs)


@register_operator("cusparse-bsr", kind="spmv",
                   summary="cuSPARSE bsrmv stand-in — dense blocks",
                   capabilities=("rectangular", "dense-x"))
def _make_cusparse_bsr(matrix, device=None, **kwargs):
    from ..baselines.cusparse_bsr import CuSparseBSRMV
    return CuSparseBSRMV(matrix, device=device, **kwargs)


@register_operator("combblas", kind="spmspv",
                   summary="CombBLAS SpMSpV-bucket (IPDPS '17)",
                   capabilities=("semiring", "rectangular"))
def _make_combblas(matrix, device=None, **kwargs):
    from ..baselines.combblas import CombBLASSpMSpV
    return CombBLASSpMSpV(matrix, device=device, **kwargs)


@register_operator("spmspv-via-spgemm", kind="spmspv",
                   summary="SpMSpV through a general SpGEMM — the §1 "
                           "strawman",
                   capabilities=("rectangular",))
def _make_spmspv_via_spgemm(matrix, device=None, **kwargs):
    from ..baselines.spmspv_via_spgemm import SpMSpVViaSpGEMM
    return SpMSpVViaSpGEMM(matrix, device=device, **kwargs)


@register_operator("gunrock", kind="bfs",
                   summary="Gunrock-style advance/filter BFS "
                           "(PPoPP '16)")
def _make_gunrock(matrix, device=None, **kwargs):
    from ..baselines.gunrock import GunrockBFS
    return GunrockBFS(matrix, device=device, **kwargs)


@register_operator("gswitch", kind="bfs",
                   summary="GSwitch-style adaptive BFS (PPoPP '19)")
def _make_gswitch(matrix, device=None, **kwargs):
    from ..baselines.gswitch import GSwitchBFS
    return GSwitchBFS(matrix, device=device, **kwargs)


@register_operator("tilespmm", kind="spmm",
                   summary="tiled SpMM — sparse matrix × tall dense "
                           "block, row-per-warp / merge-path kernels",
                   aliases=("spmm",),
                   capabilities=("semiring", "nt", "rectangular",
                                 "dense-x"))
def _make_tilespmm(matrix, device=None, **kwargs):
    from ..core.spmm import TileSpMM
    return TileSpMM(matrix, device=device, **kwargs)


@register_operator("enterprise", kind="bfs",
                   summary="Enterprise-style classified-frontier BFS "
                           "(SC '15)")
def _make_enterprise(matrix, device=None, **kwargs):
    from ..baselines.enterprise import EnterpriseBFS
    return EnterpriseBFS(matrix, device=device, **kwargs)
