"""Structured launch tracing: JSONL and Chrome ``trace_event`` export.

A :class:`Tracer` attached to an :class:`~repro.runtime.ExecutionContext`
records one :class:`TraceEvent` per priced kernel launch — operator
tag, phase, the raw :class:`~repro.gpusim.KernelCounters`, and the
priced :class:`~repro.gpusim.KernelTime` — on a simulated clock that
advances by each launch's duration (the device timeline is serial, so
cumulative time *is* the event's start time).

Two export formats:

* :meth:`Tracer.to_jsonl` — one JSON object per line, for ad-hoc
  analysis (``jq``, pandas);
* :meth:`Tracer.to_chrome` — the Chrome ``trace_event`` JSON object
  format, loadable in ``chrome://tracing`` / Perfetto, with one track
  per operator tag.

``python -m repro.bench trace`` wires a traced workload end to end.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from ..gpusim.cost import KernelTime
from ..gpusim.counters import KernelCounters

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One priced kernel launch as seen by the tracer.

    Attributes
    ----------
    seq:
        0-based launch index in trace order.
    name:
        Kernel name (matches the device timeline's
        :class:`~repro.gpusim.LaunchRecord`).
    operator:
        Tag of the operator that launched it (``None`` when the
        context was unscoped).
    phase:
        Optional sub-operator phase (e.g. ``"iteration"``,
        ``"preprocess"``).
    tag:
        The free-form tag forwarded to the device, if any.
    start_ms / dur_ms:
        Simulated start time and duration on the serial device
        timeline.
    time:
        Full priced-time breakdown.
    counters:
        The hardware counters of the launch.
    """

    seq: int
    name: str
    operator: Optional[str]
    phase: Optional[str]
    tag: Optional[str]
    start_ms: float
    dur_ms: float
    time: KernelTime
    counters: KernelCounters


class Tracer:
    """Collects :class:`TraceEvent` records on a simulated clock."""

    def __init__(self):
        self.events: List[TraceEvent] = []
        self._clock_ms = 0.0

    # ------------------------------------------------------------------
    def record(self, name: str, counters: KernelCounters,
               time: KernelTime, operator: Optional[str] = None,
               phase: Optional[str] = None,
               tag: Optional[str] = None) -> TraceEvent:
        """Append one launch; the clock advances by its duration."""
        ev = TraceEvent(seq=len(self.events), name=name,
                        operator=operator, phase=phase, tag=tag,
                        start_ms=self._clock_ms, dur_ms=time.total_ms,
                        time=time, counters=counters)
        self.events.append(ev)
        self._clock_ms += time.total_ms
        return ev

    def clear(self) -> None:
        self.events.clear()
        self._clock_ms = 0.0

    def filtered(self, predicate) -> "Tracer":
        """A new tracer holding only the events ``predicate`` keeps.

        Events retain their original ``seq`` and ``start_ms`` so a
        filtered export still cross-references the full timeline; the
        clock keeps the original total.
        """
        out = Tracer()
        out.events = [ev for ev in self.events if predicate(ev)]
        out._clock_ms = self._clock_ms
        return out

    def filtered_by_shard(self, shard_id: int) -> "Tracer":
        """Only the launches tagged ``shard=<shard_id>``.

        Sharded operators tag every per-shard launch ``shard=<id>``
        (possibly ``;``-joined with a caller tag); this slices one
        shard's traffic out of the timeline.
        """
        want = f"shard={int(shard_id)}"

        def _match(ev: TraceEvent) -> bool:
            return ev.tag is not None and want in ev.tag.split(";")

        return self.filtered(_match)

    def filtered_by_device(self, device_id: int) -> "Tracer":
        """Only the launches tagged ``device=<device_id>``.

        Parallel shard execution tags every worker launch
        ``shard=<S>;device=<D>;worker=<W>``; this slices one simulated
        device's lane out of the timeline (the same partition
        :meth:`~repro.gpusim.MultiDeviceTimeline.from_device` uses).
        """
        want = f"device={int(device_id)}"

        def _match(ev: TraceEvent) -> bool:
            return ev.tag is not None and want in ev.tag.split(";")

        return self.filtered(_match)

    # ------------------------------------------------------------------
    @property
    def total_ms(self) -> float:
        """Simulated ms covered by the recorded events."""
        return self._clock_ms

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def to_dicts(self) -> List[dict]:
        """Plain-dict form of every event (JSONL row shape)."""
        out = []
        for ev in self.events:
            out.append({
                "seq": ev.seq,
                "name": ev.name,
                "operator": ev.operator,
                "phase": ev.phase,
                "tag": ev.tag,
                "start_ms": ev.start_ms,
                "dur_ms": ev.dur_ms,
                "bound": ev.time.bound,
                "time": asdict(ev.time),
                "counters": asdict(ev.counters),
            })
        return out

    def to_jsonl(self) -> str:
        """One JSON object per line (trailing newline included when
        there are events)."""
        rows = self.to_dicts()
        return "".join(json.dumps(row) + "\n" for row in rows)

    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` JSON object format.

        One complete (``"ph": "X"``) event per launch, timestamps in
        microseconds, one thread track per operator tag (named via
        ``thread_name`` metadata events).
        """
        tids: Dict[str, int] = {}
        trace_events: List[dict] = []
        for ev in self.events:
            track = ev.operator or "(unscoped)"
            if track not in tids:
                tids[track] = len(tids)
                trace_events.append({
                    "ph": "M", "pid": 0, "tid": tids[track],
                    "name": "thread_name", "args": {"name": track},
                })
            trace_events.append({
                "ph": "X",
                "pid": 0,
                "tid": tids[track],
                "name": ev.name,
                "cat": ev.phase or "kernel",
                "ts": ev.start_ms * 1000.0,     # microseconds
                "dur": ev.dur_ms * 1000.0,
                "args": {
                    "seq": ev.seq,
                    "bound": ev.time.bound,
                    "efficiency": ev.time.efficiency,
                    "flops": ev.counters.flops,
                    "atomic_ops": ev.counters.atomic_ops,
                    "coalesced_read_bytes":
                        ev.counters.coalesced_read_bytes,
                    "coalesced_write_bytes":
                        ev.counters.coalesced_write_bytes,
                    "tag": ev.tag,
                },
            })
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    # ------------------------------------------------------------------
    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def write_chrome(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh, indent=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Tracer {len(self.events)} events, {self._clock_ms:.3f} ms>"
