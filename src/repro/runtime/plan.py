"""The operator-plan cache: preprocess once, construct many times.

The paper's Fig. 11 argues that the tiled-format conversion pays for
itself because it is done once per matrix and amortised over many
multiplies / traversals.  Benchmarks and services that rebuild an
operator per measurement were silently redoing that preprocessing;
:class:`PlanCache` closes the gap: operator constructors key their
expensive analysis — tiling, very-sparse-tile COO extraction, bitmask
compression — by ``(kind, matrix identity, nt, extract_threshold,
semiring, mode)`` and reuse the stored :class:`OperatorPlan` when the
same matrix comes around again.

Matrix identity is ``id()``-based (:func:`matrix_token`): the cache
pins a strong reference to the keyed object for as long as the entry
lives, so a recycled ``id()`` can never alias a live entry.  Entries
are evicted LRU beyond ``maxsize``.

The module-level :func:`default_plan_cache` instance is what operators
use unless handed an explicit cache; :func:`plan_cache_stats` /
:func:`reset_plan_cache` expose it to benchmarks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

__all__ = ["OperatorPlan", "PlanCache", "matrix_token",
           "default_plan_cache", "plan_cache_stats", "reset_plan_cache"]


def matrix_token(matrix: Any) -> Tuple:
    """A hashable identity token for a matrix-like object.

    ``id()`` plus cheap shape/nnz attributes: the id ties the token to
    the exact object (the cache pins the object so the id cannot be
    recycled while the entry lives); shape and nnz are a second check
    that costs nothing and catches accidental misuse.
    """
    shape = getattr(matrix, "shape", None)
    shape = tuple(shape) if shape is not None else None
    return (id(matrix), shape, getattr(matrix, "nnz", None))


@dataclass
class OperatorPlan:
    """The reusable preprocessing of one operator over one matrix.

    ``data`` holds whatever the operator's constructor considers its
    immutable analysis product (for :class:`~repro.core.TileSpMSpV`:
    the hybrid tiling and the indexed side matrix; for
    :class:`~repro.core.TileBFS`: the A1/A2 bitmask forms and the side
    edge list).  ``lazy`` is a mutable side table for derived
    structures built on demand (e.g. the transposed tiling), shared by
    every operator reusing the plan — building it once benefits all.
    """

    kind: str
    key: Tuple
    data: Dict[str, Any] = field(default_factory=dict)
    lazy: Dict[str, Any] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def lazy_get(self, name: str, builder: Callable[[], Any]) -> Any:
        """Build-once accessor for derived structures.

        Thread-safe: plans are shared by every operator the cache hands
        them to, so two threads racing on the same slot must not build
        (and pay for) the derived structure twice.
        """
        if name not in self.lazy:
            with self._lock:
                if name not in self.lazy:
                    self.lazy[name] = builder()
        return self.lazy[name]

    def warm(self, **builders: Callable[[], Any]) -> "OperatorPlan":
        """Eagerly build lazy slots at plan-construction time.

        Moves per-multiply setup cost (e.g. the active-set column
        gather index) into the one-off preprocessing the plan cache
        amortises; returns ``self`` for chaining.
        """
        for name, builder in builders.items():
            self.lazy_get(name, builder)
        return self

    #: Workspaces kept per scratch pool; beyond this, released objects
    #: are dropped rather than hoarded.
    SCRATCH_POOL_CAP = 8

    def acquire_scratch(self, name: str, builder: Callable[[], Any]) -> Any:
        """Check a reusable workspace out of the plan's scratch pool.

        Runs that allocate per-launch buffers (the BFS layer loop's
        frontier / result / visited :class:`~repro.tiles.bitmask.BitVector`
        triple) draw them here instead, so repeated traversals over one
        plan reuse the same arrays.  The caller owns the object until it
        hands it back through :meth:`release_scratch` (typically in a
        ``finally``) and is responsible for clearing it — the pool
        returns workspaces dirty.
        """
        with self._lock:
            pool = self.lazy.setdefault("_scratch", {}).get(name)
            if pool:
                return pool.pop()
        return builder()

    def release_scratch(self, name: str, obj: Any) -> None:
        """Return a workspace to the pool for the next acquirer."""
        with self._lock:
            pool = self.lazy.setdefault("_scratch", {}).setdefault(name, [])
            if len(pool) < self.SCRATCH_POOL_CAP:
                pool.append(obj)


class PlanCache:
    """LRU cache of :class:`OperatorPlan` with hit/miss stats.

    Thread-safe for the cheap map operations (plan *construction* runs
    outside the lock; two racing builders may both build, last one
    wins — acceptable for a cache of deterministic products).
    """

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        # key -> [plan, pin object, pinned flag]
        self._entries: "OrderedDict[Hashable, list]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.removals = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[OperatorPlan]:
        """The cached plan for ``key``, or ``None`` (counts a hit or a
        miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: Hashable, plan: OperatorPlan,
            pin: Any = None, pinned: bool = False) -> OperatorPlan:
        """Store ``plan`` under ``key``; ``pin`` keeps the keyed matrix
        alive for the lifetime of the entry; ``pinned`` additionally
        exempts the entry from LRU eviction (see :meth:`pin`)."""
        with self._lock:
            self._entries[key] = [plan, pin, bool(pinned)]
            self._entries.move_to_end(key)
            self._evict_locked()
        return plan

    def _evict_locked(self) -> None:
        """Evict unpinned entries LRU-first until within ``maxsize``.

        Pinned entries (a shard plan whose kernel is mid-flight) are
        skipped; when everything over budget is pinned, the cache runs
        over ``maxsize`` rather than drop a plan in use.
        """
        if len(self._entries) <= self.maxsize:
            return
        for key in [k for k, e in self._entries.items() if not e[2]]:
            if len(self._entries) <= self.maxsize:
                return
            del self._entries[key]
            self.evictions += 1

    def pin(self, key: Hashable) -> bool:
        """Exempt ``key`` from eviction until :meth:`unpin`; ``False``
        if the key is absent."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry[2] = True
            return True

    def unpin(self, key: Hashable) -> bool:
        """Make ``key`` evictable again (evicting immediately if the
        cache is over budget); ``False`` if the key is absent."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            entry[2] = False
            self._evict_locked()
            return True

    def is_pinned(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return bool(entry and entry[2])

    def remove(self, key: Hashable) -> bool:
        """Drop ``key`` explicitly (plan invalidation — e.g. the
        resident-set manager evicted the shard the plan indexes).
        Counted under ``removals``, not ``evictions``; ``False`` if the
        key was absent."""
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self.removals += 1
            return True

    def get_or_build(self, key: Hashable,
                     builder: Callable[[], OperatorPlan],
                     pin: Any = None,
                     pinned: bool = False) -> OperatorPlan:
        """The cached plan, or ``builder()`` stored under ``key``."""
        plan = self.get(key)
        if plan is not None:
            return plan
        return self.put(key, builder(), pin=pin, pinned=pinned)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "removals": self.removals,
                    "pinned": sum(1 for e in self._entries.values()
                                  if e[2]),
                    "size": len(self._entries),
                    "maxsize": self.maxsize}

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry and zero the stats."""
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0
            self.removals = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (f"<PlanCache {s['size']}/{s['maxsize']} entries, "
                f"{s['hits']} hits / {s['misses']} misses>")


#: The process-wide cache operators use by default.
_DEFAULT = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide plan cache."""
    return _DEFAULT


def plan_cache_stats() -> Dict[str, int]:
    """Hit/miss stats of the process-wide cache (for benchmarks)."""
    return _DEFAULT.stats()


def reset_plan_cache() -> None:
    """Clear the process-wide cache (tests, fresh measurements)."""
    _DEFAULT.clear()
