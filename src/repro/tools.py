"""Command-line utilities: ``python -m repro.tools <command>``.

Commands
--------

``info <matrix.mtx> [--nt 16]``
    Print shape, nnz, density, and the tile-occupancy statistics the
    paper's Table 2 reports (non-empty tiles at 16/32/64 by default).

``bfs <matrix.mtx> <source> [--gpu rtx3090]``
    Run TileBFS from a source vertex and print levels summary, the
    kernel mix, and simulated GPU time.

``spmspv <matrix.mtx> <sparsity> [--nt 16] [--gpu rtx3090]``
    One TileSpMSpV multiply against a random (seed-1) sparse vector;
    prints result nnz and the simulated time of each launch.

``generate <kind> <out.mtx> [--n 4096] [--seed 0]``
    Write a synthetic matrix (kinds: fem, banded, mesh2d, rmat, road,
    er) as a Matrix Market file.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from .core import TileBFS, TileSpMSpV
from .formats import read_matrix_market, write_matrix_market
from .gpusim import Device, get_spec
from .matrices import (banded, erdos_renyi, fem_like, mesh2d, rmat,
                       road_network)
from .tiles import tile_stats_sweep
from .vectors import random_sparse_vector

__all__ = ["main"]

_GENERATORS = {
    "fem": lambda n, seed: fem_like(n, seed=seed),
    "banded": lambda n, seed: banded(n, seed=seed),
    "mesh2d": lambda n, seed: mesh2d(max(2, int(n ** 0.5)), seed=seed),
    "rmat": lambda n, seed: rmat(max(2, (n - 1).bit_length()), seed=seed),
    "road": lambda n, seed: road_network(max(2, int(n ** 0.5)),
                                         seed=seed),
    "er": lambda n, seed: erdos_renyi(n, seed=seed),
}


def _cmd_info(args) -> int:
    m = read_matrix_market(args.matrix)
    print(f"{args.matrix}: {m.shape[0]} x {m.shape[1]}, nnz={m.nnz}, "
          f"density={m.density:.2e}")
    for nt, st in tile_stats_sweep(m).items():
        print(f"  nt={nt:>2}: {st.n_nonempty_tiles:>10} non-empty tiles "
              f"({100 * st.nonempty_tile_fraction:.3f}% of grid, "
              f"avg {st.avg_nnz_per_tile:.1f} nnz/tile, "
              f"in-tile density {st.in_tile_density:.3f})")
    return 0


def _cmd_bfs(args) -> int:
    m = read_matrix_market(args.matrix)
    dev = Device(get_spec(args.gpu))
    bfs = TileBFS(m, device=dev)
    res = bfs.run(args.source)
    print(f"TileBFS from {args.source} on {dev.spec.name} "
          f"(nt={bfs.nt}):")
    print(f"  reached {res.n_reached}/{m.shape[0]} vertices, "
          f"depth {res.depth}")
    print(f"  simulated {res.simulated_ms:.4f} ms "
          f"({res.gteps(m.nnz):.3f} GTEPS)")
    mix = Counter(it.kernel for it in res.iterations)
    print(f"  kernel mix: {dict(mix)}")
    return 0


def _cmd_spmspv(args) -> int:
    m = read_matrix_market(args.matrix)
    dev = Device(get_spec(args.gpu))
    op = TileSpMSpV(m, nt=args.nt, device=dev)
    x = random_sparse_vector(m.shape[1], args.sparsity)
    y = op.multiply(x)
    print(f"TileSpMSpV on {dev.spec.name} (nt={args.nt}): "
          f"x nnz={x.nnz} -> y nnz={y.nnz}")
    for rec in dev.timeline:
        print(f"  {rec.name:<24} {1000 * rec.ms:>10.2f} us  "
              f"[{rec.time.bound}-bound]")
    print(f"  total {1000 * dev.elapsed_ms:.2f} us")
    return 0


def _cmd_generate(args) -> int:
    if args.kind not in _GENERATORS:
        print(f"unknown kind {args.kind!r}; known: "
              f"{sorted(_GENERATORS)}", file=sys.stderr)
        return 2
    m = _GENERATORS[args.kind](args.n, args.seed)
    write_matrix_market(m, args.out)
    print(f"wrote {args.out}: {m.shape[0]} x {m.shape[1]}, nnz={m.nnz}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.tools",
        description="TileSpMSpV reproduction utilities")
    sub = p.add_subparsers(dest="command", required=True)

    q = sub.add_parser("info", help="matrix + tile statistics")
    q.add_argument("matrix")
    q.set_defaults(func=_cmd_info)

    q = sub.add_parser("bfs", help="run TileBFS")
    q.add_argument("matrix")
    q.add_argument("source", type=int)
    q.add_argument("--gpu", default="rtx3090")
    q.set_defaults(func=_cmd_bfs)

    q = sub.add_parser("spmspv", help="run one TileSpMSpV multiply")
    q.add_argument("matrix")
    q.add_argument("sparsity", type=float)
    q.add_argument("--nt", type=int, default=16)
    q.add_argument("--gpu", default="rtx3090")
    q.set_defaults(func=_cmd_spmspv)

    q = sub.add_parser("generate", help="write a synthetic matrix")
    q.add_argument("kind")
    q.add_argument("out")
    q.add_argument("--n", type=int, default=4096)
    q.add_argument("--seed", type=int, default=0)
    q.set_defaults(func=_cmd_generate)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
