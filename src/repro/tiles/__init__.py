"""Tiled sparse storage structures — the paper's §3.2.

* :class:`TiledMatrix` — sparse nt x nt tiles, CSR-of-tiles (§3.2.1);
* :class:`TiledVector` — the ``x_ptr`` / ``x_tile`` vector (§3.2.2);
* :class:`BitTiledMatrix`, :class:`BitVector` — bitmask compression for
  BFS (§3.2.3);
* :func:`split_very_sparse_tiles` — COO extraction of very sparse tiles;
* :func:`tile_stats` — the occupancy statistics of Table 2.
"""

from .bitmask import (BitTiledMatrix, BitVector, bit_positions, pack_bits,
                      pattern_is_symmetric, unpack_words)
from .extraction import (HybridTiledMatrix, split_very_sparse_tiles,
                         suggest_extract_threshold)
from .io import (load_tiled, load_tiled_mmap, read_mmap_manifest,
                 save_tiled, save_tiled_mmap)
from .stats import (TileStats, count_nonempty_tiles, tile_nnz_histogram,
                    tile_stats, tile_stats_sweep)
from .tiled_matrix import ColumnGather, TiledMatrix
from .tiled_vector import SUPPORTED_TILE_SIZES, TiledVector

__all__ = [
    "TiledMatrix", "ColumnGather", "TiledVector", "SUPPORTED_TILE_SIZES",
    "BitTiledMatrix", "BitVector", "bit_positions", "pack_bits",
    "unpack_words", "pattern_is_symmetric",
    "HybridTiledMatrix", "split_very_sparse_tiles",
    "suggest_extract_threshold",
    "save_tiled", "load_tiled", "save_tiled_mmap", "load_tiled_mmap",
    "read_mmap_manifest",
    "TileStats", "count_nonempty_tiles", "tile_nnz_histogram",
    "tile_stats", "tile_stats_sweep",
]
