"""Very-sparse-tile extraction (paper §3.2.1 last paragraph, §3.3/§3.4).

Tiles that contain only "a couple of nonzeros" are not worth the
per-tile bookkeeping of the tiled format: the paper extracts their
entries into a separate COO matrix and processes that side matrix with
a simple per-entry kernel ("the operation is like multiplying two
matrices with the same input vector, and merge the results into one
output vector").  §4.2 reports a 1.6x gain on 'cryg10000' from this
split — the ablation benchmark ``bench_coo_extraction`` reproduces that
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ceil_div, group_starts
from ..errors import TileError
from ..formats.coo import COOMatrix
from .tiled_matrix import TiledMatrix

__all__ = ["HybridTiledMatrix", "IndexedSideMatrix",
           "split_very_sparse_tiles", "suggest_extract_threshold"]


@dataclass
class IndexedSideMatrix:
    """The extracted COO entries, sorted by column tile and indexed.

    A raw COO kernel would have to scan *every* extracted entry per
    multiply; sorting the triplets by column tile once and keeping a
    per-column-tile pointer array makes the side kernel vector-driven —
    only entries whose column tile carries input are touched, matching
    the tiled kernel's skipping behaviour.

    Attributes
    ----------
    shape:
        Shape of the original matrix.
    nt:
        Tile size the column grouping uses.
    coltile_ptr:
        ``int64[n_tile_cols + 1]`` — entry ranges per column tile.
    row, col, val:
        The triplets, grouped by column tile.
    """

    shape: tuple
    nt: int
    coltile_ptr: np.ndarray
    row: np.ndarray
    col: np.ndarray
    val: np.ndarray

    @classmethod
    def from_coo(cls, side: COOMatrix, nt: int) -> "IndexedSideMatrix":
        tcol = side.col // nt
        order = np.argsort(tcol, kind="stable")
        n_tile_cols = ceil_div(side.shape[1], nt)
        counts = np.bincount(tcol, minlength=n_tile_cols)
        ptr = np.zeros(n_tile_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        return cls(shape=side.shape, nt=nt, coltile_ptr=ptr,
                   row=side.row[order], col=side.col[order],
                   val=side.val[order])

    @property
    def nnz(self) -> int:
        return len(self.val)

    def nonempty_coltiles(self) -> np.ndarray:
        """Boolean mask of column tiles holding at least one triplet
        (cached — the side kernel tests it on every multiply)."""
        cached = getattr(self, "_nonempty_coltiles", None)
        if cached is None:
            cached = np.diff(self.coltile_ptr) > 0
            self._nonempty_coltiles = cached
        return cached

    def n_index_tiles(self) -> int:
        """Number of non-empty column tiles (cached)."""
        cached = getattr(self, "_n_index_tiles", None)
        if cached is None:
            cached = int(self.nonempty_coltiles().sum())
            self._n_index_tiles = cached
        return cached

#: Default extraction threshold: tiles with <= this many nonzeros move
#: to the COO side matrix.
DEFAULT_THRESHOLD = 2


@dataclass
class HybridTiledMatrix:
    """A :class:`TiledMatrix` plus the COO side matrix of extracted
    very-sparse tiles.  ``A == tiled + side`` always holds
    (:meth:`to_coo` reassembles it; tests verify the identity).

    Attributes
    ----------
    tiled:
        The dense-enough tiles in tiled storage.
    side:
        Entries of the extracted tiles, in COO.
    threshold:
        The nnz-per-tile cutoff used for the split.
    """

    tiled: TiledMatrix
    side: COOMatrix
    threshold: int

    @property
    def shape(self):
        return self.tiled.shape

    @property
    def nt(self) -> int:
        return self.tiled.nt

    @property
    def nnz(self) -> int:
        return self.tiled.nnz + self.side.nnz

    @property
    def extracted_fraction(self) -> float:
        """Fraction of nonzeros living in the COO side matrix."""
        return self.side.nnz / self.nnz if self.nnz else 0.0

    def to_coo(self) -> COOMatrix:
        """Reassemble the original matrix."""
        t = self.tiled.to_coo()
        rows = np.concatenate([t.row, self.side.row])
        cols = np.concatenate([t.col, self.side.col])
        vals = np.concatenate([t.val, self.side.val])
        return COOMatrix(self.shape, rows, cols, vals).canonicalize()

    def nbytes(self) -> int:
        """Total storage footprint (tiled structure + COO triplets)."""
        side_bytes = (self.side.row.nbytes + self.side.col.nbytes
                      + self.side.val.nbytes)
        return self.tiled.nbytes() + side_bytes


def split_very_sparse_tiles(coo: COOMatrix, nt: int,
                            threshold: int = DEFAULT_THRESHOLD
                            ) -> HybridTiledMatrix:
    """Split a matrix into (tiled part, COO side matrix).

    Parameters
    ----------
    coo:
        Input matrix.
    nt:
        Tile size for the tiled part.
    threshold:
        Tiles with ``nnz <= threshold`` are extracted.  ``threshold=0``
        extracts nothing (pure tiled storage).

    Returns
    -------
    HybridTiledMatrix
    """
    if threshold < 0:
        raise TileError(f"extraction threshold must be >= 0, got {threshold}")
    coo = coo.sum_duplicates()
    if coo.nnz == 0 or threshold == 0:
        return HybridTiledMatrix(
            tiled=TiledMatrix.from_coo(coo, nt),
            side=COOMatrix.empty(coo.shape, dtype=coo.val.dtype),
            threshold=threshold,
        )

    nc = ceil_div(coo.shape[1], nt)
    tile_key = (coo.row // nt) * nc + coo.col // nt
    order = np.argsort(tile_key, kind="stable")
    key_sorted = tile_key[order]
    starts = group_starts(key_sorted)
    counts = np.diff(np.concatenate([starts, [len(key_sorted)]]))
    sparse_tile = counts <= threshold
    entry_is_sparse = np.repeat(sparse_tile, counts)

    idx_sparse = order[entry_is_sparse]
    idx_dense = order[~entry_is_sparse]
    side = COOMatrix(coo.shape, coo.row[idx_sparse], coo.col[idx_sparse],
                     coo.val[idx_sparse]).canonicalize()
    dense = COOMatrix(coo.shape, coo.row[idx_dense], coo.col[idx_dense],
                      coo.val[idx_dense])
    return HybridTiledMatrix(
        tiled=TiledMatrix.from_coo(dense, nt),
        side=side,
        threshold=threshold,
    )


def suggest_extract_threshold(coo: COOMatrix, nt: int,
                              max_threshold: int = 8,
                              expected_x_tile_fraction: float = 0.1
                              ) -> int:
    """Pick an extraction threshold by pricing the per-multiply cost.

    The trade the §3.2.1 extraction makes: every tile left in the
    tiled structure costs a fixed metadata read per multiply (the
    row-tile kernel scans all stored tiles), while every extracted
    nonzero costs a scattered read + atomic *when its column tile is
    active*.  This helper evaluates that balance from the tile-size
    histogram — no trial multiplies — and returns the threshold in
    ``[0, max_threshold]`` with the lowest estimated traffic.

    Parameters
    ----------
    coo:
        The matrix to be tiled.
    nt:
        Tile size.
    max_threshold:
        Largest nnz-per-tile cutoff considered.
    expected_x_tile_fraction:
        Assumed fraction of vector tiles that are active per multiply
        (scales the side matrix's data-dependent cost).

    Returns
    -------
    The recommended ``extract_threshold``.
    """
    from .stats import tile_nnz_histogram

    if max_threshold < 0:
        raise TileError(f"max_threshold must be >= 0, got {max_threshold}")
    hist = tile_nnz_histogram(coo, nt)
    if not hist:
        return 0
    # cost units: bytes of estimated traffic per multiply
    META_BYTES = 16.0          # per stored tile, always read
    SIDE_BYTES = 24.0 + 32.0   # triplet stream + scattered x/y sector

    best_t, best_cost = 0, float("inf")
    for t in range(0, max_threshold + 1):
        tiles_kept = sum(c for s, c in hist.items() if s > t)
        nnz_extracted = sum(s * c for s, c in hist.items() if s <= t)
        cost = (tiles_kept * META_BYTES
                + nnz_extracted * SIDE_BYTES * expected_x_tile_fraction)
        if cost < best_cost - 1e-9:
            best_t, best_cost = t, cost
    return best_t
