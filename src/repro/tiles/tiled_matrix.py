"""Tiled sparse matrix storage (paper §3.2.1, Figure 4).

The matrix is cut into ``nt``-by-``nt`` sparse tiles; non-empty tiles
are treated as the nonzero elements of a coarse matrix stored in CSR
("CSR-of-tiles"), and inside each tile only the actual nonzeros are
kept, sorted row-major (the per-tile CSR of paper Alg. 4).  Local
coordinates fit in a byte (``nt <= 64``); for ``nt == 16`` they pack
into a *single* byte — high nibble row, low nibble column — the storage
trick of §3.2.1, exposed via :meth:`TiledMatrix.packed_index`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .._util import ceil_div, gather_ranges
from ..errors import TileError
from ..formats.coo import COOMatrix
from ..formats.csr import compress_indptr, expand_indptr
from .tiled_vector import SUPPORTED_TILE_SIZES

__all__ = ["TiledMatrix", "ColumnGather"]


@dataclass(frozen=True)
class ColumnGather:
    """The tiled structure regrouped by *tile column* — the plan-time
    index behind the active-set execution engine.

    The row-tile kernel's input activity is per tile column (a vector
    tile is a tile column of ``x``), but the CSR-of-tiles layout groups
    storage by tile *row*; without a column index every multiply has to
    mask all ``nnz`` entries to find the active ones.  Grouping the
    stored tiles (and, transitively, their entries) by tile column once
    at plan time turns that O(nnz) mask into an O(active) gather — the
    same trick :class:`~repro.tiles.extraction.IndexedSideMatrix` plays
    for the extracted COO side.

    Attributes
    ----------
    coltile_tile_ptr:
        ``int64[n_tile_cols + 1]`` — ranges into :attr:`coltile_tiles`
        per tile column.
    coltile_tiles:
        ``int64[n_nonempty_tiles]`` — stored-tile indices grouped by
        tile column, ascending within each column.
    coltile_entry_ptr:
        ``int64[n_tile_cols + 1]`` — entry ranges per tile column (into
        :attr:`coltile_entry_perm`).
    coltile_entry_perm:
        ``int64[nnz]`` — entry indices grouped by tile column,
        preserving the stored (row-major per tile) order inside each
        column.
    """

    coltile_tile_ptr: np.ndarray
    coltile_tiles: np.ndarray
    coltile_entry_ptr: np.ndarray
    coltile_entry_perm: np.ndarray

    @classmethod
    def build(cls, A: "TiledMatrix") -> "ColumnGather":
        nc = A.n_tile_cols
        order = np.argsort(A.tile_colidx, kind="stable").astype(np.int64)
        tile_counts = np.bincount(A.tile_colidx, minlength=nc)
        tile_ptr = np.zeros(nc + 1, dtype=np.int64)
        np.cumsum(tile_counts, out=tile_ptr[1:])
        tile_nnz = np.diff(A.tile_nnz_ptr)
        entry_counts = np.zeros(nc, dtype=np.int64)
        np.add.at(entry_counts, A.tile_colidx, tile_nnz)
        entry_ptr = np.zeros(nc + 1, dtype=np.int64)
        np.cumsum(entry_counts, out=entry_ptr[1:])
        entry_perm = gather_ranges(A.tile_nnz_ptr, order)
        return cls(tile_ptr, order, entry_ptr, entry_perm)

    def active_tiles(self, active_cols: np.ndarray) -> np.ndarray:
        """Stored-tile indices living in the given tile columns, sorted
        ascending (the order the CSR-of-tiles stream visits them)."""
        tiles = self.coltile_tiles[
            gather_ranges(self.coltile_tile_ptr, active_cols)]
        tiles.sort()
        return tiles


class TiledMatrix:
    """Sparse matrix of sparse ``nt``-by-``nt`` tiles, CSR-of-tiles layout.

    Attributes
    ----------
    shape:
        Logical ``(m, n)`` of the matrix (not padded).
    nt:
        Tile edge length, from :data:`SUPPORTED_TILE_SIZES`.
    tile_ptr:
        ``int64[n_tile_rows + 1]`` — CSR pointers over tile rows.
    tile_colidx:
        ``int64[n_nonempty_tiles]`` — tile-column index of each stored
        tile, sorted within each tile row.
    tile_nnz_ptr:
        ``int64[n_nonempty_tiles + 1]`` — offsets of each tile's
        nonzeros in the entry arrays.
    local_row, local_col:
        ``uint8[nnz]`` — within-tile coordinates, row-major sorted per
        tile.
    values:
        ``float64[nnz]`` — the nonzero values.
    """

    def __init__(self, shape: Tuple[int, int], nt: int,
                 tile_ptr: np.ndarray, tile_colidx: np.ndarray,
                 tile_nnz_ptr: np.ndarray, local_row: np.ndarray,
                 local_col: np.ndarray, values: np.ndarray,
                 validate: bool = True):
        if nt not in SUPPORTED_TILE_SIZES:
            raise TileError(
                f"unsupported tile size {nt}; allowed: {SUPPORTED_TILE_SIZES}"
            )
        self.shape = (int(shape[0]), int(shape[1]))
        self.nt = int(nt)
        self.tile_ptr = np.ascontiguousarray(tile_ptr, dtype=np.int64)
        self.tile_colidx = np.ascontiguousarray(tile_colidx, dtype=np.int64)
        self.tile_nnz_ptr = np.ascontiguousarray(tile_nnz_ptr, dtype=np.int64)
        self.local_row = np.ascontiguousarray(local_row, dtype=np.uint8)
        self.local_col = np.ascontiguousarray(local_col, dtype=np.uint8)
        self.values = np.ascontiguousarray(values)
        # ``validate=False`` is for trusted producers over lazy storage
        # (the mmap loader in ``tiles.io``): a full validate pages every
        # array in, defeating the point of memory-mapping the payload.
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every structural invariant of the tiled layout."""
        mt, nc = self.n_tile_rows, self.n_tile_cols
        if len(self.tile_ptr) != mt + 1:
            raise TileError(
                f"tile_ptr length {len(self.tile_ptr)} != n_tile_rows+1"
            )
        if self.tile_ptr[0] != 0 or np.any(np.diff(self.tile_ptr) < 0):
            raise TileError("tile_ptr must start at 0 and be non-decreasing")
        if self.tile_ptr[-1] != len(self.tile_colidx):
            raise TileError("tile_ptr[-1] != number of stored tiles")
        if len(self.tile_colidx) and (
                self.tile_colidx.min() < 0 or self.tile_colidx.max() >= nc):
            raise TileError("tile column index out of range")
        if len(self.tile_nnz_ptr) != len(self.tile_colidx) + 1:
            raise TileError("tile_nnz_ptr length != n_tiles + 1")
        if (self.tile_nnz_ptr[0] != 0
                or np.any(np.diff(self.tile_nnz_ptr) < 0)
                or self.tile_nnz_ptr[-1] != len(self.values)):
            raise TileError("tile_nnz_ptr inconsistent with entry arrays")
        if np.any(np.diff(self.tile_nnz_ptr) == 0):
            raise TileError("stored tiles must be non-empty")
        if not (len(self.local_row) == len(self.local_col)
                == len(self.values)):
            raise TileError("entry arrays have inconsistent lengths")
        if len(self.local_row) and (int(self.local_row.max()) >= self.nt or
                                    int(self.local_col.max()) >= self.nt):
            raise TileError(f"local index out of tile range (nt={self.nt})")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, nt: int) -> "TiledMatrix":
        """Tile a COO matrix (duplicates summed).

        Entries are bucketed by ``(tile_row, tile_col)`` and sorted
        row-major inside each tile, all with vectorized sorts — the
        format-conversion step whose cost Figure 11 measures.
        """
        if nt not in SUPPORTED_TILE_SIZES:
            raise TileError(
                f"unsupported tile size {nt}; allowed: {SUPPORTED_TILE_SIZES}"
            )
        coo = coo.sum_duplicates()
        m, n = coo.shape
        trow = coo.row // nt
        tcol = coo.col // nt
        lrow = (coo.row % nt).astype(np.uint8)
        lcol = (coo.col % nt).astype(np.uint8)
        order = np.lexsort((lcol, lrow, tcol, trow))
        trow, tcol = trow[order], tcol[order]
        lrow, lcol = lrow[order], lcol[order]
        vals = coo.val[order]

        nc = ceil_div(n, nt)
        tile_key = trow * nc + tcol
        from .._util import group_starts

        starts = group_starts(tile_key)
        n_tiles = len(starts)
        tile_nnz_ptr = np.concatenate(
            [starts, [len(tile_key)]]).astype(np.int64)
        tile_trow = trow[starts] if n_tiles else np.zeros(0, dtype=np.int64)
        tile_colidx = tcol[starts] if n_tiles else np.zeros(0, dtype=np.int64)
        tile_ptr = compress_indptr(tile_trow, ceil_div(m, nt))
        return cls((m, n), nt, tile_ptr, tile_colidx, tile_nnz_ptr,
                   lrow, lcol, vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray, nt: int) -> "TiledMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), nt)

    # ------------------------------------------------------------------
    # Geometry / accessors
    # ------------------------------------------------------------------
    @property
    def n_tile_rows(self) -> int:
        """Number of tile rows (``ceil(m / nt)``)."""
        return ceil_div(self.shape[0], self.nt)

    @property
    def n_tile_cols(self) -> int:
        """Number of tile columns (``ceil(n / nt)``)."""
        return ceil_div(self.shape[1], self.nt)

    @property
    def n_nonempty_tiles(self) -> int:
        """Number of stored tiles."""
        return len(self.tile_colidx)

    def nbytes(self) -> int:
        """Bytes of the stored format arrays (the quantity the sharded
        resident-set budget is expressed in)."""
        return int(self.tile_ptr.nbytes + self.tile_colidx.nbytes
                   + self.tile_nnz_ptr.nbytes + self.local_row.nbytes
                   + self.local_col.nbytes + self.values.nbytes)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return len(self.values)

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    def tile_rowidx(self) -> np.ndarray:
        """Tile-row index of each stored tile (expansion of tile_ptr).

        Cached: the kernels need it on every multiply and it only
        depends on immutable structure.
        """
        cached = getattr(self, "_tile_rowidx", None)
        if cached is None:
            cached = expand_indptr(self.tile_ptr)
            self._tile_rowidx = cached
        return cached

    def tile_nnz(self) -> np.ndarray:
        """Nonzero count of each stored tile (cached)."""
        cached = getattr(self, "_tile_nnz", None)
        if cached is None:
            cached = np.diff(self.tile_nnz_ptr)
            self._tile_nnz = cached
        return cached

    def tile_of_entry(self) -> np.ndarray:
        """Stored-tile index of each nonzero entry (cached)."""
        cached = getattr(self, "_tile_of_entry", None)
        if cached is None:
            cached = expand_indptr(self.tile_nnz_ptr)
            self._tile_of_entry = cached
        return cached

    def local_row64(self) -> np.ndarray:
        """:attr:`local_row` widened to int64 (cached).

        The kernels need the widened copy on every multiply for index
        arithmetic; casting per launch was a full O(nnz) pass."""
        cached = getattr(self, "_local_row64", None)
        if cached is None:
            cached = self.local_row.astype(np.int64)
            self._local_row64 = cached
        return cached

    def local_col64(self) -> np.ndarray:
        """:attr:`local_col` widened to int64 (cached)."""
        cached = getattr(self, "_local_col64", None)
        if cached is None:
            cached = self.local_col.astype(np.int64)
            self._local_col64 = cached
        return cached

    def entry_rows(self) -> np.ndarray:
        """Global row index of each entry (cached):
        ``tile_rowidx[tile_of_entry] * nt + local_row``."""
        cached = getattr(self, "_entry_rows", None)
        if cached is None:
            cached = (self.tile_rowidx()[self.tile_of_entry()] * self.nt
                      + self.local_row64())
            self._entry_rows = cached
        return cached

    def entry_cols(self) -> np.ndarray:
        """Global column index of each entry (cached):
        ``tile_colidx[tile_of_entry] * nt + local_col``."""
        cached = getattr(self, "_entry_cols", None)
        if cached is None:
            cached = (self.tile_colidx[self.tile_of_entry()] * self.nt
                      + self.local_col64())
            self._entry_cols = cached
        return cached

    def n_occupied_tile_rows(self) -> int:
        """Number of tile rows holding at least one stored tile
        (cached) — the warp count of the row-tile kernel."""
        cached = getattr(self, "_n_occupied_tile_rows", None)
        if cached is None:
            cached = int((np.diff(self.tile_ptr) > 0).sum())
            self._n_occupied_tile_rows = cached
        return cached

    def column_gather(self) -> ColumnGather:
        """The tile-column grouping of the stored structure (cached).

        Built once per matrix (plan time for operators sharing an
        :class:`~repro.runtime.OperatorPlan`); every multiply then
        gathers only the entries of active tile columns instead of
        masking all ``nnz``.
        """
        cached = getattr(self, "_column_gather", None)
        if cached is None:
            cached = ColumnGather.build(self)
            self._column_gather = cached
        return cached

    def tile_slice(self, t: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(local_row, local_col, values)`` views of stored tile ``t``."""
        lo, hi = self.tile_nnz_ptr[t], self.tile_nnz_ptr[t + 1]
        return (self.local_row[lo:hi], self.local_col[lo:hi],
                self.values[lo:hi])

    def packed_index(self) -> np.ndarray:
        """Nibble-packed per-entry index (§3.2.1): high 4 bits local row,
        low 4 bits local column.  Only defined for ``nt == 16``."""
        if self.nt != 16:
            raise TileError(
                f"packed single-byte indices require nt=16, have nt={self.nt}"
            )
        return ((self.local_row << 4) | self.local_col).astype(np.uint8)

    def index_bytes_per_entry(self) -> int:
        """Bytes of local-index storage per nonzero (1 for nt=16 thanks
        to nibble packing, else 2)."""
        return 1 if self.nt == 16 else 2

    def nbytes(self) -> int:
        """Storage footprint of the tiled structure in bytes."""
        entry_idx = self.nnz * self.index_bytes_per_entry()
        return int(self.tile_ptr.nbytes + self.tile_colidx.nbytes
                   + self.tile_nnz_ptr.nbytes + entry_idx
                   + self.values.nbytes)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        """Expand back to a COO matrix with global coordinates."""
        tile = self.tile_of_entry()
        trow = self.tile_rowidx()[tile]
        tcol = self.tile_colidx[tile]
        rows = trow * self.nt + self.local_row.astype(np.int64)
        cols = tcol * self.nt + self.local_col.astype(np.int64)
        return COOMatrix(self.shape, rows, cols, self.values.copy())

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<TiledMatrix {self.shape[0]}x{self.shape[1]} nt={self.nt} "
                f"tiles={self.n_nonempty_tiles} nnz={self.nnz}>")
