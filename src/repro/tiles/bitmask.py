"""Bitmask-compressed tiles and vectors for TileBFS (paper §3.2.3, Fig. 5).

BFS only needs the *pattern* of the adjacency matrix, so each non-empty
``nt``-by-``nt`` tile compresses to ``nt`` machine words of ``nt`` bits:

* column-compressed (**A1**, the CSC form): word ``w[c]`` holds the rows
  present in local column ``c`` — the storage of Push-CSC and Pull-CSC;
* row-compressed (**A2**, the CSR form): word ``w[r]`` holds the columns
  present in local row ``r`` — the storage of Push-CSR.

Frontier and visited-mask vectors compress the same way: one ``nt``-bit
word per vector tile (:class:`BitVector`).

Bit convention (matches the paper's Figure 5, where vector ``{1,0,0,0}``
prints as ``8`` for ``nt=4``): local index ``i`` maps to bit
``nt - 1 - i``, i.e. index 0 is the most-significant used bit.  Words
are stored in ``uint64`` regardless of ``nt``; unused high bits are
always zero (enforced by :meth:`BitVector.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .._util import ceil_div, group_starts
from ..errors import ShapeError, TileError
from ..formats.coo import COOMatrix
from ..formats.csr import compress_indptr, expand_indptr
from .tiled_vector import SUPPORTED_TILE_SIZES

__all__ = ["BitVector", "BitTiledMatrix",
           "bit_positions", "pack_bits", "unpack_words",
           "bit_weight_vector", "pack_hit_words", "segmented_scatter_or",
           "pattern_is_symmetric"]

_U64 = np.uint64

#: Per-``nt`` MSB-first weight vectors, built once per process (the
#: Push-CSR seed rebuilt this on every launch).
_BIT_WEIGHTS: Dict[int, np.ndarray] = {}


def bit_weight_vector(nt: int) -> np.ndarray:
    """The ``nt`` single-bit words of local indices ``0..nt-1``
    (MSB-first), cached per tile size.

    ``word = (hits * bit_weight_vector(nt)).sum()`` packs a boolean row
    into the bitmask convention of this module.
    """
    w = _BIT_WEIGHTS.get(nt)
    if w is None:
        w = _U64(1) << (_U64(nt - 1) - np.arange(nt, dtype=_U64))
        w.setflags(write=False)
        _BIT_WEIGHTS[nt] = w
    return w


def pack_hit_words(hits: np.ndarray, nt: int) -> np.ndarray:
    """Pack boolean rows ``(k, nt)`` into ``uint64`` bitmask words
    (column ``i`` becomes local index ``i``, MSB-first — the inverse of
    :func:`unpack_words`).

    Equivalent to ``(hits.astype(uint64) * bit_weight_vector(nt))
    .sum(axis=1)`` but routed through ``np.packbits``, which touches one
    byte per 8 lanes instead of an 8-byte product per lane.
    """
    k = len(hits)
    if k == 0:
        return np.zeros(0, dtype=_U64)
    if nt == 64:
        padded = np.ascontiguousarray(hits, dtype=bool)
    else:
        padded = np.zeros((k, 64), dtype=bool)
        padded[:, 64 - nt:] = hits
    packed = np.packbits(padded, axis=1)          # (k, 8) bytes, MSB-first
    return packed.view(">u8").ravel().astype(_U64)


def segmented_scatter_or(out: np.ndarray, idx: np.ndarray,
                         words: np.ndarray) -> None:
    """``out[idx] |= words`` with duplicate indices.

    When ``idx`` is already non-decreasing — gathers that walk tiles in
    storage order arrive sorted — equal destinations form runs, and one
    ``np.bitwise_or.reduceat`` over the run starts plus a duplicate-free
    scatter replaces the per-element merge, about 2.5x faster than
    ``np.bitwise_or.at`` on the same input.  Unsorted destinations fall
    back to ``np.bitwise_or.at`` directly: sorting them first costs more
    than NumPy's indexed-loop scatter resolves (a stable 32-bit argsort
    is timsort, ~10x the scatter itself on random keys).  OR is
    commutative and idempotent, so both routes are identical bit for
    bit.
    """
    if len(idx) == 0:
        return
    if len(idx) > 128 and np.all(idx[1:] >= idx[:-1]):
        starts = group_starts(idx)
        out[idx[starts]] |= np.bitwise_or.reduceat(words, starts)
    else:
        np.bitwise_or.at(out, idx, words)


def bit_positions(local: np.ndarray, nt: int) -> np.ndarray:
    """Map local indices to their single-bit words (MSB-first)."""
    return (_U64(1) << (_U64(nt - 1) - local.astype(_U64)))


def pack_bits(local: np.ndarray, nt: int) -> np.uint64:
    """OR together the bits of several local indices into one word."""
    if len(local) == 0:
        return _U64(0)
    return np.bitwise_or.reduce(bit_positions(local, nt))


def unpack_words(words: np.ndarray, nt: int) -> np.ndarray:
    """Expand ``uint64`` words into a ``(len(words), nt)`` 0/1 byte array
    whose column ``i`` is local index ``i`` (undoing the MSB-first
    packing)."""
    be = np.ascontiguousarray(words, dtype=_U64).byteswap().view(np.uint8)
    bits = np.unpackbits(be.reshape(len(words), 8), axis=1)
    return bits[:, 64 - nt:]


class BitVector:
    """A tiled bitmask vector: one ``nt``-bit word per vector tile.

    Used for the BFS frontier ``x``, the visited mask ``m``, and the
    kernel outputs ``y`` (paper Fig. 5).  All per-word operations are
    plain NumPy bitwise ops over the :attr:`words` array.
    """

    def __init__(self, n: int, nt: int, words: np.ndarray):
        if nt not in SUPPORTED_TILE_SIZES:
            raise TileError(
                f"unsupported tile size {nt}; allowed: {SUPPORTED_TILE_SIZES}"
            )
        if n < 0:
            raise ShapeError(f"negative vector length {n}")
        self.n = int(n)
        self.nt = int(nt)
        self.words = np.ascontiguousarray(words, dtype=_U64)
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        n_tiles = ceil_div(self.n, self.nt)
        if len(self.words) != n_tiles:
            raise TileError(
                f"words length {len(self.words)} != n_tiles {n_tiles}"
            )
        if int(self.n) % self.nt and n_tiles:
            tail_used = self.n % self.nt
            tail_mask = self._high_mask(tail_used)
            if self.words[-1] & ~tail_mask:
                raise TileError("bits set beyond vector length in tail tile")
        if self.nt < 64 and len(self.words):
            full = self._high_mask(self.nt)
            if np.any(self.words & ~full):
                raise TileError(f"bits set above the {self.nt} used bits")

    def _high_mask(self, k: int) -> np.uint64:
        """Word with the top ``k`` *used* bits set (used bits are the low
        ``nt`` bits of the uint64; within them, MSB-first)."""
        if k <= 0:
            return _U64(0)
        ones = _U64(0xFFFFFFFFFFFFFFFF) >> _U64(64 - k)
        return ones << _U64(self.nt - k)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n: int, nt: int) -> "BitVector":
        return cls(n, nt, np.zeros(ceil_div(n, nt), dtype=_U64))

    @classmethod
    def from_indices(cls, indices: np.ndarray, n: int, nt: int) -> "BitVector":
        """Set the bits of the given global indices."""
        v = cls.zeros(n, nt)
        v.set_indices(indices)
        return v

    @classmethod
    def full(cls, n: int, nt: int) -> "BitVector":
        """All ``n`` bits set (tail bits beyond ``n`` stay clear)."""
        v = cls.zeros(n, nt)
        if len(v.words):
            v.words[:] = v._high_mask(nt)
            tail_used = n % nt
            if tail_used:
                v.words[-1] = v._high_mask(tail_used)
        return v

    # ------------------------------------------------------------------
    # Mutators / queries
    # ------------------------------------------------------------------
    def set_indices(self, indices: np.ndarray) -> None:
        """OR the bits of the given global indices into the vector.

        The merge runs through :func:`segmented_scatter_or`, which takes
        the ``reduceat`` fast path when the indices arrive sorted (as
        BFS frontier batches do); the result is identical either way.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) == 0:
            return
        if indices.min() < 0 or indices.max() >= self.n:
            raise ShapeError(f"bit index out of range for length {self.n}")
        word_idx = indices // self.nt
        bits = bit_positions(indices % self.nt, self.nt)
        segmented_scatter_or(self.words, word_idx, bits)

    def clear(self) -> None:
        """Zero every bit in place (workspace reuse between BFS layers)."""
        self.words[:] = _U64(0)

    def count(self) -> int:
        """Population count (number of set bits)."""
        return int(np.bitwise_count(self.words).sum())

    def any(self) -> bool:
        return bool(np.any(self.words))

    def to_indices(self) -> np.ndarray:
        """Sorted global indices of the set bits."""
        nz_tiles = np.flatnonzero(self.words)
        if len(nz_tiles) == 0:
            return np.zeros(0, dtype=np.int64)
        bits = unpack_words(self.words[nz_tiles], self.nt)
        t, local = np.nonzero(bits)
        return nz_tiles[t] * self.nt + local

    def get(self, i: int) -> bool:
        """Test global bit ``i``."""
        if not (0 <= i < self.n):
            raise ShapeError(f"index {i} out of range for length {self.n}")
        w = self.words[i // self.nt]
        return bool(w & bit_positions(np.array([i % self.nt]), self.nt)[0])

    def nonzero_tile_ids(self) -> np.ndarray:
        """Tiles with at least one set bit."""
        return np.flatnonzero(self.words)

    @property
    def density(self) -> float:
        """Set-bit fraction — the paper's frontier-sparsity parameter."""
        return self.count() / self.n if self.n else 0.0

    # ------------------------------------------------------------------
    # Word-wise algebra (returns new vectors)
    # ------------------------------------------------------------------
    def copy(self) -> "BitVector":
        return BitVector(self.n, self.nt, self.words.copy())

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self.n, self.nt, self.words | other.words)

    def __ior__(self, other: "BitVector") -> "BitVector":
        """In-place OR — the allocation-free ``m |= y`` of the BFS loop."""
        self._check_compatible(other)
        self.words |= other.words
        return self

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self.n, self.nt, self.words & other.words)

    def andnot(self, other: "BitVector") -> "BitVector":
        """``self & ~other`` — the "new vertices only" filter of BFS."""
        self._check_compatible(other)
        return BitVector(self.n, self.nt, self.words & ~other.words)

    def invert(self) -> "BitVector":
        """Complement within the ``n`` valid bits (tail stays clear)."""
        out = BitVector.full(self.n, self.nt)
        out.words &= ~self.words
        return out

    def _check_compatible(self, other: "BitVector") -> None:
        if self.n != other.n or self.nt != other.nt:
            raise ShapeError(
                f"BitVector mismatch: ({self.n},{self.nt}) vs "
                f"({other.n},{other.nt})"
            )

    def nbytes(self) -> int:
        """Footprint of the word array, at the native word width the
        paper would use (uint32 for nt<=32, uint64 for nt=64)."""
        word_bytes = 4 if self.nt <= 32 else 8
        return len(self.words) * word_bytes

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BitVector n={self.n} nt={self.nt} popcount={self.count()}>"


class BitTiledMatrix:
    """Bitmask-compressed tiled adjacency matrix (A1/A2 of Fig. 5).

    Parameters
    ----------
    orientation:
        ``"csc"`` — tiles indexed by tile *column* (CSC-of-tiles), each
        stored tile holding one word per local column whose bits are the
        local rows (the A1 form, used by Push-CSC / Pull-CSC);
        ``"csr"`` — tiles indexed by tile *row*, one word per local row,
        bits are local columns (the A2 form, used by Push-CSR).
    """

    def __init__(self, shape: Tuple[int, int], nt: int, orientation: str,
                 tile_ptr: np.ndarray, tile_otheridx: np.ndarray,
                 words: np.ndarray):
        if nt not in SUPPORTED_TILE_SIZES:
            raise TileError(
                f"unsupported tile size {nt}; allowed: {SUPPORTED_TILE_SIZES}"
            )
        if orientation not in ("csc", "csr"):
            raise TileError(f"orientation must be 'csc' or 'csr', "
                            f"got {orientation!r}")
        self.shape = (int(shape[0]), int(shape[1]))
        self.nt = int(nt)
        self.orientation = orientation
        self.tile_ptr = np.ascontiguousarray(tile_ptr, dtype=np.int64)
        self.tile_otheridx = np.ascontiguousarray(tile_otheridx,
                                                  dtype=np.int64)
        self.words = np.ascontiguousarray(words, dtype=_U64)
        self.validate()

    # ------------------------------------------------------------------
    @property
    def n_tile_rows(self) -> int:
        return ceil_div(self.shape[0], self.nt)

    @property
    def n_tile_cols(self) -> int:
        return ceil_div(self.shape[1], self.nt)

    @property
    def n_nonempty_tiles(self) -> int:
        return len(self.tile_otheridx)

    @property
    def n_major(self) -> int:
        """Length of the tile_ptr axis (tile cols for csc, rows for csr)."""
        return self.n_tile_cols if self.orientation == "csc" else \
            self.n_tile_rows

    @property
    def n_minor(self) -> int:
        return self.n_tile_rows if self.orientation == "csc" else \
            self.n_tile_cols

    def validate(self) -> None:
        if len(self.tile_ptr) != self.n_major + 1:
            raise TileError("tile_ptr length != n_major + 1")
        if self.tile_ptr[0] != 0 or np.any(np.diff(self.tile_ptr) < 0):
            raise TileError("tile_ptr must start at 0 and be non-decreasing")
        if self.tile_ptr[-1] != len(self.tile_otheridx):
            raise TileError("tile_ptr[-1] != number of stored tiles")
        if len(self.tile_otheridx) and (
                self.tile_otheridx.min() < 0
                or self.tile_otheridx.max() >= self.n_minor):
            raise TileError("tile minor index out of range")
        if self.words.shape != (len(self.tile_otheridx), self.nt):
            raise TileError(
                f"words shape {self.words.shape} != "
                f"({len(self.tile_otheridx)}, {self.nt})"
            )
        if self.nt < 64 and self.words.size:
            used = _U64(0xFFFFFFFFFFFFFFFF) >> _U64(64 - self.nt)
            if np.any(self.words & ~used):
                raise TileError("bits set above the used word width")

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, nt: int,
                 orientation: str) -> "BitTiledMatrix":
        """Compress a pattern (values ignored) into bitmask tiles."""
        if orientation not in ("csc", "csr"):
            raise TileError(f"orientation must be 'csc' or 'csr', "
                            f"got {orientation!r}")
        coo = coo.sum_duplicates()
        m, n = coo.shape
        trow, tcol = coo.row // nt, coo.col // nt
        lrow = (coo.row % nt).astype(np.int64)
        lcol = (coo.col % nt).astype(np.int64)
        if orientation == "csc":
            major, minor = tcol, trow
            word_of, bit_of = lcol, lrow
            n_major = ceil_div(n, nt)
        else:
            major, minor = trow, tcol
            word_of, bit_of = lrow, lcol
            n_major = ceil_div(m, nt)

        n_minor_tiles = ceil_div(m if orientation == "csc" else n, nt)
        key = major * n_minor_tiles + minor
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        starts = group_starts(key_s)
        n_tiles = len(starts)
        tile_major = major[order][starts] if n_tiles else \
            np.zeros(0, dtype=np.int64)
        tile_minor = minor[order][starts] if n_tiles else \
            np.zeros(0, dtype=np.int64)
        tile_ptr = compress_indptr(tile_major, n_major)

        words = np.zeros((n_tiles, nt), dtype=_U64)
        if coo.nnz:
            counts = np.diff(np.concatenate([starts, [len(key_s)]]))
            tile_of_entry = np.repeat(np.arange(n_tiles), counts)
            flat = tile_of_entry * nt + word_of[order]
            np.bitwise_or.at(words.reshape(-1), flat,
                             bit_positions(bit_of[order], nt))
        return cls((m, n), nt, orientation, tile_ptr, tile_minor, words)

    # ------------------------------------------------------------------
    def tile_majoridx(self) -> np.ndarray:
        """Major tile index (tile col for csc / tile row for csr) of each
        stored tile (cached — the seed Push-CSR re-expanded ``tile_ptr``
        on every launch)."""
        cached = getattr(self, "_tile_majoridx", None)
        if cached is None:
            cached = expand_indptr(self.tile_ptr)
            self._tile_majoridx = cached
        return cached

    def column_view(self) -> "BitTiledMatrix":
        """The column-compressed (csc) tiling of the same pattern
        (cached).  The active-tile Push-CSR host execution walks tiles
        by *tile column* — the grouping csc storage already has — so the
        BFS plan attaches its A1 here via :meth:`attach_column_view` and
        Push-CSR gathers exactly the tiles under non-zero frontier
        words.  Without an attached sibling the view is rebuilt from the
        pattern (plan-time cost, amortised across launches)."""
        if self.orientation == "csc":
            return self
        cached = getattr(self, "_column_view", None)
        if cached is None:
            cached = BitTiledMatrix.from_coo(self.to_coo(), self.nt,
                                             orientation="csc")
            self._column_view = cached
        return cached

    def attach_column_view(self, csc: "BitTiledMatrix") -> None:
        """Register an already-built csc tiling of the same pattern as
        this matrix's :meth:`column_view` (the BFS plan holds both A1
        and A2, so Push-CSR can reuse A1 instead of re-tiling)."""
        if csc.orientation != "csc":
            raise TileError("column view must be csc-oriented")
        if csc.shape != self.shape or csc.nt != self.nt:
            raise ShapeError(
                f"column view mismatch: {csc.shape}/nt={csc.nt} vs "
                f"{self.shape}/nt={self.nt}"
            )
        self._column_view = csc

    def row_warp_count(self) -> float:
        """Warps launched by the matrix-driven kernel: one per 32 stored
        tiles of each major slot, at least one per occupied slot
        (cached — a per-matrix constant the seed recomputed per
        launch)."""
        cached = getattr(self, "_row_warp_count", None)
        if cached is None:
            tiles_per_major = np.diff(self.tile_ptr)
            cached = float((np.ceil(tiles_per_major / 32.0)).sum())
            self._row_warp_count = cached
        return cached

    def full_mask_words(self) -> np.ndarray:
        """The all-ones word template for vectors of length ``shape[0]``
        (read-only, cached): ``full_mask_words() & ~m.words`` is the
        Pull-CSC unvisited computation without the per-launch
        ``BitVector.full`` scratch the seed allocated."""
        cached = getattr(self, "_full_mask_words", None)
        if cached is None:
            cached = BitVector.full(self.shape[0], self.nt).words
            cached.setflags(write=False)
            self._full_mask_words = cached
        return cached

    def tiles_of_major(self, j: int) -> np.ndarray:
        """Stored-tile indices in major slot ``j``."""
        return np.arange(self.tile_ptr[j], self.tile_ptr[j + 1])

    def to_coo(self) -> COOMatrix:
        """Expand back to the (pattern) COO matrix with unit values."""
        nt = self.nt
        if self.n_nonempty_tiles == 0:
            return COOMatrix.empty(self.shape)
        bits = unpack_words(self.words.reshape(-1), nt)
        tile_flat, bitpos = np.nonzero(bits.reshape(
            self.n_nonempty_tiles, nt, nt).reshape(-1, nt))
        tile = tile_flat // nt
        word = tile_flat % nt
        majors = self.tile_majoridx()[tile]
        minors = self.tile_otheridx[tile]
        if self.orientation == "csc":
            cols = majors * nt + word
            rows = minors * nt + bitpos
        else:
            rows = majors * nt + word
            cols = minors * nt + bitpos
        return COOMatrix(self.shape, rows, cols,
                         np.ones(len(rows), dtype=np.float64))

    def as_reinterpreted(self, orientation: str) -> "BitTiledMatrix":
        """Zero-copy reinterpretation with the opposite orientation.

        For a *symmetric* pattern, the column-compressed (A1) and
        row-compressed (A2) forms hold byte-identical arrays (paper
        §3.2.3: "when the graph is an undirected graph, these two
        compression methods will obtain same arrays, which can save
        about half of the storage space"): word ``j`` of tile ``(R, C)``
        in one form equals word ``j`` of tile ``(C, R)`` in the other.
        This method shares the underlying arrays instead of rebuilding
        them.  The caller must guarantee symmetry — reinterpreting an
        asymmetric matrix silently describes its transpose (use
        :func:`pattern_is_symmetric`).
        """
        if orientation not in ("csc", "csr"):
            raise TileError(f"orientation must be 'csc' or 'csr', "
                            f"got {orientation!r}")
        return BitTiledMatrix((self.shape[1], self.shape[0]), self.nt,
                              orientation, self.tile_ptr,
                              self.tile_otheridx, self.words)

    def shares_storage_with(self, other: "BitTiledMatrix") -> bool:
        """True when the two objects alias the same word array."""
        return self.words is other.words

    def nbytes(self) -> int:
        """Footprint at the native word width (uint32/uint64)."""
        word_bytes = 4 if self.nt <= 32 else 8
        return int(self.tile_ptr.nbytes + self.tile_otheridx.nbytes
                   + self.words.shape[0] * self.nt * word_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<BitTiledMatrix {self.shape} nt={self.nt} "
                f"{self.orientation} tiles={self.n_nonempty_tiles}>")


def pattern_is_symmetric(coo: COOMatrix) -> bool:
    """True when the nonzero *pattern* of a square matrix is symmetric.

    The check TileBFS uses to decide whether the A1/A2 bitmask pair can
    share storage (§3.2.3).  O(nnz log nnz), values ignored.
    """
    if coo.shape[0] != coo.shape[1]:
        return False
    n = coo.shape[1]
    fwd = np.unique(coo.row * n + coo.col)
    bwd = np.unique(coo.col * n + coo.row)
    return len(fwd) == len(bwd) and bool(np.array_equal(fwd, bwd))
