"""Tiled sparse vector storage (paper §3.2.2, Figure 3).

A vector of length ``n`` is cut into ``ceil(n / nt)`` tiles of length
``nt``.  Empty tiles are dropped; non-empty tiles are stored densely and
contiguously in ``x_tile``, and ``x_ptr`` maps each tile slot either to
its compact position or to ``-1``.  Element ``i`` is then recovered in
O(1) as ``x_tile[x_ptr[i // nt] * nt + i % nt]`` — the formula under
Figure 3 — which is what lets the matrix kernel skip whole tiles whose
input is empty without any search.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._util import ceil_div
from ..errors import ShapeError, TileError

__all__ = ["TiledVector", "SUPPORTED_TILE_SIZES"]

#: Tile sizes the paper uses (§3.2.1: "nt is usually 16, 32 or 64").
#: Smaller powers of two are additionally allowed for tests/examples.
SUPPORTED_TILE_SIZES = (2, 4, 8, 16, 32, 64)


class TiledVector:
    """A sparse vector in the paper's ``x_ptr`` / ``x_tile`` layout.

    Attributes
    ----------
    n:
        Logical length of the vector.
    nt:
        Tile size.
    x_ptr:
        ``int64[ceil(n / nt)]``; ``-1`` marks an empty tile, otherwise
        the compact index of the tile inside :attr:`x_tile`.
    x_tile:
        ``float64[nt * n_nonempty_tiles]`` dense tile payload; the tail
        of the last tile (beyond ``n``) is zero-padded.
    """

    def __init__(self, n: int, nt: int, x_ptr: np.ndarray,
                 x_tile: np.ndarray, fill: float = 0.0):
        if nt not in SUPPORTED_TILE_SIZES:
            raise TileError(
                f"unsupported tile size {nt}; allowed: {SUPPORTED_TILE_SIZES}"
            )
        if n < 0:
            raise ShapeError(f"negative vector length {n}")
        self.n = int(n)
        self.nt = int(nt)
        #: "no entry" sentinel value stored in unoccupied slots of
        #: non-empty tiles (the semiring's additive identity).
        self.fill = float(fill)
        self.x_ptr = np.ascontiguousarray(x_ptr, dtype=np.int64)
        self.x_tile = np.ascontiguousarray(x_tile)
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every structural invariant of the layout."""
        n_tiles = ceil_div(self.n, self.nt)
        if len(self.x_ptr) != n_tiles:
            raise TileError(
                f"x_ptr length {len(self.x_ptr)} != n_tiles {n_tiles}"
            )
        nonempty = self.x_ptr[self.x_ptr >= 0]
        if len(self.x_tile) != len(nonempty) * self.nt:
            raise TileError(
                f"x_tile length {len(self.x_tile)} != nt * n_nonempty "
                f"({self.nt} * {len(nonempty)})"
            )
        if len(nonempty):
            expected = np.arange(len(nonempty))
            if not np.array_equal(np.sort(nonempty), expected):
                raise TileError(
                    "non-empty x_ptr entries must be a permutation of "
                    "0..n_nonempty-1"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, x: np.ndarray, nt: int,
                   fill: float = 0.0, dtype=None) -> "TiledVector":
        """Tile a dense vector, dropping tiles that are entirely ``fill``.

        ``fill`` is the "no entry" sentinel — 0.0 for ordinary algebra,
        the additive identity of the semiring in general (e.g. ``inf``
        for min-plus).  ``dtype`` overrides the storage dtype — pass
        the semiring dtype so integer algebras (``or_and`` bitmasks)
        are not squeezed through float64 (which would corrupt values
        above 2^53 and break bitwise kernels).
        """
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError(f"expected 1-D vector, got ndim={x.ndim}")
        n = len(x)
        n_tiles = ceil_div(n, nt)
        if dtype is None:
            dtype = x.dtype if x.dtype.kind == "f" else np.float64
        padded = np.full(n_tiles * nt, fill, dtype=dtype)
        padded[:n] = x
        tiles = padded.reshape(n_tiles, nt)
        if np.isnan(fill):  # pragma: no cover - defensive
            nonempty_mask = np.any(~np.isnan(tiles), axis=1)
        else:
            nonempty_mask = np.any(tiles != fill, axis=1)
        x_ptr = np.full(n_tiles, -1, dtype=np.int64)
        x_ptr[nonempty_mask] = np.arange(int(nonempty_mask.sum()))
        x_tile = tiles[nonempty_mask].reshape(-1).copy()
        return cls(n, nt, x_ptr, x_tile, fill=fill)

    @classmethod
    def from_sparse(cls, indices: np.ndarray, values: np.ndarray, n: int,
                    nt: int, fill: float = 0.0, dtype=None) -> "TiledVector":
        """Tile a (indices, values) sparse vector without densifying it.

        Duplicate indices are summed.  This is the conversion a GPU
        implementation performs (scatter into compact tiles), so it is
        kept allocation-proportional to the number of *non-empty tiles*,
        not to ``n``.  ``fill`` is the "no entry" sentinel used for the
        unoccupied slots of non-empty tiles.  ``dtype`` overrides the
        storage dtype (default float64) — integer semirings must pass
        their own dtype or bitmask values get folded through float64.
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if dtype is None:
            dtype = np.float64
        if len(indices) != len(values):
            raise ShapeError("indices/values length mismatch")
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise ShapeError(f"vector index out of range for length {n}")
        n_tiles = ceil_div(n, nt)
        x_ptr = np.full(n_tiles, -1, dtype=np.int64)
        if len(indices) == 0:
            return cls(n, nt, x_ptr, np.zeros(0, dtype=dtype),
                       fill=fill)
        tile_ids = indices // nt
        unique_tiles = np.unique(tile_ids)
        x_ptr[unique_tiles] = np.arange(len(unique_tiles))
        x_tile = np.full(len(unique_tiles) * nt, fill, dtype=dtype)
        compact = x_ptr[tile_ids] * nt + indices % nt
        x_tile[compact] = 0  # reset sentinel before accumulating
        np.add.at(x_tile, compact, values.astype(dtype, copy=False))
        return cls(n, nt, x_ptr, x_tile, fill=fill)

    @classmethod
    def empty(cls, n: int, nt: int) -> "TiledVector":
        """An all-zero vector."""
        return cls(n, nt, np.full(ceil_div(n, nt), -1, dtype=np.int64),
                   np.zeros(0, dtype=np.float64))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_tiles(self) -> int:
        """Number of tile slots (empty included)."""
        return len(self.x_ptr)

    @property
    def n_nonempty_tiles(self) -> int:
        """Number of stored tiles."""
        return int((self.x_ptr >= 0).sum())

    def _occupied_mask(self) -> np.ndarray:
        """Mask of x_tile slots holding real entries (not the sentinel)."""
        if np.isnan(self.fill):  # pragma: no cover - defensive
            return ~np.isnan(self.x_tile)
        return self.x_tile != self.fill

    @property
    def nnz(self) -> int:
        """Number of stored (non-sentinel) elements."""
        return int(self._occupied_mask().sum())

    @property
    def sparsity(self) -> float:
        """``nnz / n`` — the paper's vector-sparsity parameter."""
        return self.nnz / self.n if self.n else 0.0

    def get(self, i: int) -> float:
        """O(1) element access via the Figure-3 formula.

        Empty tiles (and sentinel slots) read back as :attr:`fill`.
        """
        if not (0 <= i < self.n):
            raise ShapeError(f"index {i} out of range for length {self.n}")
        t = self.x_ptr[i // self.nt]
        if t < 0:
            return self.fill
        return float(self.x_tile[t * self.nt + i % self.nt])

    def nonzero_tile_ids(self) -> np.ndarray:
        """Original tile positions that are stored (sorted)."""
        return np.flatnonzero(self.x_ptr >= 0)

    def to_dense(self) -> np.ndarray:
        """Materialise the dense vector (empty slots hold :attr:`fill`)."""
        out = np.full(self.n_tiles * self.nt, self.fill,
                      dtype=self.x_tile.dtype if len(self.x_tile)
                      else np.float64)
        ids = self.nonzero_tile_ids()
        if len(ids):
            out.reshape(self.n_tiles, self.nt)[ids] = \
                self.x_tile.reshape(-1, self.nt)[self.x_ptr[ids]]
        return out[: self.n]

    def to_sparse(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indices, values)`` of the stored entries, sorted."""
        ids = self.nonzero_tile_ids()
        if len(ids) == 0:
            return (np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.float64))
        tiles = self.x_tile.reshape(-1, self.nt)[self.x_ptr[ids]]
        if np.isnan(self.fill):  # pragma: no cover - defensive
            local = np.nonzero(~np.isnan(tiles))
        else:
            local = np.nonzero(tiles != self.fill)
        indices = ids[local[0]] * self.nt + local[1]
        order = np.argsort(indices)
        return indices[order], tiles[local][order]

    def nbytes(self) -> int:
        """Storage footprint of the structure (x_ptr + x_tile)."""
        return self.x_ptr.nbytes + self.x_tile.nbytes

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<TiledVector n={self.n} nt={self.nt} "
                f"tiles={self.n_nonempty_tiles}/{self.n_tiles} "
                f"nnz={self.nnz}>")
