"""Tile-occupancy statistics (paper Table 2 and the §4.2 analysis).

Table 2 reports, per matrix, the number of non-empty tiles at tile
sizes 16/32/64; §4.2 attributes performance wins to low non-empty-tile
occupancy ('trans5': "only 0.00018% non-empty tiles") and dense in-tile
distribution ('ldoor').  These functions compute those quantities
directly from a COO pattern without building the tiled structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from .._util import ceil_div
from ..errors import TileError
from ..formats.coo import COOMatrix

__all__ = ["TileStats", "count_nonempty_tiles", "tile_stats",
           "tile_nnz_histogram"]


def count_nonempty_tiles(coo: COOMatrix, nt: int) -> int:
    """Number of nt-by-nt tiles containing at least one nonzero."""
    if nt <= 0:
        raise TileError(f"tile size must be positive, got {nt}")
    if coo.nnz == 0:
        return 0
    nc = ceil_div(coo.shape[1], nt)
    key = (coo.row // nt) * nc + coo.col // nt
    return len(np.unique(key))


def tile_nnz_histogram(coo: COOMatrix, nt: int) -> Dict[int, int]:
    """Histogram {nnz_per_tile: count} over non-empty tiles."""
    if coo.nnz == 0:
        return {}
    nc = ceil_div(coo.shape[1], nt)
    key = (coo.row // nt) * nc + coo.col // nt
    _, counts = np.unique(key, return_counts=True)
    sizes, freq = np.unique(counts, return_counts=True)
    return {int(s): int(f) for s, f in zip(sizes, freq)}


@dataclass(frozen=True)
class TileStats:
    """Summary of one matrix at one tile size."""

    shape: tuple
    nnz: int
    nt: int
    n_nonempty_tiles: int
    total_tiles: int
    avg_nnz_per_tile: float

    @property
    def nonempty_tile_fraction(self) -> float:
        """Fraction of the tile grid that is non-empty — the quantity
        §4.2 calls 'non-empty tiles occupation'."""
        return (self.n_nonempty_tiles / self.total_tiles
                if self.total_tiles else 0.0)

    @property
    def in_tile_density(self) -> float:
        """Average fill of the non-empty tiles (nnz / (tiles * nt^2))."""
        cells = self.n_nonempty_tiles * self.nt * self.nt
        return self.nnz / cells if cells else 0.0


def tile_stats(coo: COOMatrix, nt: int) -> TileStats:
    """Compute :class:`TileStats` for one matrix / tile size."""
    n_tiles = count_nonempty_tiles(coo, nt)
    total = ceil_div(coo.shape[0], nt) * ceil_div(coo.shape[1], nt)
    return TileStats(
        shape=coo.shape,
        nnz=coo.nnz,
        nt=nt,
        n_nonempty_tiles=n_tiles,
        total_tiles=total,
        avg_nnz_per_tile=coo.nnz / n_tiles if n_tiles else 0.0,
    )


def tile_stats_sweep(coo: COOMatrix,
                     tile_sizes: Sequence[int] = (16, 32, 64)
                     ) -> Dict[int, TileStats]:
    """Stats at several tile sizes (the three columns of Table 2)."""
    return {nt: tile_stats(coo, nt) for nt in tile_sizes}
