"""Serialization of the tiled structures (``.npz`` and mmap on disk).

Preprocessing is the expensive step of the pipeline (Figure 11), so a
downstream user tiling a large matrix once wants to keep the result.
:func:`save_tiled` / :func:`load_tiled` round-trip :class:`TiledMatrix`,
:class:`TiledVector`, :class:`BitTiledMatrix` and
:class:`HybridTiledMatrix` through NumPy's ``.npz`` container with a
format tag and version check.  Every array round-trips with its exact
dtype — integer algebras (``or_and`` uint64 bitmask payloads) must come
back bit-identical, not through a float64 detour — and the writer
records each payload dtype in the file so a load that would silently
change one fails loudly instead.

:func:`save_tiled_mmap` / :func:`load_tiled_mmap` are the out-of-core
variant the sharded execution engine streams from: a *directory* with
one raw ``.npy`` per format array plus a JSON manifest, loaded with
``np.load(mmap_mode="r")`` so a shard's payload pages in lazily on
first kernel touch instead of at load time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import IOFormatError
from ..formats.coo import COOMatrix
from .bitmask import BitTiledMatrix
from .extraction import HybridTiledMatrix
from .tiled_matrix import TiledMatrix
from .tiled_vector import TiledVector

__all__ = ["save_tiled", "load_tiled", "save_tiled_mmap",
           "load_tiled_mmap", "read_mmap_manifest"]

_VERSION = 1
#: Version of the mmap directory format.
_MMAP_VERSION = 1
#: The format arrays of a TiledMatrix, in constructor order.
_TILED_ARRAYS = ("tile_ptr", "tile_colidx", "tile_nnz_ptr",
                 "local_row", "local_col", "values")
PathLike = Union[str, Path]


def save_tiled(obj, path: PathLike) -> None:
    """Write a tiled structure to ``path`` (``.npz``)."""
    if isinstance(obj, TiledMatrix):
        np.savez_compressed(
            path, kind="tiled_matrix", version=_VERSION,
            shape=np.array(obj.shape), nt=obj.nt,
            tile_ptr=obj.tile_ptr, tile_colidx=obj.tile_colidx,
            tile_nnz_ptr=obj.tile_nnz_ptr, local_row=obj.local_row,
            local_col=obj.local_col, values=obj.values,
            values_dtype=str(obj.values.dtype))
    elif isinstance(obj, TiledVector):
        np.savez_compressed(
            path, kind="tiled_vector", version=_VERSION,
            n=obj.n, nt=obj.nt, fill=obj.fill,
            x_ptr=obj.x_ptr, x_tile=obj.x_tile,
            x_tile_dtype=str(obj.x_tile.dtype))
    elif isinstance(obj, BitTiledMatrix):
        np.savez_compressed(
            path, kind="bit_tiled_matrix", version=_VERSION,
            shape=np.array(obj.shape), nt=obj.nt,
            orientation=obj.orientation, tile_ptr=obj.tile_ptr,
            tile_otheridx=obj.tile_otheridx, words=obj.words)
    elif isinstance(obj, HybridTiledMatrix):
        np.savez_compressed(
            path, kind="hybrid_tiled_matrix", version=_VERSION,
            shape=np.array(obj.tiled.shape), nt=obj.tiled.nt,
            threshold=obj.threshold,
            tile_ptr=obj.tiled.tile_ptr,
            tile_colidx=obj.tiled.tile_colidx,
            tile_nnz_ptr=obj.tiled.tile_nnz_ptr,
            local_row=obj.tiled.local_row,
            local_col=obj.tiled.local_col,
            values=obj.tiled.values,
            values_dtype=str(obj.tiled.values.dtype),
            side_row=obj.side.row, side_col=obj.side.col,
            side_val=obj.side.val,
            side_val_dtype=str(obj.side.val.dtype))
    else:
        raise IOFormatError(
            f"save_tiled does not support {type(obj).__name__}"
        )


def load_tiled(path: PathLike):
    """Load a structure written by :func:`save_tiled`."""
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise IOFormatError(f"cannot read tiled file {path}: {exc}") \
            from exc
    if "kind" not in data or "version" not in data:
        raise IOFormatError(f"{path} is not a repro tiled file")
    version = int(data["version"])
    if version > _VERSION:
        raise IOFormatError(
            f"{path} has version {version}; this library reads up to "
            f"{_VERSION}"
        )
    kind = str(data["kind"])

    def payload(name: str, dtype_key: str) -> np.ndarray:
        """A payload array, checked against its recorded dtype.

        Older files carry no dtype tag; for tagged files a mismatch is
        a hard error — a payload silently coerced on load (the
        ``TiledVector.from_sparse`` float64-default bug class) corrupts
        ``or_and`` uint64 bit patterns without any exception.
        """
        arr = data[name]
        if dtype_key in data:
            want = np.dtype(str(data[dtype_key]))
            if arr.dtype != want:
                raise IOFormatError(
                    f"{path}: {name} loaded as {arr.dtype}, file "
                    f"records {want}"
                )
        return arr

    if kind == "tiled_matrix":
        return TiledMatrix(tuple(data["shape"]), int(data["nt"]),
                           data["tile_ptr"], data["tile_colidx"],
                           data["tile_nnz_ptr"], data["local_row"],
                           data["local_col"],
                           payload("values", "values_dtype"))
    if kind == "tiled_vector":
        return TiledVector(int(data["n"]), int(data["nt"]),
                           data["x_ptr"],
                           payload("x_tile", "x_tile_dtype"),
                           fill=float(data["fill"]))
    if kind == "bit_tiled_matrix":
        return BitTiledMatrix(tuple(data["shape"]), int(data["nt"]),
                              str(data["orientation"]),
                              data["tile_ptr"], data["tile_otheridx"],
                              data["words"])
    if kind == "hybrid_tiled_matrix":
        shape = tuple(data["shape"])
        tiled = TiledMatrix(shape, int(data["nt"]), data["tile_ptr"],
                            data["tile_colidx"], data["tile_nnz_ptr"],
                            data["local_row"], data["local_col"],
                            payload("values", "values_dtype"))
        side = COOMatrix(shape, data["side_row"], data["side_col"],
                         payload("side_val", "side_val_dtype"))
        return HybridTiledMatrix(tiled=tiled, side=side,
                                 threshold=int(data["threshold"]))
    raise IOFormatError(f"unknown tiled kind {kind!r} in {path}")


# ----------------------------------------------------------------------
# mmap directory format (out-of-core shards)
# ----------------------------------------------------------------------
def save_tiled_mmap(obj: TiledMatrix, path: PathLike) -> Path:
    """Write a :class:`TiledMatrix` as an mmap-loadable directory.

    Layout: one raw (uncompressed) ``.npy`` per format array plus a
    ``manifest.json`` recording shape, tile size, per-array dtypes and
    the total payload bytes.  Compression is deliberately absent —
    ``np.load(mmap_mode="r")`` needs the on-disk bytes to *be* the
    array so the OS page cache, not a decompressor, is the read path.
    """
    if not isinstance(obj, TiledMatrix):
        raise IOFormatError(
            f"save_tiled_mmap supports TiledMatrix, "
            f"got {type(obj).__name__}"
        )
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    arrays = {name: getattr(obj, name) for name in _TILED_ARRAYS}
    for name, arr in arrays.items():
        np.save(path / f"{name}.npy", arr)
    manifest = {
        "kind": "tiled_matrix",
        "version": _MMAP_VERSION,
        "shape": list(obj.shape),
        "nt": obj.nt,
        "nnz": obj.nnz,
        "nbytes": obj.nbytes(),
        "arrays": {name: {"dtype": str(arr.dtype),
                          "shape": list(arr.shape)}
                   for name, arr in arrays.items()},
    }
    (path / "manifest.json").write_text(
        json.dumps(manifest, indent=1) + "\n", encoding="utf-8")
    return path


def read_mmap_manifest(path: PathLike) -> dict:
    """The manifest of an mmap tile directory (cheap: no array I/O)."""
    manifest_path = Path(path) / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise IOFormatError(
            f"cannot read tile manifest {manifest_path}: {exc}"
        ) from exc
    if manifest.get("kind") != "tiled_matrix":
        raise IOFormatError(
            f"{path} is not a tiled mmap directory"
        )
    if int(manifest.get("version", 0)) > _MMAP_VERSION:
        raise IOFormatError(
            f"{path} has mmap version {manifest.get('version')}; this "
            f"library reads up to {_MMAP_VERSION}"
        )
    return manifest


def load_tiled_mmap(path: PathLike, mmap: bool = True,
                    validate: bool = False) -> TiledMatrix:
    """Load a directory written by :func:`save_tiled_mmap`.

    With ``mmap=True`` (default) every array is an ``np.memmap`` view:
    nothing is paged in until a kernel touches it, which is what lets a
    sharded matrix hold a working set far smaller than the file set.
    ``validate`` defaults to ``False`` for the same reason — the full
    structural validation reads every array end to end.
    """
    path = Path(path)
    manifest = read_mmap_manifest(path)
    mode = "r" if mmap else None
    arrays = {}
    for name in _TILED_ARRAYS:
        arr = np.load(path / f"{name}.npy", mmap_mode=mode,
                      allow_pickle=False)
        want = np.dtype(manifest["arrays"][name]["dtype"])
        if arr.dtype != want:
            raise IOFormatError(
                f"{path}: {name} loaded as {arr.dtype}, manifest "
                f"records {want}"
            )
        arrays[name] = arr
    return TiledMatrix(tuple(manifest["shape"]), int(manifest["nt"]),
                       validate=validate, **arrays)
