"""Serialization of the tiled structures (``.npz`` on disk).

Preprocessing is the expensive step of the pipeline (Figure 11), so a
downstream user tiling a large matrix once wants to keep the result.
These functions round-trip :class:`TiledMatrix`, :class:`TiledVector`,
:class:`BitTiledMatrix` and :class:`HybridTiledMatrix` through NumPy's
``.npz`` container with a format tag and version check.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..errors import IOFormatError
from ..formats.coo import COOMatrix
from .bitmask import BitTiledMatrix
from .extraction import HybridTiledMatrix
from .tiled_matrix import TiledMatrix
from .tiled_vector import TiledVector

__all__ = ["save_tiled", "load_tiled"]

_VERSION = 1
PathLike = Union[str, Path]


def save_tiled(obj, path: PathLike) -> None:
    """Write a tiled structure to ``path`` (``.npz``)."""
    if isinstance(obj, TiledMatrix):
        np.savez_compressed(
            path, kind="tiled_matrix", version=_VERSION,
            shape=np.array(obj.shape), nt=obj.nt,
            tile_ptr=obj.tile_ptr, tile_colidx=obj.tile_colidx,
            tile_nnz_ptr=obj.tile_nnz_ptr, local_row=obj.local_row,
            local_col=obj.local_col, values=obj.values)
    elif isinstance(obj, TiledVector):
        np.savez_compressed(
            path, kind="tiled_vector", version=_VERSION,
            n=obj.n, nt=obj.nt, fill=obj.fill,
            x_ptr=obj.x_ptr, x_tile=obj.x_tile)
    elif isinstance(obj, BitTiledMatrix):
        np.savez_compressed(
            path, kind="bit_tiled_matrix", version=_VERSION,
            shape=np.array(obj.shape), nt=obj.nt,
            orientation=obj.orientation, tile_ptr=obj.tile_ptr,
            tile_otheridx=obj.tile_otheridx, words=obj.words)
    elif isinstance(obj, HybridTiledMatrix):
        np.savez_compressed(
            path, kind="hybrid_tiled_matrix", version=_VERSION,
            shape=np.array(obj.tiled.shape), nt=obj.tiled.nt,
            threshold=obj.threshold,
            tile_ptr=obj.tiled.tile_ptr,
            tile_colidx=obj.tiled.tile_colidx,
            tile_nnz_ptr=obj.tiled.tile_nnz_ptr,
            local_row=obj.tiled.local_row,
            local_col=obj.tiled.local_col,
            values=obj.tiled.values,
            side_row=obj.side.row, side_col=obj.side.col,
            side_val=obj.side.val)
    else:
        raise IOFormatError(
            f"save_tiled does not support {type(obj).__name__}"
        )


def load_tiled(path: PathLike):
    """Load a structure written by :func:`save_tiled`."""
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise IOFormatError(f"cannot read tiled file {path}: {exc}") \
            from exc
    if "kind" not in data or "version" not in data:
        raise IOFormatError(f"{path} is not a repro tiled file")
    version = int(data["version"])
    if version > _VERSION:
        raise IOFormatError(
            f"{path} has version {version}; this library reads up to "
            f"{_VERSION}"
        )
    kind = str(data["kind"])
    if kind == "tiled_matrix":
        return TiledMatrix(tuple(data["shape"]), int(data["nt"]),
                           data["tile_ptr"], data["tile_colidx"],
                           data["tile_nnz_ptr"], data["local_row"],
                           data["local_col"], data["values"])
    if kind == "tiled_vector":
        return TiledVector(int(data["n"]), int(data["nt"]),
                           data["x_ptr"], data["x_tile"],
                           fill=float(data["fill"]))
    if kind == "bit_tiled_matrix":
        return BitTiledMatrix(tuple(data["shape"]), int(data["nt"]),
                              str(data["orientation"]),
                              data["tile_ptr"], data["tile_otheridx"],
                              data["words"])
    if kind == "hybrid_tiled_matrix":
        shape = tuple(data["shape"])
        tiled = TiledMatrix(shape, int(data["nt"]), data["tile_ptr"],
                            data["tile_colidx"], data["tile_nnz_ptr"],
                            data["local_row"], data["local_col"],
                            data["values"])
        side = COOMatrix(shape, data["side_row"], data["side_col"],
                         data["side_val"])
        return HybridTiledMatrix(tiled=tiled, side=side,
                                 threshold=int(data["threshold"]))
    raise IOFormatError(f"unknown tiled kind {kind!r} in {path}")
