"""Semirings for generalized sparse matrix-vector products.

The GraphBLAS view of graph algorithms (which the paper builds on — see
its §1 and §3.4) replaces the ``(+, ×)`` of ordinary linear algebra with
an arbitrary semiring ``(⊕, ⊗)``.  TileSpMSpV uses two of them:

* ``PLUS_TIMES`` — ordinary numeric SpMSpV (paper §3.3);
* ``OR_AND`` — the boolean semiring over bitmasks used by TileBFS
  (paper §3.4: "the AND operation represents multiplication, and the OR
  operation represents addition").

A :class:`Semiring` bundles the two NumPy ufunc-compatible operations,
their identities, and the dtype family they operate on.  Kernels in
:mod:`repro.core` accept any semiring whose operations are vectorized
callables, so MIN_PLUS (shortest paths) and MAX_TIMES work out of the
box and are exercised in tests and the graph-analytics example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "OR_AND",
    "MIN_PLUS",
    "MAX_TIMES",
]


@dataclass(frozen=True)
class Semiring:
    """An algebraic semiring ``(add, add_identity, mul, mul_identity)``.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"plus_times"``.
    add:
        Binary, associative, commutative reduction ufunc (``np.add``,
        ``np.minimum``, ``np.bitwise_or``, ...).  Must support
        ``add.reduceat`` / ``add.at`` (i.e. be a true NumPy ufunc) for
        the vectorized kernels.
    add_identity:
        Identity element of ``add`` (0 for +, +inf for min, ...).
    mul:
        Binary combine ufunc (``np.multiply``, ``np.add`` for min-plus,
        ``np.bitwise_and``, ...).
    mul_identity:
        Identity element of ``mul``.
    dtype:
        Default dtype kernels should promote operands to.
    """

    name: str
    add: Callable = field(repr=False, default=np.add)
    add_identity: float = 0.0
    mul: Callable = field(repr=False, default=np.multiply)
    mul_identity: float = 1.0
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float64))

    def reduce_segments(self, values: np.ndarray, segment_ids: np.ndarray,
                        n_segments: int) -> np.ndarray:
        """Reduce ``values`` grouped by ``segment_ids`` with ``add``.

        ``segment_ids`` need not be sorted.  Returns an array of length
        ``n_segments`` initialised to ``add_identity``.  This is the
        scatter-reduce primitive every merge-style SpMSpV kernel needs.
        """
        out = np.full(n_segments, self.add_identity, dtype=values.dtype)
        if len(values):
            self.add.at(out, segment_ids, values)
        return out

    def scatter_merge(self, out: np.ndarray, idx: np.ndarray,
                      values: np.ndarray) -> np.ndarray:
        """Merge ``values`` into ``out[idx]`` with ``add`` (duplicates
        in ``idx`` accumulate), returning ``out``.

        For the default plus-style float64 case with many more updates
        than slots, when every touched slot still holds exactly
        ``+0.0``, the merge runs through one full-length ``np.bincount``
        instead of ``np.add.at`` — on NumPy builds without the indexed
        ufunc loop, unbuffered ``add.at`` walks elements one by one and
        dominates host time.  The fast path is bit-identical to
        ``add.at``: ``bincount`` accumulates each bin's addends in
        array order from ``0.0``, which is the same left fold ``add.at``
        performs on a zeroed slot, and untouched slots absorb an exact
        ``+0.0``.  Any other semiring, dtype, sparse update, or a
        non-zero base falls back to ``add.at``.

        A ``-0.0`` base disqualifies the fast path too: ``bincount``
        folds from ``+0.0`` where ``add.at`` folds from the slot, so a
        ``-0.0`` slot receiving only ``-0.0`` addends would flip to
        ``+0.0`` — and the full-length ``out += bincount`` adds ``+0.0``
        even to *untouched* slots, erasing their ``-0.0`` the same way.
        The guard therefore requires every zero in ``out`` (touched or
        not) to be ``+0.0``.
        """
        if len(idx) == 0:
            return out
        if (self.add is np.add and out.dtype == np.float64
                and values.dtype == np.float64
                and 4 * len(idx) >= len(out) and not out[idx].any()
                and not np.signbit(out[out == 0.0]).any()):
            out += np.bincount(idx, weights=values, minlength=len(out))
            return out
        self.add.at(out, idx, values)
        return out

    def is_identity(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of entries equal to the additive identity.

        NaN-safe for float semirings whose identity is NaN-free; used to
        drop explicit zeros from sparse results.
        """
        ident = self.add_identity
        if isinstance(ident, float) and np.isinf(ident):
            return np.isinf(values) & (np.sign(values) == np.sign(ident))
        return values == ident


PLUS_TIMES = Semiring(
    name="plus_times",
    add=np.add, add_identity=0.0,
    mul=np.multiply, mul_identity=1.0,
    dtype=np.dtype(np.float64),
)

OR_AND = Semiring(
    name="or_and",
    add=np.bitwise_or, add_identity=0,
    mul=np.bitwise_and, mul_identity=np.uint64(0xFFFFFFFFFFFFFFFF),
    dtype=np.dtype(np.uint64),
)

MIN_PLUS = Semiring(
    name="min_plus",
    add=np.minimum, add_identity=np.inf,
    mul=np.add, mul_identity=0.0,
    dtype=np.dtype(np.float64),
)

MAX_TIMES = Semiring(
    name="max_times",
    add=np.maximum, add_identity=0.0,
    mul=np.multiply, mul_identity=1.0,
    dtype=np.dtype(np.float64),
)
