"""Independent oracles the differential harness checks operators against.

Every oracle here is deliberately built on a *different* code path than
the library kernels: SciPy's compiled CSR matvec and ``csgraph``
routines, or a direct dense NumPy fold over the COO triplets.  None of
them touch the tiled structures, the semiring scatter-merge, or the
simulated device, so agreement is meaningful evidence and disagreement
localizes a bug to the library side.
"""

from __future__ import annotations

import numpy as np

from ..formats import COOMatrix
from ..semiring import Semiring

__all__ = [
    "dense_semiring_multiply", "scipy_matvec", "scipy_spmm",
    "bfs_levels_oracle", "dijkstra_oracle", "pagerank_oracle",
]


def dense_semiring_multiply(coo: COOMatrix, x_dense: np.ndarray,
                            semiring: Semiring) -> np.ndarray:
    """``y = A (x)`` by folding every stored entry directly.

    Entries whose ``x[j]`` is the additive identity are skipped — a
    sparse vector slot holding the identity means "no entry", and
    several semirings (``max_times`` with negative values) would
    otherwise corrupt the fold with ``mul(v, identity)`` artifacts.
    """
    m = coo.shape[0]
    y = np.full(m, semiring.add_identity, dtype=semiring.dtype)
    if coo.nnz == 0:
        return y
    xv = x_dense[coo.col]
    occupied = ~semiring.is_identity(xv)
    if not occupied.any():
        return y
    vals = coo.val.astype(semiring.dtype, copy=False)[occupied]
    products = semiring.mul(vals, xv[occupied])
    semiring.add.at(y, coo.row[occupied], products)
    return y


def scipy_matvec(coo: COOMatrix, x_dense: np.ndarray) -> np.ndarray:
    """Ordinary-algebra ``A @ x`` through SciPy's compiled CSR path."""
    from scipy.sparse import csr_array

    c = coo.canonicalize()
    A = csr_array((c.val.astype(np.float64), (c.row, c.col)),
                  shape=c.shape)
    return A @ np.asarray(x_dense, dtype=np.float64)


def scipy_spmm(coo: COOMatrix, X_dense: np.ndarray) -> np.ndarray:
    """Ordinary-algebra ``A @ X`` for a dense ``(n, B)`` block through
    SciPy's compiled CSR sparse-times-dense path."""
    from scipy.sparse import csr_array

    c = coo.canonicalize()
    A = csr_array((c.val.astype(np.float64), (c.row, c.col)),
                  shape=c.shape)
    return A @ np.asarray(X_dense, dtype=np.float64)


def _csgraph_adjacency(coo: COOMatrix, unweighted: bool):
    """Our convention is ``A[i, j]`` = edge ``j -> i``; csgraph reads
    ``G[i, j]`` as ``i -> j``, so hand it the transpose."""
    from scipy.sparse import csr_array

    at = coo.transpose()
    data = np.ones(at.nnz) if unweighted \
        else at.val.astype(np.float64)
    return csr_array((data, (at.row, at.col)), shape=at.shape)


def bfs_levels_oracle(coo: COOMatrix, source: int) -> np.ndarray:
    """Hop counts from ``source`` (unreachable = -1) via csgraph."""
    from scipy.sparse.csgraph import dijkstra

    G = _csgraph_adjacency(coo, unweighted=True)
    d = dijkstra(G, directed=True, indices=source, unweighted=True)
    levels = np.where(np.isinf(d), -1, d).astype(np.int64)
    return levels


def dijkstra_oracle(coo: COOMatrix, source: int) -> np.ndarray:
    """Weighted shortest-path distances (unreachable = inf)."""
    from scipy.sparse.csgraph import dijkstra

    G = _csgraph_adjacency(coo, unweighted=False)
    return dijkstra(G, directed=True, indices=source)


def pagerank_oracle(coo: COOMatrix, damping: float = 0.85
                    ) -> np.ndarray:
    """Exact stationary PageRank by dense linear solve.

    Column-weight normalization with uniform dangling redistribution —
    the semantics :func:`repro.graphs.pagerank` implements, computed
    here without power iteration, sparse kernels, or the library's
    normalization code.
    """
    c = coo.canonicalize().drop_zeros()
    n = c.shape[0]
    if n == 0:
        return np.zeros(0)
    A = np.zeros((n, n))
    np.add.at(A, (c.row, c.col), c.val.astype(np.float64))
    colsum = A.sum(axis=0)
    dangling = colsum == 0
    P = A / np.where(dangling, 1.0, colsum)[None, :]
    E = np.zeros((n, n))
    E[:, dangling] = 1.0 / n
    r = np.linalg.solve(np.eye(n) - damping * (P + E),
                        np.full(n, (1.0 - damping) / n))
    return r / r.sum()
