"""The differential checks the harness runs on each case.

Three layers of cross-checking (the tentpole of the verification
subsystem):

1. **Oracles** — operator results against the independent SciPy /
   dense-NumPy references in :mod:`repro.verify.oracles`.
2. **Siblings** — every operator against other registered operators of
   the same interface on the identical inputs.
3. **Model invariants & metamorphic relations** — counter sanity from
   the simulated device (non-negative counters, batched-union traffic
   no worse than looped singles, active-set payload no worse than a
   full scan, plan-cache hits leaving counters byte-identical) and
   algebraic relations (row permutations permute results, scaling the
   input scales the output, a batch of one equals a single multiply).

Every check takes a :class:`~repro.verify.cases.Case` and returns
``None`` on success or a human-readable failure message.  The message
(not an exception) is what feeds the shrinker: shrinking needs to
re-evaluate "does this smaller case still fail" cheaply.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..formats import COOMatrix
from ..gpusim import Device
from ..runtime import ExecutionContext, available_operators, \
    create_operator, resolve_operator
from ..semiring import PLUS_TIMES, Semiring
from ..vectors.sparse_vector import SparseVector
from .cases import Case
from .oracles import (bfs_levels_oracle, dense_semiring_multiply,
                      dijkstra_oracle, pagerank_oracle, scipy_matvec,
                      scipy_spmm)

__all__ = ["checks_for", "run_check", "CHECK_NAMES"]

_MULTIPLY_KINDS = ("spmspv", "spmv")


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _build(case: Case, name: Optional[str] = None,
           device: Optional[Device] = None):
    entry = resolve_operator(name or case.operator)
    kwargs = {}
    if "nt" in entry.capabilities:
        kwargs["nt"] = case.nt
    if "semiring" in entry.capabilities:
        kwargs["semiring"] = case.sr
    return create_operator(entry.name, case.matrix, device=device,
                           **kwargs)


def _sibling_supports(case: Case, name: str) -> bool:
    entry = resolve_operator(name)
    if case.semiring != "plus_times" \
            and "semiring" not in entry.capabilities:
        return False
    if case.matrix.shape[0] != case.matrix.shape[1] \
            and "rectangular" not in entry.capabilities:
        return False
    return True


def _densify(v: SparseVector, n: int, semiring: Semiring) -> np.ndarray:
    out = np.full(n, semiring.add_identity, dtype=semiring.dtype)
    out[v.indices] = v.values
    return out


def _dense_x(v: SparseVector, semiring: Semiring) -> np.ndarray:
    return _densify(v, v.n, semiring)


def _compare(got: np.ndarray, want: np.ndarray, semiring: Semiring,
             what: str, rtol: float = 1e-9,
             atol: float = 1e-12) -> Optional[str]:
    if semiring.dtype.kind in "ui":
        if np.array_equal(got, want):
            return None
        bad = np.flatnonzero(got != want)
        return (f"{what}: {len(bad)} mismatched slots, first at "
                f"{bad[0]}: got {got[bad[0]]}, want {want[bad[0]]}")
    if np.allclose(got, want, rtol=rtol, atol=atol, equal_nan=True):
        return None
    diff = np.abs(np.where(np.isfinite(got) & np.isfinite(want),
                           got - want, np.where(got == want, 0.0,
                                                np.inf)))
    bad = int(np.argmax(diff))
    return (f"{what}: max |diff| {diff[bad]:.3e} at slot {bad} "
            f"(got {got[bad]!r}, want {want[bad]!r})")


def _multiply_results(case: Case, device: Optional[Device] = None
                      ) -> List[np.ndarray]:
    """Run the case's operator over its vectors, densified results."""
    op = _build(case, device=device)
    n_out = case.matrix.shape[0]
    entry = resolve_operator(case.operator)
    if "batch" in entry.capabilities and len(case.vectors) > 1:
        ys = op.multiply_batch(list(case.vectors))
        return [_densify(y, n_out, case.sr) for y in ys]
    return [_densify(op.multiply(x), n_out, case.sr)
            for x in case.vectors]


# ----------------------------------------------------------------------
# multiply-kind checks
# ----------------------------------------------------------------------
def check_oracle_multiply(case: Case) -> Optional[str]:
    got = _multiply_results(case)
    for b, (x, y) in enumerate(zip(case.vectors, got)):
        want = dense_semiring_multiply(case.matrix,
                                       _dense_x(x, case.sr), case.sr)
        err = _compare(y, want, case.sr,
                       f"vs dense {case.semiring} oracle (vector {b})")
        if err:
            return err
        if case.semiring == "plus_times":
            want2 = scipy_matvec(case.matrix, _dense_x(x, case.sr))
            err = _compare(y, want2, case.sr,
                           f"vs scipy CSR matvec (vector {b})",
                           rtol=1e-9, atol=1e-11)
            if err:
                return err
    return None


def check_siblings_multiply(case: Case) -> Optional[str]:
    got = _multiply_results(case)
    n_out = case.matrix.shape[0]
    pool = [n for k in _MULTIPLY_KINDS for n in available_operators(
        kind=k) if n != case.operator and _sibling_supports(case, n)]
    for name in pool:
        sib = _build(case, name=name)
        for b, (x, y) in enumerate(zip(case.vectors, got)):
            ys = _densify(sib.multiply(x), n_out, case.sr)
            err = _compare(y, ys, case.sr,
                           f"vs sibling {name} (vector {b})")
            if err:
                return err
    return None


def check_counters(case: Case) -> Optional[str]:
    device = Device()
    if case.kind in _MULTIPLY_KINDS:
        _multiply_results(case, device=device)
    elif case.kind == "spmm":
        op = _build(case, device=device)
        op.multiply_block(list(case.vectors))
    else:
        op = _build(case, device=device)
        if case.kind == "msbfs":
            op.run(list(case.sources))
        else:
            for s in case.sources:
                op.run(s)
    if not device.timeline:
        return "operator issued no launches on the attached device"
    for rec in device.timeline:
        try:
            rec.counters.check()
        except Exception as exc:
            return f"launch {rec.name!r}: invalid counters: {exc}"
    return None


def check_batched_union_bytes(case: Case) -> Optional[str]:
    """Batched multi-vector traffic must not exceed looped singles —
    coalescing shared tile reads is the whole point of the batch
    engine."""
    dev_b = Device()
    op_b = _build(case, device=dev_b)
    op_b.multiply_batch(list(case.vectors))
    bytes_b = sum(r.counters.global_bytes for r in dev_b.timeline)
    dev_l = Device()
    op_l = _build(case, name="tilespmspv", device=dev_l)
    for x in case.vectors:
        op_l.multiply(x)
    bytes_l = sum(r.counters.global_bytes for r in dev_l.timeline)
    if bytes_b > bytes_l * (1.0 + 1e-9):
        return (f"batched union traffic {bytes_b:.0f} B exceeds "
                f"looped singles {bytes_l:.0f} B")
    return None


def check_active_set_payload(case: Case) -> Optional[str]:
    """A sparse input must never cost more modeled traffic than the
    same multiply with a fully dense input (the active-set machinery
    can only skip work, not add it)."""
    n = case.matrix.shape[1]
    dev_s = Device()
    _build(case, device=dev_s).multiply(case.vectors[0])
    sparse_bytes = sum(r.counters.global_bytes for r in dev_s.timeline)
    dense_case = Case(case.operator, case.kind, matrix=case.matrix,
                      vectors=(SparseVector(
                          n, np.arange(n),
                          np.ones(n, dtype=case.sr.dtype)),),
                      semiring=case.semiring, nt=case.nt)
    dev_d = Device()
    _build(dense_case, device=dev_d).multiply(dense_case.vectors[0])
    dense_bytes = sum(r.counters.global_bytes for r in dev_d.timeline)
    if sparse_bytes > dense_bytes * (1.0 + 1e-9):
        return (f"sparse-input traffic {sparse_bytes:.0f} B exceeds "
                f"dense-input scan {dense_bytes:.0f} B")
    return None


def check_plan_cache_replay(case: Case) -> Optional[str]:
    """Rebuilding the operator (a plan-cache hit) must reproduce a
    byte-identical launch timeline — cached plans may never change
    what the kernels charge."""
    timelines = []
    for _ in range(2):
        dev = Device()
        op = _build(case, device=dev)
        op.multiply(case.vectors[0])
        timelines.append(dev.timeline)
    t1, t2 = timelines
    if len(t1) != len(t2):
        return (f"plan-cache replay changed launch count: "
                f"{len(t1)} vs {len(t2)}")
    for a, b in zip(t1, t2):
        if a.name != b.name or a.counters != b.counters:
            return (f"plan-cache replay diverged at launch "
                    f"{a.name!r}: counters differ")
    return None


def check_permute_rows(case: Case) -> Optional[str]:
    """Permuting the matrix rows must permute the result the same way
    (plus_times only; a pure structural relation)."""
    coo = case.matrix
    m = coo.shape[0]
    perm = np.random.default_rng(0).permutation(m)
    permuted = COOMatrix(coo.shape, perm[coo.row], coo.col, coo.val)
    pcase = Case(case.operator, case.kind, matrix=permuted,
                 vectors=case.vectors, semiring=case.semiring,
                 nt=case.nt)
    base = _multiply_results(case)
    moved = _multiply_results(pcase)
    for b, (y, yp) in enumerate(zip(base, moved)):
        err = _compare(yp[perm], y, case.sr,
                       f"row permutation not equivariant (vector {b})")
        if err:
            return err
    return None


def check_scale_linearity(case: Case) -> Optional[str]:
    """``A (2x) == 2 (A x)`` bit-exactly under plus_times: doubling is
    exact in IEEE-754 and commutes with every rounding step."""
    base = _multiply_results(case)
    scaled_vecs = tuple(SparseVector(x.n, x.indices, 2.0 * x.values)
                        for x in case.vectors)
    scase = Case(case.operator, case.kind, matrix=case.matrix,
                 vectors=scaled_vecs, semiring=case.semiring,
                 nt=case.nt)
    for b, (y, y2) in enumerate(zip(base, _multiply_results(scase))):
        if not np.array_equal(2.0 * y, y2):
            bad = int(np.argmax(2.0 * y != y2))
            return (f"scaling x by 2 not exactly linear (vector {b}, "
                    f"slot {bad}: {2.0 * y[bad]!r} vs {y2[bad]!r})")
    return None


def check_batch_of_one(case: Case) -> Optional[str]:
    """A batch of one must agree with the single-vector engine."""
    op = _build(case)
    single = _build(case, name="tilespmspv")
    n_out = case.matrix.shape[0]
    x = case.vectors[0]
    yb = _densify(op.multiply_batch([x])[0], n_out, case.sr)
    ys = _densify(single.multiply(x), n_out, case.sr)
    return _compare(yb, ys, case.sr, "batch of one vs single multiply")


# ----------------------------------------------------------------------
# spmm-kind checks
# ----------------------------------------------------------------------
def _bit_equal(got: np.ndarray, want: np.ndarray,
               semiring: Semiring) -> bool:
    if semiring.dtype.kind in "ui":
        return np.array_equal(got, want)
    # same-itemsize views work on strided columns; this catches
    # sign-of-zero and NaN-payload drift an allclose would pass
    return np.array_equal(got.view(np.uint64), want.view(np.uint64))


def check_oracle_spmm(case: Case) -> Optional[str]:
    """SpMM against the dense semiring fold column by column, and —
    for plus_times — against SciPy's compiled CSR ``A @ X``."""
    op = _build(case)
    Y = op.multiply_block(list(case.vectors), output="dense")
    for j, x in enumerate(case.vectors):
        want = dense_semiring_multiply(case.matrix,
                                       _dense_x(x, case.sr), case.sr)
        err = _compare(np.ascontiguousarray(Y[:, j]), want, case.sr,
                       f"vs dense {case.semiring} oracle (column {j})")
        if err:
            return err
    if case.semiring == "plus_times":
        X = np.column_stack([_dense_x(x, case.sr)
                             for x in case.vectors])
        want2 = scipy_spmm(case.matrix, X)
        err = _compare(Y.ravel(), want2.ravel(), case.sr,
                       "vs scipy CSR A @ X", rtol=1e-9, atol=1e-11)
        if err:
            return err
    return None


def check_spmm_column_slice(case: Case) -> Optional[str]:
    """Column ``j`` of the SpMM result must be **bit-identical** to a
    single-vector TileSpMSpV multiply against column ``j`` of the
    block — the algebra-level contract tying the two operators
    together (zero signs included)."""
    op = _build(case)
    Xb = op.as_block(list(case.vectors))
    Y = op.multiply_block(Xb, output="dense")
    single = _build(case, name="tilespmspv")
    for j in range(Xb.B):
        want = single.multiply(Xb.column_sparse(j), output="dense")
        got = Y[:, j]
        if not _bit_equal(got, want, case.sr):
            if case.sr.dtype.kind in "ui":
                bad = int(np.flatnonzero(got != want)[0])
            else:
                bad = int(np.flatnonzero(
                    got.view(np.uint64) != want.view(np.uint64))[0])
            return (f"SpMM column {j} not bit-identical to the "
                    f"single-vector multiply at slot {bad}: "
                    f"got {got[bad]!r}, want {want[bad]!r}")
    return None


def check_spmm_kernel_parity(case: Case) -> Optional[str]:
    """The two SpMM kernels must agree bit-exactly, and the merge-path
    kernel's modeled traffic (global + L2) must never exceed the
    row-per-warp kernel's — staging each row segment once can only
    remove loads."""
    from ..core.selection import (SPMM_MERGE_PATH, SPMM_ROW_WARP,
                                  KernelSelector)
    from ..core.spmm import TileSpMM
    runs = {}
    for forced in (SPMM_ROW_WARP, SPMM_MERGE_PATH):
        dev = Device()
        op = TileSpMM(case.matrix, nt=case.nt, semiring=case.sr,
                      device=dev,
                      selector=KernelSelector(forced=forced))
        Y = op.multiply_block(list(case.vectors), output="dense")
        traffic = sum(r.counters.global_bytes + r.counters.l2_read_bytes
                      for r in dev.timeline)
        runs[forced] = (Y, traffic)
    y_row, bytes_row = runs[SPMM_ROW_WARP]
    y_merge, bytes_merge = runs[SPMM_MERGE_PATH]
    if not _bit_equal(y_row.ravel(), y_merge.ravel(), case.sr):
        return "row-per-warp and merge-path results are not bit-equal"
    if bytes_merge > bytes_row:
        return (f"merge-path modeled traffic {bytes_merge:.0f} B "
                f"exceeds row-per-warp {bytes_row:.0f} B")
    return None


# ----------------------------------------------------------------------
# graph-kind checks
# ----------------------------------------------------------------------
def check_oracle_bfs(case: Case) -> Optional[str]:
    op = _build(case)
    if case.kind == "msbfs":
        levels = op.run(list(case.sources)).levels
        rows = zip(case.sources, levels)
    else:
        rows = [(s, op.run(s).levels) for s in case.sources]
    for s, got in rows:
        want = bfs_levels_oracle(case.matrix, int(s))
        if not np.array_equal(got, want):
            bad = int(np.argmax(got != want))
            return (f"levels from source {s} disagree with csgraph "
                    f"oracle at vertex {bad}: got {got[bad]}, "
                    f"want {want[bad]}")
    return None


def check_siblings_bfs(case: Case) -> Optional[str]:
    op = _build(case)
    if case.kind == "msbfs":
        mine = dict(zip(case.sources,
                        op.run(list(case.sources)).levels))
        pool = available_operators(kind="bfs")
    else:
        mine = {s: op.run(s).levels for s in case.sources}
        pool = [n for n in available_operators(kind="bfs")
                if n != case.operator]
    for name in pool:
        sib = _build(case, name=name)
        for s, got in mine.items():
            ref = sib.run(int(s)).levels
            if not np.array_equal(got, ref):
                bad = int(np.argmax(np.asarray(got) != ref))
                return (f"levels from source {s} disagree with "
                        f"sibling {name} at vertex {bad}: "
                        f"got {got[bad]}, want {ref[bad]}")
    return None


# ----------------------------------------------------------------------
# primitive checks (injectable impls so tests can demonstrate the
# pre-fix bugs failing and the committed repros passing)
# ----------------------------------------------------------------------
def check_scatter_merge(case: Case,
                        merge: Optional[Callable] = None
                        ) -> Optional[str]:
    """The plus_times scatter-merge must be bit-identical (signed
    zeros included) to the canonical ``np.add.at`` fold."""
    out = case.data["out"]
    idx = case.data["idx"]
    values = case.data["values"]
    got = np.array(out, dtype=np.float64)
    if merge is None:
        got = PLUS_TIMES.scatter_merge(got, idx, values)
    else:
        got = merge(got, idx, values)
    want = np.array(out, dtype=np.float64)
    np.add.at(want, idx, values)
    if np.array_equal(got.view(np.uint64), want.view(np.uint64)):
        return None
    bad = int(np.argmax(got.view(np.uint64) != want.view(np.uint64)))
    return (f"scatter_merge not bit-identical to add.at at slot "
            f"{bad}: got {got[bad]!r}, want {want[bad]!r}")


def check_pagerank(case: Case,
                   impl: Optional[Callable] = None) -> Optional[str]:
    from ..graphs import pagerank
    ranks, _ = (impl or pagerank)(case.matrix, tol=1e-14)
    want = pagerank_oracle(case.matrix)
    if np.allclose(ranks, want, atol=1e-8):
        return None
    bad = int(np.argmax(np.abs(ranks - want)))
    return (f"pagerank disagrees with dense linear-solve oracle at "
            f"vertex {bad}: got {ranks[bad]:.12f}, "
            f"want {want[bad]:.12f}")


def check_sssp(case: Case,
               impl: Optional[Callable] = None) -> Optional[str]:
    from ..graphs import sssp
    src = int(case.sources[0])
    got = (impl or sssp)(case.matrix, src, nt=case.nt)
    want = dijkstra_oracle(case.matrix, src)
    if np.allclose(got, want, rtol=1e-12, atol=0):
        return None
    finite = np.isfinite(want)
    if not np.array_equal(np.isfinite(got), finite):
        bad = int(np.argmax(np.isfinite(got) != finite))
        return (f"sssp reachability from {src} disagrees with "
                f"dijkstra at vertex {bad}")
    bad = int(np.argmax(np.abs(np.where(finite, got - want, 0.0))))
    return (f"sssp distance from {src} at vertex {bad}: "
            f"got {got[bad]!r}, want {want[bad]!r}")


def check_mm_roundtrip(case: Case) -> Optional[str]:
    import io as _io

    from ..formats import read_matrix_market, write_matrix_market
    coo = case.matrix.canonicalize()
    field = "integer" if np.issubdtype(coo.dtype, np.integer) \
        else "real"
    buf = _io.StringIO()
    write_matrix_market(coo, buf, field=field)
    buf.seek(0)
    back = read_matrix_market(buf).canonicalize()
    if back.shape != coo.shape:
        return f"round-trip changed shape {coo.shape} -> {back.shape}"
    for name, a, b in (("row", coo.row, back.row),
                       ("col", coo.col, back.col),
                       ("val", coo.val, back.val)):
        if not np.array_equal(a, b):
            bad = int(np.argmax(a != b))
            return (f"{field} round-trip corrupted {name}[{bad}]: "
                    f"{a[bad]!r} -> {b[bad]!r}")
    return None


# ----------------------------------------------------------------------
# compiled fast-path checks
# ----------------------------------------------------------------------
def check_fastpath_equivalence(case: Case) -> Optional[str]:
    """The fused per-layer fast path must be byte-identical to the
    reference kernel loop: same levels, same per-layer kernel
    selections, same newly-claimed vertex counts."""
    from ..core.selection import KernelSelector
    from ..core.tilebfs import TileBFS
    classic = TileBFS(case.matrix, nt=case.nt,
                      selector=KernelSelector(tier="kernels"))
    fused = TileBFS(case.matrix, nt=case.nt,
                    selector=KernelSelector(tier="fastpath"))
    for s in case.sources:
        ref = classic.run(int(s))
        got = fused.run(int(s))
        if not np.array_equal(got.levels, ref.levels):
            bad = int(np.argmax(got.levels != ref.levels))
            return (f"fused levels from source {s} diverge at vertex "
                    f"{bad}: got {got.levels[bad]}, "
                    f"want {ref.levels[bad]}")
        want = [(it.kernel, it.new_vertices) for it in ref.iterations]
        have = [(it.kernel, it.new_vertices) for it in got.iterations]
        if have != want:
            return (f"fused layer trace from source {s} diverges: "
                    f"got {have}, want {want}")
    return None


def check_production_replay(case: Case) -> Optional[str]:
    """Production mode (accounting compiled out, counters deferred)
    must replay into a timeline identical launch-for-launch to a
    counters-on modeled run — names, tags, and counter values."""
    def drive(op) -> None:
        if case.kind in _MULTIPLY_KINDS:
            for x in case.vectors:
                op.multiply(x)
        elif case.kind == "msbfs":
            op.run(list(case.sources))
        else:
            for s in case.sources:
                op.run(int(s))

    dev_ref = Device()
    drive(_build(case, device=dev_ref))

    ctx = ExecutionContext(mode="production")
    op = _build(case, device=ctx)
    drive(op)
    if op.ctx.deferred_launches == 0:
        return "production run recorded no deferred launches"
    dev_got = op.ctx.replay()

    ref, got = dev_ref.timeline, dev_got.timeline
    if len(ref) != len(got):
        return (f"replayed timeline has {len(got)} launches, the "
                f"counters-on run has {len(ref)}")
    for i, (a, b) in enumerate(zip(ref, got)):
        if a.name != b.name or a.tag != b.tag:
            return (f"replay launch {i} is {b.name!r}/{b.tag!r}, "
                    f"counters-on run has {a.name!r}/{a.tag!r}")
        if a.counters != b.counters:
            return (f"replayed counters for launch {i} ({a.name!r}) "
                    f"differ from the counters-on run")
    return None


# ----------------------------------------------------------------------
# sharded execution checks
# ----------------------------------------------------------------------
def _shard_bytes_identity(op, window) -> Optional[str]:
    """Assert one multiply's modeled bytes decompose exactly.

    ``window`` is the timeline slice of a single sharded multiply.  The
    contract: one schedule launch, per-shard launches all tagged
    ``shard=<id>``, one combiner whose bytes equal the exact formula
    ``2 * itemsize * sum(executed strip rows)`` — and nothing else, so
    the device total is per-shard sums plus schedule plus combine.
    """
    sched = [r for r in window if r.name == "sharded_schedule"]
    combine = [r for r in window if r.name == "sharded_combine"]
    if len(sched) != 1 or len(combine) != 1:
        return (f"expected one schedule and one combine launch, got "
                f"{len(sched)} and {len(combine)}")
    tagged = [r for r in window if r.tag and "shard=" in r.tag]
    known = {id(r) for r in sched + combine + tagged}
    stray = [r.name for r in window if id(r) not in known]
    if stray:
        return f"untagged launches inside a sharded multiply: {stray}"
    def shard_of(tag: str) -> int:
        # tags are ;-joined key=value parts, possibly with a caller
        # prefix and device=/worker= suffixes under parallel execution
        for part in tag.split(";"):
            if part.startswith("shard="):
                return int(part[len("shard="):])
        raise ValueError(f"no shard= part in tag {tag!r}")

    executed = sorted({shard_of(r.tag) for r in tagged
                       if r.name == "sharded_spmspv_shard"})
    itemsize = op.semiring.dtype.itemsize
    expect = 2.0 * itemsize * sum(op.matrix.strip_rows(s)
                                  for s in executed)
    got = combine[0].counters.global_bytes
    if got != expect:
        return (f"combiner bytes {got} != exact formula {expect} "
                f"(2*{itemsize}*rows of executed shards {executed})")
    total = sum(r.counters.global_bytes for r in window)
    parts = (sched[0].counters.global_bytes
             + sum(r.counters.global_bytes for r in tagged) + got)
    if total != parts:
        return (f"modeled bytes {total} != per-shard sums + schedule "
                f"+ combine = {parts}")
    return None


def check_shard_invariance(case: Case) -> Optional[str]:
    """1-shard and N-shard execution are bit-identical, and each
    multiply's modeled bytes equal per-shard sums plus the combiner's
    exact merge cost (N ∈ {2, 4, 7}; clamped to the tile-row count on
    small cases)."""
    from ..shards.engine import ShardedSpMSpV
    sr = case.sr

    def run(n_shards):
        dev = Device()
        op = ShardedSpMSpV(case.matrix, nt=case.nt, semiring=sr,
                           device=dev, n_shards=n_shards)
        outs = []
        for x in case.vectors:
            start = len(dev.timeline)
            outs.append(op.multiply(x, output="dense"))
            err = _shard_bytes_identity(op, dev.timeline[start:])
            if err:
                return None, f"{n_shards}-shard: {err}"
        return outs, None

    base, err = run(1)
    if err:
        return err
    for n in (2, 4, 7):
        outs, err = run(n)
        if err:
            return err
        for i, (got, want) in enumerate(zip(outs, base)):
            if sr.dtype.kind in "ui":
                same = np.array_equal(got, want)
            else:
                # bit-level view: catches sign-of-zero / NaN drift an
                # allclose would wave through
                same = np.array_equal(got.view(np.uint64),
                                      want.view(np.uint64))
            if not same:
                bad = int(np.flatnonzero(
                    got.view(np.uint64) != want.view(np.uint64))[0]) \
                    if sr.dtype.kind not in "ui" else \
                    int(np.flatnonzero(got != want)[0])
                return (f"shard-count variance: N={n} vector {i} "
                        f"differs from 1-shard at slot {bad}: "
                        f"got {got[bad]!r}, want {want[bad]!r}")
    return None


def check_parallel_invariance(case: Case) -> Optional[str]:
    """Multi-worker shard execution is an implementation detail.

    For workers ∈ {1, 2, 4}: results are bit-identical to the
    sequential sharded engine AND to the unsharded operator; the
    launch stream (names, shard tags, every counter field) matches the
    sequential stream exactly once device=/worker= annotations are
    stripped; and the merged multi-device timeline decomposes exactly
    into its per-device lanes, with the critical path never exceeding
    the sum of work.  Engines are rebuilt per vector so both sides run
    cold — warm-residency traffic depends on placement history, which
    is exactly what this check must not let leak into the model.
    """
    from ..core.spmspv import TileSpMSpV
    from ..parallel import ParallelConfig
    from ..shards.engine import ShardedSpMSpV
    sr = case.sr
    n_shards = 4

    def norm_tag(tag):
        if tag is None:
            return None
        kept = [p for p in tag.split(";")
                if not p.startswith(("device=", "worker="))]
        return ";".join(kept)

    def stream(dev):
        return [(r.name, norm_tag(r.tag), r.counters)
                for r in dev.timeline]

    for i, x in enumerate(case.vectors):
        dev_seq = Device()
        y_seq = ShardedSpMSpV(case.matrix, nt=case.nt, semiring=sr,
                              device=dev_seq, n_shards=n_shards
                              ).multiply(x, output="dense")
        y_flat = TileSpMSpV(case.matrix, nt=case.nt, semiring=sr
                            ).multiply(x, output="dense")
        if not np.array_equal(y_seq.view(np.uint8),
                              y_flat.view(np.uint8)):
            return (f"vector {i}: sequential sharded result differs "
                    f"from the unsharded operator")
        ref_stream = stream(dev_seq)
        for w in (1, 2, 4):
            dev = Device()
            cfg = ParallelConfig(
                workers=w, backend="serial" if w == 1 else "thread")
            op = ShardedSpMSpV(case.matrix, nt=case.nt, semiring=sr,
                               device=dev, n_shards=n_shards,
                               parallel=cfg)
            y = op.multiply(x, output="dense")
            if not np.array_equal(y.view(np.uint8),
                                  y_seq.view(np.uint8)):
                bad = int(np.flatnonzero(
                    y.view(np.uint8) != y_seq.view(np.uint8))[0])
                return (f"vector {i}: workers={w} result differs from "
                        f"sequential near byte {bad}")
            got_stream = stream(dev)
            if len(got_stream) != len(ref_stream):
                return (f"vector {i}: workers={w} launched "
                        f"{len(got_stream)} kernels, sequential "
                        f"launched {len(ref_stream)}")
            for j, (a, b) in enumerate(zip(ref_stream, got_stream)):
                if a[:2] != b[:2]:
                    return (f"vector {i}: workers={w} launch {j} is "
                            f"{b[0]!r}/{b[1]!r}, sequential has "
                            f"{a[0]!r}/{a[1]!r}")
                if a[2] != b[2]:
                    return (f"vector {i}: workers={w} launch {j} "
                            f"({a[0]!r}) counters differ from "
                            f"sequential")
            if w > 1:
                mt = op.multi_timeline(w)
                err = mt.decomposes(dev)
                if err:
                    return (f"vector {i}: workers={w} multi-device "
                            f"timeline does not decompose: {err}")
                if mt.critical_path_ms > mt.sum_of_work_ms + 1e-12:
                    return (f"vector {i}: workers={w} critical path "
                            f"{mt.critical_path_ms} exceeds sum of "
                            f"work {mt.sum_of_work_ms}")
    return None


# ----------------------------------------------------------------------
# serving-layer checks
# ----------------------------------------------------------------------
def check_serving_equivalence(case: Case) -> Optional[str]:
    """Replaying a recorded request schedule through the serving layer
    must be bit-identical to direct engine calls.

    The schedule is deterministic: the case's vectors arrive at fixed
    virtual-time intervals against a coalescing service (batch budget
    2, latency budget 1 ms), so some requests dispatch on the size
    budget and some on the clock — both paths must hand back exactly
    what :class:`~repro.core.spmspv.TileSpMSpV` computes for the same
    vector, and every request must resolve to at least one tagged
    launch in the trace.
    """
    from ..core.spmspv import TileSpMSpV
    from ..runtime import Tracer
    from ..serving import GraphQueryService, MultiplyQuery, VirtualClock

    clock = VirtualClock()
    svc = GraphQueryService(device=Device(), tracer=Tracer(),
                            clock=clock, max_batch=2, max_delay_ms=1.0)
    svc.register_matrix("m", case.matrix, nt=case.nt)
    tickets = []
    for i, x in enumerate(case.vectors):
        clock.advance(0.4e-3)           # recorded arrival spacing
        svc.pump()
        tickets.append(svc.submit_nowait(
            MultiplyQuery("m", x, semiring=case.sr, output="dense")))
    clock.advance(1.1e-3)
    svc.pump()
    svc.drain()

    direct = TileSpMSpV(case.matrix, nt=case.nt, semiring=case.sr)
    for i, (x, t) in enumerate(zip(case.vectors, tickets)):
        if not t.done:
            return f"request {i} never dispatched"
        want = direct.multiply(x, output="dense")
        got = t.value
        if case.sr.dtype.kind in "ui":
            same = np.array_equal(got, want)
        else:
            same = np.array_equal(got.view(np.uint64),
                                  want.view(np.uint64))
        if not same:
            bad = int(np.flatnonzero(np.asarray(got) != want)[0]) \
                if case.sr.dtype.kind in "ui" else \
                int(np.flatnonzero(got.view(np.uint64)
                                   != want.view(np.uint64))[0])
            return (f"served result {i} differs from direct engine "
                    f"at slot {bad}: got {got[bad]!r}, "
                    f"want {want[bad]!r}")
        if not svc.events_for(t.request_id):
            return (f"request {i} resolves to no tagged launches in "
                    f"the trace")
    return None


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
_PRIMITIVE_CHECKS: Dict[str, Callable[[Case], Optional[str]]] = {
    "scatter-merge": check_scatter_merge,
    "pagerank": check_pagerank,
    "sssp": check_sssp,
    "mm-roundtrip": check_mm_roundtrip,
}


def checks_for(case: Case
               ) -> List[Tuple[str, Callable[[Case], Optional[str]]]]:
    """The (name, fn) checks applicable to ``case``."""
    if case.kind == "primitive":
        return [(case.operator, _PRIMITIVE_CHECKS[case.operator])]
    entry = resolve_operator(case.operator)
    if case.kind == "spmm":
        return [("spmm-oracle", check_oracle_spmm),
                ("spmm-column-slice", check_spmm_column_slice),
                ("spmm-kernel-parity", check_spmm_kernel_parity),
                ("counters", check_counters)]
    if case.kind in _MULTIPLY_KINDS:
        out = [("oracle", check_oracle_multiply),
               ("siblings", check_siblings_multiply),
               ("counters", check_counters)]
        if case.semiring == "plus_times":
            out.append(("permute-rows", check_permute_rows))
            out.append(("scale-linearity", check_scale_linearity))
        if entry.name == "tilespmspv":
            out.append(("plan-cache-replay", check_plan_cache_replay))
            out.append(("active-set-payload",
                        check_active_set_payload))
        if entry.name == "sharded-spmspv":
            out.append(("shard-invariance", check_shard_invariance))
            out.append(("parallel-invariance",
                        check_parallel_invariance))
        if entry.name in ("tilespmspv", "sharded-spmspv"):
            out.append(("production-replay", check_production_replay))
        if "batch" in entry.capabilities:
            out.append(("batch-of-one", check_batch_of_one))
            out.append(("serving-equivalence",
                        check_serving_equivalence))
            if len(case.vectors) > 1:
                out.append(("batched-union-bytes",
                            check_batched_union_bytes))
        return out
    out = [("oracle", check_oracle_bfs),
           ("siblings", check_siblings_bfs),
           ("counters", check_counters)]
    if entry.name == "tilebfs":
        out.append(("fastpath-equivalence", check_fastpath_equivalence))
    if entry.name in ("tilebfs", "msbfs"):
        out.append(("production-replay", check_production_replay))
    return out


CHECK_NAMES = sorted({
    "oracle", "siblings", "counters", "permute-rows",
    "scale-linearity", "plan-cache-replay", "active-set-payload",
    "batch-of-one", "batched-union-bytes", "shard-invariance",
    "parallel-invariance", "fastpath-equivalence", "production-replay",
    "serving-equivalence", "spmm-oracle", "spmm-column-slice",
    "spmm-kernel-parity",
    *_PRIMITIVE_CHECKS,
})


def run_check(name: str, case: Case) -> Optional[str]:
    """Run one named check on ``case``; exceptions become failures so
    the shrinker can minimize crashing cases too."""
    for check_name, fn in checks_for(case):
        if check_name == name:
            try:
                return fn(case)
            except Exception as exc:
                return f"{type(exc).__name__}: {exc}"
    raise ValueError(
        f"check {name!r} not applicable to {case.describe()}")
