"""Greedy case shrinking: minimize a failing case while it still fails.

The shrinker repeatedly proposes structurally smaller variants of a
failing :class:`~repro.verify.cases.Case` — dropping batch members,
halving the matrix nnz, shrinking the shape, thinning the input
vectors, truncating primitive payload arrays — and keeps any variant
on which the failing predicate still reports a failure.  It stops at a
fixpoint (no proposal still fails) or after ``max_evals`` predicate
evaluations, so a slow check cannot stall the harness.

The result is what gets serialized as the replayable JSON repro: small
enough to read, exact enough (bit-level value preservation) to still
trigger the bug.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from ..formats import COOMatrix
from ..vectors.sparse_vector import SparseVector
from .cases import Case, shrink_replace

__all__ = ["shrink"]

Predicate = Callable[[Case], Optional[str]]


def _halves(n: int):
    """(start, stop) index windows: first half, second half."""
    if n < 2:
        return []
    h = n // 2
    return [(0, h), (h, n)]


def _matrix_entry_subsets(case: Case) -> Iterator[Case]:
    coo = case.matrix
    if coo is None:
        return
    for lo, hi in _halves(coo.nnz):
        sub = COOMatrix(coo.shape, coo.row[lo:hi], coo.col[lo:hi],
                        coo.val[lo:hi])
        yield shrink_replace(case, matrix=sub)


def _shape_shrinks(case: Case) -> Iterator[Case]:
    coo = case.matrix
    if coo is None:
        return
    m, n = coo.shape
    square = m == n
    for new_m, new_n in ((max(1, m // 2), max(1, n // 2)),):
        if square:
            new_m = new_n = max(new_m, new_n)
        if (new_m, new_n) == (m, n):
            continue
        keep = (coo.row < new_m) & (coo.col < new_n)
        sub = COOMatrix((new_m, new_n), coo.row[keep], coo.col[keep],
                        coo.val[keep])
        vectors = []
        ok = True
        for v in case.vectors:
            inside = v.indices < new_n
            vectors.append(SparseVector(new_n, v.indices[inside],
                                        v.values[inside]))
        sources = tuple(s for s in case.sources if s < new_m)
        if case.sources and not sources:
            ok = False
        if ok:
            yield shrink_replace(case, matrix=sub,
                                 vectors=tuple(vectors),
                                 sources=sources)


def _vector_thins(case: Case) -> Iterator[Case]:
    # drop whole batch members first — the cheapest big win
    if len(case.vectors) > 1:
        for i in range(len(case.vectors)):
            yield shrink_replace(
                case, vectors=case.vectors[:i] + case.vectors[i + 1:])
    # then halve each vector's nnz
    for i, v in enumerate(case.vectors):
        for lo, hi in _halves(len(v.indices)):
            thinned = SparseVector(v.n, v.indices[lo:hi],
                                   v.values[lo:hi])
            vecs = (case.vectors[:i] + (thinned,)
                    + case.vectors[i + 1:])
            yield shrink_replace(case, vectors=vecs)


def _source_drops(case: Case) -> Iterator[Case]:
    if len(case.sources) > 1:
        for i in range(len(case.sources)):
            yield shrink_replace(
                case, sources=case.sources[:i] + case.sources[i + 1:])


def _data_shrinks(case: Case) -> Iterator[Case]:
    """Primitive payloads: halve idx/values together, then shorten the
    base array (dropping updates that fall out of range)."""
    if "idx" not in case.data:
        return
    idx = case.data["idx"]
    values = case.data["values"]
    out = case.data["out"]
    for lo, hi in _halves(len(idx)):
        yield shrink_replace(case, data={"out": out,
                                         "idx": idx[lo:hi],
                                         "values": values[lo:hi]})
    if len(out) > 1:
        half = max(1, len(out) // 2)
        keep = idx < half
        yield shrink_replace(case, data={"out": out[:half],
                                         "idx": idx[keep],
                                         "values": values[keep]})


def _proposals(case: Case) -> Iterator[Case]:
    yield from _vector_thins(case)
    yield from _source_drops(case)
    yield from _matrix_entry_subsets(case)
    yield from _shape_shrinks(case)
    yield from _data_shrinks(case)


def shrink(case: Case, fails: Predicate,
           max_evals: int = 200) -> Case:
    """Greedily minimize ``case`` while ``fails(case)`` keeps returning
    a failure message.  The input case is assumed failing."""
    evals = 0
    current = case
    progress = True
    while progress and evals < max_evals:
        progress = False
        for candidate in _proposals(current):
            evals += 1
            if evals > max_evals:
                break
            try:
                still_failing = fails(candidate) is not None
            except Exception:
                # a shrunk variant that crashes the predicate itself
                # (not the check — run_check converts check crashes to
                # messages) is not a valid repro; skip it
                continue
            if still_failing:
                current = candidate
                progress = True
                break
    return current
