"""Differential verification harness over the operator registry.

Cross-checks every registered operator three ways — against
independent SciPy/dense oracles, against sibling operators on
identical inputs, and against gpusim counter/model invariants and
metamorphic relations — over a randomized grid of (matrix family x
shape x tile size x semiring x vector density x batch size).  Failing
cases auto-shrink to minimal JSON repros replayable through
``python -m repro.bench verify --replay``.
"""

from .cases import (Case, SEMIRINGS, case_from_json, case_to_json,
                    generate_cases, load_repro, save_repro)
from .checks import CHECK_NAMES, checks_for, run_check
from .harness import (Failure, REPRO_DIR, VerifyReport,
                      builtin_repro_paths, replay_repro,
                      run_verification)
from .shrink import shrink

__all__ = [
    "Case", "SEMIRINGS", "case_from_json", "case_to_json",
    "generate_cases", "load_repro", "save_repro",
    "CHECK_NAMES", "checks_for", "run_check",
    "Failure", "REPRO_DIR", "VerifyReport", "builtin_repro_paths",
    "replay_repro", "run_verification",
    "shrink",
]
