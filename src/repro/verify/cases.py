"""Verification cases: one concrete workload for one operator.

A :class:`Case` bundles everything a check needs to run an operator —
the matrix, the input vectors (or BFS sources), the semiring and tile
size — plus a free-form ``data`` payload for primitive checks
(``scatter-merge`` carries raw ``out``/``idx``/``values`` arrays
instead of a matrix).  Cases serialize losslessly to JSON (including
``-0.0`` and ``uint64`` bit patterns) so a shrunk failing case can be
committed as a repro file and replayed byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..formats import COOMatrix
from ..matrices import generators as gen
from ..runtime import available_operators, resolve_operator
from ..semiring import MAX_TIMES, MIN_PLUS, OR_AND, PLUS_TIMES, Semiring
from ..vectors.generate import random_sparse_vector
from ..vectors.sparse_vector import SparseVector

__all__ = [
    "Case", "SEMIRINGS", "case_from_json", "case_to_json",
    "generate_cases", "load_repro", "save_repro",
]

SEMIRINGS: Dict[str, Semiring] = {
    "plus_times": PLUS_TIMES,
    "min_plus": MIN_PLUS,
    "max_times": MAX_TIMES,
    "or_and": OR_AND,
}

REPRO_VERSION = 1


@dataclass
class Case:
    """One concrete verification workload.

    ``operator`` is a registry name, or one of the primitive suite
    names (``scatter-merge``, ``pagerank``, ``sssp``, ``mm-roundtrip``)
    with ``kind="primitive"``.
    """

    operator: str
    kind: str
    matrix: Optional[COOMatrix] = None
    vectors: Tuple[SparseVector, ...] = ()
    sources: Tuple[int, ...] = ()
    semiring: str = "plus_times"
    nt: int = 16
    data: Dict[str, np.ndarray] = field(default_factory=dict)
    label: str = ""

    @property
    def sr(self) -> Semiring:
        return SEMIRINGS[self.semiring]

    def describe(self) -> str:
        bits = [self.operator]
        if self.matrix is not None:
            bits.append(f"{self.matrix.shape[0]}x{self.matrix.shape[1]}"
                        f" nnz={self.matrix.nnz}")
        if self.vectors:
            bits.append(f"B={len(self.vectors)}")
        if self.sources:
            bits.append(f"sources={list(self.sources)}")
        if self.kind != "primitive":
            bits.append(f"{self.semiring} nt={self.nt}")
        if self.label:
            bits.append(f"[{self.label}]")
        return " ".join(bits)


# ----------------------------------------------------------------------
# JSON serialization — lossless for float64 (json round-trips -0.0 and
# every finite double exactly) and int64/uint64 (stored as exact ints)
# ----------------------------------------------------------------------
def _array_to_json(a: np.ndarray) -> dict:
    return {"dtype": str(a.dtype), "data": a.tolist()}


def _array_from_json(obj: dict) -> np.ndarray:
    return np.asarray(obj["data"], dtype=np.dtype(obj["dtype"]))


def _matrix_to_json(coo: COOMatrix) -> dict:
    return {
        "shape": list(coo.shape),
        "row": coo.row.tolist(),
        "col": coo.col.tolist(),
        "val": _array_to_json(coo.val),
    }


def _matrix_from_json(obj: dict) -> COOMatrix:
    return COOMatrix(
        tuple(obj["shape"]),
        np.asarray(obj["row"], dtype=np.int64),
        np.asarray(obj["col"], dtype=np.int64),
        _array_from_json(obj["val"]),
    )


def _vector_to_json(v: SparseVector) -> dict:
    return {"n": v.n, "indices": v.indices.tolist(),
            "values": _array_to_json(v.values)}


def _vector_from_json(obj: dict) -> SparseVector:
    return SparseVector(obj["n"],
                        np.asarray(obj["indices"], dtype=np.int64),
                        _array_from_json(obj["values"]))


def case_to_json(case: Case, check: str = "", note: str = "") -> dict:
    """Serialize ``case`` (plus the check it failed) to a JSON dict."""
    obj: dict = {
        "version": REPRO_VERSION,
        "operator": case.operator,
        "kind": case.kind,
        "check": check,
        "semiring": case.semiring,
        "nt": case.nt,
        "label": case.label,
    }
    if note:
        obj["note"] = note
    if case.matrix is not None:
        obj["matrix"] = _matrix_to_json(case.matrix)
    if case.vectors:
        obj["vectors"] = [_vector_to_json(v) for v in case.vectors]
    if case.sources:
        obj["sources"] = list(case.sources)
    if case.data:
        obj["data"] = {k: _array_to_json(v) for k, v in case.data.items()}
    return obj


def case_from_json(obj: dict) -> Tuple[Case, str]:
    """Inverse of :func:`case_to_json`; returns ``(case, check)``."""
    if obj.get("version") != REPRO_VERSION:
        raise ValueError(
            f"unsupported repro version {obj.get('version')!r}"
        )
    case = Case(
        operator=obj["operator"],
        kind=obj["kind"],
        matrix=_matrix_from_json(obj["matrix"]) if "matrix" in obj
        else None,
        vectors=tuple(_vector_from_json(v)
                      for v in obj.get("vectors", [])),
        sources=tuple(int(s) for s in obj.get("sources", [])),
        semiring=obj.get("semiring", "plus_times"),
        nt=int(obj.get("nt", 16)),
        data={k: _array_from_json(v)
              for k, v in obj.get("data", {}).items()},
        label=obj.get("label", ""),
    )
    return case, obj.get("check", "")


def save_repro(case: Case, check: str, path: Union[str, Path],
               note: str = "") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(case_to_json(case, check, note), indent=1)
                    + "\n", encoding="utf-8")
    return path


def load_repro(path: Union[str, Path]) -> Tuple[Case, str]:
    return case_from_json(
        json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# Grid generation
# ----------------------------------------------------------------------
# (family name, builder) — size argument scaled for smoke vs full runs
_FAMILIES_SMOKE = (
    ("banded", lambda seed: gen.banded(48, bandwidth=3, seed=seed)),
    ("erdos_renyi", lambda seed: gen.erdos_renyi(56, 4.0, seed=seed,
                                                 symmetric=False)),
    ("mesh2d", lambda seed: gen.mesh2d(7, seed=seed)),
)
_FAMILIES_FULL = _FAMILIES_SMOKE + (
    ("rmat", lambda seed: gen.rmat(9, edge_factor=8, seed=seed)),
    ("mesh3d", lambda seed: gen.mesh3d(7, seed=seed)),
    ("block_diagonal", lambda seed: gen.block_diagonal(
        16, 16, density=0.5, seed=seed)),
    ("road_network", lambda seed: gen.road_network(16, seed=seed)),
    ("fem_like", lambda seed: gen.fem_like(256, nnz_per_row=12,
                                           seed=seed)),
    ("erdos_renyi_large", lambda seed: gen.erdos_renyi(
        400, 6.0, seed=seed, symmetric=False)),
)

_NT_CHOICES = (4, 8, 16)
_DENSITIES = (0.02, 0.1, 0.4)


def _as_uint64_matrix(coo: COOMatrix, rng: np.random.Generator
                      ) -> COOMatrix:
    """Re-value a matrix with nonzero uint64 bitmask words."""
    vals = rng.integers(1, 1 << 16, size=coo.nnz).astype(np.uint64)
    return COOMatrix(coo.shape, coo.row, coo.col, vals)


def _uint64_vector(n: int, density: float, rng: np.random.Generator
                   ) -> SparseVector:
    base = random_sparse_vector(n, density,
                                seed=int(rng.integers(1 << 30)))
    vals = rng.integers(1, 1 << 16,
                        size=len(base.indices)).astype(np.uint64)
    return SparseVector(n, base.indices, vals)


def _multiply_cases(entry, rng: np.random.Generator, families,
                    samples: int) -> List[Case]:
    cases: List[Case] = []
    semirings = ["plus_times"]
    if "semiring" in entry.capabilities:
        semirings += ["min_plus", "max_times", "or_and"]
    # every supported semiring appears at least once per operator,
    # even in the small smoke grid
    samples = max(samples, len(semirings))
    for i in range(samples):
        fam_name, fam = families[int(rng.integers(len(families)))]
        seed = int(rng.integers(1 << 30))
        coo = fam(seed)
        n = coo.shape[1]
        nt = int(rng.choice(_NT_CHOICES)) \
            if "nt" in entry.capabilities else 16
        semiring = semirings[i % len(semirings)]
        density = float(rng.choice(_DENSITIES))
        batch = 3 if ("batch" in entry.capabilities
                      and rng.random() < 0.5) else 1
        if semiring == "or_and":
            coo = _as_uint64_matrix(coo, rng)
            vectors = tuple(_uint64_vector(n, density, rng)
                            for _ in range(batch))
        elif semiring == "min_plus":
            # non-negative weights: the oracle and kernels then agree
            # on path algebra without overflow concerns
            coo = COOMatrix(coo.shape, coo.row, coo.col,
                            np.abs(coo.val) + 0.05)
            vectors = tuple(
                SparseVector(n, v.indices, np.abs(v.values))
                for v in (random_sparse_vector(
                    n, density, seed=int(rng.integers(1 << 30)))
                    for _ in range(batch)))
        else:
            vectors = tuple(random_sparse_vector(
                n, density, seed=int(rng.integers(1 << 30)))
                for _ in range(batch))
        cases.append(Case(entry.name, entry.kind, matrix=coo,
                          vectors=vectors, semiring=semiring, nt=nt,
                          label=fam_name))
    if "rectangular" in entry.capabilities:
        seed = int(rng.integers(1 << 30))
        coo = gen.random_rectangular(40, 64, 0.08, seed=seed)
        x = random_sparse_vector(64, 0.1,
                                 seed=int(rng.integers(1 << 30)))
        nt = 8 if "nt" in entry.capabilities else 16
        cases.append(Case(entry.name, entry.kind, matrix=coo,
                          vectors=(x,), nt=nt, label="rectangular"))
    return cases


def _spmm_cases(entry, rng: np.random.Generator, families,
                samples: int) -> List[Case]:
    """SpMM workloads: a matrix plus ``B`` sparse column vectors (the
    checks densify them into the block).  Same semiring/value
    special-casing as the multiply grid; B sweeps small powers of
    two."""
    cases: List[Case] = []
    semirings = ["plus_times"]
    if "semiring" in entry.capabilities:
        semirings += ["min_plus", "max_times", "or_and"]
    samples = max(samples, len(semirings))
    block_sizes = (2, 4, 8)
    for i in range(samples):
        fam_name, fam = families[int(rng.integers(len(families)))]
        seed = int(rng.integers(1 << 30))
        coo = fam(seed)
        n = coo.shape[1]
        nt = int(rng.choice(_NT_CHOICES)) \
            if "nt" in entry.capabilities else 16
        semiring = semirings[i % len(semirings)]
        density = float(rng.choice(_DENSITIES))
        B = int(block_sizes[i % len(block_sizes)])
        if semiring == "or_and":
            coo = _as_uint64_matrix(coo, rng)
            vectors = tuple(_uint64_vector(n, density, rng)
                            for _ in range(B))
        elif semiring == "min_plus":
            coo = COOMatrix(coo.shape, coo.row, coo.col,
                            np.abs(coo.val) + 0.05)
            vectors = tuple(
                SparseVector(n, v.indices, np.abs(v.values))
                for v in (random_sparse_vector(
                    n, density, seed=int(rng.integers(1 << 30)))
                    for _ in range(B)))
        else:
            vectors = tuple(random_sparse_vector(
                n, density, seed=int(rng.integers(1 << 30)))
                for _ in range(B))
        cases.append(Case(entry.name, entry.kind, matrix=coo,
                          vectors=vectors, semiring=semiring, nt=nt,
                          label=fam_name))
    if "rectangular" in entry.capabilities:
        seed = int(rng.integers(1 << 30))
        coo = gen.random_rectangular(40, 64, 0.08, seed=seed)
        vectors = tuple(random_sparse_vector(
            64, 0.1, seed=int(rng.integers(1 << 30)))
            for _ in range(3))
        nt = 8 if "nt" in entry.capabilities else 16
        cases.append(Case(entry.name, entry.kind, matrix=coo,
                          vectors=vectors, nt=nt, label="rectangular"))
    return cases


def _graph_cases(entry, rng: np.random.Generator, families,
                 samples: int) -> List[Case]:
    cases: List[Case] = []
    for _ in range(samples):
        fam_name, fam = families[int(rng.integers(len(families)))]
        seed = int(rng.integers(1 << 30))
        coo = fam(seed)
        n = coo.shape[0]
        nt = int(rng.choice(_NT_CHOICES)) \
            if "nt" in entry.capabilities else 16
        k = 4 if entry.kind == "msbfs" else 1
        sources = tuple(int(s) for s in rng.choice(
            n, size=min(k, n), replace=False))
        cases.append(Case(entry.name, entry.kind, matrix=coo,
                          sources=sources, nt=nt, label=fam_name))
    return cases


def generate_cases(seed: int = 0, smoke: bool = True,
                   operators: Optional[Sequence[str]] = None
                   ) -> List[Case]:
    """Build the randomized verification grid.

    Every registered operator (optionally filtered to ``operators``)
    gets ``samples`` cases drawn from (matrix family x tile size x
    semiring x vector density x batch size); the draw is fully
    determined by ``seed``.
    """
    rng = np.random.default_rng(seed)
    families = _FAMILIES_SMOKE if smoke else _FAMILIES_FULL
    samples = 2 if smoke else 8
    names = list(operators) if operators else available_operators()
    cases: List[Case] = []
    for name in names:
        entry = resolve_operator(name)
        if entry is None:
            raise ValueError(f"unknown operator {name!r}")
        if entry.kind in ("spmspv", "spmv"):
            cases.extend(_multiply_cases(entry, rng, families, samples))
        elif entry.kind == "spmm":
            cases.extend(_spmm_cases(entry, rng, families, samples))
        else:
            cases.extend(_graph_cases(entry, rng, families, samples))
    if operators is None:
        cases.extend(_primitive_cases(rng, smoke))
    return cases


def _primitive_cases(rng: np.random.Generator,
                     smoke: bool) -> List[Case]:
    """Cases for the non-registry suites: scatter-merge bit-identity,
    pagerank vs the dense oracle, sssp vs dijkstra, Matrix Market
    round-trips."""
    cases: List[Case] = []
    samples = 2 if smoke else 5
    for _ in range(samples):
        # scatter-merge: bases and addends mixing +-0.0 and normals —
        # the regime where the bincount fast path used to flip signs
        size = int(rng.integers(4, 40))
        out = rng.choice([0.0, -0.0, 1.5, -2.5],
                         size=size).astype(np.float64)
        k = int(rng.integers(1, 3 * size))
        idx = rng.integers(0, size, size=k).astype(np.int64)
        values = rng.choice([0.0, -0.0, 1.0, -1.0, 0.25],
                            size=k).astype(np.float64)
        cases.append(Case("scatter-merge", "primitive",
                          data={"out": out, "idx": idx,
                                "values": values},
                          label="signed-zero-mix"))
    for _ in range(samples):
        seed = int(rng.integers(1 << 30))
        coo = gen.erdos_renyi(40, 3.0, seed=seed, symmetric=False)
        coo = COOMatrix(coo.shape, coo.row, coo.col,
                        np.abs(coo.val) + 0.1)
        cases.append(Case("pagerank", "primitive", matrix=coo,
                          label="weighted-digraph"))
        src = int(rng.integers(coo.shape[0]))
        cases.append(Case("sssp", "primitive", matrix=coo,
                          sources=(src,), label="weighted-digraph"))
    for _ in range(samples):
        seed = int(rng.integers(1 << 30))
        coo = gen.erdos_renyi(24, 3.0, seed=seed, symmetric=False)
        cases.append(Case("mm-roundtrip", "primitive", matrix=coo,
                          label="real"))
        big = (1 << 53) + int(rng.integers(1, 1 << 20))
        ints = COOMatrix(coo.shape, coo.row, coo.col,
                         rng.integers(-big, big,
                                      size=coo.nnz).astype(np.int64))
        cases.append(Case("mm-roundtrip", "primitive", matrix=ints,
                          label="integer"))
    return cases


def shrink_replace(case: Case, **kwargs) -> Case:
    """`dataclasses.replace` re-export used by the shrinker."""
    return replace(case, **kwargs)
