"""Top-level differential verification driver.

``run_verification`` replays the committed repro corpus (regression
cases earlier harness runs shrank out of real bugs), then sweeps the
randomized case grid, running every applicable check from
:mod:`repro.verify.checks` on every case.  Each failure is shrunk to a
minimal still-failing case and serialized to a JSON repro that
``python -m repro.bench verify --replay <file>`` (or a committed copy
under ``src/repro/verify/repros/``) reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from .cases import (Case, case_to_json, generate_cases, load_repro,
                    save_repro)
from .checks import checks_for, run_check
from .shrink import shrink

__all__ = ["Failure", "VerifyReport", "run_verification",
           "replay_repro", "builtin_repro_paths", "REPRO_DIR"]

REPRO_DIR = Path(__file__).parent / "repros"


@dataclass
class Failure:
    operator: str
    check: str
    message: str
    case: Case
    repro_path: Optional[Path] = None

    def describe(self) -> str:
        where = f" -> {self.repro_path}" if self.repro_path else ""
        return (f"{self.operator} [{self.check}] "
                f"{self.case.describe()}: {self.message}{where}")


@dataclass
class VerifyReport:
    cases_run: int = 0
    checks_run: int = 0
    replayed: int = 0
    failures: List[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"verify: {self.cases_run} cases, {self.checks_run} "
            f"checks, {self.replayed} repros replayed, "
            f"{len(self.failures)} failures"
        ]
        for f in self.failures:
            lines.append("  FAIL " + f.describe())
        return "\n".join(lines)


def builtin_repro_paths() -> List[Path]:
    """The committed regression corpus, replayed on every run."""
    if not REPRO_DIR.is_dir():
        return []
    return sorted(REPRO_DIR.glob("*.json"))


def replay_repro(path: Union[str, Path]) -> Tuple[Case, str,
                                                  Optional[str]]:
    """Re-run one serialized repro; returns (case, check, failure)."""
    case, check = load_repro(path)
    return case, check, run_check(check, case)


def _out_path(out_dir: Path, failure_idx: int, case: Case,
              check: str) -> Path:
    safe_op = case.operator.replace("/", "-")
    return out_dir / f"repro-{failure_idx:03d}-{safe_op}-{check}.json"


def run_verification(seed: int = 0, smoke: bool = True,
                     operators: Optional[Sequence[str]] = None,
                     out_dir: Union[str, Path, None] = None,
                     replay_builtin: bool = True,
                     shrink_failures: bool = True,
                     verbose: bool = False) -> VerifyReport:
    """Run the full differential sweep.

    Parameters
    ----------
    seed:
        Determines the whole case grid (same seed, same cases).
    smoke:
        Small grid for CI; ``False`` runs the nightly-sized grid.
    operators:
        Restrict to these registry names (primitive suites are then
        skipped too).
    out_dir:
        Where shrunk failure repros are written (default
        ``verify-failures/`` under the current directory); only
        created when something fails.
    replay_builtin:
        Replay the committed corpus in ``src/repro/verify/repros/``
        first.
    shrink_failures:
        Minimize failing cases before serializing them.
    """
    report = VerifyReport()
    out_dir = Path(out_dir) if out_dir is not None \
        else Path("verify-failures")

    def record(case: Case, check: str, message: str) -> None:
        if shrink_failures:
            case = shrink(case, lambda c: run_check(check, c))
            message = run_check(check, case) or message
        path = save_repro(case, check,
                          _out_path(out_dir, len(report.failures),
                                    case, check),
                          note=message)
        report.failures.append(Failure(case.operator, check, message,
                                       case, path))

    if replay_builtin and operators is None:
        for path in builtin_repro_paths():
            case, check, failure = replay_repro(path)
            report.replayed += 1
            report.checks_run += 1
            if failure is not None:
                report.failures.append(Failure(
                    case.operator, check,
                    f"committed repro {path.name} failing: {failure}",
                    case, None))

    for case in generate_cases(seed=seed, smoke=smoke,
                               operators=operators):
        report.cases_run += 1
        if verbose:
            print(f"  case {case.describe()}")
        for check_name, fn in checks_for(case):
            report.checks_run += 1
            try:
                failure = fn(case)
            except Exception as exc:
                failure = f"{type(exc).__name__}: {exc}"
            if failure is not None:
                record(case, check_name, failure)
    return report
