"""Typed exceptions used across the library.

Every invalid-input path in the public API raises one of these rather
than a bare ``ValueError`` so callers can distinguish library-contract
violations from their own bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class FormatError(ReproError):
    """A sparse-format invariant is violated (bad ptr array, unsorted
    indices where sorted ones are required, out-of-range index, ...)."""


class ShapeError(ReproError):
    """Operand shapes are incompatible (e.g. ``A @ x`` with
    ``A.shape[1] != len(x)``)."""


class TileError(ReproError):
    """A tiled-structure invariant is violated (unsupported tile size,
    inconsistent tile pointers, ...)."""


class ConversionError(ReproError):
    """A format conversion cannot be performed (e.g. BSR with a block
    size that does not divide the padded dimension)."""


class DeviceError(ReproError):
    """The GPU execution model was used inconsistently (unknown spec,
    negative counter, ...)."""


class IOFormatError(ReproError):
    """A Matrix Market (or other on-disk) file is malformed."""
