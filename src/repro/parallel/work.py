"""Cost-model work scheduling for the parallel shard executor.

The skip-scheduler (:class:`~repro.shards.scheduler.ShardScheduler`)
decides *which* shards run; this module decides *where* and *in what
order*.  Per executed shard it estimates work from the same metadata
the skip pass already reads — the shard's tile-column occupancy bitmap
ANDed with the input's active tile columns — scaled by the shard's
nnz-per-occupied-column, so a hub-heavy strip with every column active
prices higher than a sparse strip grazed by the frontier.

Assignment is longest-processing-time-first onto the least-loaded
worker, with **sticky affinity**: a shard prefers the worker that ran
it last (whose resident-set slice already holds its pages) and is
stolen away only when that worker's queue is already heavier than the
lightest queue by more than the shard's own cost — the classic
balance-vs-locality trade, resolved in favour of locality until it
costs more than it saves.

Each worker's ordered shard list is then cut into up to
``steal_chunks`` task chunks (largest first across workers), so pool
backends dispatch chunk-by-chunk and an idle slot picks up the tail of
a straggler's queue instead of waiting on the barrier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["WorkItem", "WorkChunk", "WorkPlan", "WorkScheduler"]


@dataclass(frozen=True)
class WorkItem:
    """One shard's planned execution."""

    sid: int
    cost: float
    worker: int
    stolen: bool = False    # moved off its sticky worker this plan


@dataclass(frozen=True)
class WorkChunk:
    """A contiguous run of one worker's queue, dispatched as one task."""

    worker: int
    sids: tuple
    cost: float


@dataclass
class WorkPlan:
    """The placement of one multiply's executed shards."""

    workers: int
    items: List[WorkItem] = field(default_factory=list)
    chunks: List[WorkChunk] = field(default_factory=list)

    @property
    def per_worker(self) -> List[List[int]]:
        out: List[List[int]] = [[] for _ in range(self.workers)]
        for item in self.items:
            out[item.worker].append(item.sid)
        return out

    @property
    def loads(self) -> List[float]:
        out = [0.0] * self.workers
        for item in self.items:
            out[item.worker] += item.cost
        return out

    @property
    def stolen(self) -> int:
        return sum(1 for item in self.items if item.stolen)

    @property
    def imbalance(self) -> float:
        """max/mean worker load — 1.0 is a perfect balance."""
        loads = [ld for ld in self.loads]
        busy = [ld for ld in loads if ld > 0] or [0.0]
        mean = sum(loads) / self.workers
        return (max(loads) / mean) if mean > 0 else 1.0

    @property
    def predicted_speedup(self) -> float:
        """Cost-model speedup bound: total work / longest worker queue
        (what a perfectly overlapped execution of this placement would
        achieve; the multi-device timeline's measured
        ``modeled_speedup`` should land close to it)."""
        loads = self.loads
        longest = max(loads) if loads else 0.0
        return (sum(loads) / longest) if longest > 0 else 1.0

    def worker_of(self, sid: int) -> int:
        for item in self.items:
            if item.sid == sid:
                return item.worker
        raise KeyError(sid)


class WorkScheduler:
    """Shard → worker placement with cost estimates and affinity.

    Parameters
    ----------
    matrix:
        The :class:`~repro.shards.sharded_matrix.ShardedTiledMatrix`
        being executed (occupancy bitmaps + per-shard nnz drive the
        cost model).
    workers:
        Worker count (fixed for the scheduler's lifetime).
    affinity:
        Honour sticky shard→worker placement across multiplies.
    steal_chunks:
        Chunks each worker's queue is cut into for dynamic stealing.
    """

    def __init__(self, matrix, workers: int, affinity: bool = True,
                 steal_chunks: int = 2):
        self.matrix = matrix
        self.workers = int(workers)
        self.affinity = bool(affinity)
        self.steal_chunks = max(1, int(steal_chunks))
        #: sid -> worker that last executed it (updated every plan).
        self.sticky: Dict[int, int] = {}
        self.plans = 0
        self.stolen_total = 0
        self.affinity_hits = 0
        # per-shard constants of the cost model, computed once
        occ = matrix.occupancy
        self._occ = occ
        ones = np.unpackbits(occ.view(np.uint8), axis=1).sum(axis=1)
        self._occupied_cols = np.maximum(1, ones.astype(np.float64))
        self._nnz = np.maximum(
            1.0, np.asarray(matrix.shard_nnz, dtype=np.float64))

    # ------------------------------------------------------------------
    def estimate(self, sid: int, active_mask: np.ndarray) -> float:
        """Modeled work of one shard for this input.

        ``popcount(occupancy & active) / popcount(occupancy)`` is the
        fraction of the shard's occupied tile columns the input
        touches; scaled by the shard's nnz it approximates the edges
        the kernel will traverse, plus a constant launch charge.
        """
        hit_words = self._occ[sid] & active_mask
        hit = int(np.unpackbits(hit_words.view(np.uint8)).sum())
        frac = hit / self._occupied_cols[sid]
        return 1.0 + frac * self._nnz[sid]

    def active_mask(self, active_tile_cols: np.ndarray) -> np.ndarray:
        """The uint64 bitmap of active tile columns (same layout as the
        occupancy rows)."""
        mask = np.zeros(self._occ.shape[1], dtype=np.uint64)
        if active_tile_cols.size:
            cols = np.asarray(active_tile_cols, dtype=np.int64)
            np.bitwise_or.at(
                mask, cols // 64,
                np.uint64(1) << (cols % 64).astype(np.uint64))
        return mask

    # ------------------------------------------------------------------
    def plan(self, executed, active_tile_cols: np.ndarray) -> WorkPlan:
        """Place ``executed`` shards onto workers (deterministic)."""
        mask = self.active_mask(active_tile_cols)
        costs = [(self.estimate(int(s), mask), int(s)) for s in executed]
        # LPT: heaviest first; ties broken by shard id for determinism
        costs.sort(key=lambda cs: (-cs[0], cs[1]))
        loads = [0.0] * self.workers
        plan = WorkPlan(self.workers)
        for cost, sid in costs:
            lightest = min(range(self.workers), key=lambda w: (loads[w], w))
            target, stolen = lightest, False
            pref = self.sticky.get(sid) if self.affinity else None
            if pref is not None:
                if loads[pref] <= loads[lightest] + cost:
                    target = pref
                    self.affinity_hits += 1
                else:
                    stolen = True
                    self.stolen_total += 1
            loads[target] += cost
            plan.items.append(WorkItem(sid, cost, target, stolen))
            self.sticky[sid] = target
        plan.chunks = self._cut_chunks(plan)
        self.plans += 1
        return plan

    def _cut_chunks(self, plan: WorkPlan) -> List[WorkChunk]:
        chunks: List[WorkChunk] = []
        for worker, sids in enumerate(plan.per_worker):
            if not sids:
                continue
            by_sid = {i.sid: i.cost for i in plan.items
                      if i.worker == worker}
            n_chunks = min(self.steal_chunks, len(sids))
            bounds = np.linspace(0, len(sids), n_chunks + 1).astype(int)
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if hi > lo:
                    part = tuple(sids[lo:hi])
                    chunks.append(WorkChunk(
                        worker, part,
                        sum(by_sid[s] for s in part)))
        # heaviest chunks dispatch first: pool slots start on the long
        # poles, the short tails backfill
        chunks.sort(key=lambda c: (-c.cost, c.worker, c.sids))
        return chunks

    def seed_affinity(self, sid: int, worker: int) -> None:
        """Pin a shard's preferred worker ahead of planning (the batch
        queue routes hot shards to the worker already holding them)."""
        self.sticky[int(sid)] = int(worker) % self.workers

    def stats(self) -> Dict[str, float]:
        return {"plans": self.plans,
                "stolen": self.stolen_total,
                "affinity_hits": self.affinity_hits,
                "sticky_shards": len(self.sticky)}
