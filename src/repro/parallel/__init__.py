"""Parallel multi-worker shard execution.

Runs the row-strip shards of a
:class:`~repro.shards.sharded_matrix.ShardedTiledMatrix` concurrently:
a cost-model work scheduler places shards on workers
(:mod:`repro.parallel.work`), a pool executor runs them with private
resident-set slices and lookahead prefetch
(:mod:`repro.parallel.executor`), and the engine merges results as
they land — bit-identical to sequential execution, with the overlap
priced honestly on a
:class:`~repro.gpusim.MultiDeviceTimeline`.

Switched on by ``REPRO_WORKERS=N`` or an explicit
:class:`ParallelConfig` on any sharded operator.
"""

from .config import BACKEND_ENV, WORKERS_ENV, ParallelConfig, env_workers
from .executor import ParallelExecutor, ShardResult, WorkerSlice
from .work import WorkChunk, WorkItem, WorkPlan, WorkScheduler

__all__ = [
    "ParallelConfig", "WORKERS_ENV", "BACKEND_ENV", "env_workers",
    "WorkScheduler", "WorkPlan", "WorkItem", "WorkChunk",
    "ParallelExecutor", "WorkerSlice", "ShardResult",
]
