"""The worker-pool shard executor: slices, backends, prefetch.

Each worker owns a :class:`WorkerSlice` — a private attachment of the
shard store (:meth:`~repro.shards.store.DirectoryShardStore.attach`),
its own byte-budgeted :class:`~repro.shards.store.ResidentSetManager`
(``engine budget // workers``), and its own warmed per-shard plans — so
workers share *no* mutable state and a shard's pages stay hot on the
worker that keeps running it (see sticky affinity in
:mod:`repro.parallel.work`).

Three backends behind one ``run()`` generator:

* ``serial`` — the chunks execute on the calling thread in dispatch
  order; the reference the pools are checked against, and what a
  single worker uses.
* ``thread`` — a process-wide shared
  :class:`~concurrent.futures.ThreadPoolExecutor`; chunk results are
  yielded as futures land (the asynchronous combine).
* ``process`` — a ``fork``-context ``multiprocessing.Pool``; each
  worker process lazily builds its slices from a pickled descriptor
  (the directory store ships as its root path and re-attaches), and
  chunk results stream back through ``imap_unordered``.

Whatever the backend, results are **bit-identical** to the sequential
engine: row strips are disjoint, so the combine order cannot change a
single output bit, and each shard's kernel runs on the same warmed
tiling the sequential path would use.  The coordinator re-emits launch
records in ascending shard order, so the modeled timeline (and the
production replay log) is deterministic too — only the ``device=`` /
``worker=`` tag parts say where a shard actually ran.

Prefetch: while a chunk computes shard *i*, a lookahead walker touches
the mmap pages of shards ``i+1 .. i+depth`` of the same chunk, so the
page-in cost overlaps the current kernel.  Load/evict bytes caused by
a prefetch are parked per shard and claimed by the compute that
consumes it — the launch record stream is identical with prefetch on
or off.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.selection import SPMM_MERGE_PATH
from ..core.spmm_kernels import (row_tile_imbalance,
                                 spmm_merge_path_kernel,
                                 spmm_row_warp_kernel)
from ..core.spmspv_kernels import batched_union_kernel, tiled_kernel
from ..gpusim import KernelCounters
from ..runtime import OperatorPlan, PlanCache
from ..semiring import Semiring
from ..shards.store import ResidentSetManager
from ..tiles.tiled_matrix import TiledMatrix
from .config import ParallelConfig
from .work import WorkChunk, WorkPlan

__all__ = ["ShardResult", "WorkerSlice", "ParallelExecutor"]

#: The arrays of a tiled shard whose pages the prefetcher touches.
_TILED_ARRAYS = ("tile_ptr", "tile_colidx", "tile_nnz_ptr",
                 "local_row", "local_col", "values")

_PAGE = 4096


def _touch_pages(tiled: TiledMatrix) -> int:
    """Read one byte per page of every payload array (best effort).

    Forces the OS to fault mmap pages in ahead of the kernel; on an
    in-memory store it is a cheap strided read.  Returns pages touched.
    """
    touched = 0
    for name in _TILED_ARRAYS:
        arr = np.ascontiguousarray(getattr(tiled, name)) \
            if not getattr(tiled, name).flags["C_CONTIGUOUS"] \
            else getattr(tiled, name)
        raw = arr.view(np.uint8).reshape(-1)
        if raw.size:
            touched += int(raw[::_PAGE].size)
            # the sum forces the reads; the value is irrelevant
            int(raw[::_PAGE].sum())
    return touched


@dataclass
class ShardResult:
    """One shard's finished work, as shipped back to the coordinator.

    ``outs`` holds one ``(local_row_idx, values)`` pair per input
    vector — already compressed to non-identity rows, so a process
    backend pickles the strip's answer, not the strip.
    """

    sid: int
    device: int                     # planned worker (the model's clock)
    worker: str                     # who actually ran it (pid / index)
    outs: List[Tuple[np.ndarray, np.ndarray]]
    counters: Optional[KernelCounters]
    loaded: int = 0
    evicted: int = 0
    prefetched: bool = False


class WorkerSlice:
    """One worker's private store attachment, resident slice, plans."""

    def __init__(self, wid: int, store, budget_bytes: Optional[int],
                 semiring: Semiring, pattern_only: bool,
                 plan_cache: Optional[PlanCache] = None,
                 plan_token=None):
        self.wid = int(wid)
        self.store = store
        self.resident = ResidentSetManager(store, budget_bytes)
        self.resident.evict_callbacks.append(self._drop_plan)
        self.semiring = semiring
        self.pattern_only = bool(pattern_only)
        self.cache = plan_cache
        self.plan_token = plan_token
        self._plans: Dict[int, OperatorPlan] = {}
        self._lock = threading.Lock()
        # load/evict bytes a prefetch caused, claimed by the compute
        # that consumes the shard (keeps the launch stream identical
        # with prefetch on or off)
        self._pending_loads: Dict[int, int] = {}
        self._pending_evicts: Dict[int, int] = {}
        self._was_prefetched: set = set()
        self.prefetches = 0

    # ------------------------------------------------------------------
    def _plan_key(self, sid: int):
        return ("sharded-spmspv", self.plan_token, sid, "w", self.wid)

    def _drop_plan(self, sid: int) -> None:
        self._plans.pop(sid, None)
        if self.cache is not None:
            self.cache.remove(self._plan_key(sid))

    def _get_plan(self, sid: int, tiled: TiledMatrix) -> OperatorPlan:
        from ..shards.engine import _warm_active_set

        def build() -> OperatorPlan:
            return OperatorPlan(
                kind="sharded-spmspv", key=self._plan_key(sid),
                data={"tiled": _warm_active_set(tiled)})

        if self.cache is not None:
            plan = self.cache.get_or_build(self._plan_key(sid), build,
                                           pin=self.store)
        else:
            plan = self._plans.get(sid)
            if plan is None:
                plan = build()
        self._plans[sid] = plan
        return plan

    def _execution_tiling(self, plan: OperatorPlan) -> TiledMatrix:
        from ..shards.engine import _pattern_view
        if not self.pattern_only:
            return plan.data["tiled"]
        return plan.lazy_get(
            "pattern", lambda: _pattern_view(plan.data["tiled"]))

    # ------------------------------------------------------------------
    def prefetch(self, sid: int) -> None:
        """Fault the shard into this slice and touch its pages; the
        I/O bytes are parked for the compute that will claim them."""
        sid = int(sid)
        with self._lock:
            if sid in self.resident.resident_ids:
                return
            tiled, loaded, evicted = self.resident.get(sid)
            if loaded:
                self._pending_loads[sid] = \
                    self._pending_loads.get(sid, 0) + loaded
            if evicted:
                self._pending_evicts[sid] = \
                    self._pending_evicts.get(sid, 0) + evicted
            self._was_prefetched.add(sid)
        _touch_pages(tiled)
        self.prefetches += 1

    def run_shard(self, sid: int, xts, batched: bool,
                  with_counters: bool, worker_label: str,
                  spmm_selector=None) -> ShardResult:
        """Execute one shard exactly as the sequential engine would.

        ``spmm_selector`` switches the shard into SpMM mode: ``xts``
        then holds one :class:`~repro.vectors.dense_block.DenseBlock`
        and the selector picks row-per-warp vs merge-path on the
        shard's own row-tile imbalance (cached on the shard plan, as
        in the sequential engine).
        """
        sid = int(sid)
        sr = self.semiring
        with self._lock:
            tiled, loaded, evicted = self.resident.get(sid)
            loaded += self._pending_loads.pop(sid, 0)
            evicted += self._pending_evicts.pop(sid, 0)
            prefetched = sid in self._was_prefetched
            self._was_prefetched.discard(sid)
            self.resident.pin(sid)
        key = self._plan_key(sid)
        try:
            plan = self._get_plan(sid, tiled)
            if self.cache is not None:
                self.cache.pin(key)
            try:
                A = self._execution_tiling(plan)
                if spmm_selector is not None:
                    imb = plan.lazy_get(
                        "spmm_imbalance",
                        lambda: row_tile_imbalance(A))
                    fn = spmm_merge_path_kernel \
                        if spmm_selector.choose_spmm(imb) \
                        == SPMM_MERGE_PATH else spmm_row_warp_kernel
                    Yb, counters = fn(A, xts[0], semiring=sr,
                                      with_counters=with_counters)
                    Ys = [Yb]
                elif batched:
                    Ys, counters = batched_union_kernel(
                        A, xts, semiring=sr)
                else:
                    y, counters = tiled_kernel(
                        A, xts[0], semiring=sr,
                        with_counters=with_counters)
                    Ys = [y]
            finally:
                if self.cache is not None:
                    self.cache.unpin(key)
        finally:
            with self._lock:
                self.resident.unpin(sid)
        outs = []
        for y_strip in Ys:
            if y_strip.ndim == 2:
                # SpMM strip: ship whole non-identity rows
                idx = np.flatnonzero(
                    np.any(~sr.is_identity(y_strip), axis=1))
            else:
                idx = np.flatnonzero(~sr.is_identity(y_strip))
            outs.append((idx, y_strip[idx]))
        return ShardResult(
            sid=sid, device=self.wid, worker=worker_label, outs=outs,
            counters=counters if with_counters else None,
            loaded=loaded, evicted=evicted, prefetched=prefetched)

    def stats(self) -> Dict[str, int]:
        out = self.resident.stats()
        out["prefetches"] = self.prefetches
        return out


# ----------------------------------------------------------------------
# chunk execution (shared by every backend; runs where the slice lives)
# ----------------------------------------------------------------------
def _run_chunk(slc: WorkerSlice, sids, xts, batched: bool,
               with_counters: bool, depth: int, overlap: bool,
               worker_label: str,
               spmm_selector=None) -> List[ShardResult]:
    """Run one chunk's shards in order, with lookahead prefetch.

    ``overlap=True`` (pool backends) walks the prefetcher on a short-
    lived background thread so page-in overlaps the current kernel;
    ``overlap=False`` (serial backend) touches the lookahead window
    synchronously — no overlap to model, but the same launch stream.
    """
    progress = {"done": 0}
    walker = None
    if depth > 0 and len(sids) > 1 and overlap:
        def _walk():
            for j in range(1, len(sids)):
                while j > progress["done"] + depth:
                    time.sleep(0.0005)
                try:
                    slc.prefetch(sids[j])
                except Exception:      # prefetch is best-effort only
                    return
        walker = threading.Thread(target=_walk, daemon=True)
        walker.start()
    results = []
    for i, sid in enumerate(sids):
        if depth > 0 and not overlap:
            for nxt in sids[i + 1:i + 1 + depth]:
                slc.prefetch(nxt)
        results.append(slc.run_shard(sid, xts, batched, with_counters,
                                     worker_label,
                                     spmm_selector=spmm_selector))
        progress["done"] = i + 1
    if walker is not None:
        walker.join(timeout=10.0)
    return results


# ----------------------------------------------------------------------
# shared thread pool (thread backend)
# ----------------------------------------------------------------------
#: One process-wide pool serves every thread-backend executor.  Worker
#: identity lives in the WorkerSlice an executor hands each chunk, not
#: in which OS thread runs it, so sharing threads is semantically
#: neutral — and it avoids spawning (then GC-finalizing) a pool per
#: engine, which under an env-wide REPRO_WORKERS setting meant
#: thousands of short-lived threads per test run and a rare
#: Thread.start()-during-GC deadlock.
_THREAD_POOL = None
_THREAD_POOL_SIZE = 16
_THREAD_POOL_GUARD = threading.Lock()


def _shared_thread_pool():
    global _THREAD_POOL
    with _THREAD_POOL_GUARD:
        if _THREAD_POOL is None:
            from concurrent.futures import ThreadPoolExecutor
            _THREAD_POOL = ThreadPoolExecutor(
                max_workers=_THREAD_POOL_SIZE,
                thread_name_prefix="repro-shard")
        return _THREAD_POOL


# ----------------------------------------------------------------------
# process backend plumbing (module-level for picklability)
# ----------------------------------------------------------------------
_PROC_PAYLOAD: Optional[dict] = None
_PROC_SLICES: Dict[int, WorkerSlice] = {}


def _process_init(payload: dict) -> None:
    global _PROC_PAYLOAD
    _PROC_PAYLOAD = payload
    _PROC_SLICES.clear()


def _process_slice(wid: int) -> WorkerSlice:
    slc = _PROC_SLICES.get(wid)
    if slc is None:
        p = _PROC_PAYLOAD
        slc = WorkerSlice(wid, p["store"].attach(), p["budget"],
                          p["semiring"], p["pattern_only"],
                          plan_cache=None, plan_token=p["plan_token"])
        _PROC_SLICES[wid] = slc
    return slc


def _process_chunk(task) -> Tuple[List[ShardResult], Tuple[int, int],
                                  Dict[str, int]]:
    wid, sids, xts, batched, with_counters, depth, spmm_selector = task
    slc = _process_slice(wid)
    # the worker label is the stable scheduler worker id, not the OS
    # pid: launch tags must be deterministic run to run so production
    # replay and the parallel-invariance check can compare them; the
    # real pid travels back in the snapshot key below.
    results = _run_chunk(slc, sids, xts, batched, with_counters, depth,
                         overlap=True, worker_label=str(wid),
                         spmm_selector=spmm_selector)
    return results, (os.getpid(), wid), slc.stats()


# ----------------------------------------------------------------------
@dataclass
class _ExecStats:
    chunks: int = 0
    results: int = 0
    slice_snapshots: Dict[Tuple[int, int], Dict[str, int]] = \
        field(default_factory=dict)


class ParallelExecutor:
    """Dispatches a :class:`~repro.parallel.work.WorkPlan` over a pool.

    Owns the worker slices (in-process backends) or the process pool
    and its slice descriptors (process backend).  ``run()`` is a
    generator yielding :class:`ShardResult` in **completion order** —
    the coordinator merges each result into the output accumulator the
    moment it lands (the asynchronous scatter-gather combine) and
    re-orders only the *launch records*, never the data.
    """

    def __init__(self, matrix, config: ParallelConfig,
                 semiring: Semiring, pattern_only: bool,
                 plan_cache: Optional[PlanCache] = None,
                 plan_token=None):
        self.matrix = matrix
        self.config = config
        self.workers = config.workers
        self.backend = config.resolved_backend(matrix.store)
        self.semiring = semiring
        self.pattern_only = bool(pattern_only)
        budget = config.slice_budget(matrix.resident.budget_bytes)
        self._budget = budget
        self._stats = _ExecStats()
        self._pools: List = []
        self.slices: List[WorkerSlice] = []
        if self.backend != "process":
            self.slices = [
                WorkerSlice(w, matrix.store.attach(), budget, semiring,
                            pattern_only, plan_cache=plan_cache,
                            plan_token=plan_token)
                for w in range(self.workers)]
        else:
            self._payload = {"store": matrix.store, "budget": budget,
                             "semiring": semiring,
                             "pattern_only": bool(pattern_only),
                             "plan_token": plan_token}

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self.backend == "process" and not self._pools:
            import multiprocessing
            ctx = multiprocessing.get_context("fork")
            # one dedicated single-process pool per worker id: a
            # shared pool would hand chunks to arbitrary processes, so
            # which slice's resident set a shard warms (and hence the
            # shard_load launch stream) would vary run to run.  Pinning
            # chunk ``c.worker`` to pool ``c.worker`` makes residency —
            # and every counter downstream of it — deterministic, same
            # as the thread backend's stable in-process slices.
            self._pools = [ctx.Pool(1, initializer=_process_init,
                                    initargs=(self._payload,))
                           for _ in range(self.workers)]

    def run(self, plan: WorkPlan, xts, batched: bool,
            with_counters: bool,
            spmm_selector=None) -> Iterator[ShardResult]:
        """Execute the plan; yield results as they complete."""
        depth = self.config.prefetch_depth
        chunks: List[WorkChunk] = plan.chunks
        self._stats.chunks += len(chunks)
        if self.backend == "serial":
            for c in chunks:
                for res in _run_chunk(self.slices[c.worker], c.sids,
                                      xts, batched, with_counters,
                                      depth, overlap=False,
                                      worker_label=str(c.worker),
                                      spmm_selector=spmm_selector):
                    self._stats.results += 1
                    yield res
        elif self.backend == "thread":
            from concurrent.futures import as_completed
            spawn = _shared_thread_pool().submit
            futs = [spawn(_run_chunk, self.slices[c.worker], c.sids, xts,
                          batched, with_counters, depth, True,
                          str(c.worker), spmm_selector)
                    for c in chunks]
            for fut in as_completed(futs):
                for res in fut.result():
                    self._stats.results += 1
                    yield res
        else:
            self._ensure_pool()
            pending = [self._pools[c.worker].apply_async(
                           _process_chunk,
                           ((c.worker, c.sids, xts, batched,
                             with_counters, depth, spmm_selector),))
                       for c in chunks]
            while pending:
                still = []
                for ar in pending:
                    if ar.ready():
                        results, key, snap = ar.get()
                        self._stats.slice_snapshots[key] = snap
                        for res in results:
                            self._stats.results += 1
                            yield res
                    else:
                        still.append(ar)
                pending = still
                if pending:
                    pending[0].wait(0.002)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Aggregated slice traffic (summed across workers)."""
        snaps = ([s.stats() for s in self.slices]
                 or list(self._stats.slice_snapshots.values()))
        keys = ("loads", "hits", "evictions", "loaded_bytes",
                "evicted_bytes", "resident_shards", "resident_bytes",
                "prefetches")
        out = {k: sum(int(s.get(k, 0)) for s in snaps) for k in keys}
        out["chunks"] = self._stats.chunks
        out["results"] = self._stats.results
        pids = sorted({pid for pid, _ in
                       self._stats.slice_snapshots})
        if pids:
            out["worker_pids"] = pids
        return out

    def close(self) -> None:
        for pool in self._pools:
            pool.terminate()
            pool.join()
        self._pools = []

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ParallelExecutor backend={self.backend} "
                f"workers={self.workers}>")
