"""Parallel execution configuration and the ``REPRO_WORKERS`` switch.

Worker-pool shard execution is off by default; it turns on either
explicitly (pass a :class:`ParallelConfig` — or a plain worker count —
to any sharded operator) or globally via environment variables:

* ``REPRO_WORKERS=N`` — run sharded multiplies on ``N`` workers.
* ``REPRO_WORKERS_BACKEND=serial|thread|process`` — pin the pool
  backend (default ``auto``).

``auto`` resolves per store: in-memory shard stores get the ``thread``
backend (shards are already in RAM; a process pool would only pay
pickling), directory-backed stores get ``process`` when the platform
can ``fork`` (each worker re-attaches the mmap directory itself —
real page-in parallelism), falling back to ``thread`` otherwise.
``serial`` runs the same worker decomposition on the calling thread in
deterministic order — the reference the other backends are checked
against, and what a single worker always uses.

Both variables are read per call (like ``REPRO_FASTPATH``), so tests
monkeypatch ``os.environ`` without reload tricks.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Optional, Union

__all__ = ["ParallelConfig", "WORKERS_ENV", "BACKEND_ENV",
           "env_workers"]

WORKERS_ENV = "REPRO_WORKERS"
BACKEND_ENV = "REPRO_WORKERS_BACKEND"

_BACKENDS = ("auto", "serial", "thread", "process")


def env_workers() -> int:
    """The ``REPRO_WORKERS`` worker count (1 when unset/garbage)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _env_backend() -> str:
    raw = os.environ.get(BACKEND_ENV, "auto").strip().lower()
    return raw if raw in _BACKENDS else "auto"


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class ParallelConfig:
    """How a sharded operator spreads its shards over workers.

    Parameters
    ----------
    workers:
        Worker (simulated device) count; ``1`` disables the pool
        entirely — the engine runs its classic sequential loop.
    backend:
        ``auto`` / ``serial`` / ``thread`` / ``process``; see module
        docstring for how ``auto`` resolves.
    prefetch_depth:
        How many upcoming shards of a worker's queue the prefetcher
        touches ahead of the compute loop; ``0`` disables prefetch.
    steal_chunks:
        Task chunks per worker the scheduler cuts each worker's shard
        list into — smaller chunks let an idle pool slot steal the tail
        of a straggler's queue at the cost of more dispatch overhead.
    affinity:
        Keep a shard sticky to the worker that last ran it (its slice
        of the resident set already holds the pages), stealing only
        when the sticky worker is overloaded by more than the shard's
        own cost estimate.
    """

    workers: int = 1
    backend: str = "auto"
    prefetch_depth: int = 1
    steal_chunks: int = 2
    affinity: bool = True

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in _BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"expected one of {_BACKENDS}")
        if self.prefetch_depth < 0:
            raise ValueError("prefetch_depth must be >= 0")
        if self.steal_chunks < 1:
            raise ValueError("steal_chunks must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "ParallelConfig":
        """The ambient configuration (``REPRO_WORKERS`` et al.)."""
        return cls(workers=env_workers(), backend=_env_backend())

    @classmethod
    def coerce(cls, value: Union[None, int, "ParallelConfig"]
               ) -> "ParallelConfig":
        """Normalise an operator's ``parallel=`` argument.

        ``None`` reads the environment, an ``int`` is a worker count
        with default knobs, a config passes through.
        """
        if value is None:
            return cls.from_env()
        if isinstance(value, ParallelConfig):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return cls(workers=value)
        raise TypeError(f"parallel must be None, an int worker count, "
                        f"or a ParallelConfig, got {value!r}")

    def resolved_backend(self, store=None) -> str:
        """The concrete backend for ``store`` (never ``auto``)."""
        if self.workers <= 1:
            return "serial"
        if self.backend != "auto":
            return self.backend
        out_of_core = store is not None and hasattr(store, "root")
        if out_of_core and _fork_available():
            return "process"
        return "thread"

    def slice_budget(self, total: Optional[int]) -> Optional[int]:
        """One worker's share of the engine's resident-set budget."""
        if total is None:
            return None
        return max(1, total // self.workers)
