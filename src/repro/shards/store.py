"""Shard storage backends and the byte-budgeted resident-set manager.

A :class:`ShardStore` owns the per-shard :class:`~repro.tiles.TiledMatrix`
payloads of a :class:`~repro.shards.sharded_matrix.ShardedTiledMatrix`.
Two backends:

* :class:`InMemoryShardStore` — a dict; shards never leave RAM.  The
  backend tests and the verify harness use, and the default when no
  ``store_dir`` is given.
* :class:`DirectoryShardStore` — one mmap tile directory per shard
  (:func:`~repro.tiles.io.save_tiled_mmap` format) under a root
  directory.  ``get`` re-opens the shard as memmap views, so a load
  costs no read I/O until a kernel touches the payload.

On top of either sits the :class:`ResidentSetManager`: an LRU over
loaded shards with an optional byte budget.  Loading a shard that would
push the resident set over budget evicts least-recently-used shards
first (never a pinned one, never the shard being loaded); every load
and eviction is reported in bytes so the engine can charge the
simulated device for the traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..errors import IOFormatError
from ..tiles.io import load_tiled_mmap, read_mmap_manifest, save_tiled_mmap
from ..tiles.tiled_matrix import TiledMatrix

__all__ = ["InMemoryShardStore", "DirectoryShardStore",
           "ResidentSetManager"]

PathLike = Union[str, Path]


class InMemoryShardStore:
    """Shard payloads held in a plain dict (nothing is out of core).

    The semantics-only backend: resident-set accounting still works
    (the manager tracks what it *considers* loaded), which is what the
    shard-count-invariance checks exercise without touching disk.
    """

    def __init__(self) -> None:
        self._shards: Dict[int, TiledMatrix] = {}
        self._nbytes: Dict[int, int] = {}

    def put(self, sid: int, tiled: TiledMatrix) -> None:
        self._shards[sid] = tiled
        self._nbytes[sid] = tiled.nbytes()

    def get(self, sid: int) -> TiledMatrix:
        return self._shards[sid]

    def nbytes(self, sid: int) -> int:
        return self._nbytes[sid]

    def attach(self) -> "InMemoryShardStore":
        """A read view for one worker: shares the (immutable) shard
        payloads but owns its bookkeeping dicts, so concurrent workers
        never write a common mutable structure."""
        view = InMemoryShardStore()
        view._shards = dict(self._shards)
        view._nbytes = dict(self._nbytes)
        return view

    @property
    def shard_ids(self) -> List[int]:
        return sorted(self._shards)


class DirectoryShardStore:
    """One mmap tile directory per shard under ``root``.

    ``put`` writes ``root/shard_NNNN/`` with
    :func:`~repro.tiles.io.save_tiled_mmap` and drops the in-memory
    object; ``get`` re-opens it with ``np.load(mmap_mode="r")`` views.
    Shard byte sizes come from the manifests, read once and cached —
    sizing the resident set never pages tile payload in.

    Safe for concurrent readers: every ``get`` opens its *own* file
    handles and read-only memmap views (nothing shared between calls),
    and the only mutable state — the manifest-size cache — is guarded
    by a per-instance lock.  Parallel workers call :meth:`attach` for a
    private re-attachment over the same directory, so no two workers
    touch a common Python object at all.
    """

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._nbytes: Dict[int, int] = {}
        self._meta_lock = threading.Lock()

    def shard_dir(self, sid: int) -> Path:
        return self.root / f"shard_{sid:04d}"

    def put(self, sid: int, tiled: TiledMatrix) -> None:
        save_tiled_mmap(tiled, self.shard_dir(sid))
        with self._meta_lock:
            self._nbytes[sid] = tiled.nbytes()

    def get(self, sid: int) -> TiledMatrix:
        # a fresh load_tiled_mmap per call: independent read-only
        # memmaps, never a shared mutable view
        return load_tiled_mmap(self.shard_dir(sid))

    def nbytes(self, sid: int) -> int:
        with self._meta_lock:
            cached = self._nbytes.get(sid)
        if cached is not None:
            return cached
        manifest = read_mmap_manifest(self.shard_dir(sid))
        nbytes = int(manifest["nbytes"])
        with self._meta_lock:
            self._nbytes[sid] = nbytes
        return nbytes

    def attach(self) -> "DirectoryShardStore":
        """A fresh store over the same directory (per-worker handles,
        private size cache) — the worker-pool re-attachment path."""
        return DirectoryShardStore(self.root)

    def __getstate__(self):
        # pickled into process-pool workers: ship the root only; the
        # worker re-attaches (locks and mmap handles don't cross fork
        # boundaries usefully)
        return {"root": self.root}

    def __setstate__(self, state):
        self.root = state["root"]
        self._nbytes = {}
        self._meta_lock = threading.Lock()

    @property
    def shard_ids(self) -> List[int]:
        ids = []
        for child in sorted(self.root.glob("shard_*")):
            try:
                ids.append(int(child.name.split("_", 1)[1]))
            except ValueError:
                raise IOFormatError(
                    f"unexpected entry {child} in shard store"
                ) from None
        return ids


class ResidentSetManager:
    """LRU resident set of loaded shards under an optional byte budget.

    Parameters
    ----------
    store:
        The backing :class:`InMemoryShardStore` /
        :class:`DirectoryShardStore`.
    budget_bytes:
        Resident-set ceiling; ``None`` means unlimited (nothing is ever
        evicted).  A single shard larger than the budget still loads —
        the budget bounds the *set*, it cannot make progress
        impossible.
    """

    def __init__(self, store, budget_bytes: Optional[int] = None):
        self.store = store
        self.budget_bytes = budget_bytes
        self._resident: "OrderedDict[int, TiledMatrix]" = OrderedDict()
        self._pinned: set = set()
        #: Called with the shard id on every eviction — the engine hooks
        #: plan invalidation here (an evicted shard's tiles are gone, so
        #: the per-shard plan indexing them must go too).
        self.evict_callbacks: List[Callable[[int], None]] = []
        self.loads = 0
        self.hits = 0
        self.evictions = 0
        self.loaded_bytes = 0
        self.evicted_bytes = 0

    # ------------------------------------------------------------------
    @property
    def resident_ids(self) -> List[int]:
        return list(self._resident)

    @property
    def resident_bytes(self) -> int:
        return sum(self.store.nbytes(sid) for sid in self._resident)

    def get(self, sid: int) -> Tuple[TiledMatrix, int, int]:
        """The shard, loading it if necessary.

        Returns ``(tiled, loaded_bytes, evicted_bytes)`` — the I/O this
        call caused, both zero on a resident hit.  The loaded shard is
        the most-recently-used and is never chosen for eviction by its
        own load.
        """
        if sid in self._resident:
            self._resident.move_to_end(sid)
            self.hits += 1
            return self._resident[sid], 0, 0
        tiled = self.store.get(sid)
        nbytes = self.store.nbytes(sid)
        self._resident[sid] = tiled
        self.loads += 1
        self.loaded_bytes += nbytes
        evicted = self._enforce_budget(keep=sid)
        return tiled, nbytes, evicted

    def pin(self, sid: int) -> None:
        """Exempt a resident shard from eviction (kernel in flight)."""
        self._pinned.add(sid)

    def unpin(self, sid: int) -> None:
        self._pinned.discard(sid)
        self._enforce_budget(keep=None)

    def evict(self, sid: int) -> int:
        """Drop ``sid`` from the resident set; returns bytes freed."""
        if sid not in self._resident:
            return 0
        del self._resident[sid]
        nbytes = self.store.nbytes(sid)
        self.evictions += 1
        self.evicted_bytes += nbytes
        for callback in self.evict_callbacks:
            callback(sid)
        return nbytes

    def _enforce_budget(self, keep: Optional[int]) -> int:
        """Evict LRU-first until within budget; returns bytes evicted.

        Pinned shards and ``keep`` (the shard whose load triggered the
        enforcement) are skipped — when only those remain over budget,
        the set runs over rather than stall.
        """
        if self.budget_bytes is None:
            return 0
        freed = 0
        for sid in list(self._resident):
            if self.resident_bytes <= self.budget_bytes:
                break
            if sid == keep or sid in self._pinned:
                continue
            freed += self.evict(sid)
        return freed

    def clear(self) -> None:
        """Drop every resident shard (evictions counted normally)."""
        for sid in list(self._resident):
            if sid not in self._pinned:
                self.evict(sid)

    def stats(self) -> Dict[str, int]:
        return {"loads": self.loads, "hits": self.hits,
                "evictions": self.evictions,
                "loaded_bytes": self.loaded_bytes,
                "evicted_bytes": self.evicted_bytes,
                "resident_shards": len(self._resident),
                "resident_bytes": self.resident_bytes,
                "budget_bytes": (self.budget_bytes
                                 if self.budget_bytes is not None else 0)}
