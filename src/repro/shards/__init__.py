"""Sharded out-of-core execution (ROADMAP open item 3).

The paper's skipping argument lifted one level: a matrix partitioned
into tile-row-aligned row strips (:class:`ShardedTiledMatrix`), each an
independent :class:`~repro.tiles.TiledMatrix` behind a shard store with
a byte-budgeted resident set (:mod:`repro.shards.store`), a scheduler
that skips shards intersecting no active tile column
(:class:`ShardScheduler`), and the engine that streams, executes and
combines per-shard results (:class:`ShardedSpMSpV`).
"""

from .engine import ShardedSpMSpV
from .scheduler import ShardScheduler
from .sharded_matrix import ShardedTiledMatrix
from .store import (DirectoryShardStore, InMemoryShardStore,
                    ResidentSetManager)

__all__ = ["ShardedTiledMatrix", "ShardedSpMSpV", "ShardScheduler",
           "InMemoryShardStore", "DirectoryShardStore",
           "ResidentSetManager"]
