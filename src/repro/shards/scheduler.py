"""The shard scheduler: the paper's tile skipping, lifted one level.

Algorithm 4 skips tiles whose column holds no active vector entry; the
scheduler applies the identical rule to whole shards.  Each shard
carries a tile-column occupancy bitmap (one bit per tile column, built
at sharding time); a multiply ANDs that bitmap against the active
tile-column bitmap of the input vector and executes only the shards
with a non-empty intersection.  A skipped shard is never loaded — its
output strip is all additive identity because no stored entry of the
strip can meet an active column — so skipping saves both kernel work
and resident-set traffic.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..gpusim import KernelCounters

__all__ = ["ShardScheduler"]


class ShardScheduler:
    """Decides which shards a multiply must execute.

    Stats accumulate across calls — a BFS run or a bench sweep reads
    them once at the end for its skip-rate report.
    """

    def __init__(self, matrix):
        self.matrix = matrix
        self.calls = 0
        self.shards_executed = 0
        self.shards_skipped = 0

    # ------------------------------------------------------------------
    def schedule(self, active_tile_cols: np.ndarray) -> np.ndarray:
        """Shard ids to execute for this set of active tile columns.

        ``active_tile_cols`` is the sorted index array of tile columns
        where the input vector holds at least one entry
        (``x_ptr >= 0``).  Returns ascending shard ids whose occupancy
        bitmap intersects it.
        """
        occupancy = self.matrix.occupancy
        mask = np.zeros(occupancy.shape[1], dtype=np.uint64)
        cols = np.asarray(active_tile_cols, dtype=np.int64)
        np.bitwise_or.at(mask, cols // 64,
                         np.uint64(1) << (cols % 64).astype(np.uint64))
        hit = (occupancy & mask[np.newaxis, :]).any(axis=1)
        executed = np.flatnonzero(hit)
        self.calls += 1
        self.shards_executed += int(executed.size)
        self.shards_skipped += int(occupancy.shape[0] - executed.size)
        return executed

    def schedule_counters(self) -> KernelCounters:
        """The modeled cost of one scheduling pass: every shard's
        occupancy bitmap plus its strip record is read once."""
        c = KernelCounters(launches=1)
        per_shard = self.matrix.metadata_nbytes_per_shard()
        c.coalesced_read_bytes += float(self.matrix.n_shards * per_shard)
        c.word_ops += float(self.matrix.occupancy.size)
        c.warps = max(1.0, self.matrix.n_shards / 32.0)
        return c

    def stats(self) -> Dict[str, int]:
        return {"schedule_calls": self.calls,
                "shards_executed": self.shards_executed,
                "shards_skipped": self.shards_skipped}
