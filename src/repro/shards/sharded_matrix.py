"""Row-strip sharding of a tiled matrix (ROADMAP open item 3).

The paper's cost argument — work proportional to *active* tiles — stops
at RAM as long as an operator holds one in-memory
:class:`~repro.tiles.TiledMatrix`.  :class:`ShardedTiledMatrix` lifts
the argument one level: the matrix is partitioned into horizontal
row strips, each strip is an independent ``TiledMatrix`` of shape
``(strip_rows, n)`` stored through a shard store
(:mod:`repro.shards.store`), and a per-shard tile-*column* occupancy
bitmap lets the scheduler skip whole shards the way the tiled kernel
skips inactive tiles.

Strips are aligned to tile-row boundaries (``rows_per_shard`` is a
multiple of ``nt``).  That alignment is what makes shard-count
invariance *bit-exact*: every output row is computed entirely inside
one shard, the per-tile-row entry order of
:meth:`~repro.tiles.TiledMatrix.from_coo` is a function of the strip's
own rows only, and the combiner merges disjoint row ranges — so 1-shard
and N-shard execution run the identical sequence of floating-point
operations per row.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import IOFormatError, ShapeError, TileError
from ..formats.base import SparseMatrix
from ..formats.coo import COOMatrix
from ..tiles.tiled_matrix import TiledMatrix
from ..tiles.tiled_vector import SUPPORTED_TILE_SIZES
from .store import DirectoryShardStore, InMemoryShardStore, \
    ResidentSetManager

__all__ = ["ShardedTiledMatrix"]

PathLike = Union[str, Path]

#: Per-shard strip descriptor charge: (r0, r1, nnz, nbytes) as int64.
STRIP_RECORD_BYTES = 32


class ShardedTiledMatrix:
    """A matrix partitioned into row-strip shards of tiled storage.

    Construct with :meth:`from_coo` (builds and stores every shard) or
    :meth:`open` (attaches to a shard directory written earlier).  The
    instance holds only metadata — strips, occupancy bitmaps, byte
    sizes; tile payloads live in the store and enter RAM through the
    :class:`~repro.shards.store.ResidentSetManager` (``self.resident``).
    """

    def __init__(self, shape: Tuple[int, int], nt: int,
                 strips: List[Tuple[int, int]],
                 store, occupancy: np.ndarray,
                 shard_nnz: List[int],
                 dtype: np.dtype,
                 budget_bytes: Optional[int] = None):
        self.shape = (int(shape[0]), int(shape[1]))
        self.nt = int(nt)
        self.strips = [(int(r0), int(r1)) for r0, r1 in strips]
        self.store = store
        self.occupancy = np.ascontiguousarray(occupancy, dtype=np.uint64)
        self.shard_nnz = [int(v) for v in shard_nnz]
        self.dtype = np.dtype(dtype)
        self.resident = ResidentSetManager(store,
                                           budget_bytes=budget_bytes)
        if self.occupancy.shape[0] != len(self.strips):
            raise ShapeError(
                f"occupancy has {self.occupancy.shape[0]} rows for "
                f"{len(self.strips)} strips"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, matrix, nt: int = 16,
                 n_shards: Optional[int] = None,
                 rows_per_shard: Optional[int] = None,
                 store_dir: Optional[PathLike] = None,
                 budget_bytes: Optional[int] = None
                 ) -> "ShardedTiledMatrix":
        """Partition ``matrix`` into row-strip shards and store them.

        Parameters
        ----------
        matrix:
            Any library sparse matrix or a dense ndarray.
        nt:
            Tile size of every shard.
        n_shards:
            Number of strips (clamped to the matrix's tile-row count —
            a strip cannot be thinner than one tile row).  Default 2
            when neither ``n_shards`` nor ``rows_per_shard`` is given.
        rows_per_shard:
            Explicit strip height; must be a positive multiple of
            ``nt`` (tile-row alignment is what keeps shard-count
            invariance bit-exact).  Mutually exclusive with
            ``n_shards``.
        store_dir:
            When given, shards are written as mmap tile directories
            under it (:class:`~repro.shards.store.DirectoryShardStore`)
            plus a ``sharded_manifest.json`` so :meth:`open` can
            re-attach; otherwise shards stay in RAM.
        budget_bytes:
            Resident-set ceiling handed to the
            :class:`~repro.shards.store.ResidentSetManager`.
        """
        if nt not in SUPPORTED_TILE_SIZES:
            raise TileError(
                f"unsupported tile size {nt}; allowed: "
                f"{SUPPORTED_TILE_SIZES}"
            )
        if n_shards is not None and rows_per_shard is not None:
            raise TileError(
                "pass n_shards or rows_per_shard, not both"
            )
        if isinstance(matrix, SparseMatrix):
            coo = matrix.to_coo()
        else:
            coo = COOMatrix.from_dense(np.asarray(matrix))
        # Canonicalize once, before splitting: per-strip retiling then
        # sees already-summed entries, so every shard's value stream is
        # the canonical one regardless of how many strips there are.
        coo = coo.sum_duplicates()
        m, n = coo.shape
        tile_rows = max(1, -(-m // nt))
        if rows_per_shard is not None:
            if rows_per_shard <= 0 or rows_per_shard % nt:
                raise TileError(
                    f"rows_per_shard must be a positive multiple of "
                    f"nt={nt}, got {rows_per_shard}"
                )
            strip_rows = int(rows_per_shard)
        else:
            want = 2 if n_shards is None else int(n_shards)
            if want < 1:
                raise TileError(f"n_shards must be >= 1, got {n_shards}")
            want = min(want, tile_rows)
            strip_rows = -(-tile_rows // want) * nt
        strips = []
        r0 = 0
        while r0 < m or not strips:
            r1 = min(m, r0 + strip_rows)
            strips.append((r0, r1))
            r0 = r1
            if r1 == m:
                break

        store = (DirectoryShardStore(store_dir) if store_dir is not None
                 else InMemoryShardStore())
        tile_cols = max(1, -(-n // nt))
        occ_words = -(-tile_cols // 64)
        occupancy = np.zeros((len(strips), occ_words), dtype=np.uint64)
        shard_nnz = []
        dtype = None
        for sid, (lo, hi) in enumerate(strips):
            mask = (coo.row >= lo) & (coo.row < hi)
            local = COOMatrix((hi - lo, n), coo.row[mask] - lo,
                              coo.col[mask], coo.val[mask])
            tiled = TiledMatrix.from_coo(local, nt)
            dtype = tiled.values.dtype if dtype is None else dtype
            cols = np.unique(tiled.tile_colidx).astype(np.int64)
            np.bitwise_or.at(occupancy[sid], cols // 64,
                             np.uint64(1) << (cols % 64).astype(np.uint64))
            shard_nnz.append(tiled.nnz)
            store.put(sid, tiled)
        if dtype is None:  # pragma: no cover - strips is never empty
            dtype = coo.val.dtype

        sharded = cls(coo.shape, nt, strips, store, occupancy,
                      shard_nnz, dtype, budget_bytes=budget_bytes)
        if store_dir is not None:
            sharded._write_manifest(Path(store_dir))
        return sharded

    def _write_manifest(self, root: Path) -> None:
        manifest = {
            "kind": "sharded_tiled_matrix",
            "version": 1,
            "shape": list(self.shape),
            "nt": self.nt,
            "strips": [list(s) for s in self.strips],
            "shard_nnz": self.shard_nnz,
            "dtype": str(self.dtype),
        }
        (root / "sharded_manifest.json").write_text(
            json.dumps(manifest, indent=1) + "\n", encoding="utf-8")
        np.save(root / "occupancy.npy", self.occupancy)

    @classmethod
    def open(cls, store_dir: PathLike,
             budget_bytes: Optional[int] = None) -> "ShardedTiledMatrix":
        """Attach to a shard directory written by :meth:`from_coo`.

        Reads only the manifest and the occupancy bitmaps — no tile
        payload is touched until a shard is scheduled.
        """
        root = Path(store_dir)
        try:
            manifest = json.loads(
                (root / "sharded_manifest.json").read_text(
                    encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise IOFormatError(
                f"cannot read sharded manifest under {root}: {exc}"
            ) from exc
        if manifest.get("kind") != "sharded_tiled_matrix":
            raise IOFormatError(
                f"{root} is not a sharded matrix directory"
            )
        occupancy = np.load(root / "occupancy.npy", allow_pickle=False)
        return cls(tuple(manifest["shape"]), int(manifest["nt"]),
                   [tuple(s) for s in manifest["strips"]],
                   DirectoryShardStore(root), occupancy,
                   manifest["shard_nnz"],
                   np.dtype(manifest["dtype"]),
                   budget_bytes=budget_bytes)

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.strips)

    @property
    def nnz(self) -> int:
        return sum(self.shard_nnz)

    def shard(self, sid: int) -> Tuple[TiledMatrix, int, int]:
        """The shard's tiling via the resident set; see
        :meth:`~repro.shards.store.ResidentSetManager.get`."""
        return self.resident.get(sid)

    def strip_rows(self, sid: int) -> int:
        lo, hi = self.strips[sid]
        return hi - lo

    @property
    def total_tile_bytes(self) -> int:
        """Bytes of tiled storage across every shard (what a budget is
        compared against)."""
        return sum(self.store.nbytes(sid)
                   for sid in range(self.n_shards))

    def metadata_nbytes_per_shard(self) -> int:
        """Resident metadata charge per shard: one occupancy bitmap row
        plus the strip descriptor."""
        return int(self.occupancy.shape[1] * 8 + STRIP_RECORD_BYTES)

    def to_coo(self) -> COOMatrix:
        """Reassemble the full matrix (loads every shard; tests and
        small-scale conversions only)."""
        rows, cols, vals = [], [], []
        for sid, (lo, _hi) in enumerate(self.strips):
            coo = self.store.get(sid).to_coo()
            rows.append(coo.row + lo)
            cols.append(coo.col)
            vals.append(coo.val)
        return COOMatrix(self.shape, np.concatenate(rows),
                         np.concatenate(cols), np.concatenate(vals))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ShardedTiledMatrix {self.shape} nt={self.nt} "
                f"shards={self.n_shards} nnz={self.nnz}>")
