"""The sharded SpMSpV engine: schedule, stream, execute, combine.

One multiply over a :class:`~repro.shards.sharded_matrix.ShardedTiledMatrix`
runs four modeled stages, all visible on the device timeline:

1. ``sharded_schedule`` — the scheduler ANDs every shard's tile-column
   occupancy bitmap against the input's active tile columns (per-shard
   metadata read charge);
2. ``shard_load`` (per executed shard, only when the resident set
   faulted) — the load/evict byte traffic of the resident-set manager,
   tagged ``shard=<id>``;
3. ``sharded_spmspv_shard`` (per executed shard) — Algorithm 4 over the
   shard's own tiling via :func:`~repro.core.spmspv_kernels.tiled_kernel`,
   plus the shard's metadata charge, tagged ``shard=<id>``;
4. ``sharded_combine`` — the scatter-gather combiner merging the strip
   outputs through :meth:`~repro.semiring.Semiring.scatter_merge`;
   modeled bytes are exactly ``2 * itemsize * sum(executed strip
   rows)`` (read every strip accumulator once, write it into the global
   result once).  The shard-count-invariance check recomputes this
   formula from the timeline tags and asserts equality.

Per-shard preprocessing (the warmed active-set accessors) is cached in
the plan cache under ``("sharded-spmspv", matrix-id, shard-id)``; the
entry is pinned while the shard's kernel is in flight and invalidated
when the resident-set manager evicts the shard.

Row strips are tile-row aligned, so each output row is produced by
exactly one shard and the combiner merges disjoint ranges into an
identity-filled accumulator — which is why 1-shard and N-shard
execution are bit-identical, not merely numerically close.

With ``REPRO_WORKERS=N`` (or an explicit
:class:`~repro.parallel.ParallelConfig`) the per-shard stage runs on
the worker-pool executor instead of the sequential loop: a cost-model
work scheduler places shards on workers, each worker executes its
chunk against its private resident-set slice, and the combiner merges
results as they land.  Launch records are re-emitted in ascending
shard order with ``device=<id>;worker=<id>`` tag parts, so the
timeline (and the production replay log) stays deterministic and
bit-identical to sequential execution modulo those tag parts —
:meth:`ShardedSpMSpV.multi_timeline` re-partitions it into per-device
clocks to price the overlap.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..core.spmspv import (_warm_active_set, apply_output_mask,
                           as_tiled_vector)
from ..core.spmspv_kernels import batched_union_kernel, tiled_kernel
from ..errors import ShapeError
from ..gpusim import Device, KernelCounters
from ..runtime import (ExecutionContext, OperatorPlan, PlanCache,
                       default_plan_cache, matrix_token)
from ..semiring import PLUS_TIMES, Semiring
from ..tiles.tiled_matrix import TiledMatrix
from ..tiles.tiled_vector import TiledVector
from ..vectors.sparse_vector import SparseVector
from .scheduler import ShardScheduler
from .sharded_matrix import ShardedTiledMatrix

__all__ = ["ShardedSpMSpV"]

VectorLike = Union[SparseVector, TiledVector, np.ndarray]


def _load_counters(loaded_bytes: int, evicted_bytes: int
                   ) -> KernelCounters:
    """Resident-set traffic of one shard fault: bytes paged in for the
    shard, bytes written back out for whatever its arrival evicted."""
    c = KernelCounters(launches=1)
    c.coalesced_read_bytes += float(loaded_bytes)
    c.coalesced_write_bytes += float(evicted_bytes)
    c.warps = max(1.0, loaded_bytes / (32.0 * 128.0))
    return c


def _combine_counters(merged_rows: int, itemsize: int) -> KernelCounters:
    """The combiner's exact byte formula: every executed strip's
    accumulator is read once and written into the global result once —
    ``2 * itemsize * merged_rows`` total."""
    c = KernelCounters(launches=1)
    c.coalesced_read_bytes += float(merged_rows * itemsize)
    c.coalesced_write_bytes += float(merged_rows * itemsize)
    c.warps = max(1.0, merged_rows / (32.0 * 32.0))
    return c


def _shard_tag(sid: int, caller_tag: Optional[str] = None) -> str:
    """Launch tag of one shard's work.  Callers build it only when the
    context is accounting — the hot loop must not format tag strings
    that no tracer or device will ever see."""
    if caller_tag is None:
        return f"shard={sid}"
    return f"{caller_tag};shard={sid}"


def _pattern_view(tiled: TiledMatrix) -> TiledMatrix:
    """The shard's tiling with all-ones values (same index arrays): a
    multiply under plus_times then counts matched edges per row, which
    is the exact reachability BFS needs regardless of the stored
    values.  ``validate=False`` — the index arrays are the already
    validated ones of the source tiling."""
    return _warm_active_set(TiledMatrix(
        tiled.shape, tiled.nt, tiled.tile_ptr, tiled.tile_colidx,
        tiled.tile_nnz_ptr, tiled.local_row, tiled.local_col,
        np.ones(tiled.nnz, dtype=np.float64), validate=False))


class ShardedSpMSpV:
    """SpMSpV over row-strip shards with out-of-core tile storage.

    Parameters
    ----------
    matrix:
        A prebuilt :class:`~repro.shards.sharded_matrix.ShardedTiledMatrix`
        (its own ``nt`` and sharding win), or any library sparse matrix
        / ndarray, sharded here via
        :meth:`~repro.shards.sharded_matrix.ShardedTiledMatrix.from_coo`.
    nt, n_shards, rows_per_shard, store_dir, budget_bytes:
        Forwarded to ``from_coo`` when ``matrix`` is not already
        sharded.
    semiring:
        The ``(add, mul)`` algebra; default ordinary ``(+, *)``.
    device:
        Optional simulated GPU (or shared
        :class:`~repro.runtime.ExecutionContext`).
    pattern_only:
        Execute each shard over its all-ones pattern view instead of
        its stored values (cached per shard plan).  The BFS loop sets
        this: reachability must not depend on stored values cancelling.
    parallel:
        ``None`` (default) reads ``REPRO_WORKERS`` /
        ``REPRO_WORKERS_BACKEND`` on every multiply; an ``int`` is a
        fixed worker count; a
        :class:`~repro.parallel.ParallelConfig` pins everything.
        Worker counts above 1 route the per-shard stage through the
        pool executor — results stay bit-identical to sequential.
    """

    def __init__(self, matrix, nt: int = 16,
                 semiring: Semiring = PLUS_TIMES,
                 device: Optional[Device] = None,
                 n_shards: int = 2,
                 rows_per_shard: Optional[int] = None,
                 store_dir=None,
                 budget_bytes: Optional[int] = None,
                 plan_cache: Optional[PlanCache] = None,
                 pattern_only: bool = False,
                 parallel=None):
        self.semiring = semiring
        self.pattern_only = bool(pattern_only)
        self.ctx = ExecutionContext.wrap(device,
                                         operator="sharded-spmspv")
        if isinstance(matrix, ShardedTiledMatrix):
            self.matrix = matrix
        else:
            self.matrix = ShardedTiledMatrix.from_coo(
                matrix, nt=nt,
                n_shards=None if rows_per_shard is not None else n_shards,
                rows_per_shard=rows_per_shard, store_dir=store_dir,
                budget_bytes=budget_bytes)
        self.cache = plan_cache if plan_cache is not None \
            else default_plan_cache()
        self.scheduler = ShardScheduler(self.matrix)
        self.matrix.resident.evict_callbacks.append(
            self._invalidate_plan)
        if parallel is not None:
            # validate eagerly; None stays None so the env is re-read
            # on every multiply (tests monkeypatch REPRO_WORKERS)
            from ..parallel.config import ParallelConfig
            parallel = ParallelConfig.coerce(parallel)
        self._parallel_arg = parallel
        self._pcfg = None
        self._work = None
        self._executor = None
        self._last_plan = None

    # ------------------------------------------------------------------
    @property
    def device(self) -> Optional[Device]:
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("sharded-spmspv")
        else:
            self.ctx.device = device

    @property
    def shape(self):
        return self.matrix.shape

    @property
    def nt(self) -> int:
        return self.matrix.nt

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    # ------------------------------------------------------------------
    def _plan_key(self, sid: int):
        return ("sharded-spmspv", matrix_token(self.matrix), sid)

    def _invalidate_plan(self, sid: int) -> None:
        self.cache.remove(self._plan_key(sid))

    def _shard_plan(self, sid: int, tiled: TiledMatrix) -> OperatorPlan:
        key = self._plan_key(sid)
        return self.cache.get_or_build(
            key,
            lambda: OperatorPlan(
                kind="sharded-spmspv", key=key,
                data={"tiled": _warm_active_set(tiled)}),
            pin=self.matrix)

    def _execution_tiling(self, plan: OperatorPlan) -> TiledMatrix:
        if not self.pattern_only:
            return plan.data["tiled"]
        return plan.lazy_get(
            "pattern", lambda: _pattern_view(plan.data["tiled"]))

    def _fault_shard(self, sid: int,
                     tag: Optional[str]) -> TiledMatrix:
        """Bring the shard resident, charging any load/evict traffic."""
        tiled, loaded, evicted = self.matrix.shard(sid)
        if loaded or evicted:
            self.ctx.launch("shard_load",
                            _load_counters(loaded, evicted),
                            tag=tag, phase="load")
        return tiled

    def _as_tiled_vector(self, x: VectorLike) -> TiledVector:
        return as_tiled_vector(x, self.matrix.nt,
                               float(self.semiring.add_identity),
                               dtype=self.semiring.dtype)

    # ------------------------------------------------------------------
    # parallel execution
    # ------------------------------------------------------------------
    @property
    def parallel(self):
        """The resolved :class:`~repro.parallel.ParallelConfig` for the
        next multiply (reads the environment when none was pinned)."""
        from ..parallel.config import ParallelConfig
        return (self._parallel_arg if self._parallel_arg is not None
                else ParallelConfig.from_env())

    def _ensure_parallel(self, cfg):
        """(Re)build the work scheduler and pool executor for ``cfg``."""
        if self._executor is not None and self._pcfg == cfg:
            return
        if self._executor is not None:
            self._executor.close()
        from ..parallel.executor import ParallelExecutor
        from ..parallel.work import WorkScheduler
        self._work = WorkScheduler(self.matrix, cfg.workers,
                                   affinity=cfg.affinity,
                                   steal_chunks=cfg.steal_chunks)
        self._executor = ParallelExecutor(
            self.matrix, cfg, self.semiring, self.pattern_only,
            plan_cache=self.cache,
            plan_token=matrix_token(self.matrix))
        self._pcfg = cfg

    def seed_affinity_from_residency(self) -> int:
        """Seed the planner's sticky map from current slice residency,
        so the next plan routes shards to the workers already holding
        their pages (the BatchQueue's shard-affinity routing hook).
        Returns how many shard→worker preferences were seeded."""
        if self._executor is None or self._work is None:
            return 0
        seeded = 0
        for slc in self._executor.slices:
            for sid in slc.resident.resident_ids:
                self._work.seed_affinity(sid, slc.wid)
                seeded += 1
        return seeded

    def _execute_parallel(self, executed, active_tile_cols, xts,
                          targets, batched: bool, accounting: bool,
                          caller_tag: Optional[str],
                          spmm_selector=None) -> None:
        """Run the per-shard stage on the worker pool.

        Results merge into ``targets`` (one accumulator per input
        vector) the moment they land — order-independent because row
        strips are disjoint.  Launch records are then re-emitted in
        ascending shard order, so the timeline is deterministic and
        identical to the sequential engine's modulo the ``device=`` /
        ``worker=`` tag parts.

        With ``spmm_selector`` set, ``xts`` holds one dense block and
        each shard result ships a 2-D row slab — assigned (not
        scatter-merged) into the block accumulator, since every output
        row belongs to exactly one strip.
        """
        sr = self.semiring
        plan = self._work.plan(executed, active_tile_cols)
        self._last_plan = plan
        results = {}
        for res in self._executor.run(plan, xts, batched,
                                      with_counters=accounting,
                                      spmm_selector=spmm_selector):
            lo, _hi = self.matrix.strips[res.sid]
            for b, (idx, vals) in enumerate(res.outs):
                if idx.size:
                    if vals.ndim == 2:
                        targets[b][idx + lo] = vals
                    else:
                        sr.scatter_merge(targets[b], idx + lo, vals)
            results[res.sid] = res
        if not accounting:
            return
        if spmm_selector is not None:
            name, phase = "sharded_spmm_shard", "spmm"
        elif batched:
            name, phase = "sharded_spmspv_batch", "batch"
        else:
            name, phase = "sharded_spmspv_shard", "multiply"
        meta_bytes = float(self.matrix.metadata_nbytes_per_shard())
        for sid in sorted(results):
            res = results[sid]
            tag = (f"{_shard_tag(sid, caller_tag)}"
                   f";device={res.device};worker={res.worker}")
            if res.loaded or res.evicted:
                self.ctx.launch("shard_load",
                                _load_counters(res.loaded, res.evicted),
                                tag=tag, phase="load")
            counters = res.counters
            counters.coalesced_read_bytes += meta_bytes
            self.ctx.launch(name, counters, tag=tag, phase=phase)

    def multi_timeline(self, n_devices: Optional[int] = None):
        """The multi-device view of the recorded timeline.

        Re-partitions the context's launch records by their
        ``device=`` tags (see
        :meth:`~repro.gpusim.MultiDeviceTimeline.from_device`); in
        production mode the replay log is priced first, so deferred
        per-worker counters land on the merged timeline identically.
        """
        from ..gpusim import MultiDeviceTimeline
        if self.ctx.production:
            dev = self.ctx.replay()
        else:
            dev = self.ctx.device
        if dev is None:
            raise ValueError("multi_timeline needs a device-attached "
                             "or production context")
        return MultiDeviceTimeline.from_device(dev, n_devices)

    # ------------------------------------------------------------------
    def multiply(self, x: VectorLike, output: str = "sparse",
                 mask: Optional[VectorLike] = None,
                 mask_complement: bool = False,
                 ) -> Union[SparseVector, TiledVector, np.ndarray]:
        """Compute ``y = A x`` across the executed shards.

        Same contract as :meth:`repro.core.TileSpMSpV.multiply`
        (output modes, masking) — callers switch matrix type, not API.
        """
        if output not in ("sparse", "tiled", "dense"):
            raise ShapeError(f"unknown output mode {output!r}")
        sr = self.semiring
        m, n = self.matrix.shape
        xt = self._as_tiled_vector(x)
        if xt.n != n:
            raise ShapeError(
                f"SpMSpV shape mismatch: A is {self.matrix.shape}, "
                f"x has length {xt.n}"
            )
        accounting = self.ctx.accounting
        active_cols = np.flatnonzero(xt.x_ptr >= 0)
        executed = self.scheduler.schedule(active_cols)
        if accounting:
            self.ctx.launch("sharded_schedule",
                            self.scheduler.schedule_counters(),
                            phase="schedule")

        y = np.full(m, sr.add_identity, dtype=sr.dtype)
        merged_rows = int(sum(hi - lo for lo, hi in
                              (self.matrix.strips[int(s)]
                               for s in executed)))
        cfg = self.parallel
        if cfg.workers > 1 and executed.size:
            self._ensure_parallel(cfg)
            self._execute_parallel(executed, active_cols, [xt], [y],
                                   batched=False,
                                   accounting=accounting,
                                   caller_tag=None)
        else:
            for sid in executed:
                sid = int(sid)
                # counters stay inline even in production (launch
                # defers the priced record): replaying them later would
                # have to re-fault evicted shards
                tag = _shard_tag(sid) if accounting else None
                tiled = self._fault_shard(sid, tag)
                key = self._plan_key(sid)
                plan = self._shard_plan(sid, tiled)
                self.cache.pin(key)
                self.matrix.resident.pin(sid)
                try:
                    A = self._execution_tiling(plan)
                    y_strip, counters = tiled_kernel(
                        A, xt, semiring=sr, with_counters=accounting)
                    if accounting:
                        counters.coalesced_read_bytes += float(
                            self.matrix.metadata_nbytes_per_shard())
                        self.ctx.launch("sharded_spmspv_shard",
                                        counters, tag=tag,
                                        phase="multiply")
                finally:
                    self.matrix.resident.unpin(sid)
                    self.cache.unpin(key)
                lo, _hi = self.matrix.strips[sid]
                idx = np.flatnonzero(~sr.is_identity(y_strip))
                if idx.size:
                    sr.scatter_merge(y, idx + lo, y_strip[idx])
        if accounting:
            self.ctx.launch(
                "sharded_combine",
                _combine_counters(merged_rows, y.dtype.itemsize),
                phase="combine")

        if mask is not None:
            y = apply_output_mask(y, mask, mask_complement, sr, self.ctx)
        if output == "dense":
            return y
        idx = np.flatnonzero(~sr.is_identity(y))
        sv = SparseVector(m, idx, y[idx])
        if output == "sparse":
            return sv
        return TiledVector.from_sparse(sv.indices, sv.values, sv.n,
                                       self.matrix.nt,
                                       fill=float(sr.add_identity),
                                       dtype=sr.dtype)

    def multiply_batch(self, xs, output: str = "sparse",
                       tag: Optional[str] = None):
        """Batched multiply: one scheduling pass over the *union* of
        the batch's active tile columns, one
        :func:`~repro.core.spmspv_kernels.batched_union_kernel` launch
        per executed shard, one combiner for the whole batch."""
        if output not in ("sparse", "dense"):
            raise ShapeError(f"unknown output mode {output!r}")
        sr = self.semiring
        m, n = self.matrix.shape
        xts = [self._as_tiled_vector(x) for x in xs]
        if not xts:
            raise ShapeError("batched SpMSpV needs at least one vector")
        for xt in xts:
            if xt.n != n:
                raise ShapeError(
                    f"SpMSpV shape mismatch: A is {self.matrix.shape}, "
                    f"x has length {xt.n}"
                )
        union_active = np.zeros(xts[0].x_ptr.shape[0], dtype=bool)
        for xt in xts:
            union_active |= xt.x_ptr >= 0
        accounting = self.ctx.accounting
        executed = self.scheduler.schedule(np.flatnonzero(union_active))
        if accounting:
            self.ctx.launch("sharded_schedule",
                            self.scheduler.schedule_counters(), tag=tag,
                            phase="schedule")

        k = len(xts)
        Y = np.full((k, m), sr.add_identity, dtype=sr.dtype)
        merged_rows = int(sum(hi - lo for lo, hi in
                              (self.matrix.strips[int(s)]
                               for s in executed)))
        cfg = self.parallel
        if cfg.workers > 1 and executed.size:
            self._ensure_parallel(cfg)
            self._execute_parallel(executed,
                                   np.flatnonzero(union_active),
                                   xts, [Y[b] for b in range(k)],
                                   batched=True, accounting=accounting,
                                   caller_tag=tag)
        else:
            for sid in executed:
                sid = int(sid)
                shard_tag = _shard_tag(sid, tag) if accounting else None
                tiled = self._fault_shard(sid, shard_tag)
                key = self._plan_key(sid)
                plan = self._shard_plan(sid, tiled)
                self.cache.pin(key)
                self.matrix.resident.pin(sid)
                try:
                    A = self._execution_tiling(plan)
                    Ys, counters = batched_union_kernel(A, xts,
                                                        semiring=sr)
                    if accounting:
                        counters.coalesced_read_bytes += float(
                            self.matrix.metadata_nbytes_per_shard())
                        self.ctx.launch("sharded_spmspv_batch",
                                        counters, tag=shard_tag,
                                        phase="batch")
                finally:
                    self.matrix.resident.unpin(sid)
                    self.cache.unpin(key)
                lo, _hi = self.matrix.strips[sid]
                for b in range(k):
                    idx = np.flatnonzero(~sr.is_identity(Ys[b]))
                    if idx.size:
                        sr.scatter_merge(Y[b], idx + lo, Ys[b][idx])
        if accounting:
            self.ctx.launch(
                "sharded_combine",
                _combine_counters(merged_rows * k, Y.dtype.itemsize),
                tag=tag, phase="combine")

        if output == "dense":
            return Y
        out: List[SparseVector] = []
        for b in range(k):
            idx = np.flatnonzero(~sr.is_identity(Y[b]))
            out.append(SparseVector(m, idx, Y[b][idx]))
        return out

    def multiply_block(self, X, output: str = "dense",
                       tag: Optional[str] = None, selector=None):
        """SpMM strip by strip: one scheduling pass over the union of
        the block's active tile columns, one selector-chosen SpMM
        kernel launch per executed shard (``sharded_spmm_shard``), one
        combiner for the whole ``(m, B)`` result.

        Row strips are disjoint, so each shard's 2-D row slab is
        *assigned* into the identity-filled accumulator — which is why
        1-shard, N-shard, and multi-worker execution are all
        bit-identical to each other, and column ``j`` of the result is
        bit-identical to :meth:`multiply` on column ``j`` of the block.
        """
        from ..core.selection import SPMM_MERGE_PATH, KernelSelector
        from ..core.spmm import as_dense_block
        from ..core.spmm_kernels import (row_tile_imbalance,
                                         spmm_merge_path_kernel,
                                         spmm_row_warp_kernel)
        if output not in ("dense", "sparse"):
            raise ShapeError(f"unknown output mode {output!r}")
        if selector is None:
            selector = KernelSelector()
        sr = self.semiring
        m, n = self.matrix.shape
        Xb = as_dense_block(X, self.matrix.nt,
                            float(sr.add_identity), dtype=sr.dtype)
        if Xb.n != n:
            raise ShapeError(
                f"SpMM shape mismatch: A is {self.matrix.shape}, "
                f"X has {Xb.n} rows"
            )
        accounting = self.ctx.accounting
        # a tile column is active when any column of the block has a
        # non-sentinel value in it — the same activity test the SpMM
        # fold applies per column, unioned across the block
        tiles = Xb.data.reshape(-1, Xb.nt, Xb.B)
        if np.isnan(Xb.fill):  # pragma: no cover - defensive
            active = np.any(~np.isnan(tiles), axis=(1, 2))
        else:
            active = np.any(tiles != Xb.fill, axis=(1, 2))
        active_cols = np.flatnonzero(active)
        executed = self.scheduler.schedule(active_cols)
        if accounting:
            self.ctx.launch("sharded_schedule",
                            self.scheduler.schedule_counters(), tag=tag,
                            phase="schedule")

        Y = np.full((m, Xb.B), sr.add_identity, dtype=sr.dtype)
        merged_rows = int(sum(hi - lo for lo, hi in
                              (self.matrix.strips[int(s)]
                               for s in executed)))
        cfg = self.parallel
        if cfg.workers > 1 and executed.size:
            self._ensure_parallel(cfg)
            self._execute_parallel(executed, active_cols, [Xb], [Y],
                                   batched=False,
                                   accounting=accounting,
                                   caller_tag=tag,
                                   spmm_selector=selector)
        else:
            for sid in executed:
                sid = int(sid)
                shard_tag = _shard_tag(sid, tag) if accounting else None
                tiled = self._fault_shard(sid, shard_tag)
                key = self._plan_key(sid)
                plan = self._shard_plan(sid, tiled)
                self.cache.pin(key)
                self.matrix.resident.pin(sid)
                try:
                    A = self._execution_tiling(plan)
                    imb = plan.lazy_get(
                        "spmm_imbalance",
                        lambda A=A: row_tile_imbalance(A))
                    fn = spmm_merge_path_kernel \
                        if selector.choose_spmm(imb) \
                        == SPMM_MERGE_PATH else spmm_row_warp_kernel
                    Y_strip, counters = fn(A, Xb, semiring=sr,
                                           with_counters=accounting)
                    if accounting:
                        counters.coalesced_read_bytes += float(
                            self.matrix.metadata_nbytes_per_shard())
                        self.ctx.launch("sharded_spmm_shard",
                                        counters, tag=shard_tag,
                                        phase="spmm")
                finally:
                    self.matrix.resident.unpin(sid)
                    self.cache.unpin(key)
                lo, _hi = self.matrix.strips[sid]
                idx = np.flatnonzero(
                    np.any(~sr.is_identity(Y_strip), axis=1))
                if idx.size:
                    Y[idx + lo] = Y_strip[idx]
        if accounting:
            self.ctx.launch(
                "sharded_combine",
                _combine_counters(merged_rows * Xb.B,
                                  Y.dtype.itemsize),
                tag=tag, phase="combine")

        if output == "dense":
            return Y
        out: List[SparseVector] = []
        for j in range(Xb.B):
            col = Y[:, j]
            idx = np.flatnonzero(~sr.is_identity(col))
            out.append(SparseVector(m, idx, col[idx].copy()))
        return out

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Scheduler skip counts and resident-set traffic, merged.

        When the pool executor is active, worker-slice traffic (loads,
        hits, evictions, bytes) is summed into the resident-set keys,
        and the work scheduler's placement counters ride along.
        """
        out = dict(self.scheduler.stats())
        res = dict(self.matrix.resident.stats())
        if self._executor is not None:
            ex = self._executor.stats()
            for key in ("loads", "hits", "evictions", "loaded_bytes",
                        "evicted_bytes", "resident_shards",
                        "resident_bytes"):
                res[key] = res.get(key, 0) + ex.get(key, 0)
            out["prefetches"] = ex["prefetches"]
            out["workers"] = self._executor.workers
            out["backend"] = self._executor.backend
            out.update(self._work.stats())
        out.update(res)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ShardedSpMSpV {self.matrix.shape} "
                f"nt={self.matrix.nt} "
                f"shards={self.matrix.n_shards}>")
