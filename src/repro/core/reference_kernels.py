"""Mask-based reference SpMSpV kernels — the pre-active-set seed code.

These are the original functional kernels of
:mod:`repro.core.spmspv_kernels`, preserved verbatim: they locate the
active entries by building boolean masks over **all** ``A.nnz`` stored
entries, so their host cost is O(nnz) regardless of how sparse the
input vector is.  The production kernels replace that mask with a
plan-time column-gather index (see
:class:`~repro.tiles.tiled_matrix.ColumnGather`) whose per-multiply
cost is proportional to the *active* tile columns only.

They remain in-tree for two jobs:

* the kernel-equivalence tests assert the rewritten kernels return the
  same ``y`` and byte-identical
  :class:`~repro.gpusim.counters.KernelCounters` as these oracles;
* the wall-clock benchmark (``benchmarks/bench_wallclock.py``) times
  the rewrite against them, recording the host-side speedup trajectory
  in ``BENCH_wallclock.json``.

The modeled *GPU* cost is identical on both sides by construction: the
counters describe the CUDA realisation, which always skipped inactive
tiles; only the host execution strategy differs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..gpusim import KernelCounters
from ..semiring import PLUS_TIMES, Semiring
from ..tiles.tiled_matrix import TiledMatrix
from ..tiles.tiled_vector import TiledVector
from .spmspv_kernels import _lane_utilization

__all__ = ["reference_tiled_kernel", "reference_csc_tiled_kernel",
           "reference_batched_tiled_kernel", "reference_coo_side_kernel"]


def reference_tiled_kernel(A: TiledMatrix, x: TiledVector,
                           semiring: Semiring = PLUS_TIMES,
                           y_dense: Optional[np.ndarray] = None,
                           ) -> Tuple[np.ndarray, KernelCounters]:
    """Seed Algorithm-4 kernel: O(nnz) boolean-mask entry selection."""
    if x.n != A.shape[1]:
        raise ShapeError(
            f"SpMSpV shape mismatch: A is {A.shape}, x has length {x.n}"
        )
    if x.nt != A.nt:
        raise ShapeError(
            f"tile size mismatch: matrix nt={A.nt}, vector nt={x.nt}"
        )
    nt = A.nt
    m = A.shape[0]
    if y_dense is None:
        y_dense = np.full(m, semiring.add_identity, dtype=semiring.dtype)

    x_off = x.x_ptr[A.tile_colidx]
    active = x_off >= 0
    n_active = int(active.sum())

    counters = KernelCounters(launches=1)
    counters.coalesced_read_bytes += A.n_nonempty_tiles * 16.0
    counters.l2_read_bytes += A.n_nonempty_tiles * 8.0

    if n_active == 0:
        counters.warps = max(1.0, A.n_tile_rows)
        return y_dense, counters

    tile_of_entry = A.tile_of_entry()
    entry_active = active[tile_of_entry]
    t_act = tile_of_entry[entry_active]
    vals = A.values[entry_active]
    lrow = A.local_row[entry_active].astype(np.int64)
    lcol = A.local_col[entry_active].astype(np.int64)

    xv = x.x_tile[x_off[t_act] * nt + lcol]
    products = semiring.mul(vals, xv)
    grow = A.tile_rowidx()[t_act] * nt + lrow
    semiring.add.at(y_dense, grow, products)

    nnz_active = len(vals)
    idx_bytes = A.index_bytes_per_entry()
    counters.coalesced_read_bytes += nnz_active * (8.0 + idx_bytes)
    counters.l2_read_bytes += n_active * nt * 8.0
    counters.shared_bytes += n_active * nt * 8.0
    counters.flops += 2.0 * nnz_active
    counters.word_ops += n_active * 5.0
    row_tiles_active = np.unique(A.tile_rowidx()[active])
    counters.coalesced_write_bytes += len(row_tiles_active) * nt * 8.0
    counters.warps = float(max(1, int((np.diff(A.tile_ptr) > 0).sum())))
    counters.divergence = _lane_utilization(
        np.diff(A.tile_nnz_ptr)[active])
    counters.check()
    return y_dense, counters


def reference_batched_tiled_kernel(A: TiledMatrix, xs,
                                   semiring: Semiring = PLUS_TIMES
                                   ) -> Tuple[np.ndarray, KernelCounters]:
    """Seed batched kernel: per-vector O(nnz) masks, per-iteration
    recomputation of loop-invariant casts."""
    k = len(xs)
    if k == 0:
        raise ShapeError("batched SpMSpV needs at least one vector")
    nt = A.nt
    m = A.shape[0]
    for x in xs:
        if x.n != A.shape[1]:
            raise ShapeError(
                f"SpMSpV shape mismatch: A is {A.shape}, "
                f"x has length {x.n}"
            )
        if x.nt != nt:
            raise ShapeError(
                f"tile size mismatch: matrix nt={nt}, vector nt={x.nt}"
            )

    Y = np.full((k, m), semiring.add_identity, dtype=semiring.dtype)
    counters = KernelCounters(launches=1)
    counters.coalesced_read_bytes += A.n_nonempty_tiles * 16.0
    counters.l2_read_bytes += A.n_nonempty_tiles * 8.0 * k

    tile_of_entry = A.tile_of_entry()
    rowidx = A.tile_rowidx()
    nnz_per_tile = np.diff(A.tile_nnz_ptr)
    total_active_rows = 0.0
    utilizations = []
    for b, x in enumerate(xs):
        x_off = x.x_ptr[A.tile_colidx]
        active = x_off >= 0
        if not active.any():
            continue
        entry_active = active[tile_of_entry]
        t_act = tile_of_entry[entry_active]
        vals = A.values[entry_active]
        lrow = A.local_row[entry_active].astype(np.int64)
        lcol = A.local_col[entry_active].astype(np.int64)
        xv = x.x_tile[x_off[t_act] * nt + lcol]
        products = semiring.mul(vals, xv)
        grow = rowidx[t_act] * nt + lrow
        semiring.add.at(Y[b], grow, products)

        n_active = int(active.sum())
        idx_bytes = A.index_bytes_per_entry()
        counters.coalesced_read_bytes += len(vals) * (8.0 + idx_bytes)
        counters.l2_read_bytes += n_active * nt * 8.0
        counters.shared_bytes += n_active * nt * 8.0
        counters.flops += 2.0 * len(vals)
        row_tiles_active = len(np.unique(rowidx[active]))
        counters.coalesced_write_bytes += row_tiles_active * nt * 8.0
        total_active_rows += row_tiles_active
        utilizations.append(_lane_utilization(nnz_per_tile[active]))

    counters.warps = max(
        1.0, float(max(total_active_rows,
                       int((np.diff(A.tile_ptr) > 0).sum()))))
    if utilizations:
        counters.divergence = float(np.mean(utilizations))
    counters.check()
    return Y, counters


def reference_csc_tiled_kernel(At: TiledMatrix, x: TiledVector,
                               semiring: Semiring = PLUS_TIMES,
                               y_dense: Optional[np.ndarray] = None,
                               ) -> Tuple[np.ndarray, KernelCounters]:
    """Seed CSC-form kernel: active tile selection, then an O(nnz)
    boolean mask to pull the selected entries."""
    n, m = At.shape
    if x.n != n:
        raise ShapeError(
            f"SpMSpV shape mismatch: A is {(m, n)}, x has length {x.n}"
        )
    if x.nt != At.nt:
        raise ShapeError(
            f"tile size mismatch: matrix nt={At.nt}, vector nt={x.nt}"
        )
    nt = At.nt
    if y_dense is None:
        y_dense = np.full(m, semiring.add_identity, dtype=semiring.dtype)

    counters = KernelCounters(launches=1)
    active_cols = np.flatnonzero(x.x_ptr >= 0)
    counters.coalesced_read_bytes += len(active_cols) * 8.0
    if len(active_cols) == 0:
        counters.warps = 1.0
        return y_dense, counters

    from .._util import concat_ranges

    lengths = At.tile_ptr[active_cols + 1] - At.tile_ptr[active_cols]
    tiles = concat_ranges(At.tile_ptr[active_cols], lengths)
    if len(tiles) == 0:
        counters.warps = max(1.0, len(active_cols) / 32.0)
        counters.l2_read_bytes += len(active_cols) * 16.0
        return y_dense, counters

    tile_of_entry = At.tile_of_entry()
    tile_active = np.zeros(At.n_nonempty_tiles, dtype=bool)
    tile_active[tiles] = True
    entry_sel = tile_active[tile_of_entry]
    t_sel = tile_of_entry[entry_sel]
    vals = At.values[entry_sel]
    x_local = At.local_row[entry_sel].astype(np.int64)
    y_local = At.local_col[entry_sel].astype(np.int64)

    col_tile = At.tile_rowidx()[t_sel]
    xv = x.x_tile[x.x_ptr[col_tile] * nt + x_local]
    occupied = ~semiring.is_identity(xv)
    products = semiring.mul(vals[occupied], xv[occupied])
    grow = (At.tile_colidx[t_sel][occupied] * nt
            + y_local[occupied])
    if len(grow):
        semiring.add.at(y_dense, grow, products)

    n_tiles = float(len(tiles))
    nnz_touched = float(len(vals))
    idx_bytes = At.index_bytes_per_entry()
    counters.l2_read_bytes += len(active_cols) * 16.0
    counters.coalesced_read_bytes += n_tiles * 16.0
    counters.coalesced_read_bytes += nnz_touched * (8.0 + idx_bytes)
    counters.l2_read_bytes += n_tiles * nt * 8.0
    counters.shared_bytes += n_tiles * nt * 8.0
    counters.flops += 2.0 * float(occupied.sum())
    counters.atomic_ops += float(occupied.sum())
    counters.random_write_count += float(occupied.sum())
    counters.warps = max(1.0, n_tiles)
    nnz_per_tile = np.diff(At.tile_nnz_ptr)[tiles]
    counters.divergence = _lane_utilization(nnz_per_tile)
    counters.check()
    return y_dense, counters


def reference_coo_side_kernel(side, x: TiledVector,
                              semiring: Semiring = PLUS_TIMES,
                              y_dense: Optional[np.ndarray] = None,
                              ) -> Tuple[np.ndarray, KernelCounters]:
    """Seed COO-side kernel (including its hard-coded float64 empty-hit
    allocation, kept so the dtype regression test can demonstrate the
    fix in the production kernel)."""
    from ..tiles.extraction import IndexedSideMatrix

    if x.n != side.shape[1]:
        raise ShapeError(
            f"SpMSpV shape mismatch: side matrix is {side.shape}, "
            f"x has length {x.n}"
        )
    nt = x.nt
    if isinstance(side, IndexedSideMatrix) and side.nt != nt:
        raise ShapeError(
            f"side index tile size {side.nt} != vector tile size {nt}"
        )
    if y_dense is None:
        y_dense = np.full(side.shape[0], semiring.add_identity,
                          dtype=semiring.dtype)
    counters = KernelCounters(launches=1)
    if side.nnz == 0:
        return y_dense, counters

    if isinstance(side, IndexedSideMatrix):
        active_tiles = np.flatnonzero(
            (x.x_ptr >= 0) & (np.diff(side.coltile_ptr) > 0))
        lengths = (side.coltile_ptr[active_tiles + 1]
                   - side.coltile_ptr[active_tiles])
        from .._util import concat_ranges

        sel = concat_ranges(side.coltile_ptr[active_tiles], lengths)
        rows_all, cols_all, vals_all = (side.row[sel], side.col[sel],
                                        side.val[sel])
        n_index_tiles = int((np.diff(side.coltile_ptr) > 0).sum())
        counters.l2_read_bytes += min(
            n_index_tiles, x.n_nonempty_tiles) * 16.0
        scanned = len(sel)
    else:
        rows_all, cols_all, vals_all = side.row, side.col, side.val
        scanned = side.nnz

    x_off = x.x_ptr[cols_all // nt]
    hit = x_off >= 0
    if int(hit.sum()):
        xv = x.x_tile[x_off[hit] * nt + cols_all[hit] % nt]
    else:
        xv = np.zeros(0, dtype=np.float64)
    occupied = ~semiring.is_identity(xv)
    rows = rows_all[hit][occupied]
    products = semiring.mul(vals_all[hit][occupied], xv[occupied])
    if len(rows):
        semiring.add.at(y_dense, rows, products)

    counters.coalesced_read_bytes += scanned * 24.0
    counters.random_read_count += float(scanned)
    counters.flops += 2.0 * len(rows)
    counters.atomic_ops += float(len(rows))
    counters.random_write_count += float(len(rows))
    counters.warps = max(1.0, scanned / 32.0)
    counters.check()
    return y_dense, counters
