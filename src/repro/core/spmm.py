"""The TileSpMM engine: sparse matrix × tall dense block.

Where :class:`~repro.core.BatchedSpMSpV` unions the active tiles of
``B`` *sparse* vectors, :class:`TileSpMM` targets the next regime on
the roadmap — a dense block of ``B`` columns (multi-personalization
PageRank, label/feature propagation), where every tile column is
active and tile skipping buys nothing.  The wins move to:

* **A-side amortisation** — tile metadata and payload stream from
  global memory once per block, not once per column;
* **row-major reuse** — one nonzero multiplies a contiguous ``B``-wide
  row of the block; the merge-path kernel stages each distinct row
  segment once (``B`` values per *segment*, not per nonzero);
* **load balancing** — :class:`~repro.core.KernelSelector.choose_spmm`
  switches between the naive row-per-warp kernel and the merge-path
  kernel on the occupied-row-tile nonzero imbalance.

Column ``j`` of the result is bit-identical to
``TileSpMSpV.multiply(column j)`` — the column-slice verify check and
the batched-equivalence property test enforce this across semirings.

The engine shares its preprocessing plan (hybrid tiling + indexed COO
side) with ``TileSpMSpV`` / ``BatchedSpMSpV`` through the plan cache,
so building any of the three over one matrix tiles it once.  A
:class:`~repro.shards.sharded_matrix.ShardedTiledMatrix` dispatches
strip by strip through :class:`~repro.shards.engine.ShardedSpMSpV`
(including the multi-worker parallel path).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..errors import ShapeError, TileError
from ..formats.coo import COOMatrix
from ..gpusim import Device
from ..runtime import ExecutionContext, PlanCache, default_plan_cache, \
    matrix_token
from ..semiring import PLUS_TIMES, Semiring
from ..tiles.extraction import HybridTiledMatrix
from ..tiles.tiled_matrix import TiledMatrix
from ..tiles.tiled_vector import SUPPORTED_TILE_SIZES
from ..vectors.dense_block import DenseBlock
from ..vectors.sparse_vector import SparseVector
from .selection import SPMM_MERGE_PATH, KernelSelector
from .spmspv import VectorLike, _build_spmspv_plan, _spmspv_plan
from .spmm_kernels import (row_tile_imbalance, spmm_coo_side_kernel,
                           spmm_merge_path_kernel, spmm_row_warp_kernel)

__all__ = ["TileSpMM", "as_dense_block"]

BlockLike = Union[DenseBlock, np.ndarray, list, tuple]


def as_dense_block(X: BlockLike, nt: int, fill: float,
                   dtype=None) -> DenseBlock:
    """Coerce any accepted block form to a :class:`DenseBlock`.

    Accepts a prebuilt block (tile size must match), a dense ``(n, B)``
    array, or a sequence of sparse vectors (densified column by column
    with the same scatter the tiled vector uses, so values stay
    bit-identical to the batched engine's operands).
    """
    if isinstance(X, DenseBlock):
        if X.nt != nt:
            return DenseBlock.from_dense(X.to_dense(), nt, fill=fill,
                                         dtype=X.data.dtype)
        return X
    if isinstance(X, np.ndarray):
        return DenseBlock.from_dense(X, nt, fill=fill, dtype=dtype)
    if isinstance(X, (list, tuple)):
        if len(X) and isinstance(X[0], np.ndarray):
            return DenseBlock.from_dense(np.column_stack(X), nt,
                                         fill=fill, dtype=dtype)
        return DenseBlock.from_sparse_vectors(X, nt, fill=fill,
                                              dtype=dtype)
    raise ShapeError(f"cannot build a DenseBlock from {type(X).__name__}")


class TileSpMM:
    """Prepared SpMM operator for one sparse matrix.

    Parameters
    ----------
    matrix:
        Any library sparse matrix, an already-built
        :class:`~repro.tiles.extraction.HybridTiledMatrix` /
        :class:`~repro.tiles.tiled_matrix.TiledMatrix`, or a
        :class:`~repro.shards.sharded_matrix.ShardedTiledMatrix`
        (strip-by-strip execution, parallel-capable).
    nt:
        Tile size (16/32/64 per the paper; small powers of two for
        testing).
    extract_threshold:
        Very-sparse-tile COO extraction threshold (paper §3.2.1).
    semiring:
        The ``(add, mul)`` algebra applied to every column.
    device:
        Optional simulated GPU (or a shared
        :class:`~repro.runtime.ExecutionContext`).
    selector:
        :class:`~repro.core.KernelSelector` arbitrating row-per-warp
        vs merge-path (``KernelSelector.fixed("spmm_merge_path")``
        forces one kernel for benchmarks/grids).
    plan_cache:
        Plan cache override; the key matches ``TileSpMSpV(mode="csr")``
        over the same matrix, so all three engines share one tiling.
    """

    def __init__(self, matrix, nt: int = 16, extract_threshold: int = 2,
                 semiring: Semiring = PLUS_TIMES,
                 device: Optional[Device] = None,
                 selector: Optional[KernelSelector] = None,
                 plan_cache: Optional[PlanCache] = None,
                 parallel=None):
        if nt not in SUPPORTED_TILE_SIZES:
            raise TileError(
                f"unsupported tile size {nt}; allowed: {SUPPORTED_TILE_SIZES}"
            )
        self.semiring = semiring
        self.selector = selector if selector is not None \
            else KernelSelector()
        self.ctx = ExecutionContext.wrap(device, operator="tilespmm")
        # deferred import: repro.shards imports core helpers
        from ..shards.sharded_matrix import ShardedTiledMatrix
        if isinstance(matrix, ShardedTiledMatrix):
            from ..shards.engine import ShardedSpMSpV
            self._sharded: Optional[ShardedSpMSpV] = ShardedSpMSpV(
                matrix, semiring=semiring, device=self.ctx,
                plan_cache=plan_cache, parallel=parallel)
            self._plan = None
            self.hybrid = None
            self._side_index = None
            return
        self._sharded = None
        if isinstance(matrix, HybridTiledMatrix):
            self._plan = _spmspv_plan(matrix)
        elif isinstance(matrix, TiledMatrix):
            self._plan = _spmspv_plan(HybridTiledMatrix(
                tiled=matrix,
                side=COOMatrix.empty(matrix.shape),
                threshold=0,
            ))
        else:
            cache = plan_cache if plan_cache is not None \
                else default_plan_cache()
            # same key as TileSpMSpV(mode="csr"): one tiling serves all
            key = ("tilespmspv", matrix_token(matrix), nt,
                   extract_threshold, semiring, "csr")
            self._plan = cache.get_or_build(
                key,
                lambda: _build_spmspv_plan(matrix, nt, extract_threshold,
                                           key),
                pin=matrix)
        self.hybrid = self._plan.data["hybrid"]
        self._side_index = self._plan.data["side_index"]

    # ------------------------------------------------------------------
    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("tilespmm")
        else:
            self.ctx.device = device
        if self._sharded is not None:
            self._sharded.device = device

    @property
    def shape(self):
        if self._sharded is not None:
            return self._sharded.shape
        return self.hybrid.shape

    @property
    def nt(self) -> int:
        if self._sharded is not None:
            return self._sharded.nt
        return self.hybrid.nt

    @property
    def nnz(self) -> int:
        if self._sharded is not None:
            return self._sharded.nnz
        return self.hybrid.nnz

    # ------------------------------------------------------------------
    def _imbalance(self) -> float:
        """The tiled part's row-tile imbalance, cached on the shared
        plan (the statistic is a property of the tiling, not of any
        input block)."""
        return self._plan.lazy_get(
            "spmm_imbalance",
            lambda: row_tile_imbalance(self.hybrid.tiled))

    def chosen_kernel(self) -> str:
        """Which kernel :meth:`multiply_block` will run (the selector's
        decision for this matrix)."""
        if self._sharded is not None:
            return self.selector.choose_spmm(1.0) if \
                self.selector.forced is not None else "per-shard"
        return self.selector.choose_spmm(self._imbalance())

    def sparsify(self, y_dense: np.ndarray) -> SparseVector:
        """Extract one dense column into a :class:`SparseVector` (the
        same identity-dropping extraction the single-vector path
        performs)."""
        occupied = ~self.semiring.is_identity(y_dense)
        idx = np.flatnonzero(occupied)
        return SparseVector(self.shape[0], idx, y_dense[idx])

    def as_block(self, X: BlockLike) -> DenseBlock:
        """Coerce ``X`` to a :class:`DenseBlock` with this operator's
        tile size, sentinel, and dtype."""
        return as_dense_block(X, self.nt,
                              float(self.semiring.add_identity),
                              dtype=self.semiring.dtype)

    def multiply_block(self, X: BlockLike, output: str = "dense",
                       tag: Optional[str] = None,
                       ) -> Union[np.ndarray, List[SparseVector]]:
        """Compute ``Y = A @ X`` for the whole block in one launch.

        Parameters
        ----------
        X:
            A :class:`DenseBlock`, a dense ``(n, B)`` array, or a
            sequence of sparse vectors (one per column).
        output:
            ``"dense"`` (default) → one ``(m, B)`` ndarray;
            ``"sparse"`` → list of per-column :class:`SparseVector`.
        tag:
            Optional tag forwarded to the launch records.
        """
        if output not in ("dense", "sparse"):
            raise ShapeError(f"unknown output mode {output!r}")
        if self._sharded is not None:
            return self._sharded.multiply_block(
                X, output=output, tag=tag, selector=self.selector)
        Xb = self.as_block(X)
        if Xb.n != self.shape[1]:
            raise ShapeError(
                f"SpMM shape mismatch: A is {self.shape}, "
                f"X has {Xb.n} rows"
            )
        kernel = self.selector.choose_spmm(self._imbalance())
        if kernel == SPMM_MERGE_PATH:
            fn, name = spmm_merge_path_kernel, "tile_spmm_merge_path"
        else:
            fn, name = spmm_row_warp_kernel, "tile_spmm_row_warp"
        Y, counters = fn(self.hybrid.tiled, Xb, semiring=self.semiring)
        self.ctx.launch(name, counters, phase="spmm", tag=tag)
        if self.hybrid.side.nnz:
            _, side_counters = spmm_coo_side_kernel(
                self._side_index, Xb, semiring=self.semiring, Y=Y)
            self.ctx.launch("tile_spmm_coo_side", side_counters,
                            phase="spmm", tag=tag)
        if output == "dense":
            return Y
        return [self.sparsify(Y[:, j]) for j in range(Y.shape[1])]

    def multiply(self, x: VectorLike, output: str = "sparse"):
        """Single-vector convenience: a block of one column.

        The result is bit-identical to ``TileSpMSpV.multiply(x)`` on
        the same matrix — the B = 1 limit of the column-slice
        equivalence.
        """
        if isinstance(x, np.ndarray):
            block: BlockLike = x.reshape(-1, 1)
        else:
            if not isinstance(x, SparseVector):
                from .spmspv import as_tiled_vector
                xt = as_tiled_vector(x, self.nt,
                                     float(self.semiring.add_identity),
                                     dtype=self.semiring.dtype)
                idx, vals = xt.to_sparse()
                x = SparseVector(xt.n, idx, vals)
            block = [x]
        result = self.multiply_block(
            block, output="dense" if output == "dense" else "sparse")
        if output == "dense":
            return result[:, 0]
        return result[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._sharded is not None:
            return (f"<TileSpMM {self.shape} nt={self.nt} "
                    f"shards={self._sharded.matrix.n_shards} "
                    f"semiring={self.semiring.name}>")
        return (f"<TileSpMM {self.shape} nt={self.nt} "
                f"tiles={self.hybrid.tiled.n_nonempty_tiles} "
                f"side_nnz={self.hybrid.side.nnz} "
                f"semiring={self.semiring.name}>")
