"""Directional-optimization kernel selection (paper §3.4).

The paper's switching rule, quoted:

1. "When the sparsity of the input vector x is less than 0.01 and the
   number of unvisited vertices is large, we will use ... Push-CSC."
2. "When the sparsity ... is greater than or equal to 0.01 and the
   number of unvisited vertices is large, we will use ... Push-CSR."
3. "When the number of unvisited vertices is small, we will use ...
   Pull-CSC."

:class:`KernelSelector` implements that rule with configurable
thresholds and a configurable set of *enabled* kernels, which is what
the Figure-9 ablation stacks: K1, K1+K2, K1+K2+K3.

It also implements the nt rule of §3.4: order > 10,000 → 64x64 tiles,
otherwise 32x32.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from ..errors import TileError

__all__ = ["KernelSelector", "select_tile_size",
           "PUSH_CSC", "PUSH_CSR", "PULL_CSC",
           "SPMM_ROW_WARP", "SPMM_MERGE_PATH"]

PUSH_CSC = "push_csc"
PUSH_CSR = "push_csr"
PULL_CSC = "pull_csc"

_ALL = frozenset({PUSH_CSC, PUSH_CSR, PULL_CSC})

SPMM_ROW_WARP = "spmm_row_warp"
SPMM_MERGE_PATH = "spmm_merge_path"

_SPMM = frozenset({SPMM_ROW_WARP, SPMM_MERGE_PATH})


def select_tile_size(order: int) -> int:
    """The paper's nt rule: matrices of order > 10,000 use 64x64 tiles,
    smaller ones 32x32 (§3.4)."""
    return 64 if order > 10_000 else 32


@dataclass(frozen=True)
class KernelSelector:
    """Chooses which BFS kernel runs an iteration.

    Parameters
    ----------
    enabled:
        Subset of {push_csc, push_csr, pull_csc}; must contain
        ``push_csc`` (K1 is the fallback the ablation always keeps).
    sparsity_threshold:
        The 0.01 frontier-sparsity switch between Push-CSC and
        Push-CSR (paper rule 1/2).
    pull_threshold:
        "The number of unvisited vertices is small" — Pull-CSC engages
        when ``unvisited / n`` drops below this fraction.
    tier:
        Execution tier for the per-layer loop.  ``"auto"`` (default)
        uses the compiled fast path whenever it is applicable and
        enabled (see :func:`repro.fastpath.fastpath_tier`);
        ``"fastpath"`` insists on the fused tier even when the
        ``REPRO_FASTPATH=off`` environment override is set;
        ``"kernels"`` always runs the preserved per-launch reference
        kernels.  The tier changes host execution strategy only —
        results and modeled counters are identical across tiers.
    """

    enabled: FrozenSet[str] = field(default_factory=lambda: _ALL)
    sparsity_threshold: float = 0.01
    pull_threshold: float = 0.05
    #: SpMM load-balance switch: the merge-path kernel engages when the
    #: occupied-row-tile nonzero imbalance (``max / mean``) reaches
    #: this factor — balanced matrices keep the cheaper row-per-warp
    #: mapping, skewed ones split work evenly across warps.
    spmm_imbalance_threshold: float = 4.0
    #: When set, every iteration runs this kernel regardless of the
    #: rule — the forcing hook behind per-kernel benchmarks and the
    #: kernel-equivalence / correctness grids.  BFS kernels steer
    #: :meth:`choose`, SpMM kernels steer :meth:`choose_spmm`.
    forced: Optional[str] = None
    tier: str = "auto"

    def __post_init__(self) -> None:
        bad = set(self.enabled) - _ALL
        if bad:
            raise TileError(f"unknown kernels in selector: {sorted(bad)}")
        if PUSH_CSC not in self.enabled:
            raise TileError("push_csc (K1) must always be enabled")
        if not (0.0 < self.sparsity_threshold < 1.0):
            raise TileError("sparsity_threshold must be in (0, 1)")
        if not (0.0 <= self.pull_threshold <= 1.0):
            raise TileError("pull_threshold must be in [0, 1]")
        if self.spmm_imbalance_threshold < 1.0:
            raise TileError("spmm_imbalance_threshold must be >= 1")
        if self.forced is not None and self.forced not in (_ALL | _SPMM):
            raise TileError(f"unknown forced kernel {self.forced!r}")
        if self.tier not in ("auto", "fastpath", "kernels"):
            raise TileError(f"unknown execution tier {self.tier!r}; "
                            "expected auto, fastpath, or kernels")

    # ------------------------------------------------------------------
    @classmethod
    def k1(cls) -> "KernelSelector":
        """Figure-9 ablation point 'K1': Push-CSC only."""
        return cls(enabled=frozenset({PUSH_CSC}))

    @classmethod
    def k1_k2(cls) -> "KernelSelector":
        """Figure-9 ablation point 'K1+K2': both push kernels."""
        return cls(enabled=frozenset({PUSH_CSC, PUSH_CSR}))

    @classmethod
    def k1_k2_k3(cls) -> "KernelSelector":
        """Figure-9 ablation point 'K1+K2+K3': the full rule."""
        return cls(enabled=_ALL)

    @classmethod
    def fixed(cls, kernel: str) -> "KernelSelector":
        """A selector that always picks ``kernel`` — used to drive one
        kernel across a whole traversal (per-kernel wall-clock rows,
        the BFS correctness grid)."""
        return cls(forced=kernel)

    # ------------------------------------------------------------------
    def choose(self, frontier_sparsity: float, unvisited_fraction: float
               ) -> str:
        """Apply the paper's rule given the current iteration's state.

        Parameters
        ----------
        frontier_sparsity:
            ``nnz(x) / n`` of the current frontier.
        unvisited_fraction:
            ``(n - |visited|) / n``.
        """
        if self.forced is not None and self.forced in _ALL:
            return self.forced
        unvisited_small = unvisited_fraction < self.pull_threshold
        frontier_dense = frontier_sparsity >= self.sparsity_threshold
        # Pull scans every unvisited vertex, so it only pays while the
        # frontier is still dense; a thin tail frontier (long-diameter
        # matrices) stays with the cheap vector-driven push.  This is
        # the push/pull guard of directional optimization (Beamer et
        # al.), which the paper's rule 3 builds on.
        if unvisited_small and frontier_dense and PULL_CSC in self.enabled:
            return PULL_CSC
        if frontier_dense and PUSH_CSR in self.enabled:
            return PUSH_CSR
        return PUSH_CSC

    def choose_spmm(self, row_imbalance: float) -> str:
        """Pick the SpMM kernel for a matrix with the given
        occupied-row-tile nonzero imbalance (``max / mean``; see
        :func:`~repro.core.spmm_kernels.row_tile_imbalance`).

        Balanced matrices keep the naive row-per-warp mapping (no
        partition search, no staging overhead); once one row tile
        holds :attr:`spmm_imbalance_threshold` times the mean work,
        the merge-path kernel's even nonzero split wins.
        """
        if self.forced is not None and self.forced in _SPMM:
            return self.forced
        if row_imbalance >= self.spmm_imbalance_threshold:
            return SPMM_MERGE_PATH
        return SPMM_ROW_WARP
