"""The three directional-optimization BFS kernels (paper §3.4, Fig. 5).

All three operate on bitmask-compressed tiles over the OR-AND semiring
("the AND operation represents multiplication, and the OR operation
represents addition"), and all three return only *new* vertices:
``y = (A ⊗ x) & ~m`` — the ``sum = (NOT (mask AND sum_x)) AND sum_x``
line shared by Algorithms 5-7.

* :func:`push_csc_kernel` (K1, Alg. 5) — vector-driven over the
  column-compressed tiles (A1): each frontier bit selects one local
  column word of every stored tile in its tile column and ORs it into
  the result row tile atomically.  Cheap when the frontier is tiny.
* :func:`push_csr_kernel` (K2, Alg. 6) — matrix-driven over the
  row-compressed tiles (A2): a warp per row tile ANDs each local row
  word with the frontier word of the tile's column; only tiles whose
  frontier tile is non-empty are touched.  Wins on denser frontiers
  because its accesses stream.
* :func:`pull_csc_kernel` (K3, Alg. 7) — pull from the unvisited side:
  each unvisited vertex scans its column in A1 against the visited
  mask and stops at the first visited parent (the early-exit
  ``x_id = -1`` of Alg. 7, which the counters honour).

Each kernel returns ``(y, counters)`` where ``y`` is the
:class:`~repro.tiles.bitmask.BitVector` of newly found vertices; pass
``out=`` to reuse a workspace vector instead of allocating (the
allocation-free TileBFS layer loop does).

Active-tile execution
---------------------
The modeled counters always priced only the *active* side of each
direction — that is the paper's §3.4 claim — but the seed host
execution still paid O(everything) per layer: Push-CSR gathered a
frontier word for every stored tile and Pull-CSC expanded every
unvisited vertex's tile range through ``np.repeat``.  The kernels now
run on plan-time gather structures cached on
:class:`~repro.tiles.bitmask.BitTiledMatrix` (and warmed through the
operator plan's lazy slots):

* Push-CSC walks only the frontier vertices' tile columns and replaces
  the ``bitwise_or.at`` scatter with the sort + ``reduceat`` fast path
  of :func:`~repro.tiles.bitmask.segmented_scatter_or`;
* Push-CSR walks the plan-attached column view (the csc tiling, i.e.
  the BFS plan's A1) and gathers one stored word per *(frontier bit,
  tile)* pair — cost proportional to the frontier's set bits, not to
  the stored tiles (a chunked streaming sweep takes over near-dense
  frontiers);
* Pull-CSC operates at *word* granularity over ``~m``: one masked AND
  per stored tile of an unvisited column, packed back to words by
  :func:`~repro.tiles.bitmask.pack_hit_words`, with a vertex-level
  regime for unvisited sets too scattered for word batching.

Every regime selects the same logical work, so results **and**
counters are byte-identical to the preserved seed oracles in
:mod:`repro.core.reference_bfs_kernels` — the BFS kernel-equivalence
tests enforce this, keeping all simulated-ms figures and Fig. 10
traces unchanged while host wall-clock drops.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._util import concat_ranges, gather_ranges
from ..errors import ShapeError
from ..gpusim import KernelCounters
from ..tiles.bitmask import (BitTiledMatrix, BitVector, pack_hit_words,
                             segmented_scatter_or, unpack_words)

__all__ = ["push_csc_kernel", "push_csr_kernel", "pull_csc_kernel",
           "expand_vertex_tiles"]

_U64 = np.uint64

#: Push-CSR regime switch: the bit-gather path touches one stored word
#: per (frontier bit, column tile) pair while the sweep ANDs all
#: ``n_tiles * nt`` stored words; gathered elements cost about this
#: factor more each (fancy indexing vs streaming), so gather wins while
#: ``BIT_GATHER_FACTOR * n_bits <= n_tiles * nt``.
BIT_GATHER_FACTOR = 3

#: Stored tiles per chunk of the Push-CSR streaming sweep — bounds the
#: AND/pack intermediates to a few MB so they stay cache-resident
#: instead of materialising an O(n_tiles * nt) array per launch.
_SWEEP_CHUNK = 32768

#: Pull-CSC regime switch: word-level traversal ANDs ``nt`` lanes per
#: stored tile of an unvisited column, vertex-level expansion pays per
#: (vertex, tile) pair; word level wins once the per-pair total exceeds
#: the per-tile total by this factor.
PULL_WORD_COST_FACTOR = 2


def _check_operands(A: BitTiledMatrix, x: BitVector, m: BitVector,
                    orientation: str, kernel: str) -> None:
    if A.orientation != orientation:
        raise ShapeError(
            f"{kernel} requires the {orientation!r}-compressed matrix, "
            f"got {A.orientation!r}"
        )
    if A.shape[0] != A.shape[1]:
        raise ShapeError(f"BFS requires a square matrix, got {A.shape}")
    if x.n != A.shape[1] or m.n != A.shape[0]:
        raise ShapeError(
            f"vector length mismatch: A is {A.shape}, x has {x.n}, "
            f"m has {m.n}"
        )
    if x.nt != A.nt or m.nt != A.nt:
        raise ShapeError(
            f"tile size mismatch: A nt={A.nt}, x nt={x.nt}, m nt={m.nt}"
        )


def _result_vector(n: int, nt: int, out: Optional[BitVector]) -> BitVector:
    """A zeroed result vector: ``out`` cleared in place, or a fresh one."""
    if out is None:
        return BitVector.zeros(n, nt)
    if out.n != n or out.nt != nt:
        raise ShapeError(
            f"workspace mismatch: need ({n},{nt}), got ({out.n},{out.nt})"
        )
    out.clear()
    return out


def expand_vertex_tiles(A1: BitTiledMatrix, vertices: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-vertex tile expansion over the column-compressed tiles.

    For each global vertex ``j`` (a frontier bit in Push-CSC, an
    unvisited bit in vertex-level Pull-CSC), name the stored tiles of
    its tile column and its local column within them.

    Returns ``(lengths, gathered, local_col)`` where ``lengths[v]`` is
    the stored-tile count of vertex ``v``'s column, ``gathered`` the
    concatenated stored-tile indices (``lengths[v]`` entries per
    vertex, column order), and ``local_col`` the vertex's within-tile
    column repeated alongside.
    """
    nt = A1.nt
    jt = vertices // nt
    lengths = A1.tile_ptr[jt + 1] - A1.tile_ptr[jt]
    gathered = concat_ranges(A1.tile_ptr[jt], lengths)
    local_col = np.repeat(vertices % nt, lengths)
    return lengths, gathered, local_col


def push_csc_kernel(A1: BitTiledMatrix, x: BitVector, m: BitVector,
                    out: Optional[BitVector] = None
                    ) -> Tuple[BitVector, KernelCounters]:
    """K1 — warp-level Push-CSC (paper Algorithm 5).

    Vector-driven: every set bit of ``x`` (a frontier vertex ``j``)
    walks the stored tiles of tile column ``j // nt`` and ORs the local
    column word ``A1.words[t, j % nt]`` (its out-neighbours inside that
    row tile) into the result, masked by the visited set.  Host cost is
    proportional to the frontier's tiles; the merge runs through the
    segmented-reduce scatter instead of ``bitwise_or.at``.
    """
    _check_operands(A1, x, m, "csc", "push_csc")
    nt = A1.nt
    y = _result_vector(x.n, nt, out)
    counters = KernelCounters(launches=1)

    frontier = x.to_indices()
    counters.coalesced_read_bytes += len(x.words) * 8.0  # scan frontier words
    if len(frontier) == 0:
        counters.warps = 1.0
        return y, counters

    lengths, gathered, lc_rep = expand_vertex_tiles(A1, frontier)

    if len(gathered):
        col_words = A1.words[gathered, lc_rep]
        row_tiles = A1.tile_otheridx[gathered]
        new_words = col_words & ~m.words[row_tiles]
        segmented_scatter_or(y.words, row_tiles, new_words)

    n_gathered = float(len(gathered))
    # per frontier vertex: tile_ptr lookup (L2) ...
    counters.l2_read_bytes += len(frontier) * 16.0
    # ... then per touched tile: one word (scattered), the mask word
    # (scattered, often L2-hot), one atomicOr into y.
    counters.random_read_count += n_gathered        # A1 word
    counters.l2_read_bytes += n_gathered * 8.0      # mask word
    counters.word_ops += n_gathered * 3.0           # and/not/or
    counters.atomic_ops += 2.0 * n_gathered         # y and flag (Alg.5 l.5-6)
    counters.random_write_count += n_gathered
    counters.warps = max(1.0, len(frontier) / 32.0 + n_gathered / 32.0)
    counters.divergence = 1.0  # lanes process independent tiles
    counters.check()
    return y, counters


def push_csr_kernel(A2: BitTiledMatrix, x: BitVector, m: BitVector,
                    out: Optional[BitVector] = None
                    ) -> Tuple[BitVector, KernelCounters]:
    """K2 — warp-level Push-CSR (paper Algorithm 6).

    Matrix-driven: one warp per row tile streams its stored tiles; a
    tile is processed only when the frontier word of its tile column is
    non-empty (Alg. 6 line 3's ``continue``).  The host mirrors that
    skip through the plan-attached :meth:`column view
    <repro.tiles.bitmask.BitTiledMatrix.column_view>` (the csc tiling —
    the BFS plan's A1): OR-ing a tile's column words selected by the
    frontier bits equals testing its row words against the frontier
    word, so the host gathers one stored word per *(frontier bit,
    column tile)* pair and never touches inactive tiles.  Near-dense
    frontiers switch to a chunked streaming sweep of the row-tile
    storage, which beats gathering almost everything.

    The counters are analytic in ``n_active`` (stored tiles in active
    columns) and match the modeled GPU of the seed exactly; the host
    execution strategy never enters them.
    """
    _check_operands(A2, x, m, "csr", "push_csr")
    nt = A2.nt
    y = _result_vector(x.n, nt, out)
    counters = KernelCounters(launches=1)

    n_tiles = A2.n_nonempty_tiles
    if n_tiles == 0:
        counters.warps = 1.0
        return y, counters

    # all stored tiles read their metadata + frontier word (the modeled
    # GPU streams the whole row-tile structure regardless of activity)
    counters.coalesced_read_bytes += n_tiles * 16.0
    counters.l2_read_bytes += n_tiles * 8.0

    cols = np.flatnonzero(x.words)
    A1v = A2.column_view()
    counts = A1v.tile_ptr[cols + 1] - A1v.tile_ptr[cols]
    n_active = int(counts.sum())

    if n_active:
        xw_cols = x.words[cols]
        bits_per_col = np.bitwise_count(xw_cols).astype(np.int64)
        n_bits = int((counts * bits_per_col).sum())
        if BIT_GATHER_FACTOR * n_bits <= n_tiles * nt:
            _push_csr_bit_gather(A1v, xw_cols, cols, counts,
                                 bits_per_col, y)
        else:
            _push_csr_sweep(A2, x, y)
        # (A | B) & ~m == (A & ~m) | (B & ~m): one mask pass at the end
        y.words &= ~m.words

        counters.coalesced_read_bytes += n_active * nt * 8.0  # tile words
        counters.word_ops += n_active * nt * 2.0              # and + test
        counters.l2_read_bytes += n_active * 8.0              # mask word
        counters.atomic_ops += 2.0 * n_active
        counters.random_write_count += float(n_active)

    # one warp per row tile (long row tiles are split across warps for
    # load balance — §3.4 —, modelled as extra warps, no extra work)
    counters.warps = A2.row_warp_count()
    counters.divergence = max(1.0 / 32.0,
                              min(1.0, n_active / max(1, n_tiles)))
    counters.check()
    return y, counters


def _push_csr_bit_gather(A1v: BitTiledMatrix, xw_cols: np.ndarray,
                         cols: np.ndarray, counts: np.ndarray,
                         bits_per_col: np.ndarray, y: BitVector) -> None:
    """Frontier-proportional Push-CSR execution over the column view.

    For each active tile column and each stored tile in it, OR the
    column words selected by the frontier's set bits straight into the
    tile's result row — one gathered word per (frontier bit, tile)
    pair.  ``y`` accumulates unmasked; the caller applies ``~m`` once.
    """
    tiles_in_cols = gather_ranges(A1v.tile_ptr, cols)
    row_tiles = A1v.tile_otheridx[tiles_in_cols]
    # bits of each (column, tile) pair form one reduce segment
    bc_rep = np.repeat(bits_per_col, counts)
    seg_starts = np.zeros(len(tiles_in_cols), dtype=np.int64)
    np.cumsum(bc_rep[:-1], out=seg_starts[1:])
    n_bits = int(bc_rep.sum())

    # set bits of each frontier word, grouped per active column,
    # ascending local index (= local column in the csc view)
    _, local_bits = np.nonzero(unpack_words(xw_cols, A1v.nt))
    bit_start = np.zeros(len(cols), dtype=np.int64)
    np.cumsum(bits_per_col[:-1], out=bit_start[1:])

    pos = np.arange(n_bits, dtype=np.int64) - np.repeat(seg_starts, bc_rep)
    bit_idx = np.repeat(np.repeat(bit_start, counts), bc_rep) + pos
    words_el = A1v.words[np.repeat(tiles_in_cols, bc_rep),
                         local_bits[bit_idx]]
    tile_or = np.bitwise_or.reduceat(words_el, seg_starts)
    segmented_scatter_or(y.words, row_tiles, tile_or)


def _push_csr_sweep(A2: BitTiledMatrix, x: BitVector,
                    y: BitVector) -> None:
    """Near-dense-frontier Push-CSR execution: stream the row-tile
    storage in order, AND each stored tile's row words with its
    column's frontier word, and pack the hit rows back to result words.

    Chunked so the intermediates stay cache-resident; inactive tiles
    produce zero words, which the OR merge ignores.  ``y`` accumulates
    unmasked; the caller applies ``~m`` once.
    """
    nt = A2.nt
    n_tiles = A2.n_nonempty_tiles
    xw = x.words[A2.tile_otheridx]          # frontier word per stored tile
    out_words = np.empty(n_tiles, dtype=_U64)
    and_buf = np.empty((min(_SWEEP_CHUNK, n_tiles), nt), dtype=_U64)
    hit_buf = np.empty_like(and_buf, dtype=bool)
    for s in range(0, n_tiles, _SWEEP_CHUNK):
        e = min(s + _SWEEP_CHUNK, n_tiles)
        k = e - s
        np.bitwise_and(A2.words[s:e], xw[s:e, None], out=and_buf[:k])
        np.not_equal(and_buf[:k], 0, out=hit_buf[:k])
        out_words[s:e] = pack_hit_words(hit_buf[:k], nt)
    # tile_majoridx is ascending for csr storage, so the scatter takes
    # the segmented-reduce fast path
    segmented_scatter_or(y.words, A2.tile_majoridx(), out_words)


def pull_csc_kernel(A1: BitTiledMatrix, x: BitVector, m: BitVector,
                    out: Optional[BitVector] = None
                    ) -> Tuple[BitVector, KernelCounters]:
    """K3 — warp-level Pull-CSC (paper Algorithm 7).

    Pull from the unvisited side: each *unvisited* vertex (a set bit of
    ``~m``; ``x`` is ignored except for validation, matching the
    paper's "the vector x3 can be obtained by bitwise inversion of
    m3") checks the stored tiles of its own column against the visited
    mask and claims itself as soon as any visited parent appears — the
    early exit of Alg. 7 lines 7-11, which the counters honour by only
    charging tiles scanned up to the first hit.

    Host execution walks only the *unvisited* tile columns.  When the
    unvisited set is dense within its columns, the whole column is
    resolved at word granularity (one masked AND per stored tile, all
    ``nt`` vertices at once); a scattered unvisited set falls back to
    per-vertex expansion.  Both regimes charge the seed's exact
    early-exit counter.
    """
    _check_operands(A1, x, m, "csc", "pull_csc")
    nt = A1.nt
    y = _result_vector(m.n, nt, out)
    counters = KernelCounters(launches=1)

    inv_words = A1.full_mask_words() & ~m.words
    counters.coalesced_read_bytes += len(m.words) * 8.0  # scan mask words
    n_unvisited = int(np.bitwise_count(inv_words).sum())
    if n_unvisited == 0:
        counters.warps = 1.0
        return y, counters

    cols = np.flatnonzero(inv_words)
    counts = A1.tile_ptr[cols + 1] - A1.tile_ptr[cols]
    unvisited_per_col = np.bitwise_count(inv_words[cols]).astype(np.int64)
    # the seed expanded every (unvisited vertex, column tile) pair
    n_gathered = int((counts * unvisited_per_col).sum())

    if n_gathered:
        n_col_tiles = int(counts.sum())
        if n_col_tiles * nt <= PULL_WORD_COST_FACTOR * n_gathered:
            found, scanned = _pull_word_level(A1, m, y, inv_words,
                                              cols, counts)
        else:
            found, scanned = _pull_vertex_level(A1, m, y, inv_words)
        counters.random_read_count += float(scanned)   # A1 words
        counters.l2_read_bytes += float(scanned) * 8.0  # mask words
        counters.word_ops += float(scanned) * 3.0
        counters.atomic_ops += float(found)             # flag OR (Alg.7 l.9)
        counters.random_write_count += float(found)

    counters.l2_read_bytes += n_unvisited * 16.0     # tile_ptr lookups
    counters.warps = max(1.0, n_unvisited / 32.0)
    counters.check()
    return y, counters


def _pull_word_level(A1: BitTiledMatrix, m: BitVector, y: BitVector,
                     inv_words: np.ndarray, cols: np.ndarray,
                     counts: np.ndarray) -> Tuple[int, int]:
    """Word-granularity pull: resolve all ``nt`` vertices of each
    unvisited tile column per stored tile.

    Fills ``y`` and returns ``(found, scanned)`` with the seed's exact
    early-exit tile accounting.
    """
    nt = A1.nt
    nonempty = counts > 0
    cols_ne = cols[nonempty]
    counts_ne = counts[nonempty]
    sel = gather_ranges(A1.tile_ptr, cols_ne)      # tiles grouped by column
    masked = A1.words[sel] & m.words[A1.tile_otheridx[sel]][:, None]
    hits = masked != 0                             # (tiles, nt)

    starts = np.zeros(len(cols_ne), dtype=np.int64)
    np.cumsum(counts_ne[:-1], out=starts[1:])
    col_or = np.bitwise_or.reduceat(pack_hit_words(hits, nt), starts)
    y.words[cols_ne] = col_or & inv_words[cols_ne]
    found = int(np.bitwise_count(y.words).sum())

    # early exit: within each column, a vertex scans tiles until its
    # first hit (all of them when no parent is visited)
    pos = np.arange(len(sel), dtype=np.int64) - np.repeat(starts, counts_ne)
    sentinel = np.iinfo(np.int64).max
    first_hit = np.minimum.reduceat(
        np.where(hits, pos[:, None], sentinel), starts, axis=0)
    scan = np.where(first_hit < sentinel, first_hit + 1,
                    counts_ne[:, None])
    unvisited_bits = unpack_words(inv_words[cols_ne], nt).astype(bool)
    scanned = int(scan[unvisited_bits].sum())
    return found, scanned


def _pull_vertex_level(A1: BitTiledMatrix, m: BitVector, y: BitVector,
                       inv_words: np.ndarray) -> Tuple[int, int]:
    """Per-vertex pull for scattered unvisited sets: the seed's
    expansion, with ``reduceat`` run reductions replacing the
    element-at-a-time ``logical_or.at``."""
    unvisited = BitVector(y.n, A1.nt, inv_words).to_indices()
    lengths, gathered, lc_rep = expand_vertex_tiles(A1, unvisited)
    vertex_of = np.repeat(np.arange(len(unvisited)), lengths)

    col_words = A1.words[gathered, lc_rep]
    parents_visited = (col_words
                       & m.words[A1.tile_otheridx[gathered]]) != 0
    seg_starts = np.zeros(len(unvisited), dtype=np.int64)
    np.cumsum(lengths[:-1], out=seg_starts[1:])
    nonempty = lengths > 0
    found = np.zeros(len(unvisited), dtype=bool)
    if nonempty.any():
        found[nonempty] = np.logical_or.reduceat(
            parents_visited, seg_starts[nonempty])
    y.set_indices(unvisited[found])
    scanned = _tiles_scanned_until_hit(parents_visited, vertex_of,
                                       len(unvisited), lengths)
    return int(found.sum()), scanned


def _tiles_scanned_until_hit(hit: np.ndarray, vertex_of: np.ndarray,
                             n_vertices: int, lengths: np.ndarray) -> int:
    """Total tiles examined across vertices given per-(vertex, tile) hit
    flags in scan order, with per-vertex early exit at the first hit.

    A vertex whose scan hits at position ``p`` examines ``p + 1`` tiles;
    a vertex with no hit examines all ``lengths[v]`` of them.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if len(hit) == 0:
        return int(lengths.sum())
    seg_start = np.repeat(
        np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths)
    pos = np.arange(len(vertex_of), dtype=np.int64) - seg_start
    sentinel = np.iinfo(np.int64).max
    first_hit = np.full(n_vertices, sentinel, dtype=np.int64)
    hit_idx = np.flatnonzero(hit)
    if len(hit_idx):
        np.minimum.at(first_hit, vertex_of[hit_idx], pos[hit_idx])
    scanned = np.where(first_hit < sentinel, first_hit + 1, lengths)
    return int(scanned.sum())
