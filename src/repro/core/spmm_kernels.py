"""The TileSpMM kernels: sparse matrix × tall dense block.

Two kernels compute ``Y = A @ X`` for a tiled sparse ``A`` and a
:class:`~repro.vectors.dense_block.DenseBlock` ``X`` of ``B`` columns:

* :func:`spmm_row_warp_kernel` — the naive mapping: one warp owns one
  occupied row tile and walks its stored tiles.  Every nonzero fetches
  the full ``B``-wide row of the dense block it multiplies, so the
  modeled X traffic is ``nnz * B * 8`` bytes from L2 — row-heavy
  matrices serialise on their fattest row tile.
* :func:`spmm_merge_path_kernel` — the merge-path-style load-balanced
  mapping (Merrill & Garland's CSR merge, adapted to the tiled form):
  the ``nnz`` work items are split evenly across warps by a binary
  search over the tile entry offsets, and within a chunk each distinct
  ``(tile, local column)`` *row segment* of the dense block is staged
  into shared memory **once** and reused by every nonzero of that
  segment.  Modeled X traffic is ``segments * B * 8`` bytes — never
  more than the row-per-warp kernel's ``nnz * B * 8`` because a
  segment has at least one nonzero, and strictly less whenever a tile
  repeats a local column.

Both kernels fold products column by column in stored entry order
through :meth:`~repro.semiring.Semiring.scatter_merge`, and for each
column they fold exactly the entries of that column's *active* tiles
— the same non-empty-tile test the tiled vector encodes in ``x_ptr``
— so column ``j`` of the result is **bit-identical** to a
single-vector :func:`~repro.core.spmspv_kernels.tiled_kernel`
multiply against column ``j``, zero signs included.  (Folding the
skipped identity products too would be value-identical but can flip
the sign of zero: ``np.maximum(0.0, -0.0)`` is ``-0.0``.)  The
column-slice verify check enforces the equivalence bit-exactly.

Shared A-side accounting (the SpMM amortisation): tile metadata and
the tile payload stream from global memory **once per block**, not
once per column — the same shared-load discount the batched union
kernel models, here taken to the B-dense limit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..gpusim import KernelCounters
from ..semiring import PLUS_TIMES, Semiring
from ..tiles.tiled_matrix import TiledMatrix
from ..vectors.dense_block import DenseBlock
from .spmspv_kernels import _lane_utilization

__all__ = ["spmm_row_warp_kernel", "spmm_merge_path_kernel",
           "spmm_coo_side_kernel", "row_tile_imbalance",
           "MERGE_ITEMS_PER_WARP"]

#: Work items (stored nonzeros) per warp chunk in the merge-path
#: decomposition — two items per lane, the classical choice.
MERGE_ITEMS_PER_WARP = 64


def _check_block(A: TiledMatrix, X: DenseBlock) -> None:
    if X.n != A.shape[1]:
        raise ShapeError(
            f"SpMM shape mismatch: A is {A.shape}, X has {X.n} rows"
        )
    if X.nt != A.nt:
        raise ShapeError(
            f"tile size mismatch: matrix nt={A.nt}, block nt={X.nt}"
        )


def _spmm_fold(A: TiledMatrix, X: DenseBlock, semiring: Semiring,
               Y: np.ndarray) -> None:
    """The shared numeric core: per column, fold the products of that
    column's active-tile entries in stored order — exactly the entry
    set and order the single-vector tiled kernel folds, which is what
    makes the column slices bit-identical (module docstring)."""
    if A.nnz == 0:
        return
    grow = A.entry_rows()
    gcol = A.entry_cols()
    vals = A.values
    nt = A.nt
    # per-column tile activity of the block: a tile is active when any
    # of its nt slots holds a non-sentinel value — the same test
    # TiledVector.from_dense applies when it drops empty tiles
    tiles = X.data.reshape(-1, nt, X.B)
    if np.isnan(X.fill):  # pragma: no cover - defensive
        active = np.any(~np.isnan(tiles), axis=1)
    else:
        active = np.any(tiles != X.fill, axis=1)
    entry_tilecol = gcol // nt
    for j in range(X.B):
        sel = active[entry_tilecol, j]
        if not sel.any():
            continue
        xv = X.data[gcol[sel], j]
        products = semiring.mul(vals[sel], xv)
        semiring.scatter_merge(Y[:, j], grow[sel], products)


def _spmm_common_counters(A: TiledMatrix, B: int) -> KernelCounters:
    """The accounting both kernels share: metadata + payload stream in
    once per block (coalesced), every occupied row tile writes its
    ``nt × B`` result slab once, and every (nonzero, column) pair is a
    multiply-add."""
    counters = KernelCounters(launches=1)
    # every stored tile's metadata is read once (coalesced stream):
    # tile_colidx (8B) + nnz offsets (8B) — no x_ptr probes: a dense
    # block has no empty tiles to skip
    counters.coalesced_read_bytes += A.n_nonempty_tiles * 16.0
    # tile payload (values + packed indices) streams in once for the
    # whole block — the SpMM amortisation of the A side
    counters.coalesced_read_bytes += A.nnz * (8.0 + A.index_bytes_per_entry())
    # each occupied row tile writes its nt-row, B-wide slab once
    counters.coalesced_write_bytes += \
        A.n_occupied_tile_rows() * A.nt * B * 8.0
    counters.flops += 2.0 * A.nnz * B
    return counters


def row_tile_imbalance(A: TiledMatrix) -> float:
    """``max / mean`` of per-occupied-row-tile nonzero counts — the
    load-imbalance statistic the kernel selector switches on (1.0 is
    perfectly balanced)."""
    if A.nnz == 0 or A.n_nonempty_tiles == 0:
        return 1.0
    per_row = np.bincount(A.tile_rowidx(), weights=A.tile_nnz(),
                          minlength=A.n_tile_rows)
    occupied = per_row[per_row > 0]
    return float(occupied.max() / occupied.mean())


def spmm_row_warp_kernel(A: TiledMatrix, X: DenseBlock,
                         semiring: Semiring = PLUS_TIMES,
                         Y: Optional[np.ndarray] = None,
                         with_counters: bool = True,
                         ) -> Tuple[np.ndarray, Optional[KernelCounters]]:
    """Naive row-per-warp SpMM: one warp per occupied row tile.

    Parameters
    ----------
    A:
        The tiled matrix (CSR-of-tiles).
    X:
        The dense block; ``X.n`` must equal ``A.shape[1]`` and the tile
        sizes must match.
    semiring:
        ``(add, mul)`` pair; default ordinary ``(+, *)``.
    Y:
        Optional preallocated ``(A.shape[0], X.B)`` accumulator
        initialised to the additive identity.
    with_counters:
        ``False`` skips all accounting and returns ``None`` counters.

    Returns
    -------
    (Y, counters):
        The dense accumulator and the modeled launch counters.
    """
    _check_block(A, X)
    if Y is None:
        Y = np.full((A.shape[0], X.B), semiring.add_identity,
                    dtype=semiring.dtype)
    _spmm_fold(A, X, semiring, Y)
    if not with_counters:
        return Y, None

    counters = _spmm_common_counters(A, X.B)
    # no row reuse: every nonzero fetches its B-wide X row from L2
    counters.l2_read_bytes += A.nnz * X.B * 8.0
    # warp shuffle reduction per stored tile, as in the SpMSpV kernel
    counters.word_ops += A.n_nonempty_tiles * 5.0
    counters.warps = float(max(1, A.n_occupied_tile_rows()))
    counters.divergence = _lane_utilization(A.tile_nnz())
    counters.check()
    return Y, counters


def spmm_merge_path_kernel(A: TiledMatrix, X: DenseBlock,
                           semiring: Semiring = PLUS_TIMES,
                           Y: Optional[np.ndarray] = None,
                           with_counters: bool = True,
                           ) -> Tuple[np.ndarray, Optional[KernelCounters]]:
    """Merge-path load-balanced SpMM: even nonzero chunks per warp.

    Numerically identical to :func:`spmm_row_warp_kernel` (same fold,
    same stored order); only the modeled execution differs: work is
    split into :data:`MERGE_ITEMS_PER_WARP`-item chunks located by a
    binary search over the tile entry offsets (charged as register
    word ops — the offsets are already in the counted metadata
    stream), and each distinct ``(tile, local column)`` row segment of
    the dense block is staged in shared memory once — ``B`` values
    loaded per *segment*, not per nonzero.
    """
    _check_block(A, X)
    if Y is None:
        Y = np.full((A.shape[0], X.B), semiring.add_identity,
                    dtype=semiring.dtype)
    _spmm_fold(A, X, semiring, Y)
    if not with_counters:
        return Y, None

    counters = _spmm_common_counters(A, X.B)
    if A.nnz:
        # distinct (tile, local column) pairs = the row segments of the
        # dense block the staged chunks actually load; each nonzero
        # belongs to exactly one, so segments <= nnz always
        segments = int(np.unique(
            A.tile_of_entry() * np.int64(A.nt) + A.local_col64()).size)
    else:
        segments = 0
    counters.l2_read_bytes += segments * X.B * 8.0
    counters.shared_bytes += segments * X.B * 8.0
    n_warps = max(1, -(-A.nnz // MERGE_ITEMS_PER_WARP))
    # the merge-path partition: each warp binary-searches its diagonal
    # over the staged tile offsets (~log2 probes, register arithmetic)
    counters.word_ops += n_warps * 12.0
    # segmented reduction flags within a chunk
    counters.word_ops += 2.0 * A.nnz
    counters.warps = float(n_warps)
    if A.nnz:
        chunk = np.full(n_warps, MERGE_ITEMS_PER_WARP, dtype=np.float64)
        chunk[-1] = A.nnz - MERGE_ITEMS_PER_WARP * (n_warps - 1)
        counters.divergence = _lane_utilization(chunk)
    counters.check()
    return Y, counters


def spmm_coo_side_kernel(side, X: DenseBlock,
                         semiring: Semiring = PLUS_TIMES,
                         Y: Optional[np.ndarray] = None,
                         with_counters: bool = True,
                         ) -> Tuple[np.ndarray, Optional[KernelCounters]]:
    """Per-entry SpMM for the extracted very-sparse COO side matrix.

    Accepts an :class:`~repro.tiles.extraction.IndexedSideMatrix` or a
    plain :class:`~repro.formats.coo.COOMatrix` — with a dense block
    every column tile is active, so either way the whole triplet
    stream is scanned, **once per block**: the B-wide X row of an
    entry sits contiguously, so one entry costs
    ``ceil(B * 8 / 32)`` random sectors rather than B scalar probes.

    Per column the occupied-entry selection and stored-order merge
    mirror :func:`~repro.core.spmspv_kernels.coo_side_kernel` exactly,
    keeping the column-slice equivalence bit-exact.
    """
    if X.n != side.shape[1]:
        raise ShapeError(
            f"SpMM shape mismatch: side matrix is {side.shape}, "
            f"X has {X.n} rows"
        )
    if Y is None:
        Y = np.full((side.shape[0], X.B), semiring.add_identity,
                    dtype=semiring.dtype)
    counters = KernelCounters(launches=1) if with_counters else None
    if side.nnz == 0:
        return Y, counters

    rows_all, cols_all, vals_all = side.row, side.col, side.val
    merged = 0
    for j in range(X.B):
        xv = X.data[cols_all, j]
        occupied = ~semiring.is_identity(xv)
        rows = rows_all[occupied]
        if len(rows):
            products = semiring.mul(vals_all[occupied], xv[occupied])
            semiring.scatter_merge(Y[:, j], rows, products)
        merged += int(len(rows))
    if counters is None:
        return Y, None

    scanned = float(side.nnz)
    counters.coalesced_read_bytes += scanned * 24.0   # (row, col, val)
    # one B-wide X row per entry, sectored random access
    counters.random_read_count += scanned * float(-(-(X.B * 8) // 32))
    counters.flops += 2.0 * merged
    counters.atomic_ops += float(merged)
    counters.random_write_count += float(merged)
    counters.warps = max(1.0, scanned / 32.0)
    counters.check()
    return Y, counters
