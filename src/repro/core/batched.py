"""The batched multi-vector SpMSpV engine (request coalescing).

The paper's MS-BFS section (§3.4) shows where tile skipping pays off
most: one stored matrix amortised over many concurrent sparse vectors.
:class:`BatchedSpMSpV` is that idea as a first-class operator — it
multiplies one tiled matrix against a batch of ``B`` sparse vectors in
a **single logical launch** through
:func:`~repro.core.spmspv_kernels.batched_union_kernel`:

* the union of the batch's active tile columns is computed once;
* each stored tile in the union streams its payload from global memory
  once and is applied to every vector that activates it;
* the modeled counters charge shared tile loads once per batch instead
  of once per vector (the *shared-load discount*), so modeled bytes
  moved per batch are strictly below ``B`` times the single-vector
  cost whenever vectors share tiles.

Per vector, results are byte-identical to looping
:class:`~repro.core.TileSpMSpV` — enforced by
``tests/core/test_batched_engine.py`` across a shape × density ×
semiring × batch-size grid.  The engine shares its preprocessing plan
(hybrid tiling + indexed COO side) with ``TileSpMSpV`` through the
PR-1 plan cache, so building both over one matrix tiles it once.

The request-coalescing scheduler that feeds this engine lives in
:class:`repro.runtime.BatchQueue`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..errors import ShapeError, TileError
from ..formats.coo import COOMatrix
from ..gpusim import Device
from ..runtime import ExecutionContext, PlanCache, default_plan_cache, \
    matrix_token
from ..semiring import PLUS_TIMES, Semiring
from ..tiles.extraction import HybridTiledMatrix
from ..tiles.tiled_matrix import TiledMatrix
from ..tiles.tiled_vector import SUPPORTED_TILE_SIZES
from ..vectors.sparse_vector import SparseVector
from .spmspv import VectorLike, _build_spmspv_plan, _spmspv_plan, \
    as_tiled_vector
from .spmspv_kernels import batched_union_kernel, coo_side_kernel

__all__ = ["BatchedSpMSpV"]


class BatchedSpMSpV:
    """Prepared batched SpMSpV operator for one sparse matrix.

    Parameters
    ----------
    matrix:
        Any library sparse matrix, or an already-built
        :class:`~repro.tiles.extraction.HybridTiledMatrix` /
        :class:`~repro.tiles.tiled_matrix.TiledMatrix`.
    nt:
        Tile size (16/32/64 per the paper; small powers of two for
        testing).
    extract_threshold:
        Very-sparse-tile COO extraction threshold (paper §3.2.1).
    semiring:
        The ``(add, mul)`` algebra applied to every vector of a batch.
    device:
        Optional simulated GPU (or a shared
        :class:`~repro.runtime.ExecutionContext`).
    plan_cache:
        Plan cache override; defaults to the process-wide cache.  The
        key matches ``TileSpMSpV(mode="csr")`` over the same matrix, so
        the two operators share one tiling.
    """

    def __init__(self, matrix, nt: int = 16, extract_threshold: int = 2,
                 semiring: Semiring = PLUS_TIMES,
                 device: Optional[Device] = None,
                 plan_cache: Optional[PlanCache] = None,
                 parallel=None):
        if nt not in SUPPORTED_TILE_SIZES:
            raise TileError(
                f"unsupported tile size {nt}; allowed: {SUPPORTED_TILE_SIZES}"
            )
        self.semiring = semiring
        self.ctx = ExecutionContext.wrap(device, operator="batched_spmspv")
        # deferred import: repro.shards imports core.spmspv helpers
        from ..shards.sharded_matrix import ShardedTiledMatrix
        if isinstance(matrix, ShardedTiledMatrix):
            from ..shards.engine import ShardedSpMSpV
            self._sharded: Optional[ShardedSpMSpV] = ShardedSpMSpV(
                matrix, semiring=semiring, device=self.ctx,
                plan_cache=plan_cache, parallel=parallel)
            self._plan = None
            self.hybrid = None
            self._side_index = None
            return
        self._sharded = None
        if isinstance(matrix, HybridTiledMatrix):
            self._plan = _spmspv_plan(matrix)
        elif isinstance(matrix, TiledMatrix):
            self._plan = _spmspv_plan(HybridTiledMatrix(
                tiled=matrix,
                side=COOMatrix.empty(matrix.shape),
                threshold=0,
            ))
        else:
            cache = plan_cache if plan_cache is not None \
                else default_plan_cache()
            # same key as TileSpMSpV(mode="csr"): one tiling serves both
            key = ("tilespmspv", matrix_token(matrix), nt,
                   extract_threshold, semiring, "csr")
            self._plan = cache.get_or_build(
                key,
                lambda: _build_spmspv_plan(matrix, nt, extract_threshold,
                                           key),
                pin=matrix)
        self.hybrid = self._plan.data["hybrid"]
        self._side_index = self._plan.data["side_index"]

    # ------------------------------------------------------------------
    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("batched_spmspv")
        else:
            self.ctx.device = device
        if self._sharded is not None:
            self._sharded.device = device

    @property
    def shape(self):
        if self._sharded is not None:
            return self._sharded.shape
        return self.hybrid.shape

    @property
    def nt(self) -> int:
        if self._sharded is not None:
            return self._sharded.nt
        return self.hybrid.nt

    @property
    def nnz(self) -> int:
        if self._sharded is not None:
            return self._sharded.nnz
        return self.hybrid.nnz

    # ------------------------------------------------------------------
    def sparsify(self, y_dense: np.ndarray) -> SparseVector:
        """Extract one dense accumulator row into a
        :class:`SparseVector` (the same identity-dropping extraction
        the single-vector path performs)."""
        occupied = ~self.semiring.is_identity(y_dense)
        idx = np.flatnonzero(occupied)
        return SparseVector(self.shape[0], idx, y_dense[idx])

    def multiply_batch(self, xs: Sequence[VectorLike],
                       output: str = "sparse",
                       tag: Optional[str] = None,
                       ) -> Union[List[SparseVector], np.ndarray]:
        """Compute ``y_b = A x_b`` for every vector of the batch in one
        coalesced launch.

        Parameters
        ----------
        xs:
            Non-empty sequence of vectors (any form
            :meth:`TileSpMSpV.multiply` accepts), all of length
            ``A.shape[1]``.
        output:
            ``"sparse"`` (default) → list of :class:`SparseVector`;
            ``"dense"`` → one ``(B, m)`` ndarray.
        tag:
            Optional tag forwarded to the launch records (the
            :class:`~repro.runtime.BatchQueue` stamps its batch id
            here so traces attribute launches to batches).
        """
        if output not in ("sparse", "dense"):
            raise ShapeError(f"unknown output mode {output!r}")
        if self._sharded is not None:
            return self._sharded.multiply_batch(xs, output=output,
                                                tag=tag)
        fill = float(self.semiring.add_identity)
        xts = [as_tiled_vector(x, self.nt, fill,
                               dtype=self.semiring.dtype) for x in xs]
        for xt in xts:
            if xt.n != self.shape[1]:
                raise ShapeError(
                    f"SpMSpV shape mismatch: A is {self.shape}, "
                    f"x has length {xt.n}"
                )
        Y, counters = batched_union_kernel(self.hybrid.tiled, xts,
                                           semiring=self.semiring)
        self.ctx.launch("batched_spmspv_union", counters, phase="batch",
                        tag=tag)
        if self.hybrid.side.nnz:
            # the extracted COO side has no tile reuse to coalesce:
            # one per-entry launch per vector, exactly the single path
            for b, xt in enumerate(xts):
                _, side_counters = coo_side_kernel(
                    self._side_index, xt, semiring=self.semiring,
                    y_dense=Y[b])
                self.ctx.launch("batched_spmspv_coo_side", side_counters,
                                phase="batch", tag=tag)
        if output == "dense":
            return Y
        return [self.sparsify(Y[b]) for b in range(Y.shape[0])]

    def multiply(self, x: VectorLike, output: str = "sparse"):
        """Single-vector convenience: a batch of one.

        With ``B = 1`` the union *is* the vector's active set, so the
        result and counters are byte-identical to the single-vector
        kernel — the property the batch-size-1 tests pin down.
        """
        result = self.multiply_batch([x], output="dense" if
                                     output == "dense" else "sparse")
        return result[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._sharded is not None:
            return (f"<BatchedSpMSpV {self.shape} nt={self.nt} "
                    f"shards={self._sharded.matrix.n_shards} "
                    f"semiring={self.semiring.name}>")
        return (f"<BatchedSpMSpV {self.shape} nt={self.nt} "
                f"tiles={self.hybrid.tiled.n_nonempty_tiles} "
                f"side_nnz={self.hybrid.side.nnz} "
                f"semiring={self.semiring.name}>")
