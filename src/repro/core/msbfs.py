"""Bit-parallel multi-source BFS (MS-BFS).

TileBFS packs *vertices* into word bits; MS-BFS packs *sources*: each
vertex carries one machine word whose bit ``b`` means "reached by
source ``b``", so up to 64 independent traversals advance in lockstep
through ordinary word OR/AND-NOT operations — one more way the OR-AND
semiring of the paper's §3.4 pays off, and the batching that makes
multi-pivot analytics (Brandes betweenness, all-pairs-lite distance
sketches) affordable.

The expansion is vector-driven over CSC like Push-CSC: only vertices
whose frontier word is non-empty push, and a vertex is retired from the
frontier once every source has seen it.

Two engines drive the same level-synchronous traversal:

* ``engine="words"`` (default) — the word-packed expansion above; at
  most 64 sources per run (one bit each);
* ``engine="batched"`` — each source's frontier rides one 0/1-valued
  sparse vector through the coalesced batched SpMSpV engine
  (:class:`~repro.core.batched.BatchedSpMSpV`): any number of sources,
  each round is one union launch over the whole batch, and the levels
  are identical to the words engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .._util import concat_ranges
from ..errors import ShapeError
from ..fastpath import fastpath_tier
from ..formats.coo import COOMatrix
from ..gpusim import Device, KernelCounters
from ..runtime import ExecutionContext
from ..tiles.bitmask import segmented_scatter_or

__all__ = ["MultiSourceBFS", "MSBFSResult", "msbfs_expand"]

_U64 = np.uint64
#: Sources packed per state word.
WORD_SOURCES = 64

#: Newly-visited vertices per level-recording block: the bit-spread
#: matrix is ``chunk x 64`` words, so 8192 keeps it ~4 MB.
_LEVEL_CHUNK = 8192


def msbfs_expand(csc, frontier: np.ndarray
                 ) -> Tuple[np.ndarray, int, int]:
    """One MS-BFS frontier expansion over CSC.

    Every vertex with a non-empty frontier word pushes that word along
    its out-edges; the per-destination merge runs through the sort +
    ``reduceat`` fast path of
    :func:`~repro.tiles.bitmask.segmented_scatter_or` instead of the
    element-at-a-time ``np.bitwise_or.at`` (OR is commutative and
    idempotent, so the result is byte-identical to the preserved seed
    expansion in
    :func:`~repro.core.reference_bfs_kernels.reference_msbfs_expand`).
    With the ``fastpath`` extra installed the whole expansion runs as
    one compiled loop instead.

    Returns ``(next_words, n_active, n_edges)``.
    """
    next_words = np.zeros(len(frontier), dtype=_U64)
    if fastpath_tier() == "numba":  # pragma: no cover - fastpath extra
        from ..fastpath import numba_kernels as nb

        n_active, n_edges = nb.msbfs_expand_words(
            csc.indptr, csc.indices, frontier, next_words)
        return next_words, n_active, n_edges
    active = np.flatnonzero(frontier)
    lengths = csc.indptr[active + 1] - csc.indptr[active]
    gather = concat_ranges(csc.indptr[active], lengths)
    dst = csc.indices[gather]
    contrib = np.repeat(frontier[active], lengths)
    if len(dst):
        segmented_scatter_or(next_words, dst, contrib)
    return next_words, len(active), len(dst)


@dataclass
class MSBFSResult:
    """Output of one batched traversal.

    Attributes
    ----------
    sources:
        The source vertices, in bit order.
    levels:
        ``int64[k, n]``: BFS depth of every vertex from every source
        (``-1`` unreachable).
    simulated_ms:
        Total simulated GPU time (when a device was attached).
    iterations:
        Number of synchronised rounds executed.
    """

    sources: np.ndarray
    levels: np.ndarray
    simulated_ms: float = 0.0
    iterations: int = 0

    def levels_from(self, source: int) -> np.ndarray:
        """The level array of one source (must be in :attr:`sources`)."""
        hits = np.flatnonzero(self.sources == source)
        if len(hits) == 0:
            raise ShapeError(f"source {source} was not traversed")
        return self.levels[hits[0]]


class MultiSourceBFS:
    """Prepared MS-BFS operator for one square adjacency pattern.

    Parameters
    ----------
    matrix:
        Square sparse pattern (values ignored).
    device:
        Optional simulated GPU.
    engine:
        ``"words"`` (default) — the 64-bit word-packed expansion,
        at most :data:`WORD_SOURCES` sources per run; ``"batched"`` —
        frontiers ride the coalesced batched SpMSpV engine, any number
        of sources per run.
    nt:
        Tile size of the batched engine (ignored by ``"words"``).
    """

    def __init__(self, matrix, device: Optional[Device] = None,
                 engine: str = "words", nt: int = 16):
        from ..formats.base import SparseMatrix

        if engine not in ("words", "batched"):
            raise ShapeError(
                f"unknown MS-BFS engine {engine!r}; "
                f"expected 'words' or 'batched'"
            )
        if isinstance(matrix, SparseMatrix):
            coo = matrix.to_coo()
        else:
            coo = COOMatrix.from_dense(np.asarray(matrix))
        if coo.shape[0] != coo.shape[1]:
            raise ShapeError(
                f"MS-BFS requires a square matrix, got {coo.shape}"
            )
        self.n = coo.shape[0]
        self.nnz = coo.nnz
        self.engine = engine
        self.ctx = ExecutionContext.wrap(device, operator="msbfs")
        if engine == "batched":
            from .batched import BatchedSpMSpV

            # traversal only needs the pattern: all-ones values make
            # y = A x count frontier in-neighbours (>=1 means reached),
            # matching the word engine's push direction exactly
            pattern = COOMatrix(coo.shape, coo.row, coo.col,
                                np.ones(coo.nnz)).canonicalize()
            self._spmspv = BatchedSpMSpV(pattern, nt=nt, device=self.ctx)
            self.csc = None
        else:
            self.csc = coo.to_csc()
            self._spmspv = None

    # ------------------------------------------------------------------
    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("msbfs")
        else:
            self.ctx.device = device
        if self._spmspv is not None:
            self._spmspv.device = self.ctx

    # ------------------------------------------------------------------
    def run(self, sources: Sequence[int],
            max_depth: Optional[int] = None) -> MSBFSResult:
        """Traverse from many sources simultaneously.

        The ``"words"`` engine packs up to 64 sources into one machine
        word; the ``"batched"`` engine takes any number of sources (one
        coalesced SpMSpV launch per round for the whole batch).  Both
        produce identical level arrays.
        """
        sources = np.asarray(list(sources), dtype=np.int64)
        if len(sources) == 0:
            raise ShapeError("MS-BFS needs at least one source")
        if len(np.unique(sources)) != len(sources):
            raise ShapeError("MS-BFS sources must be distinct")
        if sources.min() < 0 or sources.max() >= self.n:
            raise ShapeError(f"source out of range for n={self.n}")
        if self.engine == "batched":
            return self._run_batched(sources, max_depth)
        if len(sources) > WORD_SOURCES:
            raise ShapeError(
                f"MS-BFS packs at most {WORD_SOURCES} sources per run, "
                f"got {len(sources)} (engine='batched' lifts the limit)"
            )
        k = len(sources)

        visited = np.zeros(self.n, dtype=_U64)
        bits = _U64(1) << np.arange(k, dtype=_U64)
        np.bitwise_or.at(visited, sources, bits)
        frontier = visited.copy()
        levels = np.full((k, self.n), -1, dtype=np.int64)
        levels[np.arange(k), sources] = 0

        depth = 0
        inv = np.empty_like(visited)
        shifts = np.arange(k, dtype=_U64)
        result = MSBFSResult(sources=sources, levels=levels)
        while True:
            if max_depth is not None and depth >= max_depth:
                break
            depth += 1
            if not frontier.any():
                break
            # push: every edge u -> v with a non-empty frontier word at
            # u contributes its word to v
            next_words, n_active, n_edges = msbfs_expand(self.csc,
                                                         frontier)
            np.invert(visited, out=inv)
            np.bitwise_and(next_words, inv, out=next_words)
            new = next_words
            ms = self._account(n_active, n_edges)
            result.simulated_ms += ms
            result.iterations += 1
            newly = np.flatnonzero(new)
            if not len(newly):
                break
            # record levels per source bit: spread each new word over
            # its source bits in blocks and scatter the hits — one
            # vectorized pass, not one frontier-sized index array per
            # source
            for s in range(0, len(newly), _LEVEL_CHUNK):
                chunk = newly[s:s + _LEVEL_CHUNK]
                hits = (new[chunk, None] >> shifts) & _U64(1)
                vi, bi = np.nonzero(hits)
                levels[bi, chunk[vi]] = depth
            visited |= new
            frontier = new
        return result

    # ------------------------------------------------------------------
    def _run_batched(self, sources: np.ndarray,
                     max_depth: Optional[int]) -> MSBFSResult:
        """Level-synchronous traversal over the batched SpMSpV engine:
        one 0/1-valued sparse frontier per source, one coalesced union
        launch per round for the whole batch."""
        from ..vectors.sparse_vector import SparseVector

        k = len(sources)
        visited = np.zeros((k, self.n), dtype=bool)
        visited[np.arange(k), sources] = True
        levels = np.full((k, self.n), -1, dtype=np.int64)
        levels[np.arange(k), sources] = 0
        frontiers = [np.array([s], dtype=np.int64) for s in sources]

        result = MSBFSResult(sources=sources, levels=levels)
        depth = 0
        start_ms = self.ctx.elapsed_ms
        while True:
            if max_depth is not None and depth >= max_depth:
                break
            depth += 1
            live = [b for b in range(k) if len(frontiers[b])]
            if not live:
                break
            xs = [SparseVector(self.n, frontiers[b],
                               np.ones(len(frontiers[b])))
                  for b in live]
            Y = self._spmspv.multiply_batch(xs, output="dense",
                                            tag=f"round={depth}")
            result.iterations += 1
            any_new = False
            for i, b in enumerate(live):
                new = np.flatnonzero((Y[i] != 0) & ~visited[b])
                frontiers[b] = new
                if len(new):
                    any_new = True
                    levels[b, new] = depth
                    visited[b, new] = True
            if not any_new:
                break
        result.simulated_ms = self.ctx.elapsed_ms - start_ms
        return result

    # ------------------------------------------------------------------
    def _layer_counters(self, n_active: int, edges: int) -> KernelCounters:
        c = KernelCounters(launches=1)
        c.coalesced_read_bytes += self.n * 8.0          # frontier scan
        c.l2_read_bytes += n_active * 16.0              # column pointers
        c.coalesced_read_bytes += edges * 4.0           # neighbour ids
        c.atomic_ops += float(edges)                    # word atomicOr
        c.random_write_count += float(edges)
        c.coalesced_read_bytes += self.n * 8.0          # visited words
        c.coalesced_write_bytes += self.n * 8.0         # next/visited
        c.word_ops += 3.0 * self.n
        c.warps = max(1.0, edges / 32.0)
        return c

    def _account(self, n_active: int, edges: int) -> float:
        ctx = self.ctx
        if not ctx.accounting:
            return 0.0
        if ctx.production:
            # counters compile out of the round: the closure captures
            # the two determinants and prices the launch at replay time
            ctx.defer("msbfs_expand",
                      lambda: self._layer_counters(n_active, edges),
                      phase="iteration")
            return 0.0
        return ctx.launch("msbfs_expand",
                          self._layer_counters(n_active, edges),
                          phase="iteration")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MultiSourceBFS n={self.n} nnz={self.nnz}>"
