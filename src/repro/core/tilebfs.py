"""TileBFS — directional-optimization BFS over bitmask tiles (§3.4).

The driver follows the paper's structure exactly:

1. Preprocess: pick ``nt`` from the matrix order (>10,000 → 64, else
   32), compress the adjacency pattern into the column-wise (A1) and
   row-wise (A2) bitmask tile forms, and — when very-sparse-tile
   extraction is on — keep the evicted entries in a COO edge list that
   a simple per-edge kernel traverses alongside every iteration (the
   paper delegates this part to GSwitch; the substitution is our own
   edge-list kernel with the same cost profile).
2. Iterate: each layer picks Push-CSC / Push-CSR / Pull-CSC with the
   §3.4 rule via :class:`~repro.core.selection.KernelSelector`, ORs the
   newly found vertices into the visited mask and promotes them to the
   next frontier, until no new vertex appears.

The run records a per-iteration trace (kernel used, frontier size,
simulated ms) — the raw series behind the paper's Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ShapeError
from ..formats.base import SparseMatrix
from ..formats.coo import COOMatrix
from ..gpusim import Device, KernelCounters
from ..runtime import (ExecutionContext, OperatorPlan, PlanCache,
                       default_plan_cache, matrix_token)
from ..tiles.bitmask import (BitTiledMatrix, BitVector,
                             pattern_is_symmetric)
from ..tiles.extraction import split_very_sparse_tiles
from ..tiles.tiled_vector import SUPPORTED_TILE_SIZES
from .bfs_kernels import pull_csc_kernel, push_csc_kernel, push_csr_kernel
from .selection import (PULL_CSC, PUSH_CSC, PUSH_CSR, KernelSelector,
                        select_tile_size)

__all__ = ["TileBFS", "BFSResult", "IterationRecord", "tile_bfs"]

#: Launch names precomputed per kernel — the hot loop must not build
#: format strings per layer (cheap-when-off tracing).
_LAUNCH_NAMES = {PUSH_CSC: "tilebfs_push_csc",
                 PUSH_CSR: "tilebfs_push_csr",
                 PULL_CSC: "tilebfs_pull_csc"}


@dataclass(frozen=True)
class IterationRecord:
    """Trace of one BFS layer (one point of a Figure-10 series)."""

    depth: int
    kernel: str
    frontier_size: int
    new_vertices: int
    simulated_ms: float


@dataclass
class BFSResult:
    """Output of one TileBFS run.

    Attributes
    ----------
    levels:
        ``int64[n]`` BFS depth per vertex; ``-1`` for unreachable.
    iterations:
        Per-layer trace records.
    simulated_ms:
        Total simulated GPU time of the traversal (kernels only, no
        preprocessing).
    """

    levels: np.ndarray
    iterations: List[IterationRecord] = field(default_factory=list)
    simulated_ms: float = 0.0

    #: Optional BFS tree: ``parents[v]`` is a predecessor of ``v`` on a
    #: shortest path (``-1`` for sources and unreached vertices).
    #: Filled by :meth:`TileBFS.compute_parents`.
    parents: Optional[np.ndarray] = None

    @property
    def n_reached(self) -> int:
        return int((self.levels >= 0).sum())

    @property
    def depth(self) -> int:
        """Eccentricity of the source (max finite level)."""
        reached = self.levels[self.levels >= 0]
        return int(reached.max()) if len(reached) else -1

    def edges_traversed(self, nnz: int) -> int:
        """Edges the traversal logically covers, for GTEPS accounting
        (the standard convention: all edges incident to reached
        vertices; for a connected graph, simply nnz)."""
        return nnz

    def gteps(self, nnz: int) -> float:
        """Giga traversed edges per second at the simulated time."""
        if self.simulated_ms <= 0:
            return float("inf")
        return nnz / (self.simulated_ms * 1e-3) / 1e9


class TileBFS:
    """Prepared TileBFS operator for one (square) adjacency matrix.

    Parameters
    ----------
    matrix:
        Square sparse matrix; values are ignored, only the pattern
        matters.  Self-loops are harmless.
    nt:
        Tile size; ``None`` applies the paper's order rule.
    selector:
        Kernel-selection policy (default: the full K1+K2+K3 rule).
    extract_threshold:
        Very-sparse-tile extraction cutoff for the hybrid side edge
        list (paper §3.2.1 / §3.4: the extracted part is traversed
        separately each iteration); 0 disables.  Default 2: bitmask
        tiles pay ``nt`` words of traffic regardless of how few edges
        they hold, so near-empty tiles are cheaper as raw edges.
    device:
        Optional simulated GPU receiving launch records.
    """

    def __init__(self, matrix, nt: Optional[int] = None,
                 selector: Optional[KernelSelector] = None,
                 extract_threshold: int = 2,
                 device: Optional[Device] = None,
                 plan_cache: Optional[PlanCache] = None,
                 parallel=None):
        self.selector = selector or KernelSelector()
        self.ctx = ExecutionContext.wrap(device, operator="tilebfs")
        # deferred import: repro.shards imports core modules
        from ..shards.sharded_matrix import ShardedTiledMatrix
        if isinstance(matrix, ShardedTiledMatrix):
            if matrix.shape[0] != matrix.shape[1]:
                raise ShapeError(
                    f"BFS needs a square matrix, got {matrix.shape}"
                )
            from ..shards.engine import ShardedSpMSpV
            # out-of-core traversal: a level-synchronous loop over the
            # sharded engine's pattern view (per-shard all-ones tiling,
            # cached on the shard plans) — the bitmask A1/A2 forms stay
            # an in-core specialisation.
            self._sharded: Optional[ShardedSpMSpV] = ShardedSpMSpV(
                matrix, device=self.ctx, plan_cache=plan_cache,
                pattern_only=True, parallel=parallel)
            self.n = matrix.shape[0]
            self.nnz = matrix.nnz
            self.nt = matrix.nt
            self.side = COOMatrix.empty(matrix.shape)
            self.A1 = self.A2 = None
            self.symmetric = False
            self._plan = None
            return
        self._sharded = None
        cache = plan_cache if plan_cache is not None \
            else default_plan_cache()
        key = ("tilebfs", matrix_token(matrix), nt, extract_threshold)
        self._plan = cache.get_or_build(
            key,
            lambda: _build_bfs_plan(matrix, nt, extract_threshold, key),
            pin=matrix)
        data = self._plan.data
        self.n = data["n"]
        self.nnz = data["nnz"]
        self.nt = data["nt"]
        #: COO edge list of the extracted very-sparse tiles,
        #: traversed by a per-edge kernel each iteration.
        self.side = data["side"]
        #: Column-compressed bitmask tiles (the A1 of Fig. 5).
        self.A1 = data["A1"]
        #: Row-compressed bitmask tiles (the A2 of Fig. 5).
        self.A2 = data["A2"]
        #: Whether the tiled pattern is symmetric — the validity
        #: condition of Pull-CSC (see :meth:`run_multi`).
        self.symmetric = data["symmetric"]

    # ------------------------------------------------------------------
    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("tilebfs")
        else:
            self.ctx.device = device
        if self._sharded is not None:
            self._sharded.device = device

    # ------------------------------------------------------------------
    def _use_fused(self) -> bool:
        """Whether this traversal routes through the compiled fast path.

        The fused kernels are result-only, so the tier engages exactly
        when no counters are needed inline: functional runs (no device)
        and production mode (accounting deferred to replay).  Modeled
        counters-on execution always uses the reference kernels — that
        is what keeps counters byte-identical by construction.
        ``selector.tier`` pins the choice ("kernels" disables,
        "fastpath" overrides the ``REPRO_FASTPATH=off`` env kill
        switch); sharded matrices run their own level loop either way.
        """
        if self._sharded is not None:
            return False
        tier = self.selector.tier
        if tier == "kernels":
            return False
        if not (self.ctx.device is None or self.ctx.production):
            return False
        if tier == "fastpath":
            return True
        from ..fastpath import fastpath_tier
        return fastpath_tier() != "off"

    # ------------------------------------------------------------------
    def run(self, source: int, max_depth: Optional[int] = None) -> BFSResult:
        """Traverse from ``source``; returns levels and the iteration
        trace."""
        return self.run_multi([source], max_depth=max_depth)

    def run_multi(self, sources: Sequence[int],
                  max_depth: Optional[int] = None) -> BFSResult:
        """Multi-source BFS (all sources at depth 0)."""
        sources = np.unique(np.asarray(sources, dtype=np.int64))
        if len(sources) == 0:
            raise ShapeError("BFS needs at least one source vertex")
        if sources.min() < 0 or sources.max() >= self.n:
            raise ShapeError(
                f"source vertex out of range for n={self.n}"
            )
        if self._sharded is not None:
            return self._run_sharded(sources, max_depth)
        if self._use_fused():
            from ..fastpath.fused_bfs import run_fused
            return run_fused(self, sources, max_depth)
        levels = np.full(self.n, -1, dtype=np.int64)
        levels[sources] = 0

        # the layer loop is allocation-free: frontier / result / visited
        # live in plan-owned scratch BitVectors, the visited count is
        # maintained incrementally, frontier indices are materialised
        # once per layer, and x / y ping-pong instead of re-allocating.
        plan = self._plan
        workspaces = [
            plan.acquire_scratch(
                "bitvector", lambda: BitVector.zeros(self.n, self.nt))
            for _ in range(3)]
        try:
            x, y, m = workspaces
            x.clear()
            x.set_indices(sources)
            m.words[:] = x.words          # visited mask
            result = BFSResult(levels=levels)
            depth = 0
            frontier_idx = sources
            frontier_size = len(sources)
            visited_count = frontier_size
            visited_bool = in_frontier = None
            if self.side.nnz:
                visited_bool = np.zeros(self.n, dtype=bool)
                visited_bool[sources] = True
                in_frontier = np.zeros(self.n, dtype=bool)

            while frontier_size > 0:
                if max_depth is not None and depth >= max_depth:
                    break
                depth += 1
                kernel_name = self.selector.choose(
                    frontier_sparsity=frontier_size / self.n,
                    unvisited_fraction=(self.n - visited_count) / self.n,
                )
                if kernel_name == PULL_CSC and not self.symmetric:
                    # Pull-CSC (Alg. 7) reads a vertex's stored column
                    # as its in-edges, which only holds when the tiled
                    # pattern is symmetric; on a directed graph pulling
                    # would traverse edges backwards, so fall back to
                    # the matrix-driven push form for this layer
                    kernel_name = PUSH_CSR
                counters = self._launch(kernel_name, x, m, out=y)
                if self.side.nnz:
                    side_counters = self._side_kernel(
                        frontier_idx, visited_bool, in_frontier, y)
                    counters = counters.merged(side_counters)
                ms = self.ctx.launch(_LAUNCH_NAMES[kernel_name], counters,
                                     phase="iteration")

                n_new = y.count()
                result.iterations.append(IterationRecord(
                    depth=depth, kernel=kernel_name,
                    frontier_size=frontier_size,
                    new_vertices=n_new, simulated_ms=ms,
                ))
                result.simulated_ms += ms
                if n_new == 0:
                    break
                new_idx = y.to_indices()
                levels[new_idx] = depth
                if visited_bool is not None:
                    visited_bool[new_idx] = True
                m |= y
                visited_count += n_new
                x, y = y, x
                frontier_idx = new_idx
                frontier_size = n_new
            return result
        finally:
            for ws in workspaces:
                plan.release_scratch("bitvector", ws)

    # ------------------------------------------------------------------
    def _run_sharded(self, sources: np.ndarray,
                     max_depth: Optional[int]) -> BFSResult:
        """Level-synchronous BFS over the sharded engine.

        Each layer is one sharded multiply of the frontier indicator
        under plus_times over the pattern view: the result's support is
        exactly the frontier's out-neighbourhood, shards whose row
        strip holds no active tile column are skipped (and never
        loaded), and the visited filter runs on the host like the
        paper's ``y & ~visited``.
        """
        from ..vectors.sparse_vector import SparseVector
        engine = self._sharded
        levels = np.full(self.n, -1, dtype=np.int64)
        levels[sources] = 0
        visited = np.zeros(self.n, dtype=bool)
        visited[sources] = True
        result = BFSResult(levels=levels)
        frontier = sources
        depth = 0
        while len(frontier):
            if max_depth is not None and depth >= max_depth:
                break
            depth += 1
            dev = self.ctx.device
            t0 = dev.elapsed_ms if dev is not None else 0.0
            y = engine.multiply(SparseVector(
                self.n, frontier, np.ones(len(frontier))))
            ms = (dev.elapsed_ms - t0) if dev is not None else 0.0
            new_idx = y.indices[~visited[y.indices]]
            result.iterations.append(IterationRecord(
                depth=depth, kernel="sharded_push",
                frontier_size=len(frontier),
                new_vertices=len(new_idx), simulated_ms=ms))
            result.simulated_ms += ms
            if len(new_idx) == 0:
                break
            levels[new_idx] = depth
            visited[new_idx] = True
            frontier = new_idx
        return result

    def _launch(self, kernel_name: str, x: BitVector, m: BitVector,
                out: Optional[BitVector] = None) -> KernelCounters:
        if kernel_name == PUSH_CSC:
            return push_csc_kernel(self.A1, x, m, out=out)[1]
        if kernel_name == PUSH_CSR:
            return push_csr_kernel(self.A2, x, m, out=out)[1]
        if kernel_name == PULL_CSC:
            return pull_csc_kernel(self.A1, x, m, out=out)[1]
        raise ShapeError(f"unknown kernel {kernel_name!r}")  # pragma: no cover

    def _side_kernel(self, frontier: np.ndarray, visited: np.ndarray,
                     in_frontier: np.ndarray, y: BitVector
                     ) -> KernelCounters:
        """Per-edge traversal of the extracted very-sparse COO part.

        For each stored edge ``(i, j)``: if ``j`` is in the frontier
        and ``i`` unvisited, claim ``i`` (ORed into ``y`` in place).
        The paper offloads this part to GSwitch; a flat edge-list kernel
        has the same per-edge cost profile (DESIGN.md §1).

        ``frontier`` is the layer's materialised frontier indices,
        ``visited`` the loop-maintained visited boolean, and
        ``in_frontier`` a reusable scratch boolean the kernel scatters
        into and cleans up again — the run loop owns all three, so no
        O(n) array is allocated per layer.
        """
        counters = KernelCounters(launches=1)
        src_active = np.zeros(self.side.nnz, dtype=bool)
        if len(frontier):
            in_frontier[frontier] = True
            src_active = in_frontier[self.side.col]
            in_frontier[frontier] = False
        rows = self.side.row[src_active]
        if len(rows):
            rows = rows[~visited[rows]]
            y.set_indices(rows)
        counters.coalesced_read_bytes += self.side.nnz * 16.0  # edge list
        counters.random_read_count += float(src_active.sum())  # mask checks
        counters.atomic_ops += float(len(rows))
        counters.random_write_count += float(len(rows))
        counters.warps = max(1.0, self.side.nnz / 32.0)
        return counters

    def compute_parents(self, result: BFSResult) -> np.ndarray:
        """Derive a BFS parent tree from a finished traversal.

        The bitmask kernels lose edge provenance (an OR of column words
        says *that* a vertex was reached, not *through which* edge), so
        parents are reconstructed in one vectorized pass over the
        stored edges: for every edge ``u -> v`` with
        ``level[u] == level[v] - 1``, ``u`` is a valid parent of ``v``;
        the smallest such ``u`` is chosen deterministically.  Sources
        and unreached vertices get ``-1``.  The array is also stored on
        ``result.parents``.
        """
        levels = result.levels
        parents = np.full(self.n, -1, dtype=np.int64)
        if self._sharded is not None:
            # same edge rule, sourced from the shards (loads each once)
            coo_parts = [self._sharded.matrix.to_coo()]
        else:
            coo_parts = [self.A1.to_coo()]
        if self.side.nnz:
            coo_parts.append(self.side)
        sentinel = np.iinfo(np.int64).max
        best = np.full(self.n, sentinel, dtype=np.int64)
        for coo in coo_parts:
            dst, src = coo.row, coo.col        # A[i, j] is edge j -> i
            lu, lv = levels[src], levels[dst]
            tree_edge = (lu >= 0) & (lv == lu + 1)
            if tree_edge.any():
                np.minimum.at(best, dst[tree_edge], src[tree_edge])
        found = best < sentinel
        parents[found] = best[found]
        result.parents = parents
        return parents

    def format_nbytes(self) -> int:
        """Footprint of the BFS storage (A1 + A2 + side COO); shared
        A1/A2 storage (symmetric patterns) is counted once."""
        if self._sharded is not None:
            return self._sharded.matrix.total_tile_bytes
        side = (self.side.row.nbytes + self.side.col.nbytes)
        a2 = 0 if self.A2.shares_storage_with(self.A1) \
            else self.A2.nbytes()
        return self.A1.nbytes() + a2 + side

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._sharded is not None:
            return (f"<TileBFS n={self.n} nnz={self.nnz} nt={self.nt} "
                    f"shards={self._sharded.matrix.n_shards}>")
        return (f"<TileBFS n={self.n} nnz={self.nnz} nt={self.nt} "
                f"tiles={self.A1.n_nonempty_tiles}>")


def _build_bfs_plan(matrix, nt: Optional[int], extract_threshold: int,
                    key) -> OperatorPlan:
    """TileBFS preprocessing (the cache-miss path): COO conversion,
    tile-size selection, very-sparse-tile extraction, and the A1/A2
    bitmask compressions of Fig. 5."""
    if isinstance(matrix, SparseMatrix):
        coo = matrix.to_coo()
    else:
        coo = COOMatrix.from_dense(np.asarray(matrix))
    if coo.shape[0] != coo.shape[1]:
        raise ShapeError(f"BFS requires a square matrix, got {coo.shape}")
    n = coo.shape[0]
    if nt is None:
        nt = select_tile_size(n)
    if nt not in SUPPORTED_TILE_SIZES:
        raise ShapeError(
            f"unsupported tile size {nt}; allowed: {SUPPORTED_TILE_SIZES}"
        )
    if extract_threshold > 0:
        hybrid = split_very_sparse_tiles(coo, nt, extract_threshold)
        dense_part = hybrid.tiled.to_coo()
        side = hybrid.side
    else:
        dense_part = coo
        side = COOMatrix.empty(coo.shape)
    A1 = BitTiledMatrix.from_coo(dense_part, nt, "csc")
    # For an undirected graph A1 and A2 hold identical arrays (§3.2.3),
    # so the storage is shared — "about half" the footprint.
    symmetric = pattern_is_symmetric(dense_part)
    if symmetric:
        A2 = A1.as_reinterpreted("csr")
    else:
        A2 = BitTiledMatrix.from_coo(dense_part, nt, "csr")
    plan = OperatorPlan(kind="tilebfs", key=tuple(key),
                        data={"n": n, "nnz": coo.nnz, "nt": nt,
                              "side": side, "A1": A1, "A2": A2,
                              "symmetric": symmetric})
    # A1 *is* the csc tiling of the same pattern, so Push-CSR's
    # active-column bit gather runs over it directly instead of
    # re-tiling A2 (both branches above build A1/A2 from dense_part).
    A2.attach_column_view(A1)
    # Warm the kernels' plan-time gather structures (cached on the
    # matrices, registered as lazy slots so the cost is paid here, in
    # the amortised preprocessing, not on the first traversal layer):
    # the column view and row-major ids driving the Push-CSR active
    # paths, the warp count of its launch model, and the Pull-CSC
    # full-mask template.
    plan.warm(
        a2_column_view=A2.column_view,
        a2_tile_majoridx=A2.tile_majoridx,
        a2_row_warp_count=A2.row_warp_count,
        a1_full_mask_words=A1.full_mask_words,
    )
    return plan


def tile_bfs(matrix, source: int, nt: Optional[int] = None,
             selector: Optional[KernelSelector] = None,
             device: Optional[Device] = None,
             max_depth: Optional[int] = None) -> BFSResult:
    """One-shot convenience wrapper: preprocess + traverse.

    For repeated traversals from different sources, build a
    :class:`TileBFS` once — that is the amortisation argument of the
    paper's §4.6.
    """
    return TileBFS(matrix, nt=nt, selector=selector,
                   device=device).run(source, max_depth=max_depth)
