"""The paper's algorithms: TileSpMSpV (§3.3) and TileBFS (§3.4).

Public entry points:

* :class:`TileSpMSpV` / :func:`tile_spmspv` — numeric sparse
  matrix-sparse vector multiply over tiled storage;
* :class:`TileBFS` / :func:`tile_bfs` — directional-optimization BFS
  over bitmask tiles;
* :class:`BatchedSpMSpV` — one matrix against many sparse vectors in a
  single coalesced launch (the MS-BFS amortisation as an operator);
* :class:`KernelSelector` — the K1/K2/K3 switching policy (ablation
  hooks for Figure 9).
"""

from .bfs_kernels import (expand_vertex_tiles, pull_csc_kernel,
                          push_csc_kernel, push_csr_kernel)
from .selection import (PULL_CSC, PUSH_CSC, PUSH_CSR, SPMM_MERGE_PATH,
                        SPMM_ROW_WARP, KernelSelector, select_tile_size)
from .reference_bfs_kernels import (reference_msbfs_expand,
                                    reference_pull_csc_kernel,
                                    reference_push_csc_kernel,
                                    reference_push_csr_kernel)
from .reference_kernels import (reference_batched_tiled_kernel,
                                reference_coo_side_kernel,
                                reference_csc_tiled_kernel,
                                reference_tiled_kernel)
from .batched import BatchedSpMSpV
from .spmspv import TileSpMSpV, as_tiled_vector, tile_spmspv
from .spmspv_kernels import (batched_tiled_kernel, batched_union_kernel,
                             coo_side_kernel, csc_tiled_kernel,
                             tiled_kernel)
from .spmm import TileSpMM, as_dense_block
from .spmm_kernels import (row_tile_imbalance, spmm_coo_side_kernel,
                           spmm_merge_path_kernel, spmm_row_warp_kernel)
from .msbfs import MSBFSResult, MultiSourceBFS, msbfs_expand
from .tilebfs import BFSResult, IterationRecord, TileBFS, tile_bfs

__all__ = [
    "TileSpMSpV", "tile_spmspv", "as_tiled_vector",
    "tiled_kernel", "csc_tiled_kernel",
    "batched_tiled_kernel", "coo_side_kernel",
    "BatchedSpMSpV", "batched_union_kernel",
    "TileSpMM", "as_dense_block",
    "spmm_row_warp_kernel", "spmm_merge_path_kernel",
    "spmm_coo_side_kernel", "row_tile_imbalance",
    "reference_tiled_kernel", "reference_csc_tiled_kernel",
    "reference_batched_tiled_kernel", "reference_coo_side_kernel",
    "TileBFS", "tile_bfs", "BFSResult", "IterationRecord",
    "MultiSourceBFS", "MSBFSResult",
    "KernelSelector", "select_tile_size",
    "PUSH_CSC", "PUSH_CSR", "PULL_CSC",
    "SPMM_ROW_WARP", "SPMM_MERGE_PATH",
    "push_csc_kernel", "push_csr_kernel", "pull_csc_kernel",
    "expand_vertex_tiles", "msbfs_expand",
    "reference_push_csc_kernel", "reference_push_csr_kernel",
    "reference_pull_csc_kernel", "reference_msbfs_expand",
]
