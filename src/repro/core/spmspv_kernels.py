"""The numeric TileSpMSpV kernels (paper §3.3, Algorithm 4).

Two kernels implement one SpMSpV over the hybrid storage:

* :func:`tiled_kernel` — the row-tile warp kernel of Algorithm 4.  One
  warp owns one row tile; for every stored tile it reads the tile's
  column index, looks up ``x_ptr`` in O(1), and *skips the tile
  entirely* when the corresponding vector tile is empty (lines 3-5 of
  Alg. 4).  Active tiles stage the x tile in shared memory and each
  pair of lanes reduces one tile row; the warp-level shuffle reduction
  of lines 12-13 becomes a register-level sum, so no global atomics are
  needed.
* :func:`coo_side_kernel` — the per-entry kernel for the extracted
  very-sparse COO matrix (§3.2.1): each entry checks its column's
  vector tile, multiplies, and merges with a global ``atomicAdd``.

Both kernels execute functionally in vectorized NumPy and return the
:class:`~repro.gpusim.counters.KernelCounters` a CUDA realisation would
incur (accounting rules in DESIGN.md §3).

Active-set execution
--------------------
The paper's claim is that tile skipping makes the work proportional to
the active part of ``x`` — and the modeled counters always reflected
that — but the original host execution still built boolean masks over
all ``A.nnz`` entries per multiply.  These kernels instead walk the
plan-time :class:`~repro.tiles.tiled_matrix.ColumnGather` index: the
active tile columns name their stored tiles directly, the tiles name
their entry ranges, and :func:`~repro._util.gather_ranges` pulls
exactly that payload.  Host cost is thereby proportional to the active
tiles, matching the model.  The gathered entries are visited in the
same stored order as the old masks selected them and the merge
(:meth:`~repro.semiring.Semiring.scatter_merge`) folds each output row
in the same sequence, so results *and* counters are byte-identical to
the reference kernels in :mod:`repro.core.reference_kernels` — the
kernel-equivalence tests enforce this.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._util import gather_ranges
from ..errors import ShapeError
from ..gpusim import KernelCounters
from ..semiring import PLUS_TIMES, Semiring
from ..tiles.tiled_matrix import TiledMatrix
from ..tiles.tiled_vector import TiledVector

__all__ = ["tiled_kernel", "csc_tiled_kernel", "batched_tiled_kernel",
           "batched_union_kernel", "coo_side_kernel"]


def _lane_utilization(nnz_per_active_tile: np.ndarray, warp: int = 32) -> float:
    """Average fraction of useful lanes while a warp processes a tile.

    A warp of 32 lanes co-processes one tile; a tile with few nonzeros
    leaves lanes idle (divergence).  Bounded below by one active lane.
    """
    if len(nnz_per_active_tile) == 0:
        return 1.0
    util = np.minimum(1.0, nnz_per_active_tile / warp).mean()
    return float(max(util, 1.0 / warp))


def tiled_kernel(A: TiledMatrix, x: TiledVector,
                 semiring: Semiring = PLUS_TIMES,
                 y_dense: Optional[np.ndarray] = None,
                 with_counters: bool = True,
                 ) -> Tuple[np.ndarray, Optional[KernelCounters]]:
    """Algorithm 4: row-tile warp kernel with x-tile skipping.

    Parameters
    ----------
    A:
        The tiled matrix (CSR-of-tiles).
    x:
        The tiled input vector; ``x.n`` must equal ``A.shape[1]`` and
        the tile sizes must match.
    semiring:
        ``(add, mul)`` pair; default ordinary ``(+, *)``.
    y_dense:
        Optional preallocated dense accumulator of length ``A.shape[0]``
        initialised to the additive identity (reused across BFS
        iterations); a fresh one is allocated when omitted.
    with_counters:
        ``False`` skips all accounting work (including the result-tile
        dedup and lane-utilization statistics) and returns ``None``
        counters — the production-mode path, which replays the launch
        by re-running the kernel with counters on afterwards.

    Returns
    -------
    (y_dense, counters):
        The dense accumulator holding the result and the hardware
        counters of the launch (``None`` with ``with_counters=False``).
    """
    if x.n != A.shape[1]:
        raise ShapeError(
            f"SpMSpV shape mismatch: A is {A.shape}, x has length {x.n}"
        )
    if x.nt != A.nt:
        raise ShapeError(
            f"tile size mismatch: matrix nt={A.nt}, vector nt={x.nt}"
        )
    nt = A.nt
    m = A.shape[0]
    if y_dense is None:
        y_dense = np.full(m, semiring.add_identity, dtype=semiring.dtype)

    counters = KernelCounters(launches=1) if with_counters else None
    if counters is not None:
        # every stored tile's metadata is read once (coalesced stream):
        # tile_colidx (8B) + its x_ptr entry + nnz offsets (8B)
        counters.coalesced_read_bytes += A.n_nonempty_tiles * 16.0
        counters.l2_read_bytes += A.n_nonempty_tiles * 8.0  # x_ptr

    # --- tile activity, active-set style (Alg.4 l.2-5): the non-empty
    # vector tiles name A's active tile columns; the plan-time column
    # gather names their stored tiles.  Nothing O(nnz) here.
    active_cols = np.flatnonzero(x.x_ptr >= 0)
    gather = A.column_gather()
    ptr = gather.coltile_tile_ptr
    n_active = int((ptr[active_cols + 1] - ptr[active_cols]).sum())

    if n_active == 0:
        if counters is not None:
            # warps still launch to discover there is nothing to do
            counters.warps = max(1.0, A.n_tile_rows)
        return y_dense, counters

    # --- gather the entries of active tiles (stored order preserved).
    # Three regimes, all selecting the same entries in the same order:
    # every stored tile active (dense frontier) → the gather is the
    # identity, use the full arrays; most tiles active → a boolean
    # sweep of the stored-tile stream beats gathering and sorting
    # nearly all of them; sparse frontier → the plan-time column
    # gather touches only the active tiles (nothing O(nnz)).
    if n_active == A.n_nonempty_tiles:
        nnz_t = A.tile_nnz()
        vals = A.values
        lcol = A.local_col64()
        grow = A.entry_rows()
        x_off_tiles = x.x_ptr[A.tile_colidx]
        rowidx_act = A.tile_rowidx()
    else:
        if 4 * n_active >= A.n_nonempty_tiles:
            tile_mask = x.x_ptr[A.tile_colidx] >= 0
            tiles = np.flatnonzero(tile_mask)
            entry_sel = np.repeat(tile_mask, A.tile_nnz())
        else:
            tiles = gather.active_tiles(active_cols)
            entry_sel = gather_ranges(A.tile_nnz_ptr, tiles)
        nnz_t = A.tile_nnz()[tiles]
        vals = A.values[entry_sel]
        lcol = A.local_col64()[entry_sel]
        grow = A.entry_rows()[entry_sel]
        x_off_tiles = x.x_ptr[A.tile_colidx[tiles]]
        rowidx_act = A.tile_rowidx()[tiles]

    xv = x.x_tile[np.repeat(x_off_tiles, nnz_t) * nt + lcol]
    products = semiring.mul(vals, xv)
    semiring.scatter_merge(y_dense, grow, products)
    if counters is None:
        return y_dense, None

    # --- accounting
    nnz_active = len(vals)
    idx_bytes = A.index_bytes_per_entry()
    # tile payload streams in (values + packed indices), coalesced
    counters.coalesced_read_bytes += nnz_active * (8.0 + idx_bytes)
    # the x tile of each active tile is staged into shared memory; the
    # same x tile is reused by every tile in its tile column, so repeats
    # hit L2.
    counters.l2_read_bytes += n_active * nt * 8.0
    counters.shared_bytes += n_active * nt * 8.0
    counters.flops += 2.0 * nnz_active
    # warp shuffle reduction: ~log2(32) word ops per lane pair
    counters.word_ops += n_active * 5.0
    # each row tile with work writes its nt-row result once, coalesced
    row_tiles_active = np.unique(rowidx_act)
    counters.coalesced_write_bytes += len(row_tiles_active) * nt * 8.0
    # one warp per row tile that has stored tiles — inactive ones still
    # launch and scan their metadata (Alg. 4 lines 2-5)
    counters.warps = float(max(1, A.n_occupied_tile_rows()))
    counters.divergence = _lane_utilization(nnz_t)
    counters.check()
    return y_dense, counters


def batched_tiled_kernel(A: TiledMatrix, xs, semiring: Semiring = PLUS_TIMES
                         ) -> Tuple[np.ndarray, KernelCounters]:
    """Batched Algorithm 4: one launch multiplies ``A`` against a batch
    of tiled vectors.

    The row-tile metadata scan — the fixed cost of the CSR form — is
    paid **once** for the whole batch: a warp reads a tile's column
    index and then tests all ``k`` ``x_ptr`` entries, doing payload
    work only for the vectors whose tile is active.  This is the
    multi-source pattern of batched BFS / Brandes betweenness (one
    column of the frontier matrix per source).

    Parameters
    ----------
    A:
        The tiled matrix.
    xs:
        Sequence of :class:`TiledVector`, all of length ``A.shape[1]``
        and tile size ``A.nt``.

    Returns
    -------
    (Y, counters):
        ``Y`` is a dense ``(k, m)`` accumulator (one row per input
        vector) and ``counters`` the single merged launch record.
    """
    k = len(xs)
    if k == 0:
        raise ShapeError("batched SpMSpV needs at least one vector")
    nt = A.nt
    m = A.shape[0]
    for x in xs:
        if x.n != A.shape[1]:
            raise ShapeError(
                f"SpMSpV shape mismatch: A is {A.shape}, "
                f"x has length {x.n}"
            )
        if x.nt != nt:
            raise ShapeError(
                f"tile size mismatch: matrix nt={nt}, vector nt={x.nt}"
            )

    Y = np.full((k, m), semiring.add_identity, dtype=semiring.dtype)
    counters = KernelCounters(launches=1)
    # the metadata scan happens once for the batch
    counters.coalesced_read_bytes += A.n_nonempty_tiles * 16.0
    counters.l2_read_bytes += A.n_nonempty_tiles * 8.0 * k  # k x_ptr tests

    # loop-invariant structure, hoisted out of the per-vector loop
    gather = A.column_gather()
    rowidx = A.tile_rowidx()
    tile_nnz = A.tile_nnz()
    entry_rows = A.entry_rows()
    local_col = A.local_col64()
    idx_bytes = A.index_bytes_per_entry()
    total_active_rows = 0.0
    utilizations = []
    for b, x in enumerate(xs):
        active_cols = np.flatnonzero(x.x_ptr >= 0)
        ptr = gather.coltile_tile_ptr
        n_active = int((ptr[active_cols + 1] - ptr[active_cols]).sum())
        if n_active == 0:
            continue
        if n_active == A.n_nonempty_tiles:     # dense frontier
            nnz_t = tile_nnz
            vals = A.values
            lcol = local_col
            grow = entry_rows
            x_off_tiles = x.x_ptr[A.tile_colidx]
            rowidx_act = rowidx
        else:
            if 4 * n_active >= A.n_nonempty_tiles:   # near-dense
                tile_mask = x.x_ptr[A.tile_colidx] >= 0
                tiles = np.flatnonzero(tile_mask)
                entry_sel = np.repeat(tile_mask, tile_nnz)
            else:
                tiles = gather.active_tiles(active_cols)
                entry_sel = gather_ranges(A.tile_nnz_ptr, tiles)
            nnz_t = tile_nnz[tiles]
            vals = A.values[entry_sel]
            lcol = local_col[entry_sel]
            grow = entry_rows[entry_sel]
            x_off_tiles = x.x_ptr[A.tile_colidx[tiles]]
            rowidx_act = rowidx[tiles]
        xv = x.x_tile[np.repeat(x_off_tiles, nnz_t) * nt + lcol]
        products = semiring.mul(vals, xv)
        semiring.scatter_merge(Y[b], grow, products)

        counters.coalesced_read_bytes += len(vals) * (8.0 + idx_bytes)
        counters.l2_read_bytes += n_active * nt * 8.0
        counters.shared_bytes += n_active * nt * 8.0
        counters.flops += 2.0 * len(vals)
        row_tiles_active = len(np.unique(rowidx_act))
        counters.coalesced_write_bytes += row_tiles_active * nt * 8.0
        total_active_rows += row_tiles_active
        utilizations.append(_lane_utilization(nnz_t))

    counters.warps = max(
        1.0, float(max(total_active_rows, A.n_occupied_tile_rows())))
    if utilizations:
        counters.divergence = float(np.mean(utilizations))
    counters.check()
    return Y, counters


def batched_union_kernel(A: TiledMatrix, xs, semiring: Semiring = PLUS_TIMES
                         ) -> Tuple[np.ndarray, KernelCounters]:
    """Coalesced batched Algorithm 4: one launch, one payload pass.

    Where :func:`batched_tiled_kernel` amortises only the tile-metadata
    scan, this kernel also coalesces the *payload*: the union of the
    batch's active tile columns is computed once, every stored tile in
    that union streams its entries from global memory **once**, and the
    staged tile is applied to each vector that activates it (the
    multi-source trick of :func:`~repro.core.msbfs.msbfs_expand`,
    generalised from the bitmask-AND semiring to arbitrary semirings).

    Per vector, the computed result is **byte-identical** to
    :func:`tiled_kernel` on the same input: the union gather preserves
    ascending stored entry order, each vector's subset selection
    preserves it again, and the merge folds through the same
    :meth:`~repro.semiring.Semiring.scatter_merge` on a fresh
    accumulator row.

    Counter contract — the *shared-load discount* (see the developer
    guide, "Batched execution & CI pipeline").  Relative to summing the
    counters of ``k`` single-vector :func:`tiled_kernel` launches:

    * the tile-metadata scan (``n_nonempty_tiles * 16`` coalesced bytes)
      is charged once per batch, not once per vector;
    * tile payload (``(8 + idx_bytes)`` per entry) is charged once per
      **union** entry, not once per (vector, entry) pair;
    * ``launches`` is 1 and ``warps`` is one grid (one warp per occupied
      row tile serving the whole batch); ``divergence`` is the lane
      utilization over the union tile set;
    * every genuinely per-vector cost is unchanged: the ``k`` ``x_ptr``
      probes per stored tile (L2), per-vector x-tile staging
      (L2 + shared), flops, warp-shuffle word ops, and per-vector
      result-tile writes.

    Returns ``(Y, counters)`` with ``Y`` a dense ``(k, m)`` accumulator.
    """
    k = len(xs)
    if k == 0:
        raise ShapeError("batched SpMSpV needs at least one vector")
    nt = A.nt
    m = A.shape[0]
    for x in xs:
        if x.n != A.shape[1]:
            raise ShapeError(
                f"SpMSpV shape mismatch: A is {A.shape}, "
                f"x has length {x.n}"
            )
        if x.nt != nt:
            raise ShapeError(
                f"tile size mismatch: matrix nt={nt}, vector nt={x.nt}"
            )

    Y = np.full((k, m), semiring.add_identity, dtype=semiring.dtype)
    counters = KernelCounters(launches=1)
    # metadata scan once per batch; every vector's x_ptr is probed per
    # stored tile (the k activity tests stay per-vector)
    counters.coalesced_read_bytes += A.n_nonempty_tiles * 16.0
    counters.l2_read_bytes += A.n_nonempty_tiles * 8.0 * k

    # --- the union of active tile columns, computed once per batch
    gather = A.column_gather()
    active_any = np.zeros(A.n_tile_cols, dtype=bool)
    for x in xs:
        active_any |= x.x_ptr >= 0
    union_cols = np.flatnonzero(active_any)
    ptr = gather.coltile_tile_ptr
    n_union = int((ptr[union_cols + 1] - ptr[union_cols]).sum())
    if n_union == 0:
        counters.warps = max(1.0, A.n_tile_rows)
        return Y, counters

    # --- gather the union payload ONCE (same three regimes as the
    # single-vector kernel, driven by the union activity; `tiles` is
    # ascending in every regime, so entries keep stored order)
    tile_nnz = A.tile_nnz()
    if n_union == A.n_nonempty_tiles:
        tiles = np.arange(A.n_nonempty_tiles, dtype=np.int64)
        u_vals = A.values
        u_lcol = A.local_col64()
        u_grow = A.entry_rows()
    else:
        if 4 * n_union >= A.n_nonempty_tiles:
            tile_mask = active_any[A.tile_colidx]
            tiles = np.flatnonzero(tile_mask)
            entry_sel = np.repeat(tile_mask, tile_nnz)
        else:
            tiles = gather.active_tiles(union_cols)
            entry_sel = gather_ranges(A.tile_nnz_ptr, tiles)
        u_vals = A.values[entry_sel]
        u_lcol = A.local_col64()[entry_sel]
        u_grow = A.entry_rows()[entry_sel]
    u_nnz_t = tile_nnz[tiles]
    u_colidx = A.tile_colidx[tiles]
    u_rowidx = A.tile_rowidx()[tiles]
    u_tile_of_entry = np.repeat(np.arange(len(tiles), dtype=np.int64),
                                u_nnz_t)

    idx_bytes = A.index_bytes_per_entry()
    # the shared-load discount: union payload streams in once per batch
    counters.coalesced_read_bytes += len(u_vals) * (8.0 + idx_bytes)

    # --- apply the staged union to every vector that activates it
    for b, x in enumerate(xs):
        sub = x.x_ptr[u_colidx] >= 0
        n_active = int(sub.sum())
        if n_active == 0:
            continue
        if n_active == len(tiles):
            vals, lcol, grow = u_vals, u_lcol, u_grow
            nnz_t = u_nnz_t
            x_off_tiles = x.x_ptr[u_colidx]
            rowidx_act = u_rowidx
        else:
            entry_sub = sub[u_tile_of_entry]
            vals = u_vals[entry_sub]
            lcol = u_lcol[entry_sub]
            grow = u_grow[entry_sub]
            nnz_t = u_nnz_t[sub]
            x_off_tiles = x.x_ptr[u_colidx[sub]]
            rowidx_act = u_rowidx[sub]
        xv = x.x_tile[np.repeat(x_off_tiles, nnz_t) * nt + lcol]
        products = semiring.mul(vals, xv)
        semiring.scatter_merge(Y[b], grow, products)

        # per-vector (non-shared) accounting
        counters.l2_read_bytes += n_active * nt * 8.0
        counters.shared_bytes += n_active * nt * 8.0
        counters.flops += 2.0 * len(vals)
        counters.word_ops += n_active * 5.0
        counters.coalesced_write_bytes += \
            len(np.unique(rowidx_act)) * nt * 8.0

    counters.warps = float(max(1, A.n_occupied_tile_rows()))
    counters.divergence = _lane_utilization(u_nnz_t)
    counters.check()
    return Y, counters


def csc_tiled_kernel(At: TiledMatrix, x: TiledVector,
                     semiring: Semiring = PLUS_TIMES,
                     y_dense: Optional[np.ndarray] = None,
                     with_counters: bool = True,
                     ) -> Tuple[np.ndarray, Optional[KernelCounters]]:
    """The CSC-form TileSpMSpV kernel (vector-driven; paper §3.2.3).

    Works on the *transposed* tiling ``At = tiled(A^T)``: A^T's tile
    rows are A's tile columns, so walking one of ``At``'s tile rows is
    exactly walking one tile *column* of ``A`` — the CSC-of-tiles view
    without a second storage format.  Within a stored tile, A^T's
    ``local_row`` is A's local column (the x index) and vice versa.

    Each non-empty x tile drives a warp over the stored tiles of its
    tile column and merges the scaled entries into ``y`` with global
    atomics.  Work is proportional to the *touched* tile columns only —
    no metadata scan of the whole matrix — which beats the CSR form for
    very sparse ``x`` but pays per-entry atomics when ``x`` is dense
    (the trade-off the adaptive mode arbitrates; cf. Li et al. [31] in
    the paper's related work).

    Returns ``(y_dense, counters)`` like :func:`tiled_kernel`
    (``with_counters=False`` skips accounting and returns ``None``
    counters).
    """
    # At is tiled(A^T): its shape is (n, m) for A of shape (m, n)
    n, m = At.shape
    if x.n != n:
        raise ShapeError(
            f"SpMSpV shape mismatch: A is {(m, n)}, x has length {x.n}"
        )
    if x.nt != At.nt:
        raise ShapeError(
            f"tile size mismatch: matrix nt={At.nt}, vector nt={x.nt}"
        )
    nt = At.nt
    if y_dense is None:
        y_dense = np.full(m, semiring.add_identity, dtype=semiring.dtype)

    counters = KernelCounters(launches=1) if with_counters else None
    active_cols = np.flatnonzero(x.x_ptr >= 0)          # A's tile columns
    if counters is not None:
        # the compact tiled vector carries its non-empty tile list, so
        # the kernel reads exactly that (no scan over all tile slots)
        counters.coalesced_read_bytes += len(active_cols) * 8.0
    if len(active_cols) == 0:
        if counters is not None:
            counters.warps = 1.0
        return y_dense, counters

    # At's tile rows are A's tile columns: the active tile list falls
    # straight out of tile_ptr, already in ascending stored order.
    n_active = int((At.tile_ptr[active_cols + 1]
                    - At.tile_ptr[active_cols]).sum())
    if n_active == 0:
        if counters is not None:
            counters.warps = max(1.0, len(active_cols) / 32.0)
            counters.l2_read_bytes += len(active_cols) * 16.0
        return y_dense, counters

    # gather the entries of the touched tiles — same three regimes as
    # the CSR form (identity / boolean sweep / plan-time gather), all
    # yielding the ascending stored selection
    if n_active == At.n_nonempty_tiles:
        nnz_t = At.tile_nnz()
        vals = At.values
        x_local = At.local_row64()                       # A's local col
        gcols = At.entry_cols()
        x_off_tiles = x.x_ptr[At.tile_rowidx()]
    else:
        if 4 * n_active >= At.n_nonempty_tiles:          # near-dense
            tile_mask = (x.x_ptr >= 0)[At.tile_rowidx()]
            tiles = np.flatnonzero(tile_mask)
            entry_sel = np.repeat(tile_mask, At.tile_nnz())
        else:
            tiles = gather_ranges(At.tile_ptr, active_cols)
            entry_sel = gather_ranges(At.tile_nnz_ptr, tiles)
        nnz_t = At.tile_nnz()[tiles]
        vals = At.values[entry_sel]
        x_local = At.local_row64()[entry_sel]            # A's local col
        gcols = At.entry_cols()[entry_sel]
        x_off_tiles = x.x_ptr[At.tile_rowidx()[tiles]]

    xv = x.x_tile[np.repeat(x_off_tiles, nnz_t) * nt + x_local]
    occupied = ~semiring.is_identity(xv)
    products = semiring.mul(vals[occupied], xv[occupied])
    grow = gcols[occupied]                               # A's global row
    if len(grow):
        semiring.scatter_merge(y_dense, grow, products)
    if counters is None:
        return y_dense, None

    # accounting: only the touched tile columns are read; the merge
    # into y is a global atomic scatter (the CSC form's cost).
    n_tiles = float(n_active)
    nnz_touched = float(len(vals))
    idx_bytes = At.index_bytes_per_entry()
    counters.l2_read_bytes += len(active_cols) * 16.0    # tile_ptr probes
    counters.coalesced_read_bytes += n_tiles * 16.0      # tile metadata
    counters.coalesced_read_bytes += nnz_touched * (8.0 + idx_bytes)
    counters.l2_read_bytes += n_tiles * nt * 8.0         # x tiles (shared)
    counters.shared_bytes += n_tiles * nt * 8.0
    counters.flops += 2.0 * float(occupied.sum())
    counters.atomic_ops += float(occupied.sum())
    counters.random_write_count += float(occupied.sum())
    counters.warps = max(1.0, n_tiles)
    counters.divergence = _lane_utilization(nnz_t)
    counters.check()
    return y_dense, counters


def coo_side_kernel(side, x: TiledVector,
                    semiring: Semiring = PLUS_TIMES,
                    y_dense: Optional[np.ndarray] = None,
                    with_counters: bool = True,
                    ) -> Tuple[np.ndarray, Optional[KernelCounters]]:
    """Kernel for the extracted very-sparse COO side matrix.

    Accepts either an :class:`~repro.tiles.extraction.IndexedSideMatrix`
    (preferred: the triplets are grouped by column tile, so only the
    entries of *active* column tiles are touched — the same skipping
    the tiled kernel gets from ``x_ptr``) or a plain
    :class:`~repro.formats.coo.COOMatrix` (every entry is scanned; the
    counters charge the full stream).

    Each touched entry ``(i, j, v)`` reads ``x[j]`` via the O(1) tile
    formula and merges into ``y[i]`` with an atomic add — the side
    matrix has no row locality to exploit, which is exactly why these
    entries were evicted from the tiled structure.
    """
    from ..tiles.extraction import IndexedSideMatrix

    if x.n != side.shape[1]:
        raise ShapeError(
            f"SpMSpV shape mismatch: side matrix is {side.shape}, "
            f"x has length {x.n}"
        )
    nt = x.nt
    if isinstance(side, IndexedSideMatrix) and side.nt != nt:
        raise ShapeError(
            f"side index tile size {side.nt} != vector tile size {nt}"
        )
    if y_dense is None:
        y_dense = np.full(side.shape[0], semiring.add_identity,
                          dtype=semiring.dtype)
    counters = KernelCounters(launches=1) if with_counters else None
    if side.nnz == 0:
        return y_dense, counters

    if isinstance(side, IndexedSideMatrix):
        active_tiles = np.flatnonzero(
            (x.x_ptr >= 0) & side.nonempty_coltiles())
        sel = gather_ranges(side.coltile_ptr, active_tiles)
        rows_all, cols_all, vals_all = (side.row[sel], side.col[sel],
                                        side.val[sel])
        # index lookups are driven from the sparser operand: either the
        # vector's non-empty tiles probe the side index, or the side's
        # non-empty column tiles probe x_ptr — a kernel picks the
        # cheaper direction.
        if counters is not None:
            counters.l2_read_bytes += min(
                side.n_index_tiles(), x.n_nonempty_tiles) * 16.0
        scanned = len(sel)
    else:
        rows_all, cols_all, vals_all = side.row, side.col, side.val
        scanned = side.nnz

    x_off = x.x_ptr[cols_all // nt]
    hit = x_off >= 0
    if int(hit.sum()):
        xv = x.x_tile[x_off[hit] * nt + cols_all[hit] % nt]
    else:
        xv = np.zeros(0, dtype=semiring.dtype)
    occupied = ~semiring.is_identity(xv)
    rows = rows_all[hit][occupied]
    products = semiring.mul(vals_all[hit][occupied], xv[occupied])
    if len(rows):
        semiring.scatter_merge(y_dense, rows, products)
    if counters is None:
        return y_dense, None

    # accounting: touched triplets stream in coalesced; x lookups and y
    # updates are data-dependent scatters.
    counters.coalesced_read_bytes += scanned * 24.0   # (row, col, val)
    counters.random_read_count += float(scanned)      # x value reads
    counters.flops += 2.0 * len(rows)
    counters.atomic_ops += float(len(rows))
    counters.random_write_count += float(len(rows))
    counters.warps = max(1.0, scanned / 32.0)
    counters.check()
    return y_dense, counters
