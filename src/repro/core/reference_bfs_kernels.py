"""Seed BFS kernels — the pre-active-tile oracles, preserved verbatim.

These are the original directional-optimization kernels of
:mod:`repro.core.bfs_kernels` exactly as the seed shipped them.  Their
host cost is O(everything): ``reference_push_csr_kernel`` gathers a
frontier word for *every* stored tile, and ``reference_pull_csc_kernel``
materialises every unvisited vertex's tile range through ``np.repeat``
— the per-layer pattern the active-tile rewrite eliminates.

They remain in-tree for two jobs (the same contract as
:mod:`repro.core.reference_kernels` holds for the numeric SpMSpV
kernels):

* the BFS kernel-equivalence tests assert the rewritten kernels return
  byte-identical result words **and**
  :class:`~repro.gpusim.counters.KernelCounters` against these oracles,
  so every simulated-ms figure and Fig. 10 trace is unchanged;
* the wall-clock benchmark (``benchmarks/bench_wallclock.py``) times
  the rewrite against them, recording the host-side BFS speedup in
  ``BENCH_wallclock.json``.

``reference_msbfs_expand`` preserves the seed MS-BFS frontier expansion
(the ``np.bitwise_or.at`` scatter) for the same two jobs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._util import concat_ranges
from ..errors import ShapeError
from ..gpusim import KernelCounters
from ..tiles.bitmask import BitTiledMatrix, BitVector

__all__ = ["reference_push_csc_kernel", "reference_push_csr_kernel",
           "reference_pull_csc_kernel", "reference_msbfs_expand"]

_U64 = np.uint64


def _check_operands(A: BitTiledMatrix, x: BitVector, m: BitVector,
                    orientation: str, kernel: str) -> None:
    if A.orientation != orientation:
        raise ShapeError(
            f"{kernel} requires the {orientation!r}-compressed matrix, "
            f"got {A.orientation!r}"
        )
    if A.shape[0] != A.shape[1]:
        raise ShapeError(f"BFS requires a square matrix, got {A.shape}")
    if x.n != A.shape[1] or m.n != A.shape[0]:
        raise ShapeError(
            f"vector length mismatch: A is {A.shape}, x has {x.n}, "
            f"m has {m.n}"
        )
    if x.nt != A.nt or m.nt != A.nt:
        raise ShapeError(
            f"tile size mismatch: A nt={A.nt}, x nt={x.nt}, m nt={m.nt}"
        )


def reference_push_csc_kernel(A1: BitTiledMatrix, x: BitVector, m: BitVector
                              ) -> Tuple[BitVector, KernelCounters]:
    """Seed K1 (Alg. 5): per-frontier-vertex gather, ``bitwise_or.at``
    scatter."""
    _check_operands(A1, x, m, "csc", "push_csc")
    nt = A1.nt
    y = BitVector.zeros(x.n, nt)
    counters = KernelCounters(launches=1)

    frontier = x.to_indices()
    counters.coalesced_read_bytes += len(x.words) * 8.0  # scan frontier words
    if len(frontier) == 0:
        counters.warps = 1.0
        return y, counters

    jt = frontier // nt
    lc = frontier % nt
    lengths = A1.tile_ptr[jt + 1] - A1.tile_ptr[jt]
    gathered = concat_ranges(A1.tile_ptr[jt], lengths)
    lc_rep = np.repeat(lc, lengths)

    if len(gathered):
        col_words = A1.words[gathered, lc_rep]
        row_tiles = A1.tile_otheridx[gathered]
        new_words = col_words & ~m.words[row_tiles]
        np.bitwise_or.at(y.words, row_tiles, new_words)

    n_gathered = float(len(gathered))
    # per frontier vertex: tile_ptr lookup (L2) ...
    counters.l2_read_bytes += len(frontier) * 16.0
    # ... then per touched tile: one word (scattered), the mask word
    # (scattered, often L2-hot), one atomicOr into y.
    counters.random_read_count += n_gathered        # A1 word
    counters.l2_read_bytes += n_gathered * 8.0      # mask word
    counters.word_ops += n_gathered * 3.0           # and/not/or
    counters.atomic_ops += 2.0 * n_gathered         # y and flag (Alg.5 l.5-6)
    counters.random_write_count += n_gathered
    counters.warps = max(1.0, len(frontier) / 32.0 + n_gathered / 32.0)
    counters.divergence = 1.0  # lanes process independent tiles
    counters.check()
    return y, counters


def reference_push_csr_kernel(A2: BitTiledMatrix, x: BitVector, m: BitVector
                              ) -> Tuple[BitVector, KernelCounters]:
    """Seed K2 (Alg. 6): frontier word gathered for every stored tile."""
    _check_operands(A2, x, m, "csr", "push_csr")
    nt = A2.nt
    y = BitVector.zeros(x.n, nt)
    counters = KernelCounters(launches=1)

    n_tiles = A2.n_nonempty_tiles
    if n_tiles == 0:
        counters.warps = 1.0
        return y, counters

    xw = x.words[A2.tile_otheridx]          # frontier word per stored tile
    active = xw != 0
    n_active = int(active.sum())
    # all stored tiles read their metadata + frontier word
    counters.coalesced_read_bytes += n_tiles * 16.0
    counters.l2_read_bytes += n_tiles * 8.0

    if n_active:
        hits = (A2.words[active] & xw[active][:, None]) != 0   # (na, nt)
        bit_weights = _U64(1) << (_U64(nt - 1)
                                  - np.arange(nt, dtype=_U64))
        out_words = (hits.astype(_U64) * bit_weights).sum(
            axis=1, dtype=_U64)
        trow = A2.tile_majoridx()[active]
        new_words = out_words & ~m.words[trow]
        np.bitwise_or.at(y.words, trow, new_words)

        counters.coalesced_read_bytes += n_active * nt * 8.0  # tile words
        counters.word_ops += n_active * nt * 2.0              # and + test
        counters.l2_read_bytes += n_active * 8.0              # mask word
        counters.atomic_ops += 2.0 * n_active
        counters.random_write_count += float(n_active)

    # one warp per row tile (long row tiles are split across warps for
    # load balance — §3.4 —, modelled as extra warps, no extra work)
    tiles_per_row = np.diff(A2.tile_ptr)
    counters.warps = float((np.ceil(tiles_per_row / 32.0)).sum())
    counters.divergence = max(1.0 / 32.0,
                              min(1.0, n_active / max(1, n_tiles)))
    counters.check()
    return y, counters


def reference_pull_csc_kernel(A1: BitTiledMatrix, x: BitVector, m: BitVector
                              ) -> Tuple[BitVector, KernelCounters]:
    """Seed K3 (Alg. 7): per-unvisited-vertex index expansion via
    ``np.repeat``."""
    _check_operands(A1, x, m, "csc", "pull_csc")
    nt = A1.nt
    y = BitVector.zeros(m.n, nt)
    counters = KernelCounters(launches=1)

    unvisited = m.invert().to_indices()
    counters.coalesced_read_bytes += len(m.words) * 8.0  # scan mask words
    if len(unvisited) == 0:
        counters.warps = 1.0
        return y, counters

    jt = unvisited // nt
    lc = unvisited % nt
    lengths = A1.tile_ptr[jt + 1] - A1.tile_ptr[jt]
    gathered = concat_ranges(A1.tile_ptr[jt], lengths)
    lc_rep = np.repeat(lc, lengths)
    vertex_of = np.repeat(np.arange(len(unvisited)), lengths)

    if len(gathered):
        col_words = A1.words[gathered, lc_rep]
        parents_visited = (col_words
                           & m.words[A1.tile_otheridx[gathered]]) != 0
        found = np.zeros(len(unvisited), dtype=bool)
        np.logical_or.at(found, vertex_of, parents_visited)
        y.set_indices(unvisited[found])

        # early exit: a vertex's warp stops scanning at its first hit.
        # Charge, per vertex, the tiles up to and including that hit
        # (all of them when no parent is visited yet).
        scanned = _reference_tiles_scanned_until_hit(
            parents_visited, vertex_of, len(unvisited), lengths)
        counters.random_read_count += float(scanned)   # A1 words
        counters.l2_read_bytes += float(scanned) * 8.0  # mask words
        counters.word_ops += float(scanned) * 3.0
        counters.atomic_ops += float(found.sum())       # flag OR (Alg.7 l.9)
        counters.random_write_count += float(found.sum())

    counters.l2_read_bytes += len(unvisited) * 16.0     # tile_ptr lookups
    counters.warps = max(1.0, len(unvisited) / 32.0)
    counters.check()
    return y, counters


def _reference_tiles_scanned_until_hit(hit: np.ndarray, vertex_of: np.ndarray,
                                       n_vertices: int, lengths: np.ndarray
                                       ) -> int:
    """Total tiles examined across vertices given per-(vertex, tile) hit
    flags in scan order, with per-vertex early exit at the first hit.

    A vertex whose scan hits at position ``p`` examines ``p + 1`` tiles;
    a vertex with no hit examines all ``lengths[v]`` of them.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if len(hit) == 0:
        return int(lengths.sum())
    seg_start = np.repeat(
        np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths)
    pos = np.arange(len(vertex_of), dtype=np.int64) - seg_start
    sentinel = np.iinfo(np.int64).max
    first_hit = np.full(n_vertices, sentinel, dtype=np.int64)
    hit_idx = np.flatnonzero(hit)
    if len(hit_idx):
        np.minimum.at(first_hit, vertex_of[hit_idx], pos[hit_idx])
    scanned = np.where(first_hit < sentinel, first_hit + 1, lengths)
    return int(scanned.sum())


def reference_msbfs_expand(csc, frontier: np.ndarray
                           ) -> Tuple[np.ndarray, int, int]:
    """Seed MS-BFS frontier expansion: gather the out-edges of every
    vertex with a non-empty frontier word, then ``np.bitwise_or.at``
    their words into the destinations.

    Returns ``(next_words, n_active, n_edges)`` exactly as the seed
    ``MultiSourceBFS.run`` inner loop computed them.
    """
    active = np.flatnonzero(frontier)
    lengths = csc.indptr[active + 1] - csc.indptr[active]
    gather = concat_ranges(csc.indptr[active], lengths)
    dst = csc.indices[gather]
    contrib = np.repeat(frontier[active], lengths)
    next_words = np.zeros(len(frontier), dtype=_U64)
    if len(dst):
        np.bitwise_or.at(next_words, dst, contrib)
    return next_words, len(active), len(dst)
