"""TileSpMSpV — the paper's primary contribution (§3.3).

Usage mirrors the paper's pipeline: *preprocess once* (tile the matrix,
optionally extracting very sparse tiles into a COO side matrix), then
*multiply many times* against sparse vectors of any sparsity::

    op = TileSpMSpV(matrix, nt=16)        # preprocessing (Fig. 11 cost)
    y  = op.multiply(x)                   # y = A @ x, sparse in sparse out

Every multiply runs the row-tile warp kernel of Algorithm 4 over the
tiled part and the per-entry kernel over the extracted COO part, and —
when a :class:`~repro.gpusim.Device` is attached — submits priced
launch records so benchmarks can read simulated GPU time.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ShapeError, TileError
from ..formats.base import SparseMatrix
from ..formats.coo import COOMatrix
from ..gpusim import Device, KernelCounters
from ..runtime import (ExecutionContext, OperatorPlan, PlanCache,
                       default_plan_cache, matrix_token)
from ..semiring import PLUS_TIMES, Semiring
from ..tiles.extraction import (HybridTiledMatrix, IndexedSideMatrix,
                                 split_very_sparse_tiles)
from ..tiles.tiled_matrix import TiledMatrix
from ..tiles.tiled_vector import SUPPORTED_TILE_SIZES, TiledVector
from ..vectors.sparse_vector import SparseVector
from .spmspv_kernels import coo_side_kernel, csc_tiled_kernel, tiled_kernel

__all__ = ["TileSpMSpV", "tile_spmspv", "as_tiled_vector",
           "apply_output_mask"]

VectorLike = Union[SparseVector, TiledVector, np.ndarray]

# launch names precomputed per kernel form — the multiply path must not
# build format strings per call (cheap-when-off tracing)
_MULTIPLY_LAUNCH_NAMES = {"csr": "tile_spmspv_csr",
                          "csc": "tile_spmspv_csc"}


def as_tiled_vector(x: VectorLike, nt: int, fill: float,
                    dtype=None) -> TiledVector:
    """Coerce any accepted vector form into a :class:`TiledVector`.

    ``fill`` is the semiring's additive identity (the "no entry"
    sentinel of unoccupied tile slots) and ``dtype`` the semiring's
    computation dtype — integer algebras (``or_and`` bitmasks) must
    not round-trip through float64.  Shared by every operator that
    feeds the tiled kernels — :class:`TileSpMSpV` and the batched
    engine in :mod:`repro.core.batched`.
    """
    if isinstance(x, TiledVector):
        if x.nt != nt:
            raise ShapeError(
                f"vector tile size {x.nt} != matrix tile size {nt}"
            )
        return x
    if isinstance(x, SparseVector):
        return TiledVector.from_sparse(x.indices, x.values, x.n, nt,
                                       fill=fill, dtype=dtype)
    return TiledVector.from_dense(np.asarray(x), nt, fill=fill,
                                  dtype=dtype)


class TileSpMSpV:
    """Prepared TileSpMSpV operator for one sparse matrix.

    Parameters
    ----------
    matrix:
        Any library sparse matrix (or an already-built
        :class:`~repro.tiles.extraction.HybridTiledMatrix` /
        :class:`~repro.tiles.tiled_matrix.TiledMatrix`).
    nt:
        Tile size (16/32/64 per the paper; small powers of two are also
        accepted for testing).  Default 16, the paper's SpMSpV choice.
    extract_threshold:
        Tiles with at most this many nonzeros are extracted into the
        COO side matrix (0 disables extraction).  Paper §3.2.1.
    semiring:
        The ``(add, mul)`` algebra; default ordinary ``(+, *)``.
    device:
        Optional simulated GPU receiving priced launch records.
    mode:
        Which tiled kernel executes a multiply (paper §3.2.3 defines
        both forms):

        * ``"csr"`` (default) — the row-tile kernel of Alg. 4
          (matrix-driven, scans tile metadata, no atomics);
        * ``"csc"`` — the vector-driven column form (touches only
          active tile columns, merges with atomics);
        * ``"adaptive"`` — pick per multiply by the input's non-empty
          tile fraction (below ``adaptive_threshold`` → csc), the
          strategy of Li et al. the paper's related work discusses.
    adaptive_threshold:
        Active-tile-column fraction below which adaptive mode selects
        the CSC form.
    """

    def __init__(self, matrix, nt: int = 16, extract_threshold: int = 2,
                 semiring: Semiring = PLUS_TIMES,
                 device: Optional[Device] = None,
                 mode: str = "csr",
                 adaptive_threshold: float = 0.02,
                 plan_cache: Optional[PlanCache] = None,
                 parallel=None):
        if nt not in SUPPORTED_TILE_SIZES:
            raise TileError(
                f"unsupported tile size {nt}; allowed: {SUPPORTED_TILE_SIZES}"
            )
        if mode not in ("csr", "csc", "adaptive"):
            raise TileError(f"unknown SpMSpV mode {mode!r}; "
                            "expected csr / csc / adaptive")
        if not (0.0 <= adaptive_threshold <= 1.0):
            raise TileError("adaptive_threshold must be in [0, 1]")
        self.semiring = semiring
        self.mode = mode
        self.adaptive_threshold = float(adaptive_threshold)
        self.ctx = ExecutionContext.wrap(device, operator="tilespmspv")
        # deferred import: repro.shards imports this module for the
        # shared vector coercion / mask helpers
        from ..shards.sharded_matrix import ShardedTiledMatrix
        if isinstance(matrix, ShardedTiledMatrix):
            from ..shards.engine import ShardedSpMSpV
            # out-of-core path: the engine owns scheduling, streaming
            # and per-shard plans; this operator is a thin front.  The
            # sharded matrix's own tiling parameters win over the
            # constructor defaults, as with a prebuilt TiledMatrix.
            self._sharded: Optional[ShardedSpMSpV] = ShardedSpMSpV(
                matrix, semiring=semiring, device=self.ctx,
                plan_cache=plan_cache, parallel=parallel)
            self._plan = None
            self.hybrid = None
            self._side_index = None
            return
        self._sharded = None
        if isinstance(matrix, HybridTiledMatrix):
            # preprocessing already done by the caller: private plan
            self._plan = _spmspv_plan(matrix)
        elif isinstance(matrix, TiledMatrix):
            self._plan = _spmspv_plan(HybridTiledMatrix(
                tiled=matrix,
                side=COOMatrix.empty(matrix.shape),
                threshold=0,
            ))
        else:
            cache = plan_cache if plan_cache is not None \
                else default_plan_cache()
            key = ("tilespmspv", matrix_token(matrix), nt,
                   extract_threshold, semiring, mode)
            self._plan = cache.get_or_build(
                key,
                lambda: _build_spmspv_plan(matrix, nt, extract_threshold,
                                           key),
                pin=matrix)
        self.hybrid = self._plan.data["hybrid"]
        self._side_index = self._plan.data["side_index"]
        if self.hybrid.nt != nt and not isinstance(
                matrix, (HybridTiledMatrix, TiledMatrix)):
            raise TileError("internal: tile size mismatch")  # pragma: no cover

    # ------------------------------------------------------------------
    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("tilespmspv")
        else:
            self.ctx.device = device
        if self._sharded is not None:
            self._sharded.device = device

    @property
    def shape(self):
        if self._sharded is not None:
            return self._sharded.shape
        return self.hybrid.shape

    @property
    def nt(self) -> int:
        if self._sharded is not None:
            return self._sharded.nt
        return self.hybrid.nt

    @property
    def nnz(self) -> int:
        if self._sharded is not None:
            return self._sharded.nnz
        return self.hybrid.nnz

    # ------------------------------------------------------------------
    def _as_tiled_vector(self, x: VectorLike) -> TiledVector:
        return as_tiled_vector(x, self.nt,
                               float(self.semiring.add_identity),
                               dtype=self.semiring.dtype)

    def _transposed(self) -> TiledMatrix:
        """The CSC-of-tiles view: the tiling of A^T (built lazily,
        cached on the plan — a second preprocessing pass, like the
        paper's A1/A2 pair for BFS — so every operator sharing the plan
        reuses it)."""
        return self._plan.lazy_get(
            "transposed",
            lambda: _warm_active_set(TiledMatrix.from_coo(
                self.hybrid.tiled.to_coo().transpose(), self.nt)))

    @property
    def _transposed_tiled(self) -> Optional[TiledMatrix]:
        """The transposed tiling if already built (None before the
        first CSC-form multiply)."""
        return self._plan.lazy.get("transposed")

    @property
    def _transposed_full_tiled(self) -> Optional[TiledMatrix]:
        """The full-A^T tiling if already built (None before the first
        transpose multiply)."""
        return self._plan.lazy.get("transposed_full")

    def _pick_kernel(self, xt: TiledVector) -> str:
        if self.mode != "adaptive":
            return self.mode
        active_fraction = (xt.n_nonempty_tiles / max(1, xt.n_tiles))
        return "csc" if active_fraction < self.adaptive_threshold \
            else "csr"

    def multiply(self, x: VectorLike,
                 output: str = "sparse",
                 mask: Optional[VectorLike] = None,
                 mask_complement: bool = False,
                 ) -> Union[SparseVector, TiledVector, np.ndarray]:
        """Compute ``y = A x`` (optionally masked).

        Parameters
        ----------
        x:
            Sparse, tiled, or dense input vector of length
            ``A.shape[1]``.
        output:
            ``"sparse"`` (default) → :class:`SparseVector`;
            ``"tiled"`` → :class:`TiledVector`;
            ``"dense"`` → dense ndarray with the semiring's additive
            identity in empty positions.
        mask:
            Optional GraphBLAS-style output mask (any vector form of
            length ``A.shape[0]``): positions where the mask holds no
            entry are forced to the additive identity.  With
            ``mask_complement=True`` the kept positions are inverted —
            exactly the ``y & ~visited`` filter of the paper's BFS.
        mask_complement:
            Invert the mask's keep-set.
        """
        if output not in ("sparse", "tiled", "dense"):
            raise ShapeError(f"unknown output mode {output!r}")
        if self._sharded is not None:
            return self._sharded.multiply(x, output=output, mask=mask,
                                          mask_complement=mask_complement)
        xt = self._as_tiled_vector(x)
        if xt.n != self.shape[1]:
            raise ShapeError(
                f"SpMSpV shape mismatch: A is {self.shape}, "
                f"x has length {xt.n}"
            )

        kernel = self._pick_kernel(xt)
        if kernel == "csc":
            fn, mat = csc_tiled_kernel, self._transposed()
        else:
            fn, mat = tiled_kernel, self.hybrid.tiled
        if self.ctx.active:
            # modeled, device attached: price the launch inline
            y_dense, counters = fn(mat, xt, semiring=self.semiring)
            self.ctx.launch(_MULTIPLY_LAUNCH_NAMES[kernel], counters,
                            phase="multiply")
        else:
            # accounting compiles out of the multiply; production mode
            # replays it later by re-running the kernel counters-on
            # (fresh accumulator — counters don't depend on it)
            y_dense, _ = fn(mat, xt, semiring=self.semiring,
                            with_counters=False)
            if self.ctx.production:
                self.ctx.defer(
                    _MULTIPLY_LAUNCH_NAMES[kernel],
                    lambda: fn(mat, xt, semiring=self.semiring)[1],
                    phase="multiply")
        if self.hybrid.side.nnz:
            if self.ctx.active:
                y_dense, side_counters = coo_side_kernel(
                    self._side_index, xt, semiring=self.semiring,
                    y_dense=y_dense)
                self.ctx.launch("tile_spmspv_coo_side", side_counters,
                                phase="multiply")
            else:
                y_dense, _ = coo_side_kernel(
                    self._side_index, xt, semiring=self.semiring,
                    y_dense=y_dense, with_counters=False)
                if self.ctx.production:
                    self.ctx.defer(
                        "tile_spmspv_coo_side",
                        lambda: coo_side_kernel(
                            self._side_index, xt,
                            semiring=self.semiring)[1],
                        phase="multiply")

        if mask is not None:
            y_dense = self._apply_mask(y_dense, mask, mask_complement)

        if output == "dense":
            return y_dense
        occupied = ~self.semiring.is_identity(y_dense)
        idx = np.flatnonzero(occupied)
        sv = SparseVector(self.shape[0], idx, y_dense[idx])
        if output == "sparse":
            return sv
        return TiledVector.from_sparse(
            sv.indices, sv.values, sv.n, self.nt,
            fill=float(self.semiring.add_identity),
            dtype=self.semiring.dtype)

    def multiply_transpose(self, x: VectorLike,
                           output: str = "sparse"
                           ) -> Union[SparseVector, TiledVector,
                                      np.ndarray]:
        """Compute ``y = A^T x`` without building a second operator.

        Reuses the lazily built transposed tiling (the same structure
        the CSC-form kernel works on) with the row-tile kernel.  Note
        the extraction side matrix is folded into the transposed tiling
        here, so the whole matrix participates.  Needed by directed
        Brandes sweeps and adjoint iterations.
        """
        if output not in ("sparse", "tiled", "dense"):
            raise ShapeError(f"unknown output mode {output!r}")
        if self._sharded is not None:
            raise TileError(
                "transpose multiply is not supported over a sharded "
                "matrix (row strips do not partition A^T by rows)"
            )
        At = self._transposed_full()
        fill = float(self.semiring.add_identity)
        xt = as_tiled_vector(x, self.nt, fill, dtype=self.semiring.dtype)
        if xt.n != self.shape[0]:
            raise ShapeError(
                f"transpose SpMSpV shape mismatch: A^T is "
                f"{(self.shape[1], self.shape[0])}, x has length {xt.n}"
            )
        y_dense, counters = tiled_kernel(At, xt, semiring=self.semiring)
        self.ctx.launch("tile_spmspv_transpose", counters,
                        phase="multiply")
        if output == "dense":
            return y_dense
        occupied = ~self.semiring.is_identity(y_dense)
        idx = np.flatnonzero(occupied)
        sv = SparseVector(self.shape[1], idx, y_dense[idx])
        if output == "sparse":
            return sv
        return TiledVector.from_sparse(sv.indices, sv.values, sv.n,
                                       self.nt, fill=fill,
                                       dtype=self.semiring.dtype)

    def _transposed_full(self) -> TiledMatrix:
        """Tiling of the full A^T (tiled part + side matrix), cached on
        the plan."""
        return self._plan.lazy_get(
            "transposed_full",
            lambda: _warm_active_set(TiledMatrix.from_coo(
                self.hybrid.to_coo().transpose(), self.nt)))

    def multiply_batch(self, xs, output: str = "sparse"):
        """Multiply against a batch of vectors in one logical launch.

        The tile-metadata scan is amortised over the batch (see
        :func:`~repro.core.spmspv_kernels.batched_tiled_kernel`) — the
        multi-source pattern of batched BFS / Brandes BC.

        Parameters
        ----------
        xs:
            Sequence of vectors (any form :meth:`multiply` accepts).
        output:
            ``"sparse"`` → list of :class:`SparseVector`;
            ``"dense"`` → one ``(k, m)`` ndarray.
        """
        from .spmspv_kernels import batched_tiled_kernel

        if output not in ("sparse", "dense"):
            raise ShapeError(f"unknown output mode {output!r}")
        if self._sharded is not None:
            return self._sharded.multiply_batch(xs, output=output)
        xts = [self._as_tiled_vector(x) for x in xs]
        Y, counters = batched_tiled_kernel(self.hybrid.tiled, xts,
                                           semiring=self.semiring)
        self.ctx.launch("tile_spmspv_batch", counters, phase="batch")
        if self.hybrid.side.nnz:
            for b, xt in enumerate(xts):
                _, side_counters = coo_side_kernel(
                    self._side_index, xt, semiring=self.semiring,
                    y_dense=Y[b])
                self.ctx.launch("tile_spmspv_coo_side", side_counters,
                                phase="batch")
        if output == "dense":
            return Y
        out = []
        for b in range(Y.shape[0]):
            occupied = ~self.semiring.is_identity(Y[b])
            idx = np.flatnonzero(occupied)
            out.append(SparseVector(self.shape[0], idx, Y[b][idx]))
        return out

    def _apply_mask(self, y_dense: np.ndarray, mask: VectorLike,
                    complement: bool) -> np.ndarray:
        """Force non-kept positions of ``y`` to the additive identity."""
        return apply_output_mask(y_dense, mask, complement,
                                 self.semiring, self.ctx)

    def flops_useful(self, x: VectorLike) -> int:
        """Number of useful multiply-adds for this input (2 * matched
        nonzeros) — the numerator of the paper's GFlops metric."""
        xt = self._as_tiled_vector(x)
        dense_x = xt.to_dense()
        if np.isinf(self.semiring.add_identity):
            mask = ~np.isinf(dense_x)
        else:
            mask = dense_x != self.semiring.add_identity
        coo = (self._sharded.matrix.to_coo() if self._sharded is not None
               else self.hybrid.to_coo())
        return int(2 * np.count_nonzero(mask[coo.col]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._sharded is not None:
            return (f"<TileSpMSpV {self.shape} nt={self.nt} "
                    f"shards={self._sharded.matrix.n_shards}>")
        return (f"<TileSpMSpV {self.shape} nt={self.nt} "
                f"tiles={self.hybrid.tiled.n_nonempty_tiles} "
                f"side_nnz={self.hybrid.side.nnz}>")


def apply_output_mask(y_dense: np.ndarray, mask: VectorLike,
                      complement: bool, semiring: Semiring,
                      ctx: ExecutionContext) -> np.ndarray:
    """Force non-kept positions of a dense result to the additive
    identity (the GraphBLAS output mask).  Shared by every operator
    with dense accumulators — :class:`TileSpMSpV` and the sharded
    engine in :mod:`repro.shards.engine` — so masked semantics cannot
    drift between the in-core and out-of-core paths."""
    n_out = y_dense.shape[0]
    if isinstance(mask, SparseVector):
        if mask.n != n_out:
            raise ShapeError(
                f"mask length {mask.n} != output length {n_out}"
            )
        keep = np.zeros(n_out, dtype=bool)
        keep[mask.indices] = True
    elif isinstance(mask, TiledVector):
        if mask.n != n_out:
            raise ShapeError(
                f"mask length {mask.n} != output length {n_out}"
            )
        dense = mask.to_dense()
        if np.isnan(mask.fill):  # pragma: no cover - defensive
            keep = ~np.isnan(dense)
        else:
            keep = dense != mask.fill
    else:
        m = np.asarray(mask)
        if m.shape != (n_out,):
            raise ShapeError(
                f"mask shape {m.shape} != ({n_out},)"
            )
        keep = m.astype(bool)
    if complement:
        keep = ~keep
    y_dense = y_dense.copy()
    y_dense[~keep] = semiring.add_identity
    if ctx.accounting:
        # counters are analytic in n_out, so building them eagerly is
        # fine even in production (launch auto-defers the record)
        c = KernelCounters(launches=1)
        c.coalesced_read_bytes += n_out / 8.0   # mask bits
        c.coalesced_write_bytes += n_out * 8.0
        c.warps = max(1.0, n_out / (32.0 * 32.0))
        ctx.launch("tile_spmspv_mask", c, phase="mask")
    return y_dense


def _warm_active_set(tiled: TiledMatrix) -> TiledMatrix:
    """Build the active-set execution caches of a tiling eagerly.

    Everything here is cached on the matrix and only depends on its
    immutable structure; building it at plan time keeps the first
    multiply as cheap as the steady state (and, via the plan cache,
    amortises the cost across every operator sharing the plan).
    """
    tiled.column_gather()
    tiled.entry_rows()
    tiled.entry_cols()
    tiled.local_row64()
    tiled.local_col64()
    tiled.tile_nnz()
    tiled.n_occupied_tile_rows()
    return tiled


def _spmspv_plan(hybrid: HybridTiledMatrix, key=()) -> OperatorPlan:
    """A TileSpMSpV plan from a built hybrid tiling: the side triplets
    are indexed by column tile once, so every multiply skips inactive
    side columns just like the tiled kernel does."""
    side_index = (IndexedSideMatrix.from_coo(hybrid.side, hybrid.nt)
                  if hybrid.side.nnz else None)
    if side_index is not None:
        side_index.nonempty_coltiles()
        side_index.n_index_tiles()
    plan = OperatorPlan(kind="tilespmspv", key=tuple(key),
                        data={"hybrid": hybrid,
                              "side_index": side_index})
    plan.warm(col_gather=lambda: _warm_active_set(hybrid.tiled)
              .column_gather())
    return plan


def _build_spmspv_plan(matrix, nt: int, extract_threshold: int,
                       key) -> OperatorPlan:
    """Full Fig. 11 preprocessing: COO conversion, tiling, and
    very-sparse-tile extraction (the cache-miss path)."""
    if isinstance(matrix, SparseMatrix):
        coo = matrix.to_coo()
    else:
        coo = COOMatrix.from_dense(np.asarray(matrix))
    hybrid = split_very_sparse_tiles(coo, nt,
                                     threshold=extract_threshold)
    return _spmspv_plan(hybrid, key=key)


def tile_spmspv(matrix, x: VectorLike, nt: int = 16,
                extract_threshold: int = 2,
                semiring: Semiring = PLUS_TIMES,
                device: Optional[Device] = None,
                output: str = "sparse"):
    """One-shot convenience wrapper: prepare + multiply.

    For repeated multiplies against the same matrix, build a
    :class:`TileSpMSpV` once instead (preprocessing is the expensive
    part; see the Figure-11 benchmark).
    """
    op = TileSpMSpV(matrix, nt=nt, extract_threshold=extract_threshold,
                    semiring=semiring, device=device)
    return op.multiply(x, output=output)
