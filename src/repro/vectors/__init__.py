"""Sparse vectors: the plain (indices, values) form and its generators.

The tiled counterpart lives in :mod:`repro.tiles.tiled_vector`; the two
convert via :meth:`SparseVector.to_tiled` / :meth:`SparseVector.from_tiled`.
"""

from .dense_block import DenseBlock
from .generate import (PAPER_SEED, PAPER_SPARSITIES, frontier_vector,
                       random_sparse_vector)
from .sparse_vector import SparseVector

__all__ = [
    "SparseVector", "DenseBlock", "random_sparse_vector",
    "frontier_vector", "PAPER_SPARSITIES", "PAPER_SEED",
]
