"""Dense vector block: B column vectors in one row-major, nt-aligned
array (the SpMM operand).

Where :class:`~repro.tiles.tiled_vector.TiledVector` compacts one
sparse vector into non-empty tiles, a :class:`DenseBlock` keeps ``B``
columns dense: the SpMM regime (B = 32-512 personalization vectors,
label/feature columns) activates essentially every tile column, so
tile skipping buys nothing and the win moves to row-major blocking —
one nonzero of ``A`` multiplies a whole contiguous ``B``-wide row of
the block (see "Design Principles for Sparse Matrix Multiplication on
the GPU", Yang/Buluc/Owens).

The storage is a C-contiguous ``(ceil(n / nt) * nt, B)`` array: rows
are padded to a whole number of tiles so a kernel can stage tile-row
segments without bounds checks, and the padding rows (and the empty
slots of real rows) hold ``fill`` — the additive identity of the
semiring in use, exactly like the tiled vector's sentinel.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._util import ceil_div
from ..errors import ShapeError, TileError
from ..tiles.tiled_vector import SUPPORTED_TILE_SIZES
from .sparse_vector import SparseVector

__all__ = ["DenseBlock"]


class DenseBlock:
    """``B`` dense column vectors of length ``n`` in one nt-aligned,
    row-major array.

    Attributes
    ----------
    n:
        Logical length of every column.
    nt:
        Tile size the row padding is aligned to.
    fill:
        The "no entry" sentinel stored in padding rows (the semiring's
        additive identity; 0.0 for ordinary algebra).
    data:
        C-contiguous ``(ceil(n / nt) * nt, B)`` array; ``data[i, j]``
        is element ``i`` of column ``j`` for ``i < n``.
    """

    def __init__(self, n: int, nt: int, data: np.ndarray,
                 fill: float = 0.0):
        if nt not in SUPPORTED_TILE_SIZES:
            raise TileError(
                f"unsupported tile size {nt}; allowed: {SUPPORTED_TILE_SIZES}"
            )
        if n < 0:
            raise ShapeError(f"negative vector length {n}")
        self.n = int(n)
        self.nt = int(nt)
        self.fill = float(fill)
        self.data = np.ascontiguousarray(data)
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every structural invariant of the layout."""
        if self.data.ndim != 2:
            raise ShapeError(
                f"expected 2-D block data, got ndim={self.data.ndim}"
            )
        rows = ceil_div(self.n, self.nt) * self.nt
        if self.data.shape[0] != rows:
            raise TileError(
                f"block data has {self.data.shape[0]} rows, expected "
                f"{rows} (n={self.n} padded to nt={self.nt})"
            )
        if self.data.shape[1] < 1:
            raise ShapeError("a DenseBlock needs at least one column")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, X: np.ndarray, nt: int, fill: float = 0.0,
                   dtype=None) -> "DenseBlock":
        """Wrap a dense ``(n, B)`` array, padding rows to the tile size.

        ``fill`` is the sentinel written into the padding rows; pass the
        semiring's additive identity (``inf`` for min-plus).  ``dtype``
        overrides the storage dtype — pass the semiring dtype so integer
        algebras (``or_and`` bitmasks) are not squeezed through float64.
        """
        X = np.asarray(X)
        if X.ndim == 1:
            X = X[:, None]
        if X.ndim != 2:
            raise ShapeError(f"expected 2-D block, got ndim={X.ndim}")
        n = X.shape[0]
        if dtype is None:
            dtype = X.dtype if X.dtype.kind == "f" else np.float64
        rows = ceil_div(n, nt) * nt
        data = np.full((rows, X.shape[1]), fill, dtype=dtype)
        data[:n] = X
        if not np.isnan(fill):
            # slots holding the sentinel *value* are the sentinel:
            # normalise them to its exact bits (-0.0 → +0.0 for the
            # default fill), so a block round-trips through the sparse
            # form bit-identically — the column-slice equivalence
            # depends on this
            data[data == fill] = fill
        return cls(n, nt, data, fill=fill)

    @classmethod
    def from_sparse_vectors(cls, vectors: Sequence, nt: int,
                            fill: float = 0.0, dtype=None,
                            n: Optional[int] = None) -> "DenseBlock":
        """Densify ``B`` sparse vectors into the block's columns.

        Column ``j`` is assembled exactly the way
        :meth:`~repro.tiles.tiled_vector.TiledVector.from_sparse`
        assembles a tile payload — sentinel reset followed by an
        accumulating scatter — so a block built from the same vectors a
        batched SpMSpV consumes holds bit-identical values.
        """
        if len(vectors) == 0:
            raise ShapeError("a DenseBlock needs at least one column")
        if dtype is None:
            dtype = np.float64
        if n is None:
            n = int(vectors[0].n)
        rows = ceil_div(n, nt) * nt
        data = np.full((rows, len(vectors)), fill, dtype=dtype)
        for j, v in enumerate(vectors):
            if v.n != n:
                raise ShapeError(
                    f"column {j} has length {v.n}, expected {n}"
                )
            idx = np.asarray(v.indices, dtype=np.int64)
            if len(idx):
                data[idx, j] = 0  # reset sentinel before accumulating
                np.add.at(data[:, j], idx,
                          np.asarray(v.values).astype(dtype, copy=False))
        return cls(n, nt, data, fill=fill)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def B(self) -> int:
        """Number of columns in the block."""
        return int(self.data.shape[1])

    @property
    def n_tiles(self) -> int:
        """Number of nt-sized row tiles (all materialised)."""
        return ceil_div(self.n, self.nt)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def column(self, j: int) -> np.ndarray:
        """Dense column ``j`` (length ``n``, padding stripped)."""
        if not (0 <= j < self.B):
            raise ShapeError(f"column {j} out of range for B={self.B}")
        return self.data[: self.n, j].copy()

    def column_sparse(self, j: int) -> SparseVector:
        """Column ``j`` as a :class:`SparseVector` (fill entries
        dropped) — the operand a single-vector SpMSpV consumes in the
        column-slice equivalence checks."""
        col = self.data[: self.n, j]
        if np.isnan(self.fill):  # pragma: no cover - defensive
            idx = np.flatnonzero(~np.isnan(col))
        else:
            idx = np.flatnonzero(col != self.fill)
        return SparseVector(self.n, idx, col[idx].copy())

    def to_dense(self) -> np.ndarray:
        """The ``(n, B)`` array (padding rows stripped)."""
        return self.data[: self.n].copy()

    def nbytes(self) -> int:
        """Storage footprint of the padded block."""
        return self.data.nbytes

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<DenseBlock n={self.n} B={self.B} nt={self.nt} "
                f"dtype={self.data.dtype}>")
