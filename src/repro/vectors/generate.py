"""Sparse input-vector generators used by the evaluation.

The paper (§4.2) benchmarks SpMSpV at vector sparsities 0.1, 0.01,
0.001 and 0.0001, with "vectors with different sparsity generated
randomly with random seed 1" so the experiment is reproducible; these
helpers implement exactly that protocol.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ShapeError
from .sparse_vector import SparseVector

__all__ = ["random_sparse_vector", "PAPER_SPARSITIES", "PAPER_SEED",
           "frontier_vector"]

#: The four vector sparsities of Figure 6.
PAPER_SPARSITIES: Sequence[float] = (0.1, 0.01, 0.001, 0.0001)

#: "generated randomly with random seeds 1" (paper §4.2).
PAPER_SEED = 1


def random_sparse_vector(n: int, sparsity: float,
                         seed: int = PAPER_SEED) -> SparseVector:
    """A random sparse vector with ``round(n * sparsity)`` nonzeros.

    At least one nonzero is kept for any positive sparsity so every
    benchmark actually exercises the kernels (a matrix times an empty
    vector is trivially empty).  Values are uniform in (0, 1].

    Parameters
    ----------
    n:
        Vector length (matrix column count).
    sparsity:
        Target nnz / n in [0, 1].
    seed:
        RNG seed; the paper's experiments use 1.
    """
    if not (0.0 <= sparsity <= 1.0):
        raise ShapeError(f"sparsity must be in [0, 1], got {sparsity}")
    if n < 0:
        raise ShapeError(f"negative vector length {n}")
    k = int(round(n * sparsity))
    if sparsity > 0.0 and k == 0 and n > 0:
        k = 1
    if k == 0:
        return SparseVector.empty(n)
    rng = np.random.default_rng(seed)
    indices = np.sort(rng.choice(n, size=k, replace=False))
    values = 1.0 - rng.random(k)  # in (0, 1], never an explicit zero
    return SparseVector(n, indices, values)


def frontier_vector(n: int, sources: Sequence[int]) -> SparseVector:
    """A unit frontier vector (the BFS seed ``x`` with ones at the
    source vertices)."""
    idx = np.unique(np.asarray(sources, dtype=np.int64))
    if len(idx) and (idx.min() < 0 or idx.max() >= n):
        raise ShapeError(f"source vertex out of range for n={n}")
    return SparseVector(n, idx, np.ones(len(idx), dtype=np.float64))
