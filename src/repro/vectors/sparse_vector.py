"""Plain sparse vector: sorted ``(indices, values)`` pairs.

This is the format-neutral sparse vector the baselines (Algorithms 1-2,
CombBLAS bucket) consume and that all SpMSpV entry points return;
:class:`~repro.tiles.tiled_vector.TiledVector` is its tiled counterpart
and the two convert both ways.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..errors import ShapeError
from ..tiles.tiled_vector import TiledVector

__all__ = ["SparseVector"]


@dataclass
class SparseVector:
    """A length-``n`` sparse vector with sorted unique indices.

    Attributes
    ----------
    n:
        Logical length.
    indices:
        ``int64`` sorted, unique positions of the stored entries.
    values:
        values parallel to ``indices``.
    """

    n: int
    indices: np.ndarray
    values: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        if self.values is None:
            self.values = np.ones(len(self.indices), dtype=np.float64)
        self.values = np.ascontiguousarray(self.values)
        if len(self.indices) != len(self.values):
            raise ShapeError("indices/values length mismatch")
        if len(self.indices):
            if self.indices.min() < 0 or self.indices.max() >= self.n:
                raise ShapeError(
                    f"vector index out of range for length {self.n}"
                )
            if np.any(np.diff(self.indices) <= 0):
                order = np.argsort(self.indices)
                self.indices = self.indices[order]
                self.values = self.values[order]
                if np.any(np.diff(self.indices) == 0):
                    raise ShapeError("duplicate indices in SparseVector")

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def sparsity(self) -> float:
        """``nnz / n`` — the paper's vector-sparsity parameter."""
        return self.nnz / self.n if self.n else 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, x: np.ndarray) -> "SparseVector":
        x = np.asarray(x)
        if x.ndim != 1:
            raise ShapeError(f"expected 1-D vector, got ndim={x.ndim}")
        idx = np.flatnonzero(x)
        return cls(len(x), idx, x[idx])

    @classmethod
    def empty(cls, n: int) -> "SparseVector":
        return cls(n, np.zeros(0, dtype=np.int64),
                   np.zeros(0, dtype=np.float64))

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.n, dtype=self.values.dtype
                       if len(self.values) else np.float64)
        out[self.indices] = self.values
        return out

    def to_tiled(self, nt: int) -> TiledVector:
        """Convert to the paper's tiled layout."""
        return TiledVector.from_sparse(self.indices, self.values, self.n, nt)

    @classmethod
    def from_tiled(cls, tv: TiledVector) -> "SparseVector":
        idx, vals = tv.to_sparse()
        return cls(tv.n, idx, vals)

    def drop_zeros(self) -> "SparseVector":
        """Remove stored entries whose value is exactly zero."""
        keep = self.values != 0
        return SparseVector(self.n, self.indices[keep], self.values[keep])

    def as_pair(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.indices, self.values

    # ------------------------------------------------------------------
    # Element-wise algebra (GraphBLAS eWiseAdd / eWiseMult)
    # ------------------------------------------------------------------
    def ewise_add(self, other: "SparseVector", op=np.add) -> "SparseVector":
        """Union combine: positions present in either vector survive;
        overlapping positions are merged with ``op`` (default ``+``).
        This is GraphBLAS ``eWiseAdd`` — the frontier-merge primitive.
        """
        self._check_same_length(other)
        if self.nnz == 0:
            return SparseVector(self.n, other.indices.copy(),
                                other.values.copy())
        if other.nnz == 0:
            return SparseVector(self.n, self.indices.copy(),
                                self.values.copy())
        idx = np.concatenate([self.indices, other.indices])
        vals = np.concatenate([self.values, other.values])
        order = np.argsort(idx, kind="stable")
        idx, vals = idx[order], vals[order]
        from .._util import group_starts

        starts = group_starts(idx)
        counts = np.diff(np.concatenate([starts, [len(idx)]]))
        out_vals = vals[starts].copy()
        dup = counts == 2
        if dup.any():
            out_vals[dup] = op(vals[starts[dup]], vals[starts[dup] + 1])
        return SparseVector(self.n, idx[starts], out_vals)

    def ewise_mult(self, other: "SparseVector",
                   op=np.multiply) -> "SparseVector":
        """Intersection combine: only positions present in *both*
        vectors survive, merged with ``op`` (default ``*``).  This is
        GraphBLAS ``eWiseMult`` — the masking/filter primitive.
        """
        self._check_same_length(other)
        common, ia, ib = np.intersect1d(self.indices, other.indices,
                                        assume_unique=True,
                                        return_indices=True)
        return SparseVector(self.n, common,
                            op(self.values[ia], other.values[ib]))

    def select(self, keep_mask: np.ndarray) -> "SparseVector":
        """Filter stored entries by a boolean mask over *positions*
        (length ``n``): entries at positions where the mask is False
        are dropped."""
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if keep_mask.shape != (self.n,):
            raise ShapeError(
                f"select mask shape {keep_mask.shape} != ({self.n},)"
            )
        sel = keep_mask[self.indices]
        return SparseVector(self.n, self.indices[sel], self.values[sel])

    def _check_same_length(self, other: "SparseVector") -> None:
        if self.n != other.n:
            raise ShapeError(
                f"vector length mismatch: {self.n} vs {other.n}"
            )

    def __len__(self) -> int:
        return self.n
