"""Synthetic matrix generators and the curated collection.

Stand-in for the SuiteSparse Matrix Collection the paper evaluates on
(DESIGN.md §1).  Real Matrix Market files can be mixed in via
:func:`repro.formats.read_matrix_market`.
"""

from .collection import (ENTERPRISE_6, REPRESENTATIVE_12, CollectionEntry,
                         all_entries, entry, get_matrix, sweep_entries)
from .generators import (banded, block_diagonal, erdos_renyi, fem_like,
                         mesh2d, mesh3d, random_rectangular, rmat,
                         road_network)

__all__ = [
    "banded", "mesh2d", "mesh3d", "fem_like", "block_diagonal",
    "rmat", "erdos_renyi", "road_network", "random_rectangular",
    "CollectionEntry", "REPRESENTATIVE_12", "ENTERPRISE_6",
    "entry", "get_matrix", "sweep_entries", "all_entries",
]
