"""Synthetic sparse matrix / graph generators.

The paper evaluates on all 2757 SuiteSparse matrices; this module
provides generators for the structural classes that collection spans
(DESIGN.md §1), so the benchmark sweep exercises the same regimes:

* **FEM / structured** (``fem_like``, ``banded``, ``mesh2d``,
  ``mesh3d``, ``block_diagonal``) — clustered nonzeros, dense tiles;
  the regime where tiling shines ('ldoor', 'af_5_k101', ...).
* **Power-law graphs** (``rmat``) — web/social networks ('in-2004');
  skewed degrees, moderate tile density.
* **Road networks** (``road_network``) — huge diameter, degree ~2.5,
  hypersparse tiles; the regime where the paper itself loses to
  GSwitch ('roadNet-TX').
* **Uniform random** (``erdos_renyi``, ``random_rectangular``) —
  unstructured fillers.

All generators return :class:`~repro.formats.coo.COOMatrix` and are
deterministic given their ``seed``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..formats.coo import COOMatrix

__all__ = [
    "banded", "mesh2d", "mesh3d", "fem_like", "block_diagonal",
    "rmat", "erdos_renyi", "road_network", "random_rectangular",
]


def _finish(shape, rows, cols, rng, symmetric: bool) -> COOMatrix:
    """Dedupe coordinates, optionally symmetrize, then attach random
    values in (0,1] (assigned after dedup so duplicate edges cannot sum
    past 1)."""
    coo = COOMatrix(shape, rows, cols, None).sum_duplicates()
    if symmetric:
        coo = coo.symmetrize()
    coo = coo.sort_rowmajor()
    vals = 1.0 - rng.random(coo.nnz)
    if symmetric and coo.nnz:
        # mirrored entries share one value so the matrix stays
        # numerically symmetric: group by the unordered coordinate pair
        # and broadcast the first value of each group
        from .._util import group_starts

        ck = (np.minimum(coo.row, coo.col) * shape[1]
              + np.maximum(coo.row, coo.col))
        order = np.argsort(ck, kind="stable")
        starts = group_starts(ck[order])
        counts = np.diff(np.concatenate([starts, [coo.nnz]]))
        rep = np.repeat(vals[order][starts], counts)
        vals[order] = rep
    coo.val = vals
    return coo


def banded(n: int, bandwidth: int = 3, extra_bands: int = 1,
           seed: int = 0, symmetric: bool = True) -> COOMatrix:
    """Banded matrix: a dense diagonal band plus ``extra_bands`` far
    off-diagonal bands (the coupling bands of a discretised PDE)."""
    if n <= 0 or bandwidth < 0:
        raise ShapeError(f"invalid banded parameters n={n}, bw={bandwidth}")
    rng = np.random.default_rng(seed)
    i = np.arange(n, dtype=np.int64)
    offsets = list(range(-bandwidth, bandwidth + 1))
    stride = max(2, int(np.sqrt(n)))
    for k in range(1, extra_bands + 1):
        offsets += [-k * stride, k * stride]
    rows, cols = [], []
    for off in offsets:
        j = i + off
        ok = (j >= 0) & (j < n)
        rows.append(i[ok])
        cols.append(j[ok])
    return _finish((n, n), np.concatenate(rows), np.concatenate(cols),
                   rng, symmetric)


def mesh2d(k: int, stencil: int = 5, seed: int = 0) -> COOMatrix:
    """2-D ``k`` x ``k`` grid Laplacian pattern (5- or 9-point stencil).

    Long-diameter, moderately dense tiles — the '333SP'-style regime.
    """
    if stencil not in (5, 9):
        raise ShapeError(f"stencil must be 5 or 9, got {stencil}")
    n = k * k
    ii, jj = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
    v = (ii * k + jj).ravel().astype(np.int64)
    deltas = [(0, 0), (0, 1), (1, 0), (0, -1), (-1, 0)]
    if stencil == 9:
        deltas += [(1, 1), (1, -1), (-1, 1), (-1, -1)]
    rows, cols = [], []
    for di, dj in deltas:
        ni, nj = ii + di, jj + dj
        ok = ((ni >= 0) & (ni < k) & (nj >= 0) & (nj < k)).ravel()
        rows.append(v[ok])
        cols.append((ni * k + nj).ravel()[ok].astype(np.int64))
    rng = np.random.default_rng(seed)
    return _finish((n, n), np.concatenate(rows), np.concatenate(cols),
                   rng, symmetric=False)


def mesh3d(k: int, seed: int = 0) -> COOMatrix:
    """3-D ``k^3`` grid with the 7-point stencil."""
    n = k ** 3
    idx = np.arange(n, dtype=np.int64)
    zi = idx // (k * k)
    yi = (idx // k) % k
    xi = idx % k
    rows, cols = [idx], [idx]
    for axis, coord in (("x", xi), ("y", yi), ("z", zi)):
        stride = {"x": 1, "y": k, "z": k * k}[axis]
        for sgn in (-1, 1):
            ok = (coord + sgn >= 0) & (coord + sgn < k)
            rows.append(idx[ok])
            cols.append(idx[ok] + sgn * stride)
    rng = np.random.default_rng(seed)
    return _finish((n, n), np.concatenate(rows), np.concatenate(cols),
                   rng, symmetric=False)


def fem_like(n: int, nnz_per_row: int = 40, block: int = 8,
             spread: float = 0.02, seed: int = 0) -> COOMatrix:
    """FEM-style matrix: nonzeros cluster in dense blocks near the
    diagonal (nodal blocks of a stiffness matrix).

    Produces the high in-tile density of 'cant' / 'ldoor' /
    'pdb1HYS': entries land on a ``block``-quantised lattice around the
    diagonal with Gaussian spread ``spread * n``, so 16x16 tiles fill
    up instead of scattering.
    """
    if n <= 0 or nnz_per_row <= 0 or block <= 0:
        raise ShapeError("fem_like parameters must be positive")
    rng = np.random.default_rng(seed)
    n_blocks_per_row = max(1, nnz_per_row // block)
    n_row_blocks = max(1, n // block)
    # each row block couples with a few neighbouring row blocks
    rb = np.repeat(np.arange(n_row_blocks, dtype=np.int64),
                   n_blocks_per_row)
    offs = np.rint(rng.normal(0.0, max(1.0, spread * n_row_blocks),
                              size=len(rb))).astype(np.int64)
    cb = np.clip(rb + offs, 0, n_row_blocks - 1)
    # jitter each dense block off the block lattice so tiles are
    # realistically partially filled rather than perfectly aligned
    jr = rng.integers(0, max(1, block // 2), size=len(rb))
    jc = rng.integers(0, max(1, block // 2), size=len(rb))
    # expand each (row block, col block) pair into a dense block
    li = np.arange(block, dtype=np.int64)
    rows = ((rb * block + jr)[:, None] + li[None, :]).repeat(block, axis=1)
    cols = np.tile((cb * block + jc)[:, None] + li[None, :], (1, block))
    rows = rows.ravel()
    cols = cols.ravel()
    ok = (rows < n) & (cols < n)
    return _finish((n, n), rows[ok], cols[ok], rng, symmetric=True)


def block_diagonal(n_blocks: int, block_size: int, density: float = 0.9,
                   seed: int = 0) -> COOMatrix:
    """Block-diagonal matrix of dense blocks — the 'trans5' regime
    (§4.2: "the nonzeros of the calculated matrix are relatively
    concentrated", with a vanishing non-empty tile fraction)."""
    if not (0.0 < density <= 1.0):
        raise ShapeError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    n = n_blocks * block_size
    b = np.repeat(np.arange(n_blocks, dtype=np.int64),
                  block_size * block_size)
    li = np.tile(np.repeat(np.arange(block_size, dtype=np.int64),
                           block_size), n_blocks)
    lj = np.tile(np.tile(np.arange(block_size, dtype=np.int64),
                         block_size), n_blocks)
    keep = rng.random(len(b)) < density
    rows = (b * block_size + li)[keep]
    cols = (b * block_size + lj)[keep]
    return _finish((n, n), rows, cols, rng, symmetric=False)


def rmat(scale: int, edge_factor: int = 16,
         a: float = 0.57, b: float = 0.19, c: float = 0.19,
         seed: int = 0, symmetric: bool = True) -> COOMatrix:
    """R-MAT / Kronecker power-law graph (Graph500 parameters by
    default) — the 'in-2004' / social-network regime, and the 'KR'
    matrices of Figure 12."""
    if scale <= 0 or scale > 24:
        raise ShapeError(f"rmat scale out of supported range: {scale}")
    if not (0 < a and 0 <= b and 0 <= c and a + b + c < 1.0):
        raise ShapeError("rmat probabilities must satisfy a+b+c < 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    n_edges = n * edge_factor
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(n_edges)
        # quadrant probabilities: a | b / c | d
        go_down = r >= a + b                  # row bit set
        go_right = (r >= a) & (r < a + b) | (r >= a + b + c)
        rows |= go_down.astype(np.int64) << bit
        cols |= go_right.astype(np.int64) << bit
    return _finish((n, n), rows, cols, rng, symmetric)


def erdos_renyi(n: int, avg_degree: float = 8.0, seed: int = 0,
                symmetric: bool = True) -> COOMatrix:
    """Uniform random graph with the given expected degree."""
    if n <= 0 or avg_degree < 0:
        raise ShapeError("erdos_renyi parameters out of range")
    rng = np.random.default_rng(seed)
    n_edges = int(n * avg_degree)
    rows = rng.integers(0, n, size=n_edges, dtype=np.int64)
    cols = rng.integers(0, n, size=n_edges, dtype=np.int64)
    return _finish((n, n), rows, cols, rng, symmetric)


def road_network(k: int, rewire: float = 0.02, drop: float = 0.05,
                 seed: int = 0) -> COOMatrix:
    """Road-network-like graph: a 2-D grid with a few dropped and a few
    rewired edges — degree ~2-4, enormous diameter, hypersparse tiles
    (the 'roadNet-TX' / 'europe.osm' regime)."""
    if not (0 <= rewire <= 1 and 0 <= drop <= 1):
        raise ShapeError("rewire/drop must be fractions")
    rng = np.random.default_rng(seed)
    n = k * k
    base = mesh2d(k, stencil=5, seed=seed).without_diagonal()
    keep = rng.random(base.nnz) >= drop
    rows, cols = base.row[keep].copy(), base.col[keep].copy()
    n_rewire = int(rewire * len(rows))
    if n_rewire:
        pick = rng.choice(len(rows), size=n_rewire, replace=False)
        cols[pick] = rng.integers(0, n, size=n_rewire)
    return _finish((n, n), rows, cols, rng, symmetric=True)


def random_rectangular(m: int, n: int, density: float,
                       seed: int = 0) -> COOMatrix:
    """Uniform rectangular sparse matrix (SpMSpV on non-square inputs)."""
    if m <= 0 or n <= 0 or not (0.0 < density <= 1.0):
        raise ShapeError("random_rectangular parameters out of range")
    rng = np.random.default_rng(seed)
    nnz = max(1, int(m * n * density))
    rows = rng.integers(0, m, size=nnz, dtype=np.int64)
    cols = rng.integers(0, n, size=nnz, dtype=np.int64)
    return _finish((m, n), rows, cols, rng, symmetric=False)
