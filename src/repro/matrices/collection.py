"""The curated matrix collection: stand-ins for the paper's datasets.

SuiteSparse is not shippable (nor downloadable offline), so each named
matrix the paper analyses gets a synthetic stand-in from the same
structural class, scaled down ~15-30x linearly to stay laptop-sized
(DESIGN.md §1 documents the substitution).  Three groups:

* :data:`REPRESENTATIVE_12` — Table 2's in-depth analysis set;
* :data:`ENTERPRISE_6` — Figure 12's Enterprise comparison set;
* :func:`sweep_entries` — a ~60-matrix sweep across classes and sizes
  standing in for the 2757-matrix distribution of Figures 6-7.

Matrices are built lazily and memoised per process (the sweep re-uses
them across benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ShapeError
from ..formats.coo import COOMatrix
from . import generators as g

__all__ = ["CollectionEntry", "REPRESENTATIVE_12", "ENTERPRISE_6",
           "get_matrix", "entry", "sweep_entries", "all_entries"]


@dataclass(frozen=True)
class CollectionEntry:
    """One named matrix of the collection.

    Attributes
    ----------
    name:
        The SuiteSparse name it stands in for (or a synthetic name for
        sweep fillers).
    kind:
        Structural class: fem / mesh / web / road / block / random.
    paper_shape, paper_nnz:
        The original matrix's size, for the documentation tables
        (``None`` for sweep fillers).
    build:
        Zero-argument constructor of the scaled stand-in.
    """

    name: str
    kind: str
    build: Callable[[], COOMatrix]
    paper_shape: Optional[Tuple[int, int]] = None
    paper_nnz: Optional[int] = None


def _e(name: str, kind: str, build: Callable[[], COOMatrix],
       paper_shape: Optional[Tuple[int, int]] = None,
       paper_nnz: Optional[int] = None) -> CollectionEntry:
    return CollectionEntry(name=name, kind=kind, build=build,
                           paper_shape=paper_shape, paper_nnz=paper_nnz)


#: Stand-ins for Table 2's 12 representative matrices.  Size / nnz are
#: scaled so per-row density and the structural class (hence the tile
#: occupancy profile of Table 2) are preserved.
REPRESENTATIVE_12: List[CollectionEntry] = [
    _e("af_5_k101", "fem",
       lambda: g.fem_like(31488, nnz_per_row=34, block=8, spread=0.004,
                          seed=101),
       paper_shape=(503_000, 503_000), paper_nnz=17_000_000),
    _e("cant", "fem",
       lambda: g.fem_like(7936, nnz_per_row=64, block=16, spread=0.01,
                          seed=102),
       paper_shape=(62_000, 62_000), paper_nnz=4_000_000),
    _e("cavity23", "fem",
       lambda: g.fem_like(4096, nnz_per_row=35, block=8, spread=0.02,
                          seed=103),
       paper_shape=(4_000, 4_000), paper_nnz=144_000),
    _e("pdb1HYS", "fem",
       lambda: g.fem_like(4608, nnz_per_row=110, block=16, spread=0.015,
                          seed=104),
       paper_shape=(36_000, 36_000), paper_nnz=4_000_000),
    _e("fullb", "fem",
       lambda: g.fem_like(12544, nnz_per_row=55, block=16, spread=0.006,
                          seed=105),
       paper_shape=(199_000, 199_000), paper_nnz=11_000_000),
    _e("ldoor", "fem",
       lambda: g.fem_like(59520, nnz_per_row=48, block=16, spread=0.003,
                          seed=106),
       paper_shape=(952_000, 952_000), paper_nnz=46_000_000),
    _e("in-2004", "web",
       lambda: g.rmat(15, edge_factor=14, seed=107),
       paper_shape=(1_000_000, 1_000_000), paper_nnz=27_000_000),
    _e("msdoor", "fem",
       lambda: g.fem_like(25984, nnz_per_row=48, block=16, spread=0.004,
                          seed=108),
       paper_shape=(415_000, 415_000), paper_nnz=20_000_000),
    _e("roadNet-TX", "road",
       lambda: g.road_network(178, seed=109),
       paper_shape=(1_000_000, 1_000_000), paper_nnz=3_000_000),
    _e("ML_Geer", "fem",
       lambda: g.fem_like(32768, nnz_per_row=110, block=16, spread=0.002,
                          seed=110),
       paper_shape=(1_000_000, 1_000_000), paper_nnz=110_000_000),
    _e("333SP", "mesh",
       lambda: g.mesh2d(306, stencil=5, seed=111),
       paper_shape=(3_000_000, 3_000_000), paper_nnz=22_000_000),
    _e("dielFilterV2clx", "fem",
       lambda: g.fem_like(18944, nnz_per_row=41, block=16, spread=0.005,
                          seed=112),
       paper_shape=(607_000, 607_000), paper_nnz=25_000_000),
]

#: Stand-ins for Figure 12's six Enterprise-comparison matrices.
ENTERPRISE_6: List[CollectionEntry] = [
    _e("FB", "web", lambda: g.rmat(15, edge_factor=20, seed=201)),
    _e("KR-21-128", "web",
       lambda: g.rmat(14, edge_factor=32, seed=202)),
    _e("TW", "web", lambda: g.rmat(15, edge_factor=24, a=0.50, b=0.22,
                                   c=0.22, seed=203)),
    _e("audikw_1", "fem",
       lambda: g.fem_like(29696, nnz_per_row=82, block=16, spread=0.003,
                          seed=204)),
    _e("roadCA", "road", lambda: g.road_network(160, seed=205)),
    _e("europe.osm", "road", lambda: g.road_network(224, drop=0.08,
                                                    seed=206)),
]

_BY_NAME: Dict[str, CollectionEntry] = {
    e.name: e for e in REPRESENTATIVE_12 + ENTERPRISE_6
}

_CACHE: Dict[str, COOMatrix] = {}


def entry(name: str) -> CollectionEntry:
    """Look up a named collection entry."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ShapeError(
            f"unknown collection matrix {name!r}; known: "
            f"{sorted(_BY_NAME)}"
        ) from None


def get_matrix(name: str) -> COOMatrix:
    """Build (and memoise) a named collection matrix."""
    if name not in _CACHE:
        _CACHE[name] = entry(name).build()
    return _CACHE[name]


def sweep_entries(max_n: int = 40_000) -> List[CollectionEntry]:
    """The distribution-sweep set standing in for the 2757 matrices.

    ~5 size points per structural class, capped at ``max_n`` rows; the
    class mix (majority FEM/structured, some graphs, some road
    networks) mirrors SuiteSparse's composition, which is what the
    geomean speedups of Figures 6-7 average over.
    """
    entries: List[CollectionEntry] = []
    sizes = [1 << s for s in range(10, 17)]   # 1k .. 64k
    sizes = [s for s in sizes if s <= max_n]
    for i, n in enumerate(sizes):
        entries.append(_e(f"fem_n{n}", "fem",
                          lambda n=n, i=i: g.fem_like(
                              n, nnz_per_row=40, block=16, seed=300 + i)))
        entries.append(_e(f"banded_n{n}", "fem",
                          lambda n=n, i=i: g.banded(n, bandwidth=4,
                                                    seed=320 + i)))
        k2 = int(n ** 0.5)
        entries.append(_e(f"mesh2d_k{k2}", "mesh",
                          lambda k2=k2, i=i: g.mesh2d(k2, 9, seed=340 + i)))
        scale = n.bit_length() - 1
        entries.append(_e(f"rmat_s{scale}", "web",
                          lambda scale=scale, i=i: g.rmat(
                              scale, edge_factor=12, seed=360 + i)))
        entries.append(_e(f"road_k{k2}", "road",
                          lambda k2=k2, i=i: g.road_network(
                              k2, seed=380 + i)))
        entries.append(_e(f"er_n{n}", "random",
                          lambda n=n, i=i: g.erdos_renyi(
                              n, avg_degree=10, seed=400 + i)))
    entries.append(_e("blockdiag_dense", "block",
                      lambda: g.block_diagonal(512, 24, 0.95, seed=420)))
    entries.append(_e("mesh3d_k24", "mesh", lambda: g.mesh3d(24, seed=421)))
    return entries


def all_entries() -> List[CollectionEntry]:
    """Every named entry (representatives + enterprise set)."""
    return list(REPRESENTATIVE_12) + list(ENTERPRISE_6)
