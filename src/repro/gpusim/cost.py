"""Roofline cost model: counters + spec → estimated kernel time.

The model is intentionally simple and *identical for every algorithm*
(DESIGN.md §3): it cannot be tuned per-kernel, so the relative numbers
in the benchmark tables fall out of the counters alone.

``time = launches * t_launch + max(t_compute, t_memory, t_atomic)``

with *achievable* throughputs in each term: the card's peak capped by
what the launched warps can keep in flight —

* ``BW_achieved``    = min(peak BW, warps x warp_gbps)
* ``FLOPS_achieved`` = min(peak flops, warps x warp_gflops)
* ``t_memory``  = DRAM bytes / BW_achieved + L2 bytes / (4 x BW_achieved)
* ``t_compute`` = (flops + word_ops at their achieved rates) / divergence
* ``t_atomic``  = atomics x contention / atomic throughput

The per-warp constants are architectural (bytes-in-flight over DRAM
latency), not per-card: a kernel too small to saturate either card runs
at the same speed on both, and a bigger card can never price slower
than a smaller one for the same counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError
from .counters import KernelCounters
from .spec import GPUSpec

__all__ = ["CostModel", "KernelTime"]


@dataclass(frozen=True)
class KernelTime:
    """Breakdown of one kernel-launch estimate (all in milliseconds)."""

    total_ms: float
    launch_ms: float
    compute_ms: float
    memory_ms: float
    atomic_ms: float
    efficiency: float

    @property
    def bound(self) -> str:
        """Which term dominates: 'compute' | 'memory' | 'atomic' | 'launch'."""
        parts = {
            "compute": self.compute_ms,
            "memory": self.memory_ms,
            "atomic": self.atomic_ms,
        }
        if self.launch_ms > max(parts.values()):
            return "launch"
        return max(parts, key=parts.__getitem__)


class CostModel:
    """Evaluate :class:`KernelCounters` against a :class:`GPUSpec`.

    Parameters
    ----------
    spec:
        The simulated GPU.
    atomic_contention:
        Extra cost factor applied per atomic when collisions are likely;
        kernels cannot influence it — it is part of the model.
    """

    def __init__(self, spec: GPUSpec, atomic_contention: float = 1.0,
                 warp_gbps: float = 1.0, warp_gflops: float = 25.0):
        if atomic_contention <= 0:
            raise DeviceError("atomic_contention must be positive")
        if warp_gbps <= 0 or warp_gflops <= 0:
            raise DeviceError("per-warp throughputs must be positive")
        self.spec = spec
        self.atomic_contention = float(atomic_contention)
        #: Memory bandwidth one resident warp can sustain (GB/s) —
        #: bytes-in-flight over DRAM latency, an architectural constant
        #: rather than a per-card one, which is what keeps a bigger GPU
        #: from ever pricing *slower* than a smaller one at equal work.
        self.warp_gbps = float(warp_gbps)
        #: FP32 rate one warp can sustain (GFLOP/s).
        self.warp_gflops = float(warp_gflops)

    def evaluate(self, counters: KernelCounters) -> KernelTime:
        """Estimate the run time of one kernel launch record."""
        counters.check()
        spec = self.spec

        launch_ms = counters.launches * spec.launch_overhead_us * 1e-3

        # Achievable throughputs are the min of the card's peak and what
        # the launched warps can keep in flight (memory-level
        # parallelism): a warp sustains ~warp_gbps of DRAM traffic and
        # ~warp_gflops of FP32 regardless of which card it runs on, so a
        # low-occupancy kernel runs identically on both cards while a
        # saturating one gets the card's full peak.
        warps = max(counters.warps, 1.0)
        bw_gbps = min(spec.mem_bandwidth_gbps, warps * self.warp_gbps)
        dram_bytes = counters.global_bytes
        mem_s = dram_bytes / (bw_gbps * 1e9)
        mem_s += counters.l2_read_bytes / (
            bw_gbps * spec.l2_speedup * 1e9)
        # shared memory is ~10x DRAM bandwidth on Ampere; near-free but
        # not exactly free.
        mem_s += counters.shared_bytes / (bw_gbps * 10e9)

        flops_gs = min(spec.peak_gflops, warps * self.warp_gflops)
        flop_s = counters.flops / (flops_gs * 1e9)
        # integer/bitwise ALU throughput ~= FP32 lanes x clock (1 op/cycle)
        iops_gs = min(spec.cuda_cores * spec.clock_ghz,
                      warps * self.warp_gflops)
        iop_s = counters.word_ops / (iops_gs * 1e9)
        compute_s = (flop_s + iop_s) / counters.divergence

        atomic_s = (counters.atomic_ops * self.atomic_contention
                    / (spec.atomic_gops * 1e9))

        efficiency = bw_gbps / spec.mem_bandwidth_gbps
        body_ms = max(compute_s, mem_s, atomic_s) * 1e3
        return KernelTime(
            total_ms=launch_ms + body_ms,
            launch_ms=launch_ms,
            compute_ms=compute_s * 1e3,
            memory_ms=mem_s * 1e3,
            atomic_ms=atomic_s * 1e3,
            efficiency=efficiency,
        )

    def time_ms(self, counters: KernelCounters) -> float:
        """Shorthand: total estimated milliseconds."""
        return self.evaluate(counters).total_ms
