"""GPU execution model: specs, counters, roofline cost, device timeline.

This package is the stand-in for the paper's RTX 3060 / RTX 3090
testbed (see DESIGN.md §1 for why the substitution preserves the
relative results).  Kernels execute functionally in NumPy and submit
:class:`KernelCounters` records to a :class:`Device`, which prices them
with a :class:`CostModel` that is identical for every algorithm.
"""

from .cost import CostModel, KernelTime
from .counters import SECTOR_BYTES, KernelCounters
from .device import Device, LaunchRecord
from .multi_device import MultiDeviceTimeline, device_of_tag
from .profile import (KernelProfile, format_profile, profile_device,
                      timeline_csv)
from .spec import RTX3060, RTX3090, GPUSpec, get_spec

__all__ = [
    "GPUSpec", "RTX3060", "RTX3090", "get_spec",
    "KernelCounters", "SECTOR_BYTES",
    "CostModel", "KernelTime",
    "Device", "LaunchRecord",
    "MultiDeviceTimeline", "device_of_tag",
    "KernelProfile", "profile_device", "format_profile", "timeline_csv",
]
