"""The simulated device: a timeline of kernel launches.

A :class:`Device` is handed to every kernel entry point in the library.
Kernels call :meth:`Device.submit` with a name and a
:class:`~repro.gpusim.counters.KernelCounters` record; the device prices
the launch with its :class:`~repro.gpusim.cost.CostModel` and appends it
to the timeline.  Benchmarks read :attr:`Device.elapsed_ms` (a BFS run
is the sum of its per-iteration kernels — the traces of paper Fig. 10
come straight from the timeline).

Passing ``device=None`` to kernels skips all accounting; the functional
result is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import DeviceError
from .cost import CostModel, KernelTime
from .counters import KernelCounters
from .spec import GPUSpec, RTX3090

__all__ = ["Device", "LaunchRecord"]


@dataclass(frozen=True)
class LaunchRecord:
    """One priced kernel launch on the timeline."""

    name: str
    counters: KernelCounters
    time: KernelTime
    tag: Optional[str] = None

    @property
    def ms(self) -> float:
        return self.time.total_ms


class Device:
    """A simulated GPU accumulating launch records.

    Parameters
    ----------
    spec:
        Hardware description (default: the paper's primary card,
        RTX 3090).
    """

    def __init__(self, spec: GPUSpec = RTX3090):
        self.spec = spec
        self.model = CostModel(spec)
        self.timeline: List[LaunchRecord] = []

    # ------------------------------------------------------------------
    def submit(self, name: str, counters: KernelCounters,
               tag: Optional[str] = None) -> KernelTime:
        """Price a kernel launch and append it to the timeline."""
        if not name:
            raise DeviceError("kernel name must be non-empty")
        t = self.model.evaluate(counters)
        self.timeline.append(LaunchRecord(name, counters, t, tag))
        return t

    def memcpy(self, nbytes: float, direction: str = "h2d") -> KernelTime:
        """Account a host<->device copy over PCIe 4.0 x16 (~25 GB/s)."""
        if nbytes < 0:
            raise DeviceError("memcpy size negative")
        pcie_gbps = 25.0
        ms = nbytes / (pcie_gbps * 1e9) * 1e3 + 0.01
        t = KernelTime(total_ms=ms, launch_ms=0.01, compute_ms=0.0,
                       memory_ms=ms - 0.01, atomic_ms=0.0, efficiency=1.0)
        self.timeline.append(
            LaunchRecord(f"memcpy_{direction}", KernelCounters(
                coalesced_read_bytes=nbytes, launches=0), t))
        return t

    # ------------------------------------------------------------------
    @property
    def elapsed_ms(self) -> float:
        """Total simulated time of everything on the timeline."""
        return sum(rec.ms for rec in self.timeline)

    def snapshot(self) -> tuple:
        """An immutable copy of the timeline.

        Records are frozen dataclasses, so a snapshot taken before
        :meth:`reset` compares equal (``==``) to the timeline of an
        identical re-run — the round-trip the runtime tests rely on.
        """
        return tuple(self.timeline)

    def reset(self) -> None:
        """Clear the timeline (new measurement)."""
        self.timeline.clear()

    def split(self) -> int:
        """Mark the current timeline position; use with
        :meth:`elapsed_since` to time a phase."""
        return len(self.timeline)

    def elapsed_since(self, mark: int) -> float:
        """Simulated ms of launches submitted after ``mark``."""
        return sum(rec.ms for rec in self.timeline[mark:])

    def records_since(self, mark: int) -> List[LaunchRecord]:
        """Launch records submitted after ``mark``."""
        return self.timeline[mark:]

    def kernel_breakdown(self) -> dict:
        """Total ms per kernel name (for reports and ablations)."""
        out: dict = {}
        for rec in self.timeline:
            out[rec.name] = out.get(rec.name, 0.0) + rec.ms
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Device {self.spec.name}: {len(self.timeline)} launches, "
                f"{self.elapsed_ms:.3f} ms>")
