"""Timeline profiling: turn a :class:`Device`'s launch records into the
reports a CUDA profiler would give you.

Used by the benchmark harness (per-kernel breakdown tables) and handy
for users tuning their own workloads: which kernels dominate, what each
is bound by, how much DRAM traffic moved, and per-kernel efficiency.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, List

from ..errors import DeviceError
from .device import Device

__all__ = ["KernelProfile", "profile_device", "format_profile",
           "timeline_csv"]


@dataclass(frozen=True)
class KernelProfile:
    """Aggregated statistics of one kernel name across a timeline."""

    name: str
    launches: int
    calls: int
    total_ms: float
    mean_ms: float
    dram_bytes: float
    flops: float
    word_ops: float
    atomics: float
    dominant_bound: str

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Achieved DRAM bandwidth of this kernel (GB/s)."""
        if self.total_ms <= 0:
            return 0.0
        return self.dram_bytes / (self.total_ms * 1e-3) / 1e9

    @property
    def effective_gflops(self) -> float:
        """Achieved floating-point rate (GFLOP/s)."""
        if self.total_ms <= 0:
            return 0.0
        return self.flops / (self.total_ms * 1e-3) / 1e9


def profile_device(device: Device) -> List[KernelProfile]:
    """Aggregate a device timeline into per-kernel profiles, sorted by
    total time descending."""
    groups: Dict[str, list] = {}
    for rec in device.timeline:
        groups.setdefault(rec.name, []).append(rec)
    out = []
    for name, recs in groups.items():
        total = sum(r.ms for r in recs)
        bounds: Dict[str, float] = {}
        for r in recs:
            bounds[r.time.bound] = bounds.get(r.time.bound, 0.0) + r.ms
        out.append(KernelProfile(
            name=name,
            launches=sum(r.counters.launches for r in recs),
            calls=len(recs),
            total_ms=total,
            mean_ms=total / len(recs),
            dram_bytes=sum(r.counters.global_bytes for r in recs),
            flops=sum(r.counters.flops for r in recs),
            word_ops=sum(r.counters.word_ops for r in recs),
            atomics=sum(r.counters.atomic_ops for r in recs),
            dominant_bound=max(bounds, key=bounds.__getitem__),
        ))
    return sorted(out, key=lambda p: p.total_ms, reverse=True)


def format_profile(device: Device, title: str = "") -> str:
    """Human-readable per-kernel breakdown (profiler-style table)."""
    from ..bench.report import format_table

    profiles = profile_device(device)
    rows = [[p.name, p.calls, p.launches, p.total_ms, p.mean_ms,
             p.dram_bytes / 1e6, p.effective_bandwidth_gbps,
             p.dominant_bound] for p in profiles]
    table = format_table(
        ["kernel", "calls", "launches", "total ms", "mean ms",
         "DRAM MB", "eff GB/s", "bound"],
        rows, title=title or f"timeline on {device.spec.name}")
    return (table + f"\ntotal simulated: {device.elapsed_ms:.4f} ms "
            f"across {len(device.timeline)} records")


def timeline_csv(device: Device) -> str:
    """The raw launch records as CSV (for external analysis/plotting)."""
    if device is None:
        raise DeviceError("timeline_csv needs a device")
    buf = io.StringIO()
    buf.write("index,name,tag,total_ms,launch_ms,compute_ms,memory_ms,"
              "atomic_ms,efficiency,bound,dram_bytes,flops,word_ops,"
              "atomics,warps\n")
    for i, rec in enumerate(device.timeline):
        t, c = rec.time, rec.counters
        buf.write(f"{i},{rec.name},{rec.tag or ''},{t.total_ms:.9f},"
                  f"{t.launch_ms:.9f},{t.compute_ms:.9f},"
                  f"{t.memory_ms:.9f},{t.atomic_ms:.9f},"
                  f"{t.efficiency:.6f},{t.bound},{c.global_bytes:.1f},"
                  f"{c.flops:.1f},{c.word_ops:.1f},{c.atomic_ops:.1f},"
                  f"{c.warps:.1f}\n")
    return buf.getvalue()
