"""GPU hardware specifications for the execution model.

The paper's testbed (Table 1) has two Ampere cards; their published
specifications are encoded here.  Only parameters that feed the roofline
cost model are kept: compute throughput, memory bandwidth, SM/warp
geometry, and fixed kernel-launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError

__all__ = ["GPUSpec", "RTX3060", "RTX3090", "get_spec"]


@dataclass(frozen=True)
class GPUSpec:
    """Parameters of one simulated GPU.

    Attributes
    ----------
    name:
        Marketing name, used in reports.
    sm_count:
        Number of streaming multiprocessors.
    cuda_cores:
        Total FP32 lanes (``sm_count`` x cores/SM).
    clock_ghz:
        Boost clock in GHz.
    mem_bandwidth_gbps:
        Peak global-memory bandwidth in GB/s.
    l2_bytes:
        L2 cache size (bytes); reads that fit in L2 are charged at
        ``l2_speedup`` x bandwidth.
    shared_mem_per_sm:
        Shared memory per SM (bytes) — bounds how many tiles a block can
        stage, which the tiled kernels use.
    warp_size:
        Threads per warp (32 on all NVIDIA parts).
    max_warps_per_sm:
        Resident warps per SM at full occupancy.
    launch_overhead_us:
        Fixed host-side cost per kernel launch.  This term dominates
        BFS iterations with tiny frontiers and is why fewer/cheaper
        kernels win there (paper §4.5).
    atomic_gops:
        Global-atomic throughput in billions of operations/s.
    l2_speedup:
        Bandwidth multiplier for L2-resident traffic.
    """

    name: str
    sm_count: int
    cuda_cores: int
    clock_ghz: float
    mem_bandwidth_gbps: float
    l2_bytes: int
    shared_mem_per_sm: int
    warp_size: int = 32
    max_warps_per_sm: int = 48
    launch_overhead_us: float = 4.0
    atomic_gops: float = 20.0
    l2_speedup: float = 4.0

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.cuda_cores <= 0:
            raise DeviceError(f"invalid core counts in spec {self.name!r}")
        if self.clock_ghz <= 0 or self.mem_bandwidth_gbps <= 0:
            raise DeviceError(f"invalid clocks/bandwidth in spec {self.name!r}")

    @property
    def peak_gflops(self) -> float:
        """Peak FP32 GFLOP/s (2 flops per FMA lane-cycle)."""
        return self.cuda_cores * self.clock_ghz * 2.0

    @property
    def resident_warps(self) -> int:
        """Warps needed to fully occupy the device."""
        return self.sm_count * self.max_warps_per_sm


#: NVIDIA GeForce RTX 3060 (Ampere GA106): 3584 cores @ 1.78 GHz,
#: 12 GB GDDR6 at 360 GB/s, 28 SMs, 3 MB L2 (paper Table 1).
RTX3060 = GPUSpec(
    name="RTX 3060",
    sm_count=28,
    cuda_cores=3584,
    clock_ghz=1.78,
    mem_bandwidth_gbps=360.0,
    l2_bytes=3 * 1024 * 1024,
    shared_mem_per_sm=100 * 1024,
)

#: NVIDIA GeForce RTX 3090 (Ampere GA102): 10496 cores @ 1.70 GHz,
#: 24 GB GDDR6X at 936.2 GB/s, 82 SMs, 6 MB L2 (paper Table 1).
RTX3090 = GPUSpec(
    name="RTX 3090",
    sm_count=82,
    cuda_cores=10496,
    clock_ghz=1.70,
    mem_bandwidth_gbps=936.2,
    l2_bytes=6 * 1024 * 1024,
    shared_mem_per_sm=100 * 1024,
)

_REGISTRY = {"rtx3060": RTX3060, "rtx3090": RTX3090}


def get_spec(name: str) -> GPUSpec:
    """Look up a preset spec by a forgiving name ("RTX 3090", "rtx3090")."""
    key = name.lower().replace(" ", "").replace("geforce", "")
    try:
        return _REGISTRY[key]
    except KeyError:
        raise DeviceError(
            f"unknown GPU spec {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
