"""Hardware counters tallied by every kernel in the library.

Each kernel in :mod:`repro.core` and :mod:`repro.baselines` executes
functionally (vectorized NumPy) *and* fills in a
:class:`KernelCounters` record describing the memory traffic and work a
CUDA realisation of the same algorithm would incur.  The cost model
(:mod:`repro.gpusim.cost`) turns counters into estimated kernel time.

The accounting rules are uniform across all algorithms (DESIGN.md §3):

* sequential/contiguous accesses are *coalesced*: charged by bytes;
* data-dependent scattered accesses are *random*: charged one 32-byte
  memory sector per access, regardless of the element size — this is
  what penalises unbucketed column merging and dense-vector gathers;
* atomics are counted individually, with contention left to the model.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..errors import DeviceError

__all__ = ["KernelCounters", "SECTOR_BYTES"]

#: Size of a GDDR memory sector / minimum transaction granule.
SECTOR_BYTES = 32


@dataclass
class KernelCounters:
    """Work and traffic of one (logical) kernel launch.

    All fields are totals over the whole grid.

    Attributes
    ----------
    coalesced_read_bytes / coalesced_write_bytes:
        Streamed global-memory traffic (format arrays walked in order).
    random_read_count / random_write_count:
        Number of data-dependent scattered accesses; each is charged a
        full :data:`SECTOR_BYTES` transaction.
    l2_read_bytes:
        Reads expected to hit in L2 (e.g. the x tile re-read by every
        warp of a tile column); charged at ``spec.l2_speedup`` x BW.
    shared_bytes:
        Bytes staged through shared memory (cheap, but bounds tile
        sizes; tracked for reporting, charged lightly).
    flops:
        Floating-point operations (multiply-add counts as 2).
    word_ops:
        Bitwise word operations (the AND/OR semiring of TileBFS).
    atomic_ops:
        Global atomic operations (atomicAdd / atomicOr).
    warps:
        Warps launched (for the occupancy term).
    launches:
        Kernel launches (fixed overhead each).
    divergence:
        Average fraction of useful lanes per warp, in (0, 1]; the model
        divides compute throughput by it.
    """

    coalesced_read_bytes: float = 0.0
    coalesced_write_bytes: float = 0.0
    random_read_count: float = 0.0
    random_write_count: float = 0.0
    l2_read_bytes: float = 0.0
    shared_bytes: float = 0.0
    flops: float = 0.0
    word_ops: float = 0.0
    atomic_ops: float = 0.0
    warps: float = 0.0
    launches: int = 1
    divergence: float = 1.0

    def __post_init__(self) -> None:
        self.check()

    def check(self) -> None:
        """Raise :class:`~repro.errors.DeviceError` on nonsensical values."""
        for f in fields(self):
            v = getattr(self, f.name)
            if f.name == "divergence":
                if not (0.0 < v <= 1.0):
                    raise DeviceError(
                        f"divergence must be in (0, 1], got {v}"
                    )
            elif v < 0:
                raise DeviceError(f"counter {f.name} negative: {v}")

    # ------------------------------------------------------------------
    @property
    def global_bytes(self) -> float:
        """Total DRAM traffic in bytes (coalesced + sectored random)."""
        return (self.coalesced_read_bytes + self.coalesced_write_bytes
                + (self.random_read_count + self.random_write_count)
                * SECTOR_BYTES)

    def merged(self, other: "KernelCounters") -> "KernelCounters":
        """Combine two launches into one record (times add; the
        divergence is the warp-weighted mean)."""
        total_warps = self.warps + other.warps
        if total_warps > 0:
            div = ((self.divergence * self.warps
                    + other.divergence * other.warps) / total_warps)
        else:
            div = min(self.divergence, other.divergence)
        return KernelCounters(
            coalesced_read_bytes=self.coalesced_read_bytes + other.coalesced_read_bytes,
            coalesced_write_bytes=self.coalesced_write_bytes + other.coalesced_write_bytes,
            random_read_count=self.random_read_count + other.random_read_count,
            random_write_count=self.random_write_count + other.random_write_count,
            l2_read_bytes=self.l2_read_bytes + other.l2_read_bytes,
            shared_bytes=self.shared_bytes + other.shared_bytes,
            flops=self.flops + other.flops,
            word_ops=self.word_ops + other.word_ops,
            atomic_ops=self.atomic_ops + other.atomic_ops,
            warps=total_warps,
            launches=self.launches + other.launches,
            divergence=div,
        )

    @classmethod
    def sum(cls, records) -> "KernelCounters":
        """Merge an iterable of counters (empty iterable → zero record
        with 0 launches)."""
        total = cls(launches=0)
        for rec in records:
            total = total.merged(rec)
        return total

    def delta(self, other: "KernelCounters") -> dict:
        """Field-wise ``self - other`` as a plain dict.

        Differences may be negative, which a :class:`KernelCounters`
        instance is not allowed to hold — so this returns a dict, not a
        record.  Used to quantify the batched engine's shared-load
        discount (bytes and launches a coalesced batch saves over
        looping the single-vector kernel).
        """
        return {f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)}
