"""Multi-device timelines: pricing shard-level overlap honestly.

The parallel shard executor runs row-strip shards on N workers, each
modeled as its own simulated GPU.  A :class:`MultiDeviceTimeline` keeps
one per-device clock and distinguishes two launch kinds:

* **per-device** launches (``device=<id>`` in the launch tag — shard
  compute and shard loads) advance only their owner's clock;
* **barrier** launches (no ``device=`` tag — the scheduler pass, the
  combiner, output masking) start at ``max`` of all clocks and advance
  every clock past their end: work that cannot begin before the
  stragglers land and that serializes whatever follows.

``critical_path_ms`` (the max clock) is then the honest modeled
end-to-end time of the overlapped execution, while ``sum_of_work_ms``
is what the same launches would cost executed serially — their ratio is
the modeled speedup, and it can never exceed the device count.  No
credit is given for prefetch: a page touched early still pays its full
load launch when the compute claims it.

The usual entry point is :meth:`MultiDeviceTimeline.from_device`, which
*re-partitions an already recorded serial timeline* by its ``device=``
tags — so the multi-device view is derived from the same launch records
the sequential-equivalence checks compare, and a production-mode replay
log reconstructs it identically (replay first, then partition).
"""

from __future__ import annotations

from math import fsum
from typing import Dict, List, Optional

from .device import Device, LaunchRecord
from .spec import GPUSpec, RTX3090

__all__ = ["MultiDeviceTimeline", "device_of_tag"]


def device_of_tag(tag: Optional[str]) -> Optional[int]:
    """The ``device=<id>`` component of a launch tag, or ``None``.

    Tags are ``;``-joined ``key=value`` parts (``shard=3;device=1;
    worker=0``); a launch without a ``device=`` part is a barrier.
    """
    if not tag:
        return None
    for part in tag.split(";"):
        if part.startswith("device="):
            try:
                return int(part[len("device="):])
            except ValueError:
                return None
    return None


class MultiDeviceTimeline:
    """Per-device clocks over a partitioned launch timeline.

    Parameters
    ----------
    n_devices:
        Device (worker) count; clamped up if a submitted launch names a
        higher device id.
    spec:
        Hardware spec shared by every device (the fleet is homogeneous;
        pricing stays identical to the single-device model).
    """

    def __init__(self, n_devices: int = 1, spec: GPUSpec = RTX3090):
        if n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices}")
        self.spec = spec
        self.devices: List[Device] = [Device(spec)
                                      for _ in range(n_devices)]
        self.clocks: List[float] = [0.0] * n_devices
        #: Every record in submission order with its resolved device id
        #: (``None`` = barrier) and modeled start time.
        self.schedule: List[tuple] = []

    # ------------------------------------------------------------------
    @property
    def n_devices(self) -> int:
        return len(self.devices)

    def _grow_to(self, device_id: int) -> None:
        while device_id >= len(self.devices):
            self.devices.append(Device(self.spec))
            self.clocks.append(0.0)

    def add_record(self, rec: LaunchRecord,
                   device: Optional[int] = None) -> float:
        """Place one already-priced record on the timeline.

        Returns the record's modeled start time.  ``device=None`` is a
        barrier: it starts at the max of all clocks and advances every
        clock past its end.
        """
        ms = rec.ms
        if device is None:
            start = max(self.clocks)
            end = start + ms
            self.clocks = [end] * len(self.clocks)
            self.devices[0].timeline.append(rec)
        else:
            self._grow_to(device)
            start = self.clocks[device]
            self.clocks[device] = start + ms
            self.devices[device].timeline.append(rec)
        self.schedule.append((rec, device, start))
        return start

    def submit(self, name, counters, device: Optional[int] = None,
               tag: Optional[str] = None) -> float:
        """Price a fresh launch on ``device`` (``None`` = barrier)."""
        # homogeneous fleet: every device prices with the same model
        t = self.devices[0].model.evaluate(counters)
        rec = LaunchRecord(name, counters, t, tag)
        return self.add_record(rec, device)

    # ------------------------------------------------------------------
    @classmethod
    def from_device(cls, device: Device,
                    n_devices: Optional[int] = None,
                    spec: Optional[GPUSpec] = None
                    ) -> "MultiDeviceTimeline":
        """Partition a recorded serial timeline by its ``device=`` tags.

        Every record keeps its priced time; only the *placement*
        changes.  ``n_devices`` defaults to ``1 + max`` tagged device
        id (1 when nothing is tagged — a sequential run degenerates to
        all-barrier, so critical path equals sum of work).
        """
        tagged = [device_of_tag(rec.tag) for rec in device.timeline]
        if n_devices is None:
            ids = [d for d in tagged if d is not None]
            n_devices = (max(ids) + 1) if ids else 1
        out = cls(n_devices, spec or device.spec)
        for rec, dev_id in zip(device.timeline, tagged):
            out.add_record(rec, dev_id)
        return out

    # ------------------------------------------------------------------
    @property
    def critical_path_ms(self) -> float:
        """Modeled end-to-end time of the overlapped execution."""
        return max(self.clocks)

    @property
    def sum_of_work_ms(self) -> float:
        """What the same launches cost executed serially."""
        return fsum(rec.ms for rec, _, _ in self.schedule)

    @property
    def modeled_speedup(self) -> float:
        """``sum_of_work / critical_path`` — bounded by the device
        count; 1.0 for an empty timeline."""
        crit = self.critical_path_ms
        return self.sum_of_work_ms / crit if crit > 0 else 1.0

    def per_device_ms(self) -> List[float]:
        """Busy (not wall) ms per device: barriers count on device 0
        where their record lives."""
        return [fsum(r.ms for r in d.timeline) for d in self.devices]

    def device_records(self, device_id: int) -> List[LaunchRecord]:
        return list(self.devices[device_id].timeline)

    def decomposes(self, source: Device) -> Optional[str]:
        """Check this view is an exact partition of ``source``.

        Every source record must appear on exactly one device, in
        source order within its device, with its original pricing.
        Returns a description of the first violation, ``None`` when the
        partition is exact.
        """
        merged = [rec for rec, _, _ in self.schedule]
        if len(merged) != len(source.timeline):
            return (f"partition has {len(merged)} records, source has "
                    f"{len(source.timeline)}")
        for i, (a, b) in enumerate(zip(source.timeline, merged)):
            if a is not b and a != b:
                return (f"record {i} differs: partition has "
                        f"{b.name!r}/{b.tag!r}, source has "
                        f"{a.name!r}/{a.tag!r}")
        placed = sum(len(d.timeline) for d in self.devices)
        if placed != len(source.timeline):
            return (f"devices hold {placed} records, source has "
                    f"{len(source.timeline)}")
        return None

    def report(self) -> Dict:
        """Summary dict for benchmarks and traces."""
        return {
            "n_devices": self.n_devices,
            "launches": len(self.schedule),
            "critical_path_ms": self.critical_path_ms,
            "sum_of_work_ms": self.sum_of_work_ms,
            "modeled_speedup": self.modeled_speedup,
            "per_device_ms": self.per_device_ms(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<MultiDeviceTimeline devices={self.n_devices} "
                f"launches={len(self.schedule)} "
                f"critical={self.critical_path_ms:.3f}ms "
                f"speedup={self.modeled_speedup:.2f}x>")
