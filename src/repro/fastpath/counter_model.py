"""Production-mode counter replay for the fused BFS tier.

The fused layer kernels compute no counters — in production mode each
layer instead defers a zero-argument closure built here into the
context's replay log.  The closure captures the layer's *inputs* (one
frontier-word and one mask-word snapshot, ~16 KB each at scale 17, plus
two side-kernel integers the fused side traversal produces for free)
and, at :meth:`~repro.runtime.context.ExecutionContext.replay` time,
runs the preserved reference kernel on them to obtain the counters.

Exactness is structural, not re-derived: the modeled counters are a
pure function of the kernel inputs — the paper's cost model never
depends on host execution strategy — so feeding the reference kernel
identical inputs yields identical counters, launch for launch, to a
counters-on run.  The production-replay verify check enforces this.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..core.bfs_kernels import (pull_csc_kernel, push_csc_kernel,
                                push_csr_kernel)
from ..core.selection import PULL_CSC, PUSH_CSC, PUSH_CSR
from ..gpusim import KernelCounters
from ..tiles.bitmask import BitVector

__all__ = ["layer_counter_closure", "side_counters"]


def side_counters(side_nnz: int, n_src_active: int,
                  n_claimed: int) -> KernelCounters:
    """The side-edge kernel's counters from its three determinants:
    stored edges, edges leaving the frontier, and unvisited
    destinations claimed (:meth:`TileBFS._side_kernel`'s exact math).
    """
    c = KernelCounters(launches=1)
    c.coalesced_read_bytes += side_nnz * 16.0
    c.random_read_count += float(n_src_active)
    c.atomic_ops += float(n_claimed)
    c.random_write_count += float(n_claimed)
    c.warps = max(1.0, side_nnz / 32.0)
    return c


def layer_counter_closure(op, kernel_name: str, x_words: np.ndarray,
                          m_words: np.ndarray,
                          side_stats: Optional[Tuple[int, int]]
                          ) -> Callable[[], KernelCounters]:
    """A deferred computation of one fused BFS layer's merged counters.

    ``x_words`` / ``m_words`` are this layer's input snapshots (copies
    — the live vectors ping-pong); ``side_stats`` is the
    ``(n_src_active, n_claimed)`` pair from :func:`fused_side`, or
    ``None`` when the plan has no extracted side edges.
    """
    A1, A2, side_nnz = op.A1, op.A2, op.side.nnz
    n, nt = op.n, op.nt

    def compute() -> KernelCounters:
        x = BitVector(n, nt, x_words)
        m = BitVector(n, nt, m_words)
        if kernel_name == PUSH_CSC:
            counters = push_csc_kernel(A1, x, m)[1]
        elif kernel_name == PUSH_CSR:
            counters = push_csr_kernel(A2, x, m)[1]
        elif kernel_name == PULL_CSC:
            counters = pull_csc_kernel(A1, x, m)[1]
        else:  # pragma: no cover - dispatch is exhaustive
            raise ValueError(f"unknown kernel {kernel_name!r}")
        if side_stats is not None:
            counters = counters.merged(side_counters(side_nnz,
                                                     *side_stats))
        return counters

    return compute
