"""Loop-level fused BFS kernels, Numba-compiled when available.

Each kernel is written once as a plain-Python loop (the ``_py``
suffix), operating on the raw arrays of the bitmask structures — no
object attributes, no allocation — and wrapped with
``numba.njit(cache=True)`` at import time when the optional
``fastpath`` extra is installed.  The ``_py`` originals stay exported
so the loop *logic* is testable on tiny inputs even where Numba is
absent; the vectorized NumPy tier in :mod:`repro.fastpath.fused_layers`
never calls them.

All kernels are result-only: they produce exactly the words the
reference kernels in :mod:`repro.core.bfs_kernels` produce (OR is
commutative and idempotent, so visit order is irrelevant) and compute
no counters — production-mode accounting is replayed afterwards by
:mod:`repro.fastpath.counter_model`.

One loop serves both push directions: within one row tile the visited
mask word is constant, so ``OR(words) & ~m == OR(words & ~m)`` — the
masked gather over the column-compressed tiles *is* Push-CSC, and it
is also the bit-gather regime of Push-CSR run through the plan's
attached column view.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NUMBA_COMPILED",
           "push_gather_masked", "push_sweep", "pull_columns",
           "side_push", "msbfs_expand_words",
           "_push_gather_masked_py", "_push_sweep_py",
           "_pull_columns_py", "_side_push_py",
           "_msbfs_expand_words_py"]

_U64 = np.uint64
_ONE = _U64(1)


def _push_gather_masked_py(tile_ptr, tile_otheridx, words, nt,
                           frontier, m_words, y_words):
    """Vector-driven push over column-compressed tiles, mask fused in.

    For each frontier vertex, OR its local column word of every stored
    tile in its tile column — already ANDed with the inverted visited
    word — into the result.  Serves Push-CSC (K1) directly and the
    bit-gather regime of Push-CSR (K2) via the column view.
    """
    for i in range(len(frontier)):
        j = frontier[i]
        jt = j // nt
        lc = j % nt
        for t in range(tile_ptr[jt], tile_ptr[jt + 1]):
            rt = tile_otheridx[t]
            w = words[t, lc] & ~m_words[rt]
            if w:
                y_words[rt] |= w


def _push_sweep_py(words, tile_otheridx, tile_majoridx, nt,
                   x_words, y_words):
    """Matrix-driven Push-CSR sweep: stream the row-compressed tiles,
    AND each stored row word with its column's frontier word, and pack
    hit rows into the result row-tile word.  ``y_words`` accumulates
    unmasked; the caller applies ``~m`` once (as the reference does).
    """
    for t in range(len(tile_otheridx)):
        xw = x_words[tile_otheridx[t]]
        if xw == 0:
            continue
        acc = _U64(0)
        for r in range(nt):
            if words[t, r] & xw:
                acc |= _ONE << _U64(nt - 1 - r)
        if acc:
            y_words[tile_majoridx[t]] |= acc


def _pull_columns_py(tile_ptr, tile_otheridx, words, nt,
                     m_words, inv_words, y_words):
    """Pull-CSC over the unvisited tile columns with the per-vertex
    early exit of Alg. 7: a lane stops scanning its column's tiles the
    moment a visited parent appears."""
    for c in range(len(inv_words)):
        rem = inv_words[c]
        if rem == 0:
            continue
        acc = _U64(0)
        for t in range(tile_ptr[c], tile_ptr[c + 1]):
            if rem == 0:
                break
            mw = m_words[tile_otheridx[t]]
            if mw == 0:
                continue
            for lc in range(nt):
                b = _ONE << _U64(nt - 1 - lc)
                if (rem & b) and (words[t, lc] & mw):
                    acc |= b
                    rem &= ~b
        y_words[c] = acc


def _side_push_py(indptr, dst_word, dst_bit, frontier, m_words, y_words):
    """Per-edge traversal of the extracted side COO over its CSC
    index: claim the unvisited destination bit of every edge leaving a
    frontier vertex."""
    for i in range(len(frontier)):
        j = frontier[i]
        for e in range(indptr[j], indptr[j + 1]):
            w = dst_word[e]
            b = dst_bit[e] & ~m_words[w]
            if b:
                y_words[w] |= b


def _msbfs_expand_words_py(indptr, indices, frontier, next_words):
    """One MS-BFS expansion: every vertex with a non-empty frontier
    word pushes it along its out-edges.  Returns ``(n_active,
    n_edges)`` — the two quantities the modeled counters need."""
    n_active = 0
    n_edges = 0
    for v in range(len(frontier)):
        w = frontier[v]
        if w == 0:
            continue
        n_active += 1
        start, end = indptr[v], indptr[v + 1]
        for e in range(start, end):
            next_words[indices[e]] |= w
        n_edges += end - start
    return n_active, n_edges


try:
    from numba import njit
except ImportError:
    njit = None

#: Whether the exported kernels below are Numba-compiled (the Numba CI
#: leg asserts this); without the ``fastpath`` extra they alias the
#: plain-Python loops, which only the tiny-input logic tests should
#: ever call — the vectorized NumPy tier handles real sizes.
NUMBA_COMPILED = njit is not None

if NUMBA_COMPILED:  # pragma: no cover - requires the fastpath extra
    push_gather_masked = njit(cache=True)(_push_gather_masked_py)
    push_sweep = njit(cache=True)(_push_sweep_py)
    pull_columns = njit(cache=True)(_pull_columns_py)
    side_push = njit(cache=True)(_side_push_py)
    msbfs_expand_words = njit(cache=True)(_msbfs_expand_words_py)
else:
    push_gather_masked = _push_gather_masked_py
    push_sweep = _push_sweep_py
    pull_columns = _pull_columns_py
    side_push = _side_push_py
    msbfs_expand_words = _msbfs_expand_words_py
