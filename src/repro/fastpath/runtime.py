"""Fast-path tier resolution.

The compiled tier has two implementations of every fused layer kernel:
a Numba ``@njit(cache=True)`` loop (when the optional ``fastpath``
extra is installed) and a mega-batched vectorized NumPy fallback that
keeps bare installs and CI legs without Numba working.  Which one runs
— or whether the fused tier runs at all — resolves here.

``REPRO_FASTPATH`` environment override:

* ``auto`` (default) — Numba when importable, else NumPy;
* ``numba`` — insist on Numba, degrading gracefully to NumPy with no
  error when it is not installed (so one CI matrix works everywhere);
* ``numpy`` — force the vectorized fallback even when Numba is
  installed (the equivalence grid pins both legs this way);
* ``off`` — disable the fused tier; operators run the preserved
  per-launch reference kernels (``KernelSelector(tier="fastpath")``
  still overrides this).
"""

from __future__ import annotations

import os

__all__ = ["numba_available", "fastpath_tier", "FASTPATH_ENV"]

FASTPATH_ENV = "REPRO_FASTPATH"

_numba_ok: bool | None = None


def numba_available() -> bool:
    """Whether ``numba.njit`` is importable (checked once per process)."""
    global _numba_ok
    if _numba_ok is None:
        try:
            from numba import njit  # noqa: F401
            _numba_ok = True
        except ImportError:
            _numba_ok = False
    return _numba_ok


def fastpath_tier() -> str:
    """Resolve the effective tier: ``"numba"``, ``"numpy"``, or
    ``"off"``.

    Reads :data:`FASTPATH_ENV` on every call so tests can monkeypatch
    the environment per case; unknown values fall back to ``auto``.
    """
    env = os.environ.get(FASTPATH_ENV, "auto").strip().lower()
    if env == "off":
        return "off"
    if env == "numpy":
        return "numpy"
    # "numba", "auto", and anything unrecognised resolve by probing
    return "numba" if numba_available() else "numpy"
