"""The fused TileBFS driver: one compiled call per layer.

:func:`run_fused` is the fast-path twin of
:meth:`repro.core.tilebfs.TileBFS.run_multi`.  It keeps the reference
loop's structure bit for bit — same scratch ping-pong, same §3.4
kernel selection (including the Pull-CSC symmetry fallback), same
regime switches inside each kernel — but every layer runs the
result-only fused kernels from :mod:`repro.fastpath.fused_layers` /
:mod:`repro.fastpath.numba_kernels`: no counter construction, no
launch-name formatting, no tracer plumbing in the loop.

Accounting never happens inline here.  :meth:`TileBFS.run_multi` only
routes to this driver when the context prices nothing (no device) or
defers everything (production mode); in the latter case each layer
appends one counter closure (:mod:`repro.fastpath.counter_model`) to
the context's replay log, so the full modeled timeline stays available
after the fact and matches a counters-on run exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.selection import PULL_CSC, PUSH_CSC, PUSH_CSR
from ..tiles.bitmask import BitVector
from .counter_model import layer_counter_closure
from .fused_layers import (FusedBFSLayout, fused_pull_csc, fused_push_csc,
                           fused_push_csr, fused_side)
from .runtime import fastpath_tier

__all__ = ["run_fused", "bfs_layout"]

_LAUNCH_NAMES = {PUSH_CSC: "tilebfs_push_csc",
                 PUSH_CSR: "tilebfs_push_csr",
                 PULL_CSC: "tilebfs_pull_csc"}


def bfs_layout(op) -> FusedBFSLayout:
    """The plan's fused layout, built on first use and cached as a lazy
    plan slot (shared with every operator on the same plan)."""
    return op._plan.lazy_get(
        "fastpath_layout",
        lambda: FusedBFSLayout(op.A1, op.A2, op.side, op.n, op.nt))


def run_fused(op, sources: Sequence[int],
              max_depth: Optional[int]) -> "BFSResult":
    """Run one traversal through the fused tier.

    ``op`` is a prepared in-core :class:`~repro.core.tilebfs.TileBFS`;
    sources are validated/deduplicated by the caller.  Iteration
    records carry ``simulated_ms=0.0`` — in production mode the priced
    timeline comes from ``op.ctx.replay()``.
    """
    from ..core.tilebfs import BFSResult, IterationRecord

    layout = bfs_layout(op)
    use_numba = fastpath_tier() == "numba"
    production = op.ctx.production

    levels = np.full(op.n, -1, dtype=np.int64)
    levels[sources] = 0
    plan = op._plan
    workspaces = [
        plan.acquire_scratch(
            "bitvector", lambda: BitVector.zeros(op.n, op.nt))
        for _ in range(3)]
    try:
        x, y, m = workspaces
        x.clear()
        x.set_indices(sources)
        m.words[:] = x.words
        result = BFSResult(levels=levels)
        depth = 0
        frontier_idx = np.asarray(sources, dtype=np.int64)
        frontier_size = len(frontier_idx)
        visited_count = frontier_size

        while frontier_size > 0:
            if max_depth is not None and depth >= max_depth:
                break
            depth += 1
            kernel_name = op.selector.choose(
                frontier_sparsity=frontier_size / op.n,
                unvisited_fraction=(op.n - visited_count) / op.n,
            )
            if kernel_name == PULL_CSC and not op.symmetric:
                kernel_name = PUSH_CSR
            if production:
                x_snap = x.words.copy()
                m_snap = m.words.copy()
            y.clear()
            side_folded = False
            if kernel_name == PUSH_CSC:
                fused_push_csc(layout, frontier_idx, m, y, use_numba)
            elif kernel_name == PUSH_CSR:
                side_folded = fused_push_csr(layout, frontier_idx, x, m,
                                             y, use_numba)
            else:
                fused_pull_csc(layout, m, y, use_numba)
            side_stats = None
            if layout.side_nnz and (not side_folded or production):
                side_stats = fused_side(layout, frontier_idx, m, y,
                                        want_stats=production,
                                        use_numba=use_numba,
                                        scatter=not side_folded)
            if production:
                op.ctx.defer(
                    _LAUNCH_NAMES[kernel_name],
                    layer_counter_closure(op, kernel_name, x_snap,
                                          m_snap, side_stats),
                    phase="iteration")

            n_new = y.count()
            result.iterations.append(IterationRecord(
                depth=depth, kernel=kernel_name,
                frontier_size=frontier_size,
                new_vertices=n_new, simulated_ms=0.0,
            ))
            if n_new == 0:
                break
            new_idx = y.to_indices()
            levels[new_idx] = depth
            m |= y
            visited_count += n_new
            x, y = y, x
            frontier_idx = new_idx
            frontier_size = n_new
        return result
    finally:
        for ws in workspaces:
            plan.release_scratch("bitvector", ws)
