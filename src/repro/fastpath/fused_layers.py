"""Plan-time fused layout + vectorized NumPy layer kernels.

:class:`FusedBFSLayout` is built once per BFS plan (a lazy plan slot)
and holds everything the fused per-layer dispatch needs beyond the
A1/A2 tilings themselves:

* a *compressed word-level sweep* of the row tiles for the dense-
  frontier Push-CSR regime — the reference sweep ANDs all
  ``n_tiles * nt`` stored words per layer even though only ~10-15% are
  non-zero on power-law graphs; flattening the non-zero (tile, local
  row) words once at plan time turns each layer into a handful of
  in-place vector ops and one ``bitwise_or.reduceat`` per chunk, with
  no per-tile Python iteration and no per-layer allocation (chunks are
  cut at reduce-segment boundaries so the working set stays
  cache-resident);
* a *word-level* CSC index of the extracted very-sparse side edges —
  destination word index + destination bit per edge — so the per-edge
  side traversal gathers exactly the edges leaving the frontier and
  masks them against the visited words directly (``bit & ~m.word``),
  with no per-layer frontier boolean and no visited-bool maintenance.

The layer kernels here are the NumPy tier of the fused fast path;
:mod:`repro.fastpath.numba_kernels` holds the compiled loop tier.  All
of them are result-only and byte-identical to the reference kernels in
:mod:`repro.core.bfs_kernels` — counters are replayed afterwards by
:mod:`repro.fastpath.counter_model`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._util import concat_ranges, gather_ranges, group_starts
from ..core.bfs_kernels import (BIT_GATHER_FACTOR, PULL_WORD_COST_FACTOR,
                                _push_csr_bit_gather, expand_vertex_tiles)
from ..formats.csr import compress_indptr
from ..tiles.bitmask import (BitTiledMatrix, BitVector, bit_positions,
                             bit_weight_vector, pack_hit_words,
                             segmented_scatter_or)
from . import numba_kernels as nb

__all__ = ["FusedBFSLayout", "fused_push_csc", "fused_push_csr",
           "fused_pull_csc", "fused_side"]

_U64 = np.uint64

#: Non-zero stored words per sweep chunk — sized so the chunk buffer
#: plus the streamed value/index/bit slices fit in L2, which beats one
#: monolithic pass by ~20% at scale 17.
_SWEEP_CHUNK = 1 << 16


class FusedBFSLayout:
    """Per-plan gather structures and buffers of the fused BFS tier."""

    def __init__(self, A1: BitTiledMatrix, A2: BitTiledMatrix, side,
                 n: int, nt: int):
        self.A1 = A1
        self.A2 = A2
        self.n = n
        self.nt = nt
        # ---- compressed word-level sweep over the row tiles --------
        # every non-zero (stored tile, local row) word: its value, its
        # column tile (frontier word to AND with), and its contributed
        # result bit; equal row tiles form the reduce segments.  A side
        # edge j -> i has exactly the same shape — a single-bit row
        # word (bit of column j) in row tile i//nt contributing the bit
        # of row i — so the side edges fold into the sweep arrays and
        # the dense-frontier layers need no separate side pass at all
        # (the trailing ``& ~m`` covers the side's visited filter).
        bw = bit_weight_vector(nt)
        wt, wr = np.nonzero(A2.words)
        vals = A2.words[wt, wr]
        ctile = A2.tile_otheridx[wt]
        bits = bw[wr]
        rtile = A2.tile_majoridx()[wt]
        if side.nnz:
            vals = np.concatenate((vals, bw[side.col % nt]))
            ctile = np.concatenate((ctile, side.col // nt))
            bits = np.concatenate((bits, bw[side.row % nt]))
            rtile = np.concatenate((rtile, side.row // nt))
            order = np.argsort(rtile, kind="stable")
            vals = vals[order]
            ctile = ctile[order]
            bits = bits[order]
            rtile = rtile[order]
        # int64 indices + mode="clip" keep np.take on its fast path
        # (the int32/bounds-checked combination is ~3x slower)
        self.sweep_words = np.ascontiguousarray(vals)
        self.sweep_ctile = np.ascontiguousarray(ctile, dtype=np.int64)
        self.sweep_bit = np.ascontiguousarray(bits)
        starts = group_starts(rtile)
        rt_unique = rtile[starts]
        # chunk boundaries, snapped to segment starts so every row
        # tile's reduction lives in exactly one chunk
        k = len(self.sweep_words)
        cut = np.searchsorted(starts, np.arange(_SWEEP_CHUNK, k,
                                                _SWEEP_CHUNK))
        bnds = np.unique(np.concatenate(
            ([0], cut, [len(starts)]))).astype(np.int64)
        self.sweep_chunks = []
        max_len = 0
        for a, b in zip(bnds[:-1], bnds[1:]):
            s0 = int(starts[a])
            s1 = int(starts[b]) if b < len(starts) else k
            self.sweep_chunks.append(
                (slice(s0, s1), starts[a:b] - s0, rt_unique[a:b]))
            max_len = max(max_len, s1 - s0)
        self._sweep_buf = np.empty(max_len, dtype=_U64)
        # ---- word-level CSC index of the extracted side edges ------
        self.side_nnz = side.nnz
        if side.nnz:
            order = np.argsort(side.col, kind="stable")
            rows = side.row[order]
            self.side_dst_word = (rows // nt).astype(np.int32)
            self.side_dst_bit = bit_positions(rows % nt, nt)
            self.side_indptr = compress_indptr(side.col[order], n)
        else:
            self.side_dst_word = np.zeros(0, dtype=np.int32)
            self.side_dst_bit = np.zeros(0, dtype=_U64)
            self.side_indptr = np.zeros(n + 1, dtype=np.int64)

    # ------------------------------------------------------------------
    def sweep(self, x_words: np.ndarray, y: BitVector) -> None:
        """The compressed Push-CSR sweep: per chunk, gather each stored
        word's frontier word, AND, collapse hits to the contributed
        bit, and segment-reduce into the result row tiles — all in one
        reused buffer.  ``y`` (cleared by the caller) accumulates
        unmasked; the caller applies ``~m`` once."""
        for sl, seg_starts, rt in self.sweep_chunks:
            buf = self._sweep_buf[:sl.stop - sl.start]
            np.take(x_words, self.sweep_ctile[sl], out=buf, mode="clip")
            np.bitwise_and(self.sweep_words[sl], buf, out=buf)
            # hit words collapse to 0/1, then to the row bit they carry
            np.minimum(buf, 1, out=buf)
            np.multiply(buf, self.sweep_bit[sl], out=buf)
            y.words[rt] = np.bitwise_or.reduceat(buf, seg_starts)


def fused_push_csc(layout: FusedBFSLayout, frontier: np.ndarray,
                   m: BitVector, y: BitVector, use_numba: bool) -> None:
    """Result-only K1: vector-driven push with the mask fused in
    (``OR(words) & ~m == OR(words & ~m)`` — per row tile the mask word
    is constant)."""
    A1 = layout.A1
    if use_numba:
        nb.push_gather_masked(A1.tile_ptr, A1.tile_otheridx, A1.words,
                              layout.nt, frontier, m.words, y.words)
        return
    _, gathered, lc_rep = expand_vertex_tiles(A1, frontier)
    if len(gathered):
        col_words = A1.words[gathered, lc_rep]
        row_tiles = A1.tile_otheridx[gathered]
        segmented_scatter_or(y.words, row_tiles,
                             col_words & ~m.words[row_tiles])


def fused_push_csr(layout: FusedBFSLayout, frontier: np.ndarray,
                   x: BitVector, m: BitVector, y: BitVector,
                   use_numba: bool) -> bool:
    """Result-only K2 with the reference regime switch: frontier-
    proportional bit gather over the column view while the frontier is
    sparse, the compressed streaming sweep near density.

    Returns True when the layer's side edges were already applied — the
    NumPy sweep streams them as folded single-bit words, so the caller
    must skip the separate side pass.
    """
    A2 = layout.A2
    nt = layout.nt
    n_tiles = A2.n_nonempty_tiles
    if n_tiles == 0:
        return False
    A1v = A2.column_view()
    cols = np.flatnonzero(x.words)
    counts = A1v.tile_ptr[cols + 1] - A1v.tile_ptr[cols]
    if not int(counts.sum()):
        return False
    xw_cols = x.words[cols]
    bits_per_col = np.bitwise_count(xw_cols).astype(np.int64)
    n_bits = int((counts * bits_per_col).sum())
    if BIT_GATHER_FACTOR * n_bits <= n_tiles * nt:
        if use_numba:
            # masked gather over the column view == bit-gather regime
            nb.push_gather_masked(A1v.tile_ptr, A1v.tile_otheridx,
                                  A1v.words, nt, frontier, m.words,
                                  y.words)
            return False
        _push_csr_bit_gather(A1v, xw_cols, cols, counts, bits_per_col, y)
        y.words &= ~m.words
        return False
    if use_numba:
        nb.push_sweep(A2.words, A2.tile_otheridx, A2.tile_majoridx(),
                      nt, x.words, y.words)
        y.words &= ~m.words
        return False
    layout.sweep(x.words, y)
    y.words &= ~m.words
    return True


def fused_pull_csc(layout: FusedBFSLayout, m: BitVector, y: BitVector,
                   use_numba: bool) -> None:
    """Result-only K3 with the reference word/vertex regime switch.

    Skips the reference kernel's first-hit/early-exit scan entirely —
    that computation exists only for the modeled counters, which the
    replay model recomputes on demand.
    """
    A1 = layout.A1
    nt = layout.nt
    inv_words = A1.full_mask_words() & ~m.words
    if use_numba:
        nb.pull_columns(A1.tile_ptr, A1.tile_otheridx, A1.words, nt,
                        m.words, inv_words, y.words)
        return
    cols = np.flatnonzero(inv_words)
    if not len(cols):
        return
    counts = A1.tile_ptr[cols + 1] - A1.tile_ptr[cols]
    unvisited_per_col = np.bitwise_count(inv_words[cols]).astype(np.int64)
    n_gathered = int((counts * unvisited_per_col).sum())
    if not n_gathered:
        return
    if int(counts.sum()) * nt <= PULL_WORD_COST_FACTOR * n_gathered:
        nonempty = counts > 0
        cols_ne = cols[nonempty]
        counts_ne = counts[nonempty]
        sel = gather_ranges(A1.tile_ptr, cols_ne)
        masked = A1.words[sel] & m.words[A1.tile_otheridx[sel]][:, None]
        starts = np.zeros(len(cols_ne), dtype=np.int64)
        np.cumsum(counts_ne[:-1], out=starts[1:])
        col_or = np.bitwise_or.reduceat(pack_hit_words(masked != 0, nt),
                                        starts)
        y.words[cols_ne] = col_or & inv_words[cols_ne]
    else:
        unvisited = BitVector(layout.n, nt, inv_words).to_indices()
        lengths, gathered, lc_rep = expand_vertex_tiles(A1, unvisited)
        parents_visited = (A1.words[gathered, lc_rep]
                           & m.words[A1.tile_otheridx[gathered]]) != 0
        seg_starts = np.zeros(len(unvisited), dtype=np.int64)
        np.cumsum(lengths[:-1], out=seg_starts[1:])
        nonempty = lengths > 0
        found = np.zeros(len(unvisited), dtype=bool)
        if nonempty.any():
            found[nonempty] = np.logical_or.reduceat(
                parents_visited, seg_starts[nonempty])
        y.set_indices(unvisited[found])


def fused_side(layout: FusedBFSLayout, frontier: np.ndarray,
               m: BitVector, y: BitVector, want_stats: bool,
               use_numba: bool = False, scatter: bool = True
               ) -> Optional[Tuple[int, int]]:
    """Per-edge traversal of the extracted side COO at word level:
    gather the destination (word, bit) of exactly the edges leaving
    the frontier, drop visited bits against the mask words directly,
    and OR the survivors into ``y``.

    Equivalent to the reference ``_side_kernel`` — the visited boolean
    it filters on is the same vertex set as ``m``'s bits — without
    maintaining any per-vertex boolean.  With ``want_stats`` (the
    production counter replay), returns ``(n_src_active, n_claimed)``,
    the side kernel's two data-dependent counter determinants; with
    ``scatter=False`` (the sweep already streamed the folded side
    edges) only the stats are computed.
    """
    if use_numba and scatter and not want_stats:
        nb.side_push(layout.side_indptr, layout.side_dst_word,
                     layout.side_dst_bit, frontier, m.words, y.words)
        return None
    indptr = layout.side_indptr
    lengths = indptr[frontier + 1] - indptr[frontier]
    sel = concat_ranges(indptr[frontier], lengths)
    widx = layout.side_dst_word[sel]
    new_bits = layout.side_dst_bit[sel] & ~m.words[widx]
    claimed = np.flatnonzero(new_bits)
    if scatter and len(claimed):
        np.bitwise_or.at(y.words, widx[claimed], new_bits[claimed])
    if not want_stats:
        return None
    return len(widx), len(claimed)
