"""Compiled per-layer fast path (ROADMAP item 4).

The wallclock benchmarks showed the kernels winning their battles while
BFS end-to-end stalled: per-layer Python dispatch — kernel selection,
counter tallies, launch bookkeeping, small-array launches — dominated
the hot loop.  This package collapses one whole BFS layer into a single
call:

* :mod:`~repro.fastpath.numba_kernels` — loop-level fused kernels,
  ``@njit(cache=True)``-compiled when the ``fastpath`` extra is
  installed;
* :mod:`~repro.fastpath.fused_layers` — the plan-time
  :class:`~repro.fastpath.fused_layers.FusedBFSLayout` (compressed
  word-level sweep, side-edge CSC index, reusable buffers) and the
  mega-batched vectorized NumPy tier;
* :mod:`~repro.fastpath.fused_bfs` — the fused traversal driver
  :meth:`~repro.core.tilebfs.TileBFS.run_multi` routes through;
* :mod:`~repro.fastpath.counter_model` — production-mode counter
  replay, keeping the modeled timeline byte-identical on demand.

Tier selection lives in :func:`fastpath_tier` (``REPRO_FASTPATH`` env:
``auto`` / ``numba`` / ``numpy`` / ``off``) and can be pinned per
operator with ``KernelSelector(tier=...)``.
"""

from .runtime import FASTPATH_ENV, fastpath_tier, numba_available

__all__ = ["FASTPATH_ENV", "fastpath_tier", "numba_available"]
