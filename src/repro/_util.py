"""Small vectorized building blocks shared across kernels.

These are the NumPy idioms that stand in for the per-thread loops a
CUDA kernel would use: range concatenation (a warp iterating a CSR
segment), segment reduction (a warp-level shuffle reduction), and
stable grouping (a bucket sort).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "concat_ranges",
    "gather_ranges",
    "segment_sum",
    "segment_reduce",
    "group_starts",
    "ceil_div",
]


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    return -(-a // b)


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate integer ranges ``[starts[i], starts[i]+lengths[i])``.

    Vectorized equivalent of
    ``np.concatenate([np.arange(s, s+l) for s, l in zip(starts, lengths)])``
    — the gather pattern of a warp walking several CSR segments.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    seg = np.repeat(np.arange(len(lengths), dtype=np.int64), lengths)
    seg_start = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    within = np.arange(total, dtype=np.int64) - seg_start[seg]
    return np.asarray(starts, dtype=np.int64)[seg] + within


def gather_ranges(indptr: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Concatenate the CSR segments ``[indptr[i], indptr[i+1])`` for
    each ``i`` in ``ids``.

    The active-set gather: ``ids`` is the (small) list of selected
    segments and the output indexes only their elements, so the cost is
    proportional to the selected payload, never to the whole array.
    """
    ids = np.asarray(ids, dtype=np.int64)
    return concat_ranges(indptr[ids], indptr[ids + 1] - indptr[ids])


def segment_sum(values: np.ndarray, segment_ids: np.ndarray,
                n_segments: int) -> np.ndarray:
    """Sum ``values`` into ``n_segments`` bins keyed by ``segment_ids``.

    ``segment_ids`` need not be sorted.  This is the scatter-add a GPU
    kernel realises with ``atomicAdd`` into global memory.
    """
    out = np.zeros(n_segments, dtype=values.dtype)
    if len(values):
        np.add.at(out, segment_ids, values)
    return out


def segment_reduce(ufunc: np.ufunc, values: np.ndarray,
                   sorted_segment_ids: np.ndarray,
                   n_segments: int, identity) -> np.ndarray:
    """Reduce values grouped by a *sorted* segment-id array with ``ufunc``.

    Faster than ``ufunc.at`` when the ids are presorted (the merge step
    of column-major SpMSpV after a bucket sort).
    """
    out = np.full(n_segments, identity,
                  dtype=np.result_type(values.dtype, type(identity)))
    if len(values) == 0:
        return out
    starts = group_starts(sorted_segment_ids)
    reduced = ufunc.reduceat(values, starts)
    out[sorted_segment_ids[starts]] = reduced
    return out


def group_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Indices where each run of equal keys begins in a sorted array."""
    if len(sorted_keys) == 0:
        return np.zeros(0, dtype=np.int64)
    boundary = np.empty(len(sorted_keys), dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    return np.flatnonzero(boundary)
