"""Compressed Sparse Column (CSC) format.

CSC is the storage of the vector-driven SpMSpV methods (paper Alg. 2 and
the CombBLAS bucket baseline) — each nonzero of the sparse input vector
selects one stored column of the matrix.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._util import concat_ranges
from ..errors import FormatError, ShapeError
from .base import SparseMatrix
from .coo import COOMatrix
from .csr import compress_indptr, expand_indptr

__all__ = ["CSCMatrix"]


class CSCMatrix(SparseMatrix):
    """Sparse matrix in compressed sparse column layout.

    Attributes
    ----------
    indptr:
        ``int64[ncols + 1]`` column pointers.
    indices:
        ``int64[nnz]`` row indices, sorted within each column.
    data:
        values, parallel to ``indices``.
    """

    def __init__(self, shape: Tuple[int, int], indptr: np.ndarray,
                 indices: np.ndarray, data: Optional[np.ndarray] = None):
        m, n = int(shape[0]), int(shape[1])
        if m < 0 or n < 0:
            raise ShapeError(f"negative matrix dimension in shape {shape}")
        self.shape = (m, n)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if data is None:
            data = np.ones(len(self.indices), dtype=np.float64)
        self.data = np.ascontiguousarray(data)
        self.validate()

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def validate(self) -> None:
        m, n = self.shape
        if len(self.indptr) != n + 1:
            raise FormatError(
                f"CSC indptr length {len(self.indptr)} != ncols+1 ({n + 1})"
            )
        if self.indptr[0] != 0:
            raise FormatError("CSC indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("CSC indptr must be non-decreasing")
        if self.indptr[-1] != len(self.indices):
            raise FormatError(
                f"CSC indptr[-1]={self.indptr[-1]} != nnz={len(self.indices)}"
            )
        if len(self.data) != len(self.indices):
            raise FormatError("CSC data/indices length mismatch")
        if len(self.indices):
            if self.indices.min() < 0 or (m and self.indices.max() >= m):
                raise FormatError(
                    f"CSC row index out of range for shape {self.shape}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        """Build from COO (duplicates summed, columns sorted)."""
        coo = coo.sum_duplicates()
        order = np.lexsort((coo.row, coo.col))
        col = coo.col[order]
        indptr = compress_indptr(col, coo.shape[1])
        return cls(coo.shape, indptr, coo.row[order], coo.val[order])

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def empty(cls, shape: Tuple[int, int],
              dtype: np.dtype = np.float64) -> "CSCMatrix":
        return cls(shape, np.zeros(shape[1] + 1, dtype=np.int64),
                   np.zeros(0, dtype=np.int64), np.zeros(0, dtype=dtype))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def col_slice(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row indices, values)`` of column ``j`` (views, no copy)."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_degrees(self) -> np.ndarray:
        """Number of stored entries per column."""
        return np.diff(self.indptr)

    def col_of_entry(self) -> np.ndarray:
        """Per-nonzero column index (the expansion of ``indptr``)."""
        return expand_indptr(self.indptr)

    def gather_columns(self, cols: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenate the given columns.

        Returns ``(rows, vals, source_col_of_entry)`` — the gather step
        shared by every vector-driven SpMSpV (the nonzero structure of
        all touched columns, annotated with which selected column each
        entry came from, as an index into ``cols``).
        """
        cols = np.asarray(cols, dtype=np.int64)
        if len(cols) and (cols.min() < 0 or cols.max() >= self.shape[1]):
            raise ShapeError("column selection index out of range")
        lengths = self.indptr[cols + 1] - self.indptr[cols]
        gather = concat_ranges(self.indptr[cols], lengths)
        src = np.repeat(np.arange(len(cols), dtype=np.int64), lengths)
        return self.indices[gather], self.data[gather], src

    # ------------------------------------------------------------------
    # Conversions / ops
    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        return COOMatrix(self.shape, self.indices.copy(),
                         self.col_of_entry(), self.data.copy())

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def to_csc(self) -> "CSCMatrix":
        return self

    def transpose(self):
        """Transpose; returns the CSR view of the same arrays."""
        from .csr import CSRMatrix

        return CSRMatrix((self.shape[1], self.shape[0]),
                         self.indptr.copy(), self.indices.copy(),
                         self.data.copy())

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Dense ``y = A @ x`` via column scaling + scatter-add."""
        self._check_matvec_shape(x)
        y = np.zeros(self.shape[0],
                     dtype=np.result_type(self.data.dtype, x.dtype))
        if self.nnz:
            xs = np.repeat(x, np.diff(self.indptr))
            np.add.at(y, self.indices, self.data * xs)
        return y
