"""Compressed Sparse Row (CSR) format.

CSR is the input format of the paper's preprocessing step ("we show a
comparison of the time converted a CSR matrix to tiled format", §4.6)
and the storage the row-wise reference SpMSpV (paper Alg. 1) works on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._util import concat_ranges as _ranges
from ..errors import FormatError, ShapeError
from .base import SparseMatrix
from .coo import COOMatrix

__all__ = ["CSRMatrix", "compress_indptr", "expand_indptr"]


def compress_indptr(sorted_major: np.ndarray, n_major: int) -> np.ndarray:
    """Build an indptr array from a *sorted* major-axis index array."""
    counts = np.bincount(sorted_major, minlength=n_major)
    indptr = np.zeros(n_major + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr

def expand_indptr(indptr: np.ndarray) -> np.ndarray:
    """Inverse of :func:`compress_indptr`: per-entry major index."""
    n_major = len(indptr) - 1
    return np.repeat(np.arange(n_major, dtype=np.int64),
                     np.diff(indptr))


class CSRMatrix(SparseMatrix):
    """Sparse matrix in compressed sparse row layout.

    Attributes
    ----------
    indptr:
        ``int64[nrows + 1]`` row pointers.
    indices:
        ``int64[nnz]`` column indices, sorted within each row.
    data:
        values, parallel to ``indices``.
    """

    def __init__(self, shape: Tuple[int, int], indptr: np.ndarray,
                 indices: np.ndarray, data: Optional[np.ndarray] = None):
        m, n = int(shape[0]), int(shape[1])
        if m < 0 or n < 0:
            raise ShapeError(f"negative matrix dimension in shape {shape}")
        self.shape = (m, n)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if data is None:
            data = np.ones(len(self.indices), dtype=np.float64)
        self.data = np.ascontiguousarray(data)
        self.validate()

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def validate(self) -> None:
        m, n = self.shape
        if len(self.indptr) != m + 1:
            raise FormatError(
                f"CSR indptr length {len(self.indptr)} != nrows+1 ({m + 1})"
            )
        if self.indptr[0] != 0:
            raise FormatError("CSR indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("CSR indptr must be non-decreasing")
        if self.indptr[-1] != len(self.indices):
            raise FormatError(
                f"CSR indptr[-1]={self.indptr[-1]} != nnz={len(self.indices)}"
            )
        if len(self.data) != len(self.indices):
            raise FormatError("CSR data/indices length mismatch")
        if len(self.indices):
            if self.indices.min() < 0 or (n and self.indices.max() >= n):
                raise FormatError(
                    f"CSR column index out of range for shape {self.shape}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Build from COO (duplicates summed, rows sorted)."""
        coo = coo.canonicalize()
        indptr = compress_indptr(coo.row, coo.shape[0])
        return cls(coo.shape, indptr, coo.col, coo.val)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def empty(cls, shape: Tuple[int, int],
              dtype: np.dtype = np.float64) -> "CSRMatrix":
        return cls(shape, np.zeros(shape[0] + 1, dtype=np.int64),
                   np.zeros(0, dtype=np.int64), np.zeros(0, dtype=dtype))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def row_slice(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(column indices, values)`` of row ``i`` (views, no copy)."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def row_degrees(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.diff(self.indptr)

    def row_of_entry(self) -> np.ndarray:
        """Per-nonzero row index (the expansion of ``indptr``)."""
        return expand_indptr(self.indptr)

    # ------------------------------------------------------------------
    # Conversions / ops
    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        return COOMatrix(self.shape, self.row_of_entry(),
                         self.indices.copy(), self.data.copy())

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def to_csr(self) -> "CSRMatrix":
        return self

    def transpose(self):
        """Transpose; returns the CSC view of the same arrays."""
        from .csc import CSCMatrix

        return CSCMatrix((self.shape[1], self.shape[0]),
                         self.indptr.copy(), self.indices.copy(),
                         self.data.copy())

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Dense ``y = A @ x`` (vectorized segment reduction)."""
        self._check_matvec_shape(x)
        y = np.zeros(self.shape[0],
                     dtype=np.result_type(self.data.dtype, x.dtype))
        if self.nnz == 0:
            return y
        products = self.data * x[self.indices]
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if len(nonempty):
            starts = self.indptr[nonempty]
            y[nonempty] = np.add.reduceat(products, starts)
        return y

    def select_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """Extract a submatrix of the given rows (column space kept)."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) and (rows.min() < 0 or rows.max() >= self.shape[0]):
            raise ShapeError("row selection index out of range")
        lengths = self.indptr[rows + 1] - self.indptr[rows]
        new_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_indptr[1:])
        gather = _ranges(self.indptr[rows], lengths)
        return CSRMatrix((len(rows), self.shape[1]), new_indptr,
                         self.indices[gather], self.data[gather])


