"""Format conversion helpers and scipy interop.

All conversions route through :class:`~repro.formats.coo.COOMatrix`,
which is canonicalized on the way, so any conversion chain ends in the
same canonical entry order — the round-trip property the test suite
checks with hypothesis.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .base import SparseMatrix
from .bsr import BSRMatrix
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix

__all__ = [
    "to_coo", "to_csr", "to_csc", "to_bsr",
    "from_scipy", "to_scipy_csr", "as_sparse",
]

MatrixLike = Union[SparseMatrix, np.ndarray]


def as_sparse(matrix: MatrixLike) -> SparseMatrix:
    """Accept a library matrix or a dense array; return a library matrix."""
    if isinstance(matrix, SparseMatrix):
        return matrix
    return COOMatrix.from_dense(np.asarray(matrix))


def to_coo(matrix: MatrixLike) -> COOMatrix:
    """Convert anything matrix-like to COO."""
    return as_sparse(matrix).to_coo()


def to_csr(matrix: MatrixLike) -> CSRMatrix:
    """Convert anything matrix-like to CSR."""
    m = as_sparse(matrix)
    return m if isinstance(m, CSRMatrix) else m.to_csr()


def to_csc(matrix: MatrixLike) -> CSCMatrix:
    """Convert anything matrix-like to CSC."""
    m = as_sparse(matrix)
    return m if isinstance(m, CSCMatrix) else m.to_csc()


def to_bsr(matrix: MatrixLike, blocksize: int) -> BSRMatrix:
    """Convert anything matrix-like to BSR with the given block size."""
    return BSRMatrix.from_coo(to_coo(matrix), blocksize)


def from_scipy(sp_matrix) -> COOMatrix:
    """Import a scipy.sparse matrix (any format) as COO.

    Only used at the edges (tests, loading user data); the core library
    never depends on scipy.
    """
    coo = sp_matrix.tocoo()
    return COOMatrix(coo.shape, np.asarray(coo.row, dtype=np.int64),
                     np.asarray(coo.col, dtype=np.int64),
                     np.asarray(coo.data))


def to_scipy_csr(matrix: MatrixLike):
    """Export to scipy.sparse.csr_matrix (requires scipy installed)."""
    import scipy.sparse as sp

    csr = to_csr(matrix)
    return sp.csr_matrix((csr.data, csr.indices, csr.indptr),
                         shape=csr.shape)
