"""Sparse matrix formats built from scratch: COO, CSR, CSC, BSR + MM I/O.

These are the substrate formats the tiled structures (:mod:`repro.tiles`)
and the baselines are layered on.  See DESIGN.md §2 for the inventory.
"""

from .base import SparseMatrix
from .bsr import BSRMatrix
from .convert import (as_sparse, from_scipy, to_bsr, to_coo, to_csc, to_csr,
                      to_scipy_csr)
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .io_mm import read_matrix_market, write_matrix_market
from .ops import (col_degrees, diagonal, matrix_add, row_degrees,
                  scale_columns, scale_rows, with_diagonal)
from .spgemm import spgemm, spgemm_flops

__all__ = [
    "SparseMatrix", "COOMatrix", "CSRMatrix", "CSCMatrix", "BSRMatrix",
    "as_sparse", "to_coo", "to_csr", "to_csc", "to_bsr",
    "from_scipy", "to_scipy_csr",
    "read_matrix_market", "write_matrix_market",
    "diagonal", "with_diagonal", "scale_rows", "scale_columns",
    "matrix_add", "row_degrees", "col_degrees",
    "spgemm", "spgemm_flops",
]
