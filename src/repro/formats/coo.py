"""Coordinate (COO) sparse matrix format.

COO is the interchange format of this library: every generator produces
COO, every other format converts through it, and the very-sparse-tile
extraction of the paper (§3.2.1) stores its side matrix in COO.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import FormatError, ShapeError
from .base import SparseMatrix, check_index_arrays

__all__ = ["COOMatrix"]


class COOMatrix(SparseMatrix):
    """Sparse matrix stored as parallel ``(row, col, val)`` arrays.

    Duplicate coordinates are allowed on construction and are summed by
    :meth:`sum_duplicates`; most consumers call :meth:`canonicalize`
    first, which sorts row-major and removes duplicates.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)``.
    row, col:
        Integer index arrays of equal length.
    val:
        Value array of the same length (a pattern-only matrix can pass
        ``None`` to get all-ones float64 values).
    """

    def __init__(self, shape: Tuple[int, int], row: np.ndarray,
                 col: np.ndarray, val: Optional[np.ndarray] = None):
        m, n = int(shape[0]), int(shape[1])
        if m < 0 or n < 0:
            raise ShapeError(f"negative matrix dimension in shape {shape}")
        self.shape = (m, n)
        self.row = np.ascontiguousarray(row, dtype=np.int64)
        self.col = np.ascontiguousarray(col, dtype=np.int64)
        if val is None:
            val = np.ones(len(self.row), dtype=np.float64)
        self.val = np.ascontiguousarray(val)
        if len(self.val) != len(self.row):
            raise FormatError(
                f"COO value array length {len(self.val)} != index length "
                f"{len(self.row)}"
            )
        check_index_arrays(self.row, self.col, self.shape, "COO")

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return len(self.val)

    @property
    def dtype(self) -> np.dtype:
        return self.val.dtype

    def validate(self) -> None:
        if len({len(self.row), len(self.col), len(self.val)}) != 1:
            raise FormatError("COO arrays have inconsistent lengths")
        check_index_arrays(self.row, self.col, self.shape, "COO")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"expected 2-D array, got ndim={dense.ndim}")
        row, col = np.nonzero(dense)
        return cls(dense.shape, row, col, dense[row, col])

    @classmethod
    def empty(cls, shape: Tuple[int, int],
              dtype: np.dtype = np.float64) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        z = np.zeros(0, dtype=np.int64)
        return cls(shape, z, z, np.zeros(0, dtype=dtype))

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def canonicalize(self) -> "COOMatrix":
        """Return a row-major-sorted, duplicate-summed copy."""
        return self.sum_duplicates().sort_rowmajor()

    def sort_rowmajor(self) -> "COOMatrix":
        """Return a copy sorted by ``(row, col)``."""
        order = np.lexsort((self.col, self.row))
        return COOMatrix(self.shape, self.row[order], self.col[order],
                         self.val[order])

    def sum_duplicates(self) -> "COOMatrix":
        """Return a copy in which duplicate coordinates are summed."""
        if self.nnz == 0:
            return COOMatrix(self.shape, self.row, self.col, self.val)
        key = self.row * self.shape[1] + self.col
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        val_s = self.val[order]
        boundary = np.empty(len(key_s), dtype=bool)
        boundary[0] = True
        np.not_equal(key_s[1:], key_s[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        summed = np.add.reduceat(val_s, starts)
        uk = key_s[starts]
        return COOMatrix(self.shape, uk // self.shape[1],
                         uk % self.shape[1], summed)

    def drop_zeros(self, tol: float = 0.0) -> "COOMatrix":
        """Return a copy without entries whose ``|val| <= tol``."""
        keep = np.abs(self.val) > tol
        return COOMatrix(self.shape, self.row[keep], self.col[keep],
                         self.val[keep])

    # ------------------------------------------------------------------
    # Conversions / ops
    # ------------------------------------------------------------------
    def to_coo(self) -> "COOMatrix":
        return self

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.val.dtype)
        np.add.at(out, (self.row, self.col), self.val)
        return out

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (indices swapped, O(1) copy)."""
        return COOMatrix((self.shape[1], self.shape[0]), self.col.copy(),
                         self.row.copy(), self.val.copy())

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Dense ``y = A @ x`` via scatter-add (reference use only)."""
        self._check_matvec_shape(x)
        y = np.zeros(self.shape[0],
                     dtype=np.result_type(self.val.dtype, x.dtype))
        if self.nnz:
            np.add.at(y, self.row, self.val * x[self.col])
        return y

    def symmetrize(self) -> "COOMatrix":
        """Return ``A | A^T`` as a pattern-preserving union.

        Values of mirrored entries are taken from the existing entry;
        new mirror entries copy the original value.  Used to turn
        directed generator output into undirected adjacency matrices
        (the paper's BFS experiments run on undirected graphs).
        """
        if self.shape[0] != self.shape[1]:
            raise ShapeError("symmetrize requires a square matrix")
        row = np.concatenate([self.row, self.col])
        col = np.concatenate([self.col, self.row])
        val = np.concatenate([self.val, self.val])
        # keep the first value seen per coordinate
        key = row * self.shape[1] + col
        _, first = np.unique(key, return_index=True)
        return COOMatrix(self.shape, row[first], col[first],
                         val[first]).sort_rowmajor()

    def without_diagonal(self) -> "COOMatrix":
        """Return a copy with diagonal entries removed."""
        keep = self.row != self.col
        return COOMatrix(self.shape, self.row[keep], self.col[keep],
                         self.val[keep])
