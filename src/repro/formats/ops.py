"""Matrix arithmetic helpers shared by the algorithms.

Small, allocation-conscious operations the graph algorithms and
benchmarks kept re-deriving by hand: diagonal access, row/column
scaling (PageRank's ``A D^{-1}``), matrix addition, and degree
vectors.  All operate on and return library formats.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .coo import COOMatrix
from .convert import to_coo

__all__ = ["diagonal", "with_diagonal", "scale_rows", "scale_columns",
           "matrix_add", "row_degrees", "col_degrees"]


def diagonal(matrix) -> np.ndarray:
    """The main diagonal as a dense vector (length ``min(m, n)``)."""
    coo = to_coo(matrix)
    k = min(coo.shape)
    out = np.zeros(k, dtype=coo.val.dtype)
    on_diag = (coo.row == coo.col) & (coo.row < k)
    # duplicates were not necessarily summed; accumulate to be safe
    np.add.at(out, coo.row[on_diag], coo.val[on_diag])
    return out


def with_diagonal(matrix, values: np.ndarray) -> COOMatrix:
    """Return a copy whose main diagonal is replaced by ``values``.

    Zeros in ``values`` remove the corresponding diagonal entry.
    """
    coo = to_coo(matrix).sum_duplicates()
    k = min(coo.shape)
    values = np.asarray(values)
    if values.shape != (k,):
        raise ShapeError(
            f"diagonal length {values.shape} != ({k},) for {coo.shape}"
        )
    off = coo.row != coo.col
    keep_idx = np.flatnonzero(values != 0)
    rows = np.concatenate([coo.row[off], keep_idx])
    cols = np.concatenate([coo.col[off], keep_idx])
    vals = np.concatenate([coo.val[off], values[keep_idx]])
    return COOMatrix(coo.shape, rows, cols, vals).sort_rowmajor()


def scale_rows(matrix, scale: np.ndarray) -> COOMatrix:
    """``diag(scale) @ A`` — multiply row ``i`` by ``scale[i]``."""
    coo = to_coo(matrix)
    scale = np.asarray(scale)
    if scale.shape != (coo.shape[0],):
        raise ShapeError(
            f"row scale shape {scale.shape} != ({coo.shape[0]},)"
        )
    return COOMatrix(coo.shape, coo.row.copy(), coo.col.copy(),
                     coo.val * scale[coo.row])


def scale_columns(matrix, scale: np.ndarray) -> COOMatrix:
    """``A @ diag(scale)`` — multiply column ``j`` by ``scale[j]``
    (PageRank's out-degree normalisation)."""
    coo = to_coo(matrix)
    scale = np.asarray(scale)
    if scale.shape != (coo.shape[1],):
        raise ShapeError(
            f"column scale shape {scale.shape} != ({coo.shape[1]},)"
        )
    return COOMatrix(coo.shape, coo.row.copy(), coo.col.copy(),
                     coo.val * scale[coo.col])


def matrix_add(a, b, alpha: float = 1.0, beta: float = 1.0) -> COOMatrix:
    """``alpha * A + beta * B`` with matching shapes; exact zeros in the
    result are dropped."""
    ca, cb = to_coo(a), to_coo(b)
    if ca.shape != cb.shape:
        raise ShapeError(
            f"matrix_add shape mismatch: {ca.shape} vs {cb.shape}"
        )
    rows = np.concatenate([ca.row, cb.row])
    cols = np.concatenate([ca.col, cb.col])
    vals = np.concatenate([alpha * ca.val, beta * cb.val])
    return COOMatrix(ca.shape, rows, cols,
                     vals).sum_duplicates().drop_zeros().sort_rowmajor()


def row_degrees(matrix) -> np.ndarray:
    """Stored entries per row."""
    coo = to_coo(matrix)
    return np.bincount(coo.row, minlength=coo.shape[0]).astype(np.int64)


def col_degrees(matrix) -> np.ndarray:
    """Stored entries per column."""
    coo = to_coo(matrix)
    return np.bincount(coo.col, minlength=coo.shape[1]).astype(np.int64)
