"""Sparse general matrix-matrix multiplication (Gustavson's algorithm).

The paper's introduction frames SpMSpV as a special case of SpGEMM and
argues calling a general SpGEMM for it "encounters very bad data
locality since each non-empty row of the multiplier has only one
element" (§1, citing Gustavson [19]).  This module provides the general
``C = A @ B`` so that claim can be measured — see
:mod:`repro.baselines.spmspv_via_spgemm` and the
``bench_spgemm_baseline`` benchmark — and because a reproduction of a
sparse-kernels paper should simply have one.

The implementation is the two-phase expand/sort/compress form of
Gustavson's row-row algorithm: expand every product
``A[i, k] * B[k, j]`` (the multiset of partial products), then combine
duplicates per output coordinate.  Fully vectorized; memory is
proportional to the number of partial products (``flops / 2``), which
is the honest cost of the expansion approach.
"""

from __future__ import annotations

import numpy as np

from .._util import concat_ranges, group_starts
from ..errors import ShapeError
from .csr import CSRMatrix

__all__ = ["spgemm", "spgemm_flops"]


def spgemm_flops(A: CSRMatrix, B: CSRMatrix) -> int:
    """Number of multiply-adds ``C = A @ B`` performs (2 per partial
    product) — the standard SpGEMM work metric."""
    _check_shapes(A, B)
    b_row_nnz = B.row_degrees()
    return int(2 * b_row_nnz[A.indices].sum())


def spgemm(A: CSRMatrix, B: CSRMatrix) -> CSRMatrix:
    """Compute ``C = A @ B`` for CSR operands (Gustavson row-row).

    Returns a canonical CSR matrix; exact-zero results of cancellation
    are kept (structural semantics, like scipy).
    """
    _check_shapes(A, B)
    m, n = A.shape[0], B.shape[1]
    if A.nnz == 0 or B.nnz == 0:
        return CSRMatrix.empty((m, n), dtype=A.dtype)

    # expand: for every entry A[i, k], the whole row B[k, :]
    k_of_entry = A.indices
    lengths = B.row_degrees()[k_of_entry]
    gather = concat_ranges(B.indptr[k_of_entry], lengths)
    out_cols = B.indices[gather]
    a_vals = np.repeat(A.data, lengths)
    out_vals = a_vals * B.data[gather]
    out_rows = np.repeat(A.row_of_entry(), lengths)

    # combine: sort by (row, col) and reduce duplicates
    key = out_rows * n + out_cols
    order = np.argsort(key, kind="stable")
    key_s = key[order]
    vals_s = out_vals[order]
    starts = group_starts(key_s)
    reduced = np.add.reduceat(vals_s, starts) if len(starts) else vals_s
    unique_keys = key_s[starts]

    from .csr import compress_indptr

    rows = (unique_keys // n).astype(np.int64)
    cols = (unique_keys % n).astype(np.int64)
    indptr = compress_indptr(rows, m)
    return CSRMatrix((m, n), indptr, cols, reduced)


def _check_shapes(A: CSRMatrix, B: CSRMatrix) -> None:
    if A.shape[1] != B.shape[0]:
        raise ShapeError(
            f"SpGEMM shape mismatch: A is {A.shape}, B is {B.shape}"
        )
