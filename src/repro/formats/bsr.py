"""Block Sparse Row (BSR) format with dense blocks.

This is the storage behind the paper's cuSPARSE baseline
(``cusparse?bsrmv()``): the matrix is cut into ``b``-by-``b`` blocks and
every non-empty block is stored *densely*, explicit zeros included.
The contrast with the paper's sparse tiles — which store only the
nonzeros inside each tile — is exactly what the Figure 6 comparison
measures, so the fill ratio of the blocks (:meth:`BSRMatrix.fill_ratio`)
is exposed for the cost model.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .._util import ceil_div
from ..errors import ConversionError, FormatError, ShapeError
from .base import SparseMatrix
from .coo import COOMatrix
from .csr import compress_indptr, expand_indptr

__all__ = ["BSRMatrix"]


class BSRMatrix(SparseMatrix):
    """Sparse matrix of dense ``b``-by-``b`` blocks in CSR-of-blocks layout.

    Rows/columns are implicitly zero-padded to multiples of ``b`` (the
    logical :attr:`shape` keeps the original dimensions).

    Attributes
    ----------
    blocksize:
        Edge length ``b`` of the square blocks.
    indptr:
        ``int64[n_block_rows + 1]`` block-row pointers.
    indices:
        ``int64[n_blocks]`` block-column indices.
    blocks:
        ``float64[n_blocks, b, b]`` dense block values.
    """

    def __init__(self, shape: Tuple[int, int], blocksize: int,
                 indptr: np.ndarray, indices: np.ndarray,
                 blocks: np.ndarray):
        m, n = int(shape[0]), int(shape[1])
        if m < 0 or n < 0:
            raise ShapeError(f"negative matrix dimension in shape {shape}")
        if blocksize <= 0:
            raise ConversionError(f"blocksize must be positive, got {blocksize}")
        self.shape = (m, n)
        self.blocksize = int(blocksize)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.blocks = np.ascontiguousarray(blocks)
        self.validate()

    # ------------------------------------------------------------------
    @property
    def n_block_rows(self) -> int:
        """Number of block rows (padded)."""
        return ceil_div(self.shape[0], self.blocksize)

    @property
    def n_block_cols(self) -> int:
        """Number of block columns (padded)."""
        return ceil_div(self.shape[1], self.blocksize)

    @property
    def n_blocks(self) -> int:
        """Number of stored (non-empty) blocks."""
        return len(self.indices)

    @property
    def nnz(self) -> int:
        """Number of *stored values* — zeros inside blocks included.

        This is deliberate: it is the quantity cuSPARSE BSR actually
        reads from memory, and what makes BSR lose on scattered
        matrices.
        """
        return int(self.blocks.size)

    @property
    def true_nnz(self) -> int:
        """Number of structurally nonzero values inside the blocks."""
        return int(np.count_nonzero(self.blocks))

    @property
    def dtype(self) -> np.dtype:
        return self.blocks.dtype

    def fill_ratio(self) -> float:
        """Fraction of stored block cells that are actually nonzero."""
        return self.true_nnz / self.blocks.size if self.blocks.size else 0.0

    def validate(self) -> None:
        b = self.blocksize
        if len(self.indptr) != self.n_block_rows + 1:
            raise FormatError(
                f"BSR indptr length {len(self.indptr)} != n_block_rows+1"
            )
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise FormatError("BSR indptr must start at 0 and be sorted")
        if self.indptr[-1] != len(self.indices):
            raise FormatError("BSR indptr[-1] != number of blocks")
        if self.blocks.shape != (len(self.indices), b, b):
            raise FormatError(
                f"BSR blocks shape {self.blocks.shape} != "
                f"({len(self.indices)}, {b}, {b})"
            )
        if len(self.indices):
            if self.indices.min() < 0 or self.indices.max() >= self.n_block_cols:
                raise FormatError("BSR block-column index out of range")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, blocksize: int) -> "BSRMatrix":
        """Build from COO, padding the matrix to block multiples."""
        if blocksize <= 0:
            raise ConversionError(f"blocksize must be positive, got {blocksize}")
        coo = coo.canonicalize()
        b = blocksize
        brow = coo.row // b
        bcol = coo.col // b
        nbc = ceil_div(coo.shape[1], b)
        key = brow * nbc + bcol
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        unique_keys, block_of_entry = np.unique(key_s, return_inverse=True)
        n_blocks = len(unique_keys)
        blocks = np.zeros((n_blocks, b, b), dtype=coo.val.dtype)
        lr = (coo.row[order] % b).astype(np.int64)
        lc = (coo.col[order] % b).astype(np.int64)
        blocks[block_of_entry, lr, lc] = coo.val[order]
        block_rows = (unique_keys // nbc).astype(np.int64)
        block_cols = (unique_keys % nbc).astype(np.int64)
        nbr = ceil_div(coo.shape[0], b)
        indptr = compress_indptr(block_rows, nbr)
        return cls(coo.shape, b, indptr, block_cols, blocks)

    @classmethod
    def from_dense(cls, dense: np.ndarray, blocksize: int) -> "BSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), blocksize)

    # ------------------------------------------------------------------
    # Conversions / ops
    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        """Convert back to COO, dropping the zeros stored inside blocks."""
        b = self.blocksize
        block_row = expand_indptr(self.indptr)
        bi, lr, lc = np.nonzero(self.blocks)
        rows = block_row[bi] * b + lr
        cols = self.indices[bi] * b + lc
        vals = self.blocks[bi, lr, lc]
        keep = (rows < self.shape[0]) & (cols < self.shape[1])
        return COOMatrix(self.shape, rows[keep], cols[keep], vals[keep])

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Dense ``y = A @ x`` block-by-block (``bsrmv`` semantics).

        Every stored block performs a full ``b*b`` multiply-add against
        a dense slice of ``x`` — including the padded/zero cells.  This
        is the work profile the cost model charges the cuSPARSE baseline
        for.
        """
        self._check_matvec_shape(x)
        b = self.blocksize
        m_pad = self.n_block_rows * b
        n_pad = self.n_block_cols * b
        x_pad = np.zeros(n_pad, dtype=np.result_type(self.dtype, x.dtype))
        x_pad[: self.shape[1]] = x
        y_pad = np.zeros(m_pad, dtype=x_pad.dtype)
        if self.n_blocks:
            xs = x_pad.reshape(self.n_block_cols, b)[self.indices]  # (nb, b)
            partial = np.einsum("kij,kj->ki", self.blocks, xs)
            block_row = expand_indptr(self.indptr)
            np.add.at(y_pad.reshape(self.n_block_rows, b), block_row, partial)
        return y_pad[: self.shape[0]]
