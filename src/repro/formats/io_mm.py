"""Matrix Market (``.mtx``) coordinate-format I/O.

The paper evaluates on the SuiteSparse Matrix Collection, which is
distributed in Matrix Market files.  This reader/writer supports the
coordinate subset actually used by SuiteSparse: ``real`` / ``integer`` /
``pattern`` fields with ``general`` / ``symmetric`` / ``skew-symmetric``
symmetry, so real matrices can be dropped into the benchmark sweep next
to the synthetic collection.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from ..errors import IOFormatError
from .coo import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_VALID_FIELDS = {"real", "integer", "pattern"}
_VALID_SYMMETRY = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source: Union[str, Path, TextIO]) -> COOMatrix:
    """Parse a Matrix Market coordinate file into a :class:`COOMatrix`.

    Symmetric/skew-symmetric storage is expanded to the full pattern
    (off-diagonal entries mirrored; skew mirrors negated).

    Raises
    ------
    IOFormatError
        On any malformed header, size line, or entry line.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_matrix_market(fh)

    header = source.readline()
    if not header.startswith("%%MatrixMarket"):
        raise IOFormatError("missing %%MatrixMarket header line")
    parts = header.strip().split()
    if len(parts) < 5:
        raise IOFormatError(f"malformed header: {header.strip()!r}")
    _, obj, fmt, field, symmetry = parts[:5]
    if obj.lower() != "matrix":
        raise IOFormatError(f"unsupported object {obj!r} (only 'matrix')")
    if fmt.lower() != "coordinate":
        raise IOFormatError(
            f"unsupported format {fmt!r} (only 'coordinate')"
        )
    field = field.lower()
    symmetry = symmetry.lower()
    if field not in _VALID_FIELDS:
        raise IOFormatError(f"unsupported field {field!r}")
    if symmetry not in _VALID_SYMMETRY:
        raise IOFormatError(f"unsupported symmetry {symmetry!r}")

    # size line (skip comments / blank lines)
    size_line = ""
    for line in source:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
    if not size_line:
        raise IOFormatError("missing size line")
    try:
        m, n, nnz = (int(tok) for tok in size_line.split())
    except ValueError as exc:
        raise IOFormatError(f"malformed size line: {size_line!r}") from exc

    body = source.read()
    tokens_per_entry = 2 if field == "pattern" else 3
    # parse straight from the token array: indices and integer values
    # go through int64 directly (a float64 round-trip would corrupt
    # integers >= 2^53), real values through float64
    tokens = np.array(body.split())
    if len(tokens) != nnz * tokens_per_entry:
        raise IOFormatError(
            f"expected {nnz} entries x {tokens_per_entry} tokens, "
            f"got {len(tokens)} tokens"
        )
    tokens = tokens.reshape(nnz, tokens_per_entry)
    try:
        rows = tokens[:, 0].astype(np.int64) - 1
        cols = tokens[:, 1].astype(np.int64) - 1
    except (ValueError, OverflowError) as exc:
        raise IOFormatError("non-integer index token in entry lines") \
            from exc
    try:
        if field == "pattern":
            vals = np.ones(nnz, dtype=np.float64)
        elif field == "integer":
            vals = tokens[:, 2].astype(np.int64)
        else:
            vals = tokens[:, 2].astype(np.float64)
    except (ValueError, OverflowError) as exc:
        raise IOFormatError("non-numeric token in entry lines") from exc

    if symmetry == "skew-symmetric" and np.any(rows == cols):
        # the MM spec stores only the strictly lower triangle of a
        # skew-symmetric matrix; a diagonal entry (necessarily zero)
        # is malformed and would otherwise survive unmirrored
        raise IOFormatError(
            "skew-symmetric file contains an explicit diagonal entry"
        )

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        mirror_vals = -vals[off] if symmetry == "skew-symmetric" else vals[off]
        mirror_rows, mirror_cols = cols[off], rows[off]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])

    try:
        return COOMatrix((m, n), rows, cols, vals)
    except Exception as exc:  # index out of range etc.
        raise IOFormatError(f"invalid entry coordinates: {exc}") from exc


def write_matrix_market(matrix, target: Union[str, Path, TextIO],
                        field: str = "real") -> None:
    """Write any :class:`~repro.formats.base.SparseMatrix` as a general
    coordinate Matrix Market file.

    ``field="integer"`` writes values as exact decimal integers (the
    matrix values must be of an integer dtype) — the lossless
    counterpart of the reader's direct int64 parse; a ``%.17g`` float
    round-trip would corrupt magnitudes at or above 2^53.
    """
    if field not in ("real", "integer", "pattern"):
        raise IOFormatError(f"unsupported output field {field!r}")
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_matrix_market(matrix, fh, field=field)
            return

    coo = matrix.to_coo().canonicalize()
    if field == "integer" and not np.issubdtype(coo.dtype, np.integer):
        raise IOFormatError(
            f"field 'integer' needs integer matrix values, "
            f"got dtype {coo.dtype}"
        )
    target.write(f"%%MatrixMarket matrix coordinate {field} general\n")
    target.write("% written by repro (TileSpMSpV reproduction)\n")
    target.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
    buf = io.StringIO()
    if field == "pattern":
        for r, c in zip(coo.row + 1, coo.col + 1):
            buf.write(f"{r} {c}\n")
    elif field == "integer":
        for r, c, v in zip(coo.row + 1, coo.col + 1, coo.val):
            buf.write(f"{r} {c} {int(v)}\n")
    else:
        for r, c, v in zip(coo.row + 1, coo.col + 1, coo.val):
            buf.write(f"{r} {c} {v:.17g}\n")
    target.write(buf.getvalue())
