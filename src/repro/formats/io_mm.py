"""Matrix Market (``.mtx``) coordinate-format I/O.

The paper evaluates on the SuiteSparse Matrix Collection, which is
distributed in Matrix Market files.  This reader/writer supports the
coordinate subset actually used by SuiteSparse: ``real`` / ``integer`` /
``pattern`` fields with ``general`` / ``symmetric`` / ``skew-symmetric``
symmetry, so real matrices can be dropped into the benchmark sweep next
to the synthetic collection.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from ..errors import IOFormatError
from .coo import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_VALID_FIELDS = {"real", "integer", "pattern"}
_VALID_SYMMETRY = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source: Union[str, Path, TextIO]) -> COOMatrix:
    """Parse a Matrix Market coordinate file into a :class:`COOMatrix`.

    Symmetric/skew-symmetric storage is expanded to the full pattern
    (off-diagonal entries mirrored; skew mirrors negated).

    Raises
    ------
    IOFormatError
        On any malformed header, size line, or entry line.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_matrix_market(fh)

    header = source.readline()
    if not header.startswith("%%MatrixMarket"):
        raise IOFormatError("missing %%MatrixMarket header line")
    parts = header.strip().split()
    if len(parts) < 5:
        raise IOFormatError(f"malformed header: {header.strip()!r}")
    _, obj, fmt, field, symmetry = parts[:5]
    if obj.lower() != "matrix":
        raise IOFormatError(f"unsupported object {obj!r} (only 'matrix')")
    if fmt.lower() != "coordinate":
        raise IOFormatError(
            f"unsupported format {fmt!r} (only 'coordinate')"
        )
    field = field.lower()
    symmetry = symmetry.lower()
    if field not in _VALID_FIELDS:
        raise IOFormatError(f"unsupported field {field!r}")
    if symmetry not in _VALID_SYMMETRY:
        raise IOFormatError(f"unsupported symmetry {symmetry!r}")

    # size line (skip comments / blank lines)
    size_line = ""
    for line in source:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
    if not size_line:
        raise IOFormatError("missing size line")
    try:
        m, n, nnz = (int(tok) for tok in size_line.split())
    except ValueError as exc:
        raise IOFormatError(f"malformed size line: {size_line!r}") from exc

    body = source.read()
    tokens_per_entry = 2 if field == "pattern" else 3
    try:
        flat = np.array(body.split(), dtype=np.float64)
    except ValueError as exc:
        raise IOFormatError("non-numeric token in entry lines") from exc
    if len(flat) != nnz * tokens_per_entry:
        raise IOFormatError(
            f"expected {nnz} entries x {tokens_per_entry} tokens, "
            f"got {len(flat)} tokens"
        )
    flat = flat.reshape(nnz, tokens_per_entry)
    rows = flat[:, 0].astype(np.int64) - 1
    cols = flat[:, 1].astype(np.int64) - 1
    if field == "pattern":
        vals = np.ones(nnz, dtype=np.float64)
    else:
        vals = flat[:, 2]
        if field == "integer":
            vals = vals.astype(np.int64).astype(np.float64)

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        mirror_vals = -vals[off] if symmetry == "skew-symmetric" else vals[off]
        mirror_rows, mirror_cols = cols[off], rows[off]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, mirror_vals])

    try:
        return COOMatrix((m, n), rows, cols, vals)
    except Exception as exc:  # index out of range etc.
        raise IOFormatError(f"invalid entry coordinates: {exc}") from exc


def write_matrix_market(matrix, target: Union[str, Path, TextIO],
                        field: str = "real") -> None:
    """Write any :class:`~repro.formats.base.SparseMatrix` as a general
    coordinate Matrix Market file."""
    if field not in ("real", "pattern"):
        raise IOFormatError(f"unsupported output field {field!r}")
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_matrix_market(matrix, fh, field=field)
            return

    coo = matrix.to_coo().canonicalize()
    target.write(f"%%MatrixMarket matrix coordinate {field} general\n")
    target.write("% written by repro (TileSpMSpV reproduction)\n")
    target.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
    buf = io.StringIO()
    if field == "pattern":
        for r, c in zip(coo.row + 1, coo.col + 1):
            buf.write(f"{r} {c}\n")
    else:
        for r, c, v in zip(coo.row + 1, coo.col + 1, coo.val):
            buf.write(f"{r} {c} {v:.17g}\n")
    target.write(buf.getvalue())
