"""Abstract base class shared by all sparse-matrix formats.

The formats in this package are deliberately self-contained: the tiled
structures, kernels and baselines in the rest of the library are built
on these classes, not on :mod:`scipy.sparse` (scipy appears only in the
test suite, as an independent oracle).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Tuple

import numpy as np

from ..errors import ShapeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .coo import COOMatrix
    from .csc import CSCMatrix
    from .csr import CSRMatrix


class SparseMatrix(abc.ABC):
    """Common interface for COO/CSR/CSC/BSR matrices.

    Subclasses store their arrays as attributes and must keep them
    consistent with :attr:`shape`; :meth:`validate` re-checks every
    structural invariant and raises :class:`repro.errors.FormatError`
    on violation.
    """

    shape: Tuple[int, int]

    # ------------------------------------------------------------------
    # Abstract structural API
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored entries (explicit zeros count)."""

    @property
    @abc.abstractmethod
    def dtype(self) -> np.dtype:
        """Dtype of the stored values."""

    @abc.abstractmethod
    def validate(self) -> None:
        """Raise :class:`~repro.errors.FormatError` if any invariant of
        the format is violated; return ``None`` otherwise."""

    @abc.abstractmethod
    def to_coo(self) -> "COOMatrix":
        """Convert to COO (may share arrays when already COO)."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialise as a dense 2-D array (small matrices only)."""

    # ------------------------------------------------------------------
    # Conversions with default routes through COO
    # ------------------------------------------------------------------
    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR (default route: via COO)."""
        from .csr import CSRMatrix

        return CSRMatrix.from_coo(self.to_coo())

    def to_csc(self) -> "CSCMatrix":
        """Convert to CSC (default route: via COO)."""
        from .csc import CSCMatrix

        return CSCMatrix.from_coo(self.to_coo())

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    @property
    def density(self) -> float:
        """``nnz / (nrows * ncols)``; 0.0 for degenerate shapes."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def _check_matvec_shape(self, x: np.ndarray) -> None:
        if x.ndim != 1 or x.shape[0] != self.shape[1]:
            raise ShapeError(
                f"matvec shape mismatch: matrix is {self.shape}, "
                f"vector has shape {x.shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.shape[0]}x{self.shape[1]} "
            f"nnz={self.nnz} dtype={self.dtype}>"
        )


def check_index_arrays(rows: np.ndarray, cols: np.ndarray,
                       shape: Tuple[int, int], what: str) -> None:
    """Shared bounds check for coordinate-style index arrays."""
    from ..errors import FormatError

    m, n = shape
    if len(rows) != len(cols):
        raise FormatError(
            f"{what}: row/col index arrays differ in length "
            f"({len(rows)} vs {len(cols)})"
        )
    if len(rows):
        if rows.min(initial=0) < 0 or (m and rows.max(initial=0) >= m):
            raise FormatError(f"{what}: row index out of range for {shape}")
        if cols.min(initial=0) < 0 or (n and cols.max(initial=0) >= n):
            raise FormatError(f"{what}: col index out of range for {shape}")
