"""Benchmark harness: regenerate every table and figure of the paper.

``python -m repro.bench`` prints them all; ``python -m repro.bench fig6``
prints one.  The pytest-benchmark targets under ``benchmarks/`` wrap
the same runners.
"""

from .harness import (ALL_EXPERIMENTS, ExperimentResult,
                      conversion_counters, run_extraction, run_fig6,
                      run_fig7, run_fig8, run_fig9, run_fig10, run_fig11,
                      run_fig12, run_table2)
from .report import Summary, format_series, format_table, geomean
from .serving import check_serving_regression, run_serving_bench
from .wallclock import run_wallclock

__all__ = [
    "ALL_EXPERIMENTS", "ExperimentResult", "conversion_counters",
    "run_table2", "run_fig6", "run_fig7", "run_fig8", "run_fig9",
    "run_fig10", "run_fig11", "run_fig12", "run_extraction",
    "run_wallclock",
    "run_serving_bench", "check_serving_regression",
    "Summary", "format_series", "format_table", "geomean",
]
