"""Wall-clock microbenchmarks of the active-set execution engine.

Everything else under :mod:`repro.bench` reports *simulated* GPU time
from the cost model; this module times the **host** NumPy execution
with ``time.perf_counter`` — the cost the active-set rewrite attacks.
Each workload runs both the production kernels
(:mod:`repro.core.spmspv_kernels`) and the preserved O(nnz) seed
oracles (:mod:`repro.core.reference_kernels`) on identical inputs, so
the recorded speedup is exactly the host-side win of gathering active
tile columns instead of masking all ``nnz`` entries.

``benchmarks/bench_wallclock.py`` is the CLI wrapper; it writes the
results to ``BENCH_wallclock.json`` so every PR leaves a perf data
point behind (see the developer guide, "Active-set execution &
wall-clock benchmarking").
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..core.reference_kernels import (reference_batched_tiled_kernel,
                                      reference_csc_tiled_kernel,
                                      reference_tiled_kernel)
from ..core.spmspv_kernels import (batched_tiled_kernel, csc_tiled_kernel,
                                   tiled_kernel)
from ..matrices.generators import rmat
from ..tiles.tiled_matrix import TiledMatrix
from ..tiles.tiled_vector import TiledVector

__all__ = ["run_wallclock"]


def _best_ms(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time in milliseconds (best-of is the
    standard low-noise estimator for short deterministic kernels)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def _frontier(n: int, density: float, nt: int,
              rng: np.random.Generator) -> TiledVector:
    k = max(1, int(round(n * density)))
    idx = rng.choice(n, size=k, replace=False)
    return TiledVector.from_sparse(idx, 1.0 + rng.random(k), n, nt)


def _bfs_wallclock(A: TiledMatrix, kernel, source: int,
                   max_depth: int = 64) -> Dict[str, float]:
    """Level-synchronous BFS driven by one SpMSpV kernel per layer —
    the paper's flagship workload, timed end to end on the host."""
    n = A.shape[0]
    t0 = time.perf_counter()
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while len(frontier) and depth < max_depth:
        xt = TiledVector.from_sparse(frontier,
                                     np.ones(len(frontier)), n, A.nt)
        y, _ = kernel(A, xt)
        frontier = np.flatnonzero((y != 0.0) & ~visited)
        visited[frontier] = True
        depth += 1
    return {"ms": (time.perf_counter() - t0) * 1e3,
            "iterations": depth,
            "reached": int(visited.sum())}


def run_wallclock(scale: int = 17, edge_factor: int = 16, nt: int = 16,
                  densities: Sequence[float] = (
                      1e-4, 5e-4, 2e-3, 1e-2, 0.1),
                  repeats: int = 5, batch: int = 4, seed: int = 1,
                  smoke: bool = False,
                  progress: Optional[Callable[[str], None]] = None
                  ) -> Dict:
    """Time the active-set kernels against the seed oracles.

    Parameters
    ----------
    scale, edge_factor:
        RMAT parameters of the benchmark graph (``2**scale`` vertices);
        the defaults give a ~3.7M-nnz matrix, comfortably above the
        1e6-nnz floor the acceptance criterion names.
    nt:
        Tile size (16, the paper's SpMSpV choice).
    densities:
        Frontier densities (``nnz(x) / n``) swept for every multiply
        form; the report also records the resulting active-tile-column
        fraction, the quantity the engine's cost is proportional to.
    repeats:
        Timing repetitions per measurement (best-of).
    batch:
        Batch width for the batched kernel workload.
    smoke:
        Shrink everything for CI (a few seconds end to end).

    Returns
    -------
    dict with ``meta``, per-density ``multiply`` rows (form, density,
    active column fraction, reference/new ms, speedup) and a ``bfs``
    record — the JSON payload of ``BENCH_wallclock.json``.
    """
    if smoke:
        scale, edge_factor = min(scale, 13), min(edge_factor, 8)
        densities = tuple(densities)[:3]
        repeats = min(repeats, 2)

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    say(f"generating rmat(scale={scale}, edge_factor={edge_factor})")
    coo = rmat(scale, edge_factor=edge_factor, seed=seed)
    say(f"tiling {coo.nnz} nonzeros at nt={nt}")
    A = TiledMatrix.from_coo(coo, nt)
    At = TiledMatrix.from_coo(coo.transpose(), nt)
    for t in (A, At):        # plan-time warming, as TileSpMSpV does
        t.column_gather()
        t.entry_rows()
        t.entry_cols()
        t.local_row64()
        t.local_col64()
        t.tile_nnz()
        t.n_occupied_tile_rows()

    n = A.shape[1]
    rng = np.random.default_rng(seed)
    rows = []
    for density in densities:
        x = _frontier(n, density, nt, rng)
        frac = x.n_nonempty_tiles / max(1, x.n_tiles)
        say(f"density {density:g} (active cols {frac:.4f})")
        forms = [
            ("csr", lambda: tiled_kernel(A, x),
             lambda: reference_tiled_kernel(A, x)),
            ("csc", lambda: csc_tiled_kernel(At, x),
             lambda: reference_csc_tiled_kernel(At, x)),
        ]
        if batch > 1:
            xs = [_frontier(n, density, nt, rng) for _ in range(batch)]
            forms.append(
                ("batched", lambda: batched_tiled_kernel(A, xs),
                 lambda: reference_batched_tiled_kernel(A, xs)))
        for form, new_fn, ref_fn in forms:
            new_ms = _best_ms(new_fn, repeats)
            ref_ms = _best_ms(ref_fn, repeats)
            rows.append({
                "form": form,
                "density": density,
                "active_col_fraction": frac,
                "ref_ms": ref_ms,
                "new_ms": new_ms,
                "speedup": ref_ms / new_ms if new_ms > 0 else float("inf"),
            })

    say("BFS sweep")
    new_bfs = _bfs_wallclock(A, tiled_kernel, source=0)
    ref_bfs = _bfs_wallclock(A, reference_tiled_kernel, source=0)
    assert new_bfs["reached"] == ref_bfs["reached"]

    return {
        "meta": {
            "matrix": f"rmat(scale={scale}, edge_factor={edge_factor})",
            "n": int(A.shape[0]),
            "nnz": int(A.nnz),
            "nt": nt,
            "n_nonempty_tiles": int(A.n_nonempty_tiles),
            "repeats": repeats,
            "batch": batch,
            "smoke": bool(smoke),
            "reference": "repro.core.reference_kernels (seed O(nnz) "
                         "mask-based kernels)",
        },
        "multiply": rows,
        "bfs": {
            "ref_ms": ref_bfs["ms"],
            "new_ms": new_bfs["ms"],
            "speedup": (ref_bfs["ms"] / new_bfs["ms"]
                        if new_bfs["ms"] > 0 else float("inf")),
            "iterations": new_bfs["iterations"],
            "reached": new_bfs["reached"],
        },
    }
