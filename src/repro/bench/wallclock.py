"""Wall-clock microbenchmarks of the active-set execution engine.

Everything else under :mod:`repro.bench` reports *simulated* GPU time
from the cost model; this module times the **host** NumPy execution
with ``time.perf_counter`` — the cost the active-set rewrite attacks.
Each workload runs both the production kernels
(:mod:`repro.core.spmspv_kernels`) and the preserved O(nnz) seed
oracles (:mod:`repro.core.reference_kernels`) on identical inputs, so
the recorded speedup is exactly the host-side win of gathering active
tile columns instead of masking all ``nnz`` entries.

``benchmarks/bench_wallclock.py`` is the CLI wrapper; it writes the
results to ``BENCH_wallclock.json`` so every PR leaves a perf data
point behind (see the developer guide, "Active-set execution &
wall-clock benchmarking").
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..core.bfs_kernels import (pull_csc_kernel, push_csc_kernel,
                                push_csr_kernel)
from ..core.msbfs import MultiSourceBFS
from ..core.reference_bfs_kernels import (reference_msbfs_expand,
                                          reference_pull_csc_kernel,
                                          reference_push_csc_kernel,
                                          reference_push_csr_kernel)
from ..core.reference_kernels import (reference_batched_tiled_kernel,
                                      reference_csc_tiled_kernel,
                                      reference_tiled_kernel)
from ..core.selection import KernelSelector
from ..core.spmm_kernels import (spmm_merge_path_kernel,
                                 spmm_row_warp_kernel)
from ..core.spmspv_kernels import (batched_tiled_kernel,
                                   batched_union_kernel,
                                   csc_tiled_kernel, tiled_kernel)
from ..core.tilebfs import TileBFS
from ..fastpath import fastpath_tier
from ..gpusim import KernelCounters
from ..matrices.generators import rmat
from ..shards.engine import ShardedSpMSpV
from ..tiles.bitmask import BitVector
from ..tiles.tiled_matrix import TiledMatrix
from ..tiles.tiled_vector import TiledVector
from ..vectors.dense_block import DenseBlock

__all__ = ["run_wallclock", "check_regression", "known_sections"]


def _best_ms(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time in milliseconds (best-of is the
    standard low-noise estimator for short deterministic kernels)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def _frontier(n: int, density: float, nt: int,
              rng: np.random.Generator) -> TiledVector:
    k = max(1, int(round(n * density)))
    idx = rng.choice(n, size=k, replace=False)
    return TiledVector.from_sparse(idx, 1.0 + rng.random(k), n, nt)


def _bfs_wallclock(A: TiledMatrix, kernel, source: int,
                   max_depth: int = 64) -> Dict[str, float]:
    """Level-synchronous BFS driven by one SpMSpV kernel per layer —
    the paper's flagship workload, timed end to end on the host."""
    n = A.shape[0]
    t0 = time.perf_counter()
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while len(frontier) and depth < max_depth:
        xt = TiledVector.from_sparse(frontier,
                                     np.ones(len(frontier)), n, A.nt)
        y, _ = kernel(A, xt)
        frontier = np.flatnonzero((y != 0.0) & ~visited)
        visited[frontier] = True
        depth += 1
    return {"ms": (time.perf_counter() - t0) * 1e3,
            "iterations": depth,
            "reached": int(visited.sum())}


def _bitmask_frontier(n: int, density: float, nt: int,
                      rng: np.random.Generator) -> BitVector:
    k = max(1, int(round(n * density)))
    idx = rng.choice(n, size=k, replace=False)
    return BitVector.from_indices(np.sort(idx), n, nt)


def _bfs_kernel_rows(bfs: TileBFS, densities: Sequence[float],
                     visited_fractions: Sequence[float], repeats: int,
                     rng: np.random.Generator, say) -> list:
    """Per-kernel BFS breakdown: each directional kernel forced on
    synthetic frontier / visited states, new vs oracle.

    K1/K2 sweep the frontier densities of the multiply section (with a
    visited set a little larger than the frontier, as mid-traversal);
    K3 only makes sense near the end of a traversal, so it sweeps high
    visited fractions instead.
    """
    n, nt = bfs.n, bfs.nt
    rows = []
    cases = []
    for density in densities:
        cases.append(("push_csc", density, min(1.0, density * 2.5)))
        cases.append(("push_csr", density, min(1.0, density * 2.5)))
    for vf in visited_fractions:
        cases.append(("pull_csc", 0.02, vf))
    impls = {
        "push_csc": (push_csc_kernel, reference_push_csc_kernel, "A1"),
        "push_csr": (push_csr_kernel, reference_push_csr_kernel, "A2"),
        "pull_csc": (pull_csc_kernel, reference_pull_csc_kernel, "A1"),
    }
    for kernel, density, vf in cases:
        new_fn, ref_fn, mat = impls[kernel]
        A = getattr(bfs, mat)
        x = _bitmask_frontier(n, density, nt, rng)
        m = _bitmask_frontier(n, vf, nt, rng)
        m |= x                   # the frontier is always visited
        say(f"bfs kernel {kernel} density={density:g} visited={vf:g}")
        y_new, _ = new_fn(A, x, m)
        y_ref, _ = ref_fn(A, x, m)
        assert np.array_equal(y_new.words, y_ref.words), kernel
        new_ms = _best_ms(lambda: new_fn(A, x, m), repeats)
        ref_ms = _best_ms(lambda: ref_fn(A, x, m), repeats)
        rows.append({
            "kernel": kernel,
            "density": density,
            "visited_fraction": vf,
            "ref_ms": ref_ms,
            "new_ms": new_ms,
            "speedup": ref_ms / new_ms if new_ms > 0 else float("inf"),
        })
    return rows


def _seed_tilebfs_ms(bfs: TileBFS, source: int, repeats: int) -> Dict:
    """The seed ``TileBFS.run`` loop, replayed over the same plan with
    the oracle kernels: per-layer ``BitVector`` allocation, double
    index conversion, ``m.count()``, O(n) side-kernel scratch — the
    baseline the allocation-free rewrite is measured against."""
    impls = {"push_csc": lambda x, m: reference_push_csc_kernel(
                 bfs.A1, x, m),
             "push_csr": lambda x, m: reference_push_csr_kernel(
                 bfs.A2, x, m),
             "pull_csc": lambda x, m: reference_pull_csc_kernel(
                 bfs.A1, x, m)}

    def side_kernel(x, m, y):
        counters = KernelCounters(launches=1)
        src_active = np.zeros(bfs.side.nnz, dtype=bool)
        frontier = x.to_indices()
        if len(frontier):
            in_frontier = np.zeros(bfs.n, dtype=bool)
            in_frontier[frontier] = True
            src_active = in_frontier[bfs.side.col]
        rows_ = bfs.side.row[src_active]
        if len(rows_):
            visited = np.zeros(bfs.n, dtype=bool)
            visited[m.to_indices()] = True
            rows_ = rows_[~visited[rows_]]
            y = y.copy()
            y.set_indices(rows_)
        counters.coalesced_read_bytes += bfs.side.nnz * 16.0
        counters.random_read_count += float(src_active.sum())
        counters.atomic_ops += float(len(rows_))
        counters.random_write_count += float(len(rows_))
        counters.warps = max(1.0, bfs.side.nnz / 32.0)
        return y, counters

    state = {}

    def run() -> None:
        levels = np.full(bfs.n, -1, dtype=np.int64)
        levels[source] = 0
        x = BitVector.from_indices(
            np.array([source], dtype=np.int64), bfs.n, bfs.nt)
        m = x.copy()
        depth = 0
        frontier_size = 1
        while frontier_size > 0:
            depth += 1
            kernel_name = bfs.selector.choose(
                frontier_sparsity=frontier_size / bfs.n,
                unvisited_fraction=(bfs.n - m.count()) / bfs.n,
            )
            y, counters = impls[kernel_name](x, m)
            if bfs.side.nnz:
                y, side_counters = side_kernel(x, m, y)
                counters = counters.merged(side_counters)
            bfs.ctx.launch(f"tilebfs_{kernel_name}", counters,
                           phase="iteration")
            new = y.to_indices()
            if len(new) == 0:
                break
            levels[new] = depth
            m = m | y
            x = y
            frontier_size = len(new)
        state["levels"] = levels

    ms = _best_ms(run, repeats)
    return {"ms": ms, "levels": state["levels"]}


def _msbfs_ms(op: MultiSourceBFS, sources: np.ndarray, repeats: int,
              use_reference: bool) -> float:
    """Time a full MS-BFS run; with ``use_reference`` the expansion is
    swapped for the preserved seed ``bitwise_or.at`` version, keeping
    every other loop cost identical."""
    from ..core import msbfs as msbfs_mod
    production = msbfs_mod.msbfs_expand
    if use_reference:
        msbfs_mod.msbfs_expand = reference_msbfs_expand
    try:
        return _best_ms(lambda: op.run(sources), repeats)
    finally:
        msbfs_mod.msbfs_expand = production


def run_wallclock(scale: int = 17, edge_factor: int = 16, nt: int = 16,
                  densities: Sequence[float] = (
                      1e-4, 5e-4, 2e-3, 1e-2, 0.1),
                  repeats: int = 5, batch: int = 4, seed: int = 1,
                  smoke: bool = False,
                  progress: Optional[Callable[[str], None]] = None
                  ) -> Dict:
    """Time the active-set kernels against the seed oracles.

    Parameters
    ----------
    scale, edge_factor:
        RMAT parameters of the benchmark graph (``2**scale`` vertices);
        the defaults give a ~3.7M-nnz matrix, comfortably above the
        1e6-nnz floor the acceptance criterion names.
    nt:
        Tile size (16, the paper's SpMSpV choice).
    densities:
        Frontier densities (``nnz(x) / n``) swept for every multiply
        form; the report also records the resulting active-tile-column
        fraction, the quantity the engine's cost is proportional to.
    repeats:
        Timing repetitions per measurement (best-of).
    batch:
        Batch width for the batched kernel workload.
    smoke:
        Shrink everything for CI (a few seconds end to end).

    Returns
    -------
    dict with ``meta``, per-density ``multiply`` rows (form, density,
    active column fraction, reference/new ms, speedup) and a ``bfs``
    record — the JSON payload of ``BENCH_wallclock.json``.
    """
    if smoke:
        # shrink the workload, not the repeats: smoke rows are sub-ms,
        # so best-of-N is what keeps their speedups reproducible enough
        # for the CI regression guard
        scale, edge_factor = min(scale, 13), min(edge_factor, 8)
        densities = tuple(densities)[:3]

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    say(f"generating rmat(scale={scale}, edge_factor={edge_factor})")
    coo = rmat(scale, edge_factor=edge_factor, seed=seed)
    say(f"tiling {coo.nnz} nonzeros at nt={nt}")
    A = TiledMatrix.from_coo(coo, nt)
    At = TiledMatrix.from_coo(coo.transpose(), nt)
    for t in (A, At):        # plan-time warming, as TileSpMSpV does
        t.column_gather()
        t.entry_rows()
        t.entry_cols()
        t.local_row64()
        t.local_col64()
        t.tile_nnz()
        t.n_occupied_tile_rows()

    n = A.shape[1]
    rng = np.random.default_rng(seed)
    rows = []
    for density in densities:
        x = _frontier(n, density, nt, rng)
        frac = x.n_nonempty_tiles / max(1, x.n_tiles)
        say(f"density {density:g} (active cols {frac:.4f})")
        forms = [
            ("csr", lambda: tiled_kernel(A, x),
             lambda: reference_tiled_kernel(A, x)),
            ("csc", lambda: csc_tiled_kernel(At, x),
             lambda: reference_csc_tiled_kernel(At, x)),
        ]
        if batch > 1:
            xs = [_frontier(n, density, nt, rng) for _ in range(batch)]
            forms.append(
                ("batched", lambda: batched_tiled_kernel(A, xs),
                 lambda: reference_batched_tiled_kernel(A, xs)))
        for form, new_fn, ref_fn in forms:
            new_ms = _best_ms(new_fn, repeats)
            ref_ms = _best_ms(ref_fn, repeats)
            rows.append({
                "form": form,
                "density": density,
                "active_col_fraction": frac,
                "ref_ms": ref_ms,
                "new_ms": new_ms,
                "speedup": ref_ms / new_ms if new_ms > 0 else float("inf"),
            })

    say("BFS sweep")
    new_bfs = _bfs_wallclock(A, tiled_kernel, source=0)
    ref_bfs = _bfs_wallclock(A, reference_tiled_kernel, source=0)
    assert new_bfs["reached"] == ref_bfs["reached"]

    say("TileBFS (bitmask) per-kernel breakdown")
    # the "tilebfs" section measures the classic per-kernel loop (its
    # committed baselines predate the fused tier), so pin the tier;
    # the fused tier gets its own section below
    bfs_op = TileBFS(coo, selector=KernelSelector(tier="kernels"))
    visited_fractions = (0.9, 0.98) if smoke else (0.5, 0.9, 0.98)
    kernel_rows = _bfs_kernel_rows(bfs_op, densities, visited_fractions,
                                   repeats, rng, say)

    say("TileBFS end to end: active-tile loop vs seed loop")
    tilebfs_new = _best_ms(lambda: bfs_op.run(0), repeats)
    res = bfs_op.run(0)
    seed_run = _seed_tilebfs_ms(bfs_op, source=0, repeats=repeats)
    assert np.array_equal(res.levels, seed_run["levels"])

    say("TileBFS fused fast path vs classic kernel loop")
    fast_op = TileBFS(coo, selector=KernelSelector(tier="fastpath"))
    fast_res = fast_op.run(0)
    assert np.array_equal(fast_res.levels, res.levels)
    # the quantity under test is the ratio, so interleave the two
    # timings: ambient load perturbs both sides equally instead of
    # whichever side happened to run during a noisy window
    fastpath_ref_ms = fastpath_ms = float("inf")
    for _ in range(repeats):
        fastpath_ref_ms = min(fastpath_ref_ms,
                              _best_ms(lambda: bfs_op.run(0), 1))
        fastpath_ms = min(fastpath_ms,
                          _best_ms(lambda: fast_op.run(0), 1))

    say("batched engine: coalesced union launch vs looped singles")
    batch_sizes = (batch,) if smoke else (batch, batch * 4)
    batched_rows = []
    for bsize in batch_sizes:
        for density in densities:
            xs = [_frontier(n, density, nt, rng) for _ in range(bsize)]
            say(f"batched b={bsize} density={density:g}")
            Yb, cb = batched_union_kernel(A, xs)
            loop_counters = []
            for b, xt in enumerate(xs):
                y, c = tiled_kernel(A, xt)
                assert np.array_equal(Yb[b], y), "batched != looped"
                loop_counters.append(c)
            looped_bytes = KernelCounters.sum(loop_counters).global_bytes
            new_ms = _best_ms(lambda: batched_union_kernel(A, xs),
                              repeats)
            ref_ms = _best_ms(
                lambda: [tiled_kernel(A, xt) for xt in xs], repeats)
            batched_rows.append({
                "batch": bsize,
                "density": density,
                "ref_ms": ref_ms,
                "new_ms": new_ms,
                "speedup": ref_ms / new_ms if new_ms > 0
                           else float("inf"),
                "batched_bytes": cb.global_bytes,
                "looped_bytes": looped_bytes,
                "bytes_ratio": (cb.global_bytes / looped_bytes
                                if looped_bytes > 0 else 1.0),
            })

    say("SpMM: merge-path vs row-per-warp over a dense block")
    spmm_batches = (8,) if smoke else (8, 32)
    spmm_rows = []
    for bsize in spmm_batches:
        for density in densities:
            k = max(1, int(round(n * density)))
            X = np.zeros((n, bsize))
            for j in range(bsize):
                idx = rng.choice(n, size=k, replace=False)
                X[idx, j] = 1.0 + rng.random(k)
            Xb = DenseBlock.from_dense(X, nt)
            say(f"spmm b={bsize} density={density:g}")
            Yr, cr = spmm_row_warp_kernel(A, Xb)
            Ym, cm = spmm_merge_path_kernel(A, Xb)
            assert np.array_equal(Yr, Ym), "merge-path != row-per-warp"
            row_bytes = cr.global_bytes + cr.l2_read_bytes
            merge_bytes = cm.global_bytes + cm.l2_read_bytes
            # the acceptance invariant of the merge-path cost model: a
            # row segment has at least one nonzero, so the staged
            # traffic can never exceed the naive per-nonzero fetches
            assert merge_bytes <= row_bytes, \
                "merge-path modeled bytes exceed row-per-warp"
            ref_ms = _best_ms(lambda: spmm_row_warp_kernel(
                A, Xb, with_counters=False), repeats)
            new_ms = _best_ms(lambda: spmm_merge_path_kernel(
                A, Xb, with_counters=False), repeats)
            spmm_rows.append({
                "batch": bsize,
                "density": density,
                "ref_ms": ref_ms,
                "new_ms": new_ms,
                "speedup": (ref_ms / new_ms if new_ms > 0
                            else float("inf")),
                "launches": int(cr.launches),
                "rowwarp_bytes": row_bytes,
                "mergepath_bytes": merge_bytes,
                "bytes_ratio": (merge_bytes / row_bytes
                                if row_bytes > 0 else 1.0),
            })

    say("sharded engine: row-strip shards vs single tiling")
    shard_counts = (4,) if smoke else (4, 8)
    sharded_rows = []
    for n_shards in shard_counts:
        sharded_op = ShardedSpMSpV(coo, nt=nt, n_shards=n_shards)
        for density in densities:
            x = _frontier(n, density, nt, rng)
            before = sharded_op.scheduler.stats()
            y_sharded = sharded_op.multiply(x, output="dense")
            after = sharded_op.scheduler.stats()
            y_ref, _ = tiled_kernel(A, x)
            assert np.allclose(y_sharded, y_ref), "sharded != tiled"
            say(f"sharded s={sharded_op.matrix.n_shards} "
                f"density={density:g}")
            new_ms = _best_ms(
                lambda: sharded_op.multiply(x, output="dense"), repeats)
            ref_ms = _best_ms(lambda: tiled_kernel(A, x), repeats)
            sharded_rows.append({
                "n_shards": sharded_op.matrix.n_shards,
                "density": density,
                "ref_ms": ref_ms,
                "new_ms": new_ms,
                "speedup": ref_ms / new_ms if new_ms > 0
                           else float("inf"),
                "shards_executed": (after["shards_executed"]
                                    - before["shards_executed"]),
                "shards_skipped": (after["shards_skipped"]
                                   - before["shards_skipped"]),
            })

    say("parallel shard execution: worker sweep")
    from ..gpusim import Device
    from ..gpusim.multi_device import device_of_tag
    from ..parallel import ParallelConfig
    from ..shards.sharded_matrix import ShardedTiledMatrix
    worker_counts = (1, 2, 4) if smoke else (1, 2, 4, 8)
    par_shards = 8 if smoke else 16
    par_density = densities[-1]
    x_par = _frontier(n, par_density, nt, rng)
    y_par_ref, _ = tiled_kernel(A, x_par)
    par_matrix = ShardedTiledMatrix.from_coo(coo, nt=nt,
                                             n_shards=par_shards)
    parallel_rows = []
    base_wall_ms = None
    for w in worker_counts:
        cfg = ParallelConfig(workers=w,
                             backend="serial" if w == 1 else "thread")
        say(f"parallel workers={w} shards={par_shards} "
            f"density={par_density:g}")
        par_op = ShardedSpMSpV(par_matrix, parallel=cfg)
        y_par = par_op.multiply(x_par, output="dense")
        assert np.allclose(y_par, y_par_ref), "parallel != tiled"
        wall_ms = _best_ms(
            lambda: par_op.multiply(x_par, output="dense"), repeats)
        if base_wall_ms is None:
            base_wall_ms = wall_ms
        # the modeled numbers come from a fresh counters-on engine so
        # each worker count prices the same cold launch stream; the
        # committed `speedup` is the multi-device critical-path ratio —
        # deterministic on any host, unlike the wall clock of a
        # CI runner with fewer cores than workers
        dev = Device()
        m_op = ShardedSpMSpV(par_matrix, device=dev, parallel=cfg)
        m_op.multiply(x_par, output="dense")
        mt = m_op.multi_timeline(max(1, w))
        predicted = (m_op._last_plan.predicted_speedup
                     if m_op._last_plan is not None else 1.0)
        # Amdahl-corrected cost-model prediction: barrier launches
        # (scheduler pass, scatter-gather combine) serialize on every
        # device, so the predicted critical path is the serial time
        # plus the shard work divided by the plan's balance bound.
        # `model_agreement` is measured/predicted critical path — 1.0
        # means the cost model priced the placement exactly.
        serial_ms = math.fsum(r.ms for r in dev.timeline
                              if device_of_tag(r.tag) is None)
        shard_ms = mt.sum_of_work_ms - serial_ms
        predicted_crit = serial_ms + (shard_ms / predicted
                                      if predicted > 0 else shard_ms)
        parallel_rows.append({
            "workers": w,
            "n_shards": par_shards,
            "density": par_density,
            "wall_ms": wall_ms,
            "wall_speedup": (base_wall_ms / wall_ms
                             if wall_ms > 0 else float("inf")),
            "critical_path_ms": mt.critical_path_ms,
            "sum_of_work_ms": mt.sum_of_work_ms,
            "serial_ms": serial_ms,
            "predicted_speedup": predicted,
            "predicted_critical_path_ms": predicted_crit,
            "model_agreement": (mt.critical_path_ms / predicted_crit
                                if predicted_crit > 0 else 1.0),
            "speedup": mt.modeled_speedup,
        })

    say("MS-BFS end to end")
    ms_op = MultiSourceBFS(coo)
    ms_sources = rng.choice(A.shape[0], size=min(64, A.shape[0]),
                            replace=False).astype(np.int64)
    msbfs_new = _msbfs_ms(ms_op, ms_sources, repeats, use_reference=False)
    msbfs_ref = _msbfs_ms(ms_op, ms_sources, repeats, use_reference=True)

    return {
        "meta": {
            "matrix": f"rmat(scale={scale}, edge_factor={edge_factor})",
            "n": int(A.shape[0]),
            "nnz": int(A.nnz),
            "nt": nt,
            "n_nonempty_tiles": int(A.n_nonempty_tiles),
            "repeats": repeats,
            "batch": batch,
            "smoke": bool(smoke),
            "reference": "repro.core.reference_kernels (seed O(nnz) "
                         "mask-based kernels)",
        },
        "multiply": rows,
        "bfs": {
            "ref_ms": ref_bfs["ms"],
            "new_ms": new_bfs["ms"],
            "speedup": (ref_bfs["ms"] / new_bfs["ms"]
                        if new_bfs["ms"] > 0 else float("inf")),
            "iterations": new_bfs["iterations"],
            "reached": new_bfs["reached"],
        },
        "bfs_kernels": kernel_rows,
        "tilebfs": {
            "nt": bfs_op.nt,
            "ref_ms": seed_run["ms"],
            "new_ms": tilebfs_new,
            "speedup": (seed_run["ms"] / tilebfs_new
                        if tilebfs_new > 0 else float("inf")),
            "iterations": len(res.iterations),
            "reached": res.n_reached,
        },
        "fastpath": {
            "tier": fastpath_tier(),
            "nt": fast_op.nt,
            "ref_ms": fastpath_ref_ms,
            "new_ms": fastpath_ms,
            "speedup": (fastpath_ref_ms / fastpath_ms
                        if fastpath_ms > 0 else float("inf")),
            "iterations": len(fast_res.iterations),
            "reached": fast_res.n_reached,
        },
        "msbfs": {
            "sources": int(len(ms_sources)),
            "ref_ms": msbfs_ref,
            "new_ms": msbfs_new,
            "speedup": (msbfs_ref / msbfs_new
                        if msbfs_new > 0 else float("inf")),
        },
        "batched": batched_rows,
        "spmm": spmm_rows,
        "sharded": sharded_rows,
        "parallel": parallel_rows,
    }


#: Measurements whose faster side is below this many milliseconds are
#: timer-noise-bound (a best-of-N ``perf_counter`` delta at tens of µs
#: wobbles by tens of percent run to run); the regression guard skips
#: them rather than flake.
NOISE_FLOOR_MS = 0.25

#: Report keys that are metadata, not benchmark sections.  Everything
#: else recorded in the committed baseline is a workload the current
#: report must also carry — derived from the baseline rather than a
#: hard-coded section list, so a newly added section (``sharded``) is
#: covered by the missing-section guard the moment it lands in the
#: baseline instead of silently bypassing it.
_META_KEYS = ("meta",)


def known_sections(committed: Dict) -> tuple:
    """The benchmark sections of a committed baseline report."""
    return tuple(k for k in committed if k not in _META_KEYS)


def _speedup_entries(report: Dict) -> Dict[str, tuple]:
    """Flatten a wall-clock report to ``label -> (speedup, min_ms)``
    (every row and scalar section that records one); ``min_ms`` is the
    faster of the two timed sides, ``inf`` when the report carries no
    timings (synthetic fixtures)."""
    entries: Dict[str, tuple] = {}

    def min_ms(row):
        if "ref_ms" in row and "new_ms" in row:
            return min(row["ref_ms"], row["new_ms"])
        return float("inf")

    for row in report.get("multiply", ()):
        entries[f"multiply/{row['form']}@{row['density']:g}"] = \
            (row["speedup"], min_ms(row))
    for row in report.get("bfs_kernels", ()):
        entries[(f"bfs_kernels/{row['kernel']}@{row['density']:g}"
                 f"/v{row['visited_fraction']:g}")] = \
            (row["speedup"], min_ms(row))
    for row in report.get("batched", ()):
        entries[f"batched/b{row['batch']}@{row['density']:g}"] = \
            (row["speedup"], min_ms(row))
    for row in report.get("spmm", ()):
        entries[f"spmm/b{row['batch']}@{row['density']:g}"] = \
            (row["speedup"], min_ms(row))
    for row in report.get("sharded", ()):
        entries[f"sharded/s{row['n_shards']}@{row['density']:g}"] = \
            (row["speedup"], min_ms(row))
    for row in report.get("parallel", ()):
        # the guarded speedup is the modeled critical-path ratio, which
        # carries no host timings — min_ms stays inf so these rows are
        # never waved through as timer noise
        entries[f"parallel/w{row['workers']}"] = \
            (row["speedup"], min_ms(row))
    for section in ("bfs", "tilebfs", "fastpath", "msbfs"):
        if section in report:
            entries[section] = (report[section]["speedup"],
                                min_ms(report[section]))
    return entries


def check_regression(current: Dict, committed: Dict, floor: float = 0.6,
                     noise_floor_ms: float = NOISE_FLOOR_MS,
                     section_floors: Optional[Dict[str, float]] = None
                     ) -> list:
    """Compare two wall-clock reports; list every regression.

    A regression is a speedup in ``current`` below ``floor`` times the
    value recorded for the same label in ``committed``.  Labels present
    on only one side are ignored (new rows are allowed to appear), as
    are labels whose faster timed side is under ``noise_floor_ms`` in
    either report (micro rows whose speedup is timer noise); ratios of
    speedups are compared rather than raw milliseconds so the guard is
    stable across host machines of different speed.

    ``section_floors`` overrides ``floor`` per section (a label's
    section is its prefix before the first ``/``, or the whole label
    for scalar sections) — e.g. ``{"fastpath": 0.6}`` pins the fused
    tier's end-to-end speedup to 60% of its committed value even when
    the global floor is looser.

    Any section recorded in ``committed`` (every non-meta key; see
    :func:`known_sections`) but missing from ``current`` is itself a
    failure (entry ``{"label": "section:<name>", "missing": True}``):
    a report that silently dropped a workload must not pass the guard.
    """
    cur = _speedup_entries(current)
    ref = _speedup_entries(committed)
    failures = []
    for section in known_sections(committed):
        if section not in current:
            failures.append({"label": f"section:{section}",
                             "missing": True})
    for label in sorted(set(cur) & set(ref)):
        cur_s, cur_ms = cur[label]
        ref_s, ref_ms = ref[label]
        if min(cur_ms, ref_ms) < noise_floor_ms:
            continue
        label_floor = floor
        if section_floors:
            label_floor = section_floors.get(label.split("/", 1)[0],
                                             floor)
        if ref_s > 0 and cur_s < label_floor * ref_s:
            failures.append({
                "label": label,
                "committed_speedup": ref_s,
                "current_speedup": cur_s,
                "floor": label_floor * ref_s,
            })
    return failures
