"""Host-side profiling of the BFS hot loop: ``python -m repro.bench
profile``.

Answers "where does the wall-clock go?" for the traversal operators —
the question that motivated the compiled fast path (ROADMAP item 4).
Two views of the same run:

* a **per-layer breakdown**: every BFS layer timed individually for
  both execution tiers (``kernels`` — the reference per-kernel loop —
  and ``fastpath`` — the fused per-layer tier), with the chosen kernel
  and frontier size, so regressions can be pinned to one layer/regime;
* a **cProfile capture** of the end-to-end run per tier, exported as a
  ``pstats`` dump for interactive digging.

Results serialize to JSON (schema mirrors ``BENCH_wallclock.json``:
``{"meta": ..., "sections": ...}``) for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import cProfile
import json
import platform
import pstats
import time
from typing import Optional

import numpy as np

from ..core.selection import KernelSelector
from ..core.tilebfs import TileBFS
from ..fastpath import fastpath_tier
from ..matrices.generators import rmat

__all__ = ["profile_bfs", "main"]

_TIERS = ("kernels", "fastpath")


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def profile_bfs(scale: int = 17, edge_factor: int = 16, nt: int = 64,
                source: int = 0, repeats: int = 5,
                pstats_out: Optional[str] = None) -> dict:
    """Profile one TileBFS traversal under both execution tiers.

    Returns the result document (also what the CLI writes as JSON).
    With ``pstats_out``, a cProfile capture of each tier's run is
    dumped to ``<pstats_out>.<tier>.pstats``.
    """
    coo = rmat(scale, edge_factor=edge_factor, seed=7)
    sections: dict = {}
    for tier in _TIERS:
        op = TileBFS(coo, nt=nt, selector=KernelSelector(tier=tier))
        result = op.run(source)    # warm the plan + layouts
        total_ms = _best_of(lambda: op.run(source), repeats)

        # per-layer breakdown: run layer-by-layer via max_depth slicing
        # (each prefix is re-traversed; the difference isolates a layer)
        prefix_ms = [0.0]
        for depth in range(1, len(result.iterations) + 1):
            prefix_ms.append(_best_of(
                lambda d=depth: op.run(source, max_depth=d), repeats))
        layers = []
        for i, it in enumerate(result.iterations):
            layers.append({
                "depth": it.depth,
                "kernel": it.kernel,
                "frontier_size": it.frontier_size,
                "new_vertices": it.new_vertices,
                "ms": round(max(0.0, prefix_ms[i + 1] - prefix_ms[i]), 4),
            })
        section = {
            "total_ms": round(total_ms, 4),
            "iterations": len(result.iterations),
            "reached": int(np.count_nonzero(result.levels >= 0)),
            "layers": layers,
        }
        if pstats_out:
            prof = cProfile.Profile()
            prof.enable()
            op.run(source)
            prof.disable()
            path = f"{pstats_out}.{tier}.pstats"
            pstats.Stats(prof).dump_stats(path)
            section["pstats"] = path
        sections[tier] = section

    ref = sections["kernels"]["total_ms"]
    new = sections["fastpath"]["total_ms"]
    return {
        "meta": {
            "benchmark": "profile",
            "scale": scale,
            "edge_factor": edge_factor,
            "nt": nt,
            "source": source,
            "repeats": repeats,
            "fastpath_tier": fastpath_tier(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "sections": sections,
        "speedup": round(ref / new, 3) if new > 0 else None,
    }


def _format_report(doc: dict) -> str:
    lines = []
    meta = doc["meta"]
    lines.append(f"TileBFS profile: R-MAT scale {meta['scale']} "
                 f"(nt={meta['nt']}, tier={meta['fastpath_tier']})")
    for tier, section in doc["sections"].items():
        lines.append(f"  [{tier}] total {section['total_ms']:.2f} ms, "
                     f"{section['iterations']} layers, "
                     f"{section['reached']} reached")
        for layer in section["layers"]:
            lines.append(
                f"    depth {layer['depth']}: {layer['kernel']:>9s} "
                f"|frontier|={layer['frontier_size']:<7d} "
                f"{layer['ms']:7.2f} ms")
    if doc["speedup"] is not None:
        lines.append(f"  fastpath speedup: {doc['speedup']:.2f}x")
    return "\n".join(lines)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench profile",
        description="Per-layer host-time breakdown + cProfile capture "
                    "of the TileBFS hot loop, reference loop vs. the "
                    "compiled fast path.")
    parser.add_argument("--scale", type=int, default=17,
                        help="R-MAT scale (default: 17)")
    parser.add_argument("--edge-factor", type=int, default=16,
                        help="R-MAT edge factor (default: 16)")
    parser.add_argument("--nt", type=int, default=64,
                        help="tile size (default: 64)")
    parser.add_argument("--source", type=int, default=0,
                        help="BFS source vertex (default: 0)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats, best-of (default: 5)")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized run (scale 12, 2 repeats)")
    parser.add_argument("--out", default=None, metavar="JSON",
                        help="write the result document as JSON")
    parser.add_argument("--pstats-out", default=None, metavar="PREFIX",
                        help="dump cProfile stats to "
                             "PREFIX.<tier>.pstats")
    args = parser.parse_args(argv)

    scale = 12 if args.smoke else args.scale
    repeats = 2 if args.smoke else args.repeats
    doc = profile_bfs(scale=scale, edge_factor=args.edge_factor,
                      nt=args.nt, source=args.source, repeats=repeats,
                      pstats_out=args.pstats_out)
    print(_format_report(doc))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"-> {args.out}")
    return 0
