"""Table / series formatting for the benchmark harness.

The harness prints the same rows and series the paper reports; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["geomean", "format_table", "format_series", "Summary"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's averaging convention for speedups),
    ignoring non-positive and non-finite entries."""
    arr = np.asarray([v for v in values
                      if np.isfinite(v) and v > 0], dtype=np.float64)
    if len(arr) == 0:
        return float("nan")
    return float(np.exp(np.log(arr).mean()))


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) if _numericish(c) else c.ljust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float],
                  y_fmt: str = "{:.4f}") -> str:
    """One labelled (x, y) series, e.g. a Figure-10 iteration trace."""
    pairs = ", ".join(f"{x}:{y_fmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000 or (abs(cell) < 0.01 and cell != 0):
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def _numericish(s: str) -> bool:
    try:
        float(s.replace(",", ""))
        return True
    except ValueError:
        return s == "-"


class Summary:
    """Accumulates per-matrix speedups and reports paper-style
    aggregates: geomean, max, and the fraction of matrices won."""

    def __init__(self) -> None:
        self._data: Dict[str, List[float]] = {}

    def add(self, key: str, speedup: float) -> None:
        self._data.setdefault(key, []).append(float(speedup))

    def geomean(self, key: str) -> float:
        return geomean(self._data.get(key, []))

    def max(self, key: str) -> float:
        vals = [v for v in self._data.get(key, []) if np.isfinite(v)]
        return max(vals) if vals else float("nan")

    def fraction_won(self, key: str) -> float:
        """Fraction of entries where the speedup exceeds 1 (the paper's
        "faster on X% of matrices")."""
        vals = self._data.get(key, [])
        if not vals:
            return float("nan")
        return sum(v > 1.0 for v in vals) / len(vals)

    def keys(self) -> List[str]:
        return sorted(self._data)

    def rows(self) -> List[List]:
        return [[k, self.geomean(k), self.max(k),
                 100.0 * self.fraction_won(k)] for k in self.keys()]
