"""CLI entry point: ``python -m repro.bench [experiment ...]``.

With no arguments, runs every experiment (Table 2 and Figures 6-12 plus
the extraction ablation) and prints the paper-style tables.
"""

from __future__ import annotations

import sys

from .harness import ALL_EXPERIMENTS


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        print(result.text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
