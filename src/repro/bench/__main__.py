"""CLI entry point: ``python -m repro.bench [experiment ...]``.

With no arguments, runs every experiment (Table 2 and Figures 6-12 plus
the extraction ablation) and prints the paper-style tables.

``python -m repro.bench trace`` instead runs a traced workload and
writes the launch-by-launch record as Chrome ``trace_event`` JSON
(default) or JSONL — see ``trace --help``.
"""

from __future__ import annotations

import argparse
import sys

from .harness import ALL_EXPERIMENTS


def _run_trace(argv) -> int:
    from ..runtime import available_operators
    from .trace import DEFAULT_TRACE_OPERATORS, run_traced_workload

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench trace",
        description="Run operators under a traced execution context and "
                    "export the kernel-launch timeline.")
    parser.add_argument("--matrix", default="cant",
                        help="collection matrix name (default: cant)")
    parser.add_argument("--operators", default=None,
                        help="comma-separated registry names "
                             f"(default: {','.join(DEFAULT_TRACE_OPERATORS)}; "
                             f"known: {','.join(available_operators())})")
    parser.add_argument("--sparsity", type=float, default=0.01,
                        help="input-vector sparsity for spmspv/spmv "
                             "operators (default: 0.01)")
    parser.add_argument("--source", type=int, default=0,
                        help="BFS source vertex (default: 0)")
    parser.add_argument("--format", choices=("chrome", "jsonl"),
                        default="chrome",
                        help="output format (default: chrome)")
    parser.add_argument("--out", default=None,
                        help="output path (default: trace.json / "
                             "trace.jsonl by format)")
    args = parser.parse_args(argv)

    operators = (args.operators.split(",") if args.operators else None)
    tracer, device = run_traced_workload(
        matrix=args.matrix, operators=operators,
        sparsity=args.sparsity, source=args.source)
    out = args.out or ("trace.json" if args.format == "chrome"
                       else "trace.jsonl")
    if args.format == "chrome":
        tracer.write_chrome(out)
    else:
        tracer.write_jsonl(out)
    print(f"{len(tracer)} launches, {device.elapsed_ms:.3f} simulated ms "
          f"-> {out}")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return _run_trace(argv[1:])
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        print(result.text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
