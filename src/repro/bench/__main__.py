"""CLI entry point: ``python -m repro.bench [experiment ...]``.

With no arguments, runs every experiment (Table 2 and Figures 6-12 plus
the extraction ablation) and prints the paper-style tables.

``python -m repro.bench trace`` instead runs a traced workload and
writes the launch-by-launch record as Chrome ``trace_event`` JSON
(default) or JSONL — see ``trace --help``.

``python -m repro.bench verify`` runs the differential verification
harness (oracles, sibling cross-checks, counter invariants, metamorphic
relations) over the operator registry — see ``verify --help``.

``python -m repro.bench profile`` prints a per-layer host-time
breakdown of the BFS hot loop (reference loop vs. the compiled fast
path) and can dump cProfile captures — see ``profile --help``.
"""

from __future__ import annotations

import argparse
import sys

from .harness import ALL_EXPERIMENTS


def _run_trace(argv) -> int:
    from ..runtime import available_operators
    from .trace import DEFAULT_TRACE_OPERATORS, run_traced_workload

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench trace",
        description="Run operators under a traced execution context and "
                    "export the kernel-launch timeline.")
    parser.add_argument("--matrix", default="cant",
                        help="collection matrix name (default: cant)")
    parser.add_argument("--operators", default=None,
                        help="comma-separated registry names "
                             f"(default: {','.join(DEFAULT_TRACE_OPERATORS)}; "
                             f"known: {','.join(available_operators())})")
    parser.add_argument("--sparsity", type=float, default=0.01,
                        help="input-vector sparsity for spmspv/spmv "
                             "operators (default: 0.01)")
    parser.add_argument("--source", type=int, default=0,
                        help="BFS source vertex (default: 0)")
    parser.add_argument("--format", choices=("chrome", "jsonl"),
                        default="chrome",
                        help="output format (default: chrome)")
    parser.add_argument("--shard", type=int, default=None, metavar="SID",
                        help="keep only launches tagged shard=SID "
                             "(sharded operators tag every per-shard "
                             "launch)")
    parser.add_argument("--device", type=int, default=None,
                        metavar="DID",
                        help="keep only launches tagged device=DID "
                             "(parallel shard execution tags every "
                             "worker launch shard=S;device=D;worker=W)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run the workload with N shard workers "
                             "(sets REPRO_WORKERS for this run)")
    parser.add_argument("--out", default=None,
                        help="output path (default: trace.json / "
                             "trace.jsonl by format)")
    args = parser.parse_args(argv)

    operators = (args.operators.split(",") if args.operators else None)
    if args.workers is not None:
        # scope the override to this workload: main() also runs
        # in-process (tests, notebooks), so the variable must not leak
        import os
        from ..parallel import WORKERS_ENV
        prev = os.environ.get(WORKERS_ENV)
        os.environ[WORKERS_ENV] = str(args.workers)
        try:
            tracer, device = run_traced_workload(
                matrix=args.matrix, operators=operators,
                sparsity=args.sparsity, source=args.source)
        finally:
            if prev is None:
                os.environ.pop(WORKERS_ENV, None)
            else:
                os.environ[WORKERS_ENV] = prev
    else:
        tracer, device = run_traced_workload(
            matrix=args.matrix, operators=operators,
            sparsity=args.sparsity, source=args.source)
    total_launches = len(tracer)
    if args.shard is not None:
        tracer = tracer.filtered_by_shard(args.shard)
        print(f"shard={args.shard}: {len(tracer)} of "
              f"{total_launches} launches kept")
    if args.device is not None:
        tracer = tracer.filtered_by_device(args.device)
        print(f"device={args.device}: {len(tracer)} of "
              f"{total_launches} launches kept")
    out = args.out or ("trace.json" if args.format == "chrome"
                       else "trace.jsonl")
    if args.format == "chrome":
        tracer.write_chrome(out)
    else:
        tracer.write_jsonl(out)
    print(f"{len(tracer)} launches, {device.elapsed_ms:.3f} simulated ms "
          f"-> {out}")
    return 0


def _run_verify(argv) -> int:
    from ..runtime import available_operators
    from ..verify import replay_repro, run_verification

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench verify",
        description="Differential verification: cross-check every "
                    "registered operator against independent oracles, "
                    "sibling operators, and gpusim counter invariants "
                    "over a randomized case grid; failures shrink to "
                    "replayable JSON repros.")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized grid (default is the "
                             "nightly full grid)")
    parser.add_argument("--seed", type=int, default=0,
                        help="grid seed; the same seed reproduces the "
                             "same cases (default: 0)")
    parser.add_argument("--operator", action="append", default=None,
                        metavar="NAME",
                        help="restrict to one registry operator (repeat "
                             "for several; known: "
                             f"{','.join(available_operators())})")
    parser.add_argument("--replay", default=None, metavar="REPRO.json",
                        help="re-run one serialized repro file instead "
                             "of the grid")
    parser.add_argument("--out", default="verify-failures",
                        help="directory for shrunk failure repros "
                             "(default: verify-failures)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="serialize failing cases without "
                             "minimizing them first")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print each case as it runs")
    args = parser.parse_args(argv)

    if args.replay:
        case, check, failure = replay_repro(args.replay)
        if failure is None:
            print(f"PASS {case.describe()} [{check}]")
            return 0
        print(f"FAIL {case.describe()} [{check}]: {failure}")
        return 1

    report = run_verification(
        seed=args.seed, smoke=args.smoke, operators=args.operator,
        out_dir=args.out, shrink_failures=not args.no_shrink,
        verbose=args.verbose)
    print(report.summary())
    return 0 if report.ok else 1


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return _run_trace(argv[1:])
    if argv and argv[0] == "verify":
        return _run_verify(argv[1:])
    if argv and argv[0] == "profile":
        from .profile import main as profile_main
        return profile_main(argv[1:])
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        print(result.text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
