"""Traced workloads behind ``python -m repro.bench trace``.

Runs a set of registered operators on one matrix with a shared
:class:`~repro.runtime.ExecutionContext` (one simulated device, one
:class:`~repro.runtime.Tracer`), so every priced kernel launch lands on
a single serial timeline annotated with its operator and phase.  The
result exports as JSONL or as Chrome ``trace_event`` JSON (open in
``chrome://tracing`` or Perfetto).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..gpusim import Device, GPUSpec, RTX3090
from ..matrices import get_matrix
from ..runtime import (ExecutionContext, Tracer, create_operator,
                       operator_kind)
from ..vectors import random_sparse_vector

__all__ = ["DEFAULT_TRACE_OPERATORS", "run_traced_workload"]

#: Operators the ``trace`` subcommand drives when none are named:
#: every registered algorithm that works on a square matrix.
DEFAULT_TRACE_OPERATORS = (
    "tilespmspv", "sharded-spmspv", "combblas", "spmspv-via-spgemm",
    "tilespmv", "cusparse-bsr",
    "tilebfs", "gunrock", "gswitch", "enterprise",
    "msbfs",
)


def run_traced_workload(matrix: str = "cant",
                        operators: Optional[Sequence[str]] = None,
                        sparsity: float = 0.01, source: int = 0,
                        spec: GPUSpec = RTX3090
                        ) -> Tuple[Tracer, Device]:
    """Drive ``operators`` on ``matrix`` under one traced context.

    ``spmspv``/``spmv`` operators multiply a random sparse vector of
    the given ``sparsity``; ``bfs`` operators traverse from ``source``;
    ``msbfs`` traverses from the single-source batch ``[source]``.
    Returns the tracer and the shared device (whose timeline holds the
    same launches, unannotated).
    """
    coo = get_matrix(matrix)
    tracer = Tracer()
    ctx = ExecutionContext(device=Device(spec), tracer=tracer)
    x = random_sparse_vector(coo.shape[1], sparsity)
    for name in (operators or DEFAULT_TRACE_OPERATORS):
        kind = operator_kind(name)
        op = create_operator(name, coo, device=ctx)
        if kind in ("spmspv", "spmv"):
            op.multiply(x)
        elif kind == "bfs":
            op.run(source)
        else:  # msbfs
            op.run([source])
    return tracer, ctx.device
