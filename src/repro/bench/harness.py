"""Experiment runners: one function per paper table / figure.

Each ``run_*`` function regenerates the rows or series of one piece of
the paper's evaluation (§4) on the synthetic collection, using the
simulated GPU for timing, and returns a structured result whose
``text`` field is the printable paper-style table.  The benchmark
modules under ``benchmarks/`` call these inside pytest-benchmark
fixtures; ``python -m repro.bench`` runs them all from the CLI.

Experiment index (see DESIGN.md §2 for the full mapping):

=========  =====================================================
Table 2    ``run_table2``     tile counts of the representative set
Figure 6   ``run_fig6``       SpMSpV GFlops + speedups, 4 sparsities
Figure 7   ``run_fig7``       BFS vs Gunrock/GSwitch, both GPUs
Figure 8   ``run_fig8``       BFS GTEPS on the representative set
Figure 9   ``run_fig9``       K1 / K1+K2 / K1+K2+K3 ablation
Figure 10  ``run_fig10``      per-iteration time traces
Figure 11  ``run_fig11``      format-conversion overhead vs one BFS
Figure 12  ``run_fig12``      TileBFS vs Enterprise GTEPS
§4.2 text  ``run_extraction`` COO-extraction ablation
=========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import KernelSelector
from ..formats.coo import COOMatrix
from ..gpusim import Device, GPUSpec, KernelCounters, RTX3060, RTX3090
from ..matrices import (ENTERPRISE_6, REPRESENTATIVE_12, CollectionEntry,
                        get_matrix, sweep_entries)
from ..runtime import create_operator, plan_cache_stats
from ..tiles import tile_stats
from ..vectors import PAPER_SPARSITIES, random_sparse_vector
from .report import Summary, format_series, format_table, geomean

__all__ = [
    "ExperimentResult", "run_table2", "run_fig6", "run_fig7", "run_fig8",
    "run_fig9", "run_fig10", "run_fig11", "run_fig12", "run_extraction",
    "conversion_counters", "ALL_EXPERIMENTS",
]


@dataclass
class ExperimentResult:
    """Output of one experiment runner."""

    experiment: str
    headers: List[str]
    rows: List[List]
    text: str
    extra: Dict = field(default_factory=dict)


def _useful_flops(coo: COOMatrix, x) -> float:
    """2 x (column nonzeros matched by x) — the paper's GFlops
    numerator and the x-axis quantity of Figure 6."""
    degs = np.bincount(coo.col, minlength=coo.shape[1])
    return float(2 * degs[x.indices].sum())


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
def run_table2(entries: Optional[Sequence[CollectionEntry]] = None
               ) -> ExperimentResult:
    """Table 2: size, nnz and non-empty tile counts at nt = 16/32/64."""
    entries = list(entries or REPRESENTATIVE_12)
    headers = ["Matrix", "Size", "#nonzeros", "#tiles (16)", "#tiles (32)",
               "#tiles (64)"]
    rows = []
    for e in entries:
        m = get_matrix(e.name) if e.paper_shape or e in REPRESENTATIVE_12 \
            else e.build()
        counts = {nt: tile_stats(m, nt).n_nonempty_tiles
                  for nt in (16, 32, 64)}
        rows.append([e.name, f"{m.shape[0]}x{m.shape[1]}", m.nnz,
                     counts[16], counts[32], counts[64]])
    text = format_table(headers, rows,
                        title="Table 2 - representative matrices "
                              "(synthetic stand-ins)")
    return ExperimentResult("table2", headers, rows, text)


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
def run_fig6(entries: Optional[Sequence[CollectionEntry]] = None,
             sparsities: Sequence[float] = PAPER_SPARSITIES,
             spec: GPUSpec = RTX3090, nt: int = 16) -> ExperimentResult:
    """Figure 6: SpMSpV GFlops of TileSpMSpV vs TileSpMV / cuSPARSE-BSR
    / CombBLAS at four vector sparsities, plus geomean/max speedups."""
    entries = list(entries if entries is not None
                   else sweep_entries(max_n=20_000))
    summaries = {s: Summary() for s in sparsities}
    detail_rows = []
    for e in entries:
        coo = get_matrix(e.name) if e.name in _named() else e.build()
        n = coo.shape[1]
        devices = {name: Device(spec) for name in
                   ("TileSpMSpV", "TileSpMV", "cuSPARSE", "CombBLAS")}
        algs = {
            "TileSpMSpV": create_operator("tilespmspv", coo, nt=nt,
                                          device=devices["TileSpMSpV"]),
            "TileSpMV": create_operator("tilespmv", coo, nt=nt,
                                        device=devices["TileSpMV"]),
            "cuSPARSE": create_operator("cusparse-bsr", coo, blocksize=nt,
                                        device=devices["cuSPARSE"]),
            "CombBLAS": create_operator("combblas", coo,
                                        device=devices["CombBLAS"]),
        }
        for s in sparsities:
            x = random_sparse_vector(n, s)
            flops = _useful_flops(coo, x)
            times = {}
            for name, alg in algs.items():
                devices[name].reset()
                alg.multiply(x)
                times[name] = devices[name].elapsed_ms
            gf = {name: flops / (t * 1e-3) / 1e9 if t > 0 else float("inf")
                  for name, t in times.items()}
            for rival in ("TileSpMV", "cuSPARSE", "CombBLAS"):
                summaries[s].add(rival,
                                 times[rival] / times["TileSpMSpV"])
            detail_rows.append([e.name, s, round(flops),
                                gf["TileSpMSpV"], gf["TileSpMV"],
                                gf["cuSPARSE"], gf["CombBLAS"]])

    headers = ["Sparsity", "vs", "geomean speedup", "max speedup"]
    rows = []
    for s in sparsities:
        for rival in ("TileSpMV", "cuSPARSE", "CombBLAS"):
            rows.append([s, rival, summaries[s].geomean(rival),
                         summaries[s].max(rival)])
    text = format_table(
        headers, rows,
        title=f"Figure 6 - TileSpMSpV speedups on {spec.name} "
              f"({len(entries)} matrices)")
    detail_headers = ["Matrix", "Sparsity", "useful flops",
                      "GFlops Tile", "GFlops TileSpMV", "GFlops cuSPARSE",
                      "GFlops CombBLAS"]
    return ExperimentResult("fig6", headers, rows, text,
                            extra={"detail_headers": detail_headers,
                                   "detail_rows": detail_rows})


# ----------------------------------------------------------------------
# Figure 7
# ----------------------------------------------------------------------
def run_fig7(entries: Optional[Sequence[CollectionEntry]] = None,
             specs: Sequence[GPUSpec] = (RTX3060, RTX3090),
             source: int = 0) -> ExperimentResult:
    """Figure 7: BFS time of TileBFS vs Gunrock / GSwitch on both GPUs,
    with geomean/max speedups and %-of-matrices-won."""
    entries = list(entries if entries is not None
                   else sweep_entries(max_n=20_000))
    rows = []
    per_spec_summary: Dict[str, Summary] = {}
    for spec in specs:
        summary = Summary()
        per_spec_summary[spec.name] = summary
        for e in entries:
            coo = get_matrix(e.name) if e.name in _named() else e.build()
            if coo.shape[0] != coo.shape[1]:
                continue
            times = {}
            for name, regname in (("TileBFS", "tilebfs"),
                                  ("Gunrock", "gunrock"),
                                  ("GSwitch", "gswitch")):
                dev = Device(spec)
                alg = create_operator(regname, coo, device=dev)
                times[name] = alg.run(source).simulated_ms
            summary.add("Gunrock", times["Gunrock"] / times["TileBFS"])
            summary.add("GSwitch", times["GSwitch"] / times["TileBFS"])
            rows.append([spec.name, e.name, coo.nnz, times["TileBFS"],
                         times["Gunrock"], times["GSwitch"]])

    headers = ["GPU", "vs", "geomean speedup", "max speedup", "% won"]
    agg_rows = []
    for spec in specs:
        s = per_spec_summary[spec.name]
        for rival in ("Gunrock", "GSwitch"):
            agg_rows.append([spec.name, rival, s.geomean(rival),
                             s.max(rival), 100.0 * s.fraction_won(rival)])
    text = format_table(headers, agg_rows,
                        title=f"Figure 7 - TileBFS speedups "
                              f"({len(entries)} matrices)")
    detail_headers = ["GPU", "Matrix", "nnz", "TileBFS ms", "Gunrock ms",
                      "GSwitch ms"]
    return ExperimentResult("fig7", headers, agg_rows, text,
                            extra={"detail_headers": detail_headers,
                                   "detail_rows": rows})


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
def run_fig8(entries: Optional[Sequence[CollectionEntry]] = None,
             spec: GPUSpec = RTX3090, source: int = 0) -> ExperimentResult:
    """Figure 8: BFS GTEPS of GSwitch / Gunrock / TileBFS on the
    representative matrices (RTX 3090)."""
    entries = list(entries or REPRESENTATIVE_12)
    headers = ["Matrix", "GSwitch GTEPS", "Gunrock GTEPS", "TileBFS GTEPS"]
    rows = []
    for e in entries:
        coo = get_matrix(e.name) if e.name in _named() else e.build()
        gteps = {}
        for name, regname in (("GSwitch", "gswitch"),
                              ("Gunrock", "gunrock"),
                              ("TileBFS", "tilebfs")):
            dev = Device(spec)
            res = create_operator(regname, coo, device=dev).run(source)
            gteps[name] = res.gteps(coo.nnz)
        rows.append([e.name, gteps["GSwitch"], gteps["Gunrock"],
                     gteps["TileBFS"]])
    text = format_table(headers, rows,
                        title=f"Figure 8 - BFS GTEPS on {spec.name}")
    return ExperimentResult("fig8", headers, rows, text)


# ----------------------------------------------------------------------
# Figure 9
# ----------------------------------------------------------------------
def run_fig9(entries: Optional[Sequence[CollectionEntry]] = None,
             spec: GPUSpec = RTX3090, source: int = 0) -> ExperimentResult:
    """Figure 9: stacking the directional-optimization kernels — K1,
    K1+K2, K1+K2+K3 — on the representative matrices."""
    entries = list(entries or REPRESENTATIVE_12)
    selectors = [("K1", KernelSelector.k1()),
                 ("K1+K2", KernelSelector.k1_k2()),
                 ("K1+K2+K3", KernelSelector.k1_k2_k3())]
    headers = ["Matrix"] + [f"{name} GTEPS" for name, _ in selectors]
    rows = []
    for e in entries:
        coo = get_matrix(e.name) if e.name in _named() else e.build()
        row = [e.name]
        for _, sel in selectors:
            dev = Device(spec)
            res = create_operator("tilebfs", coo, selector=sel,
                                  device=dev).run(source)
            row.append(res.gteps(coo.nnz))
        rows.append(row)
    text = format_table(headers, rows,
                        title="Figure 9 - directional optimization "
                              "ablation (GTEPS)")
    return ExperimentResult("fig9", headers, rows, text)


# ----------------------------------------------------------------------
# Figure 10
# ----------------------------------------------------------------------
def run_fig10(names: Sequence[str] = ("cant", "in-2004", "msdoor",
                                      "roadNet-TX"),
              spec: GPUSpec = RTX3090, source: int = 0) -> ExperimentResult:
    """Figure 10: per-iteration execution-time traces of Gunrock,
    GSwitch and TileBFS on four representative matrices."""
    rows = []
    series_text = []
    cache_before = plan_cache_stats()
    for name in names:
        coo = get_matrix(name)
        for alg, regname in (("Gunrock", "gunrock"),
                             ("GSwitch", "gswitch"),
                             ("TileBFS", "tilebfs")):
            dev = Device(spec)
            res = create_operator(regname, coo, device=dev).run(source)
            xs = [it.depth for it in res.iterations]
            ys = [it.simulated_ms for it in res.iterations]
            rows.append([name, alg, len(xs), sum(ys)])
            series_text.append(format_series(f"{name}/{alg}", xs, ys))
    cache_after = plan_cache_stats()
    headers = ["Matrix", "Algorithm", "iterations", "total ms"]
    text = (format_table(headers, rows,
                         title="Figure 10 - iteration time traces")
            + "\n" + "\n".join(series_text))
    return ExperimentResult(
        "fig10", headers, rows, text,
        extra={"plan_cache": {
            k: cache_after[k] - cache_before.get(k, 0)
            for k in ("hits", "misses", "evictions")}})


# ----------------------------------------------------------------------
# Figure 11
# ----------------------------------------------------------------------
def conversion_counters(coo: COOMatrix, nt: int) -> KernelCounters:
    """Cost of converting CSR to the tiled format on the GPU.

    Modelled as the standard pipeline: compute per-entry tile keys
    (stream the CSR arrays), radix-sort the (key, entry) pairs, then
    write tile metadata and reordered payloads — all bandwidth-bound.
    """
    stats = tile_stats(coo, nt)
    c = KernelCounters(launches=4)
    nnz = coo.nnz
    c.coalesced_read_bytes += nnz * 12.0            # CSR indices+values
    c.coalesced_write_bytes += nnz * 8.0            # tile keys
    radix_passes = 4
    c.coalesced_read_bytes += nnz * 16.0 * radix_passes
    c.coalesced_write_bytes += nnz * 16.0 * radix_passes
    c.coalesced_read_bytes += nnz * 8.0             # boundary scan
    c.coalesced_write_bytes += (stats.n_nonempty_tiles * 24.0
                                + nnz * 10.0)       # metadata + payload
    c.word_ops += 6.0 * nnz
    c.warps = max(1.0, nnz / 32.0)
    return c


def run_fig11(entries: Optional[Sequence[CollectionEntry]] = None,
              spec: GPUSpec = RTX3090, source: int = 0) -> ExperimentResult:
    """Figure 11: format-conversion time vs a single BFS run.

    The paper reports the conversion "does not exceed a single BFS
    processing time in normal cases, and does not exceed 10x ... in
    most cases"."""
    entries = list(entries or REPRESENTATIVE_12)
    headers = ["Matrix", "conversion ms", "one BFS ms", "ratio"]
    rows = []
    for e in entries:
        coo = get_matrix(e.name) if e.name in _named() else e.build()
        dev = Device(spec)
        bfs = create_operator("tilebfs", coo, device=dev)
        conv_ms = dev.model.time_ms(conversion_counters(coo, bfs.nt))
        bfs_ms = bfs.run(source).simulated_ms
        rows.append([e.name, conv_ms, bfs_ms,
                     conv_ms / bfs_ms if bfs_ms else float("nan")])
    text = format_table(headers, rows,
                        title="Figure 11 - conversion overhead vs one BFS")
    return ExperimentResult("fig11", headers, rows, text)


# ----------------------------------------------------------------------
# Figure 12
# ----------------------------------------------------------------------
def run_fig12(entries: Optional[Sequence[CollectionEntry]] = None,
              spec: GPUSpec = RTX3090, source: int = 0) -> ExperimentResult:
    """Figure 12: TileBFS vs Enterprise GTEPS on the six matrices of the
    Enterprise paper."""
    entries = list(entries or ENTERPRISE_6)
    headers = ["Matrix", "Enterprise GTEPS", "TileBFS GTEPS", "speedup"]
    rows = []
    for e in entries:
        coo = get_matrix(e.name) if e.name in _named() else e.build()
        gteps = {}
        for name, regname in (("Enterprise", "enterprise"),
                              ("TileBFS", "tilebfs")):
            dev = Device(spec)
            alg = create_operator(regname, coo, device=dev)
            gteps[name] = alg.run(source).gteps(coo.nnz)
        rows.append([e.name, gteps["Enterprise"], gteps["TileBFS"],
                     gteps["TileBFS"] / gteps["Enterprise"]])
    speedups = [r[3] for r in rows]
    text = format_table(
        headers, rows,
        title=f"Figure 12 - TileBFS vs Enterprise on {spec.name} "
              f"(geomean speedup {geomean(speedups):.2f})")
    return ExperimentResult("fig12", headers, rows, text,
                            extra={"geomean_speedup": geomean(speedups)})


# ----------------------------------------------------------------------
# §4.2 extraction ablation
# ----------------------------------------------------------------------
def run_extraction(spec: GPUSpec = RTX3090,
                   sparsity: float = 0.01) -> ExperimentResult:
    """§4.2 text: the COO-extraction gain on matrices with many
    very-sparse tiles ('cryg10000' gains 1.6x in the paper)."""
    from ..matrices import generators as g

    cases = [
        ("cryg-like (bands+dust)", lambda: _mix_scatter(seed=5)),
        ("road_k300", lambda: g.road_network(300, seed=6)),
        ("rmat_s15", lambda: g.rmat(15, edge_factor=10, seed=7)),
    ]
    headers = ["Matrix", "no-extract ms", "extract ms", "speedup",
               "extracted %"]
    rows = []
    for name, build in cases:
        coo = build()
        x = random_sparse_vector(coo.shape[1], sparsity)
        times = {}
        for mode, threshold in (("off", 0), ("on", 2)):
            dev = Device(spec)
            op = create_operator("tilespmspv", coo, nt=16,
                                 extract_threshold=threshold, device=dev)
            op.multiply(x)
            times[mode] = dev.elapsed_ms
            if mode == "on":
                extracted = 100.0 * op.hybrid.extracted_fraction
        rows.append([name, times["off"], times["on"],
                     times["off"] / times["on"], extracted])
    text = format_table(headers, rows,
                        title="§4.2 - very-sparse-tile COO extraction "
                              "ablation")
    return ExperimentResult("extraction", headers, rows, text)


def _mix_scatter(seed: int, n: int = 150_000) -> COOMatrix:
    """A matrix that is mostly dense bands plus a heavy dust of isolated
    entries — the 'cryg10000' profile of §4.2: about half the non-empty
    tiles hold only a nonzero or two, so extraction halves the tile
    metadata the row-tile kernel must scan."""
    from ..matrices import generators as g

    rng = np.random.default_rng(seed)
    base = g.banded(n, bandwidth=4, seed=seed)
    n_dust = base.nnz
    rows = rng.integers(0, n, size=n_dust)
    cols = rng.integers(0, n, size=n_dust)
    vals = 1.0 - rng.random(n_dust)
    return COOMatrix(
        (n, n),
        np.concatenate([base.row, rows]),
        np.concatenate([base.col, cols]),
        np.concatenate([base.val, vals])).sum_duplicates()


def _named() -> set:
    from ..matrices.collection import _BY_NAME

    return set(_BY_NAME)


#: name → runner, for the CLI and the benchmark suite.
ALL_EXPERIMENTS = {
    "table2": run_table2,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "extraction": run_extraction,
}
