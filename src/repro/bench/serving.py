"""Open-loop load generation against the serving layer.

The serving benchmark answers the question the unit suite cannot: how
does the coalescing service behave under *traffic* — sustained
open-loop arrivals that do not wait for responses?  The load generator
drives :class:`~repro.serving.GraphQueryService` with seeded Poisson
arrivals over a mixed query stream (hot-matrix multiplies, cold-matrix
multiplies, BFS, PageRank) and sweeps the offered rate across the
service's capacity, reporting per-rate latency percentiles,
throughput, reject rate, and coalescing effectiveness.

Determinism is the design constraint.  The whole run executes in
virtual time on a :class:`~repro.serving.VirtualClock`: arrivals come
from a seeded RNG, service times from the simulated device's cost
model, completions from the service's single-server queueing model.
Nothing reads the wall clock, so the recorded p50/p99 and goodput are
bit-identical on every machine — which is what lets CI hold the
committed ``BENCH_serving.smoke.json`` baseline to tight floors
(:func:`check_serving_regression`) instead of flaky wall-time
tolerances.

The signature result is the **saturation knee**: below capacity the
reject rate is zero and p99 tracks the coalescing delay budget; past
capacity admission control caps the backlog, goodput plateaus near
capacity, and the reject rate absorbs the excess — open-loop overload
becomes explicit rejections, not unbounded latency.

``benchmarks/bench_serving.py`` is the CLI wrapper (full sweep to
``BENCH_serving.json``, ``--smoke`` for the CI-sized run);
``benchmarks/check_serving_regression.py`` applies the guard.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..gpusim import Device
from ..matrices.generators import erdos_renyi
from ..serving import (AdmissionController, BFSQuery, GraphQueryService,
                       MultiplyQuery, PageRankQuery, ServiceSaturated,
                       VirtualClock)
from ..vectors import random_sparse_vector

__all__ = ["run_serving_bench", "check_serving_regression",
           "known_rates"]


def _build_workload(seed: int, smoke: bool):
    """The benchmark's matrices and query stream parameters.

    One hot matrix takes most of the multiply traffic (its plan is
    pinned — the hot working set); a few cold matrices share the
    rest (cache-resident but unpinned); BFS and PageRank ride along
    as the expensive direct queries.
    """
    if smoke:
        hot = erdos_renyi(256, avg_degree=8.0, seed=seed)
        cold = [erdos_renyi(128, avg_degree=6.0, seed=seed + 1 + i)
                for i in range(2)]
    else:
        hot = erdos_renyi(1024, avg_degree=8.0, seed=seed)
        cold = [erdos_renyi(256, avg_degree=6.0, seed=seed + 1 + i)
                for i in range(3)]
    return hot, cold


def _make_service(hot, cold, clock: VirtualClock,
                  max_batch: int, max_delay_ms: float,
                  max_pending: int, max_backlog_ms: float
                  ) -> GraphQueryService:
    svc = GraphQueryService(
        device=Device(), clock=clock, max_batch=max_batch,
        max_delay_ms=max_delay_ms,
        admission=AdmissionController(max_pending=max_pending,
                                      max_backlog_ms=max_backlog_ms))
    svc.register_matrix("hot", hot, pin=True)
    for i, A in enumerate(cold):
        svc.register_matrix(f"cold{i}", A)
    return svc


def _query_stream(n_requests: int, hot_n: int, cold_ns, seed: int,
                  mix=(0.70, 0.15, 0.10, 0.05)):
    """Seeded mixed query stream: (kind fractions are multiply-hot,
    multiply-cold, bfs, pagerank).  Vectors are pre-generated so the
    stream itself costs the load loop nothing."""
    rng = np.random.default_rng(seed)
    kinds = rng.choice(4, size=n_requests, p=list(mix))
    queries = []
    for i, k in enumerate(kinds):
        if k == 0:
            x = random_sparse_vector(hot_n, 0.95,
                                     seed=int(rng.integers(1 << 31)))
            queries.append(MultiplyQuery("hot", x))
        elif k == 1:
            j = int(rng.integers(len(cold_ns)))
            x = random_sparse_vector(cold_ns[j], 0.95,
                                     seed=int(rng.integers(1 << 31)))
            queries.append(MultiplyQuery(f"cold{j}", x))
        elif k == 2:
            queries.append(BFSQuery("hot",
                                    int(rng.integers(hot_n))))
        else:
            queries.append(PageRankQuery("hot", max_iter=20))
    return queries


def _calibrate(hot, cold, queries, max_batch: int) -> tuple:
    """Closed-loop calibration: serve the exact query stream
    back-to-back (no arrival gaps, full coalescing, unbounded
    admission) and price it on the server model.

    Returns ``(capacity_rps, mean_service_ms)`` — the best-case
    sustainable throughput of this workload mix and the mean modeled
    service time per request.  ``rate=1.0`` in the sweep means
    'offered load equals this capacity', which puts the saturation
    knee at 1 by construction.
    """
    clk = VirtualClock()
    svc = _make_service(hot, cold, clk, max_batch, max_delay_ms=None,
                        max_pending=None, max_backlog_ms=None)
    for q in queries:
        svc.submit_nowait(q)
    svc.drain()
    busy_s = svc._busy_until
    mean_ms = busy_s * 1e3 / len(queries)
    return ((len(queries) / busy_s) if busy_s > 0 else float("inf"),
            mean_ms)


def run_serving_bench(rates: Optional[Sequence[float]] = None,
                      n_requests: int = 600, seed: int = 7,
                      max_batch: int = 8, max_delay_ms: float = 2.0,
                      max_pending: int = 64,
                      backlog_requests: float = 25.0,
                      smoke: bool = False,
                      progress: Optional[Callable[[str], None]] = None
                      ) -> Dict:
    """Sweep offered load across the service's capacity.

    Parameters
    ----------
    rates:
        Offered-rate multipliers relative to the calibrated workload
        capacity; the defaults bracket the knee (``1.0``) from both
        sides.
    n_requests:
        Open-loop arrivals per rate point.
    max_batch / max_delay_ms:
        The service's coalescing budgets.
    max_pending / backlog_requests:
        Admission budgets — what converts overload into rejections.
        ``backlog_requests`` is denominated in mean service times (a
        backlog of that many requests' worth of modeled work trips
        the bound), so the knee shape is invariant to how cheap the
        modeled kernels are.
    smoke:
        CI-sized run: smaller matrices, fewer arrivals, three rates.

    Returns
    -------
    dict with ``meta`` and per-rate ``rates`` rows — the JSON payload
    of ``BENCH_serving.json`` (``BENCH_serving.smoke.json`` for the
    smoke shape).  All numbers are virtual-time deterministic.
    """
    if rates is None:
        rates = (0.5, 1.0, 3.0) if smoke else (0.25, 0.5, 1.0, 2.0, 4.0)
    if smoke:
        n_requests = min(n_requests, 150)

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    say("building workload matrices")
    hot, cold = _build_workload(seed, smoke)
    queries = _query_stream(n_requests, hot.shape[1],
                            [A.shape[1] for A in cold], seed)
    capacity_rps, mean_service_ms = _calibrate(hot, cold, queries,
                                               max_batch)
    max_backlog_ms = backlog_requests * mean_service_ms
    say(f"workload capacity ~{capacity_rps:.1f} rps "
        f"(mean {mean_service_ms:.4f} ms/req, "
        f"backlog cap {max_backlog_ms:.4f} ms)")

    rows = []
    for mult in rates:
        offered_rps = mult * capacity_rps
        clk = VirtualClock()
        svc = _make_service(hot, cold, clk, max_batch, max_delay_ms,
                            max_pending, max_backlog_ms)
        rng = np.random.default_rng(seed + 1000)
        arrivals = np.cumsum(rng.exponential(1.0 / offered_rps,
                                             size=n_requests))
        say(f"rate {mult:g}x: {n_requests} arrivals over "
            f"{arrivals[-1]:.3f}s virtual")
        rejected = 0
        for t_arr, query in zip(arrivals, queries):
            clk.advance_to(float(t_arr))
            svc.pump()               # fire overdue latency budgets
            try:
                svc.submit_nowait(query)
            except ServiceSaturated:
                rejected += 1
        # close the run: let every armed latency budget expire, then
        # drain stragglers
        clk.advance(max_delay_ms * 1e-3)
        svc.pump()
        svc.drain()
        duration_s = float(arrivals[-1])
        stats = svc.stats()
        lat = stats["latency"]["all"]
        hot_q = stats["queues"]["hot"]
        rows.append({
            "rate": float(mult),
            "offered_rps": float(offered_rps),
            "requests": int(n_requests),
            "completed": int(stats["completed"]),
            "rejected": int(rejected),
            "reject_rate": rejected / n_requests,
            "goodput_rps": stats["completed"] / duration_s,
            "p50_ms": lat["p50_ms"],
            "p99_ms": lat["p99_ms"],
            "mean_ms": lat["mean_ms"],
            "mean_batch_size": hot_q["mean_batch_size"],
            "duration_s": duration_s,
            "latency_by_kind": {
                k: {"count": v["count"], "p50_ms": v["p50_ms"],
                    "p99_ms": v["p99_ms"]}
                for k, v in stats["latency"].items() if k != "all"},
            "pagerank_memo_hits": stats["pagerank_memo"]["hits"],
        })

    return {
        "meta": {
            "hot": f"erdos_renyi(n={hot.shape[0]}, nnz={hot.nnz})",
            "cold": [f"erdos_renyi(n={A.shape[0]}, nnz={A.nnz})"
                     for A in cold],
            "n_requests": int(n_requests),
            "seed": int(seed),
            "mix": "70% multiply-hot / 15% multiply-cold / "
                   "10% bfs / 5% pagerank",
            "max_batch": int(max_batch),
            "max_delay_ms": float(max_delay_ms),
            "max_pending": int(max_pending),
            "backlog_requests": float(backlog_requests),
            "max_backlog_ms": float(max_backlog_ms),
            "capacity_rps": float(capacity_rps),
            "mean_service_ms": float(mean_service_ms),
            "smoke": bool(smoke),
            "time_base": "virtual (deterministic; modeled device ms)",
        },
        "rates": rows,
    }


def known_rates(committed: Dict) -> tuple:
    """The rate multipliers a committed baseline covers."""
    return tuple(row["rate"] for row in committed.get("rates", ()))


def check_serving_regression(current: Dict, committed: Dict,
                             floor: float = 0.9) -> list:
    """Compare two serving reports; list every regression.

    The run is virtual-time deterministic, so ``floor=0.9`` is slack
    for implementation drift, not timer noise.  For every rate row of
    the committed baseline, the current report must

    * still carry that rate (a dropped rate point is a failure);
    * keep goodput at >= ``floor`` times the committed value;
    * keep p99 latency at <= ``1/floor`` times the committed value.
    """
    failures = []
    cur_rows = {row["rate"]: row for row in current.get("rates", ())}
    for ref in committed.get("rates", ()):
        rate = ref["rate"]
        cur = cur_rows.get(rate)
        if cur is None:
            failures.append({"label": f"rate:{rate:g}",
                             "missing": True})
            continue
        if cur["goodput_rps"] < floor * ref["goodput_rps"]:
            failures.append({
                "label": f"rate:{rate:g}/goodput_rps",
                "committed": ref["goodput_rps"],
                "current": cur["goodput_rps"],
                "floor": floor * ref["goodput_rps"],
            })
        if ref["p99_ms"] > 0 and cur["p99_ms"] > ref["p99_ms"] / floor:
            failures.append({
                "label": f"rate:{rate:g}/p99_ms",
                "committed": ref["p99_ms"],
                "current": cur["p99_ms"],
                "ceiling": ref["p99_ms"] / floor,
            })
    return failures
