"""repro — a complete Python reproduction of *TileSpMSpV: A Tiled
Algorithm for Sparse Matrix-Sparse Vector Multiplication on GPUs*
(Ji, Song, Lu, Jin, Tan, Liu — ICPP '22).

Quick start::

    import numpy as np
    from repro import TileSpMSpV, TileBFS, random_sparse_vector
    from repro.matrices import fem_like

    A = fem_like(4096, nnz_per_row=40)      # a FEM-style sparse matrix
    op = TileSpMSpV(A, nt=16)               # preprocess once
    x = random_sparse_vector(4096, 0.01)    # sparse input vector
    y = op.multiply(x)                      # sparse y = A @ x

    bfs = TileBFS(A)                        # bitmask-tiled BFS
    levels = bfs.run(source=0).levels

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.formats` — COO/CSR/CSC/BSR + Matrix Market I/O;
* :mod:`repro.tiles` — the paper's tiled storage structures (§3.2);
* :mod:`repro.core` — TileSpMSpV (§3.3) and TileBFS (§3.4);
* :mod:`repro.baselines` — TileSpMV, cuSPARSE-BSR, CombBLAS-bucket,
  Gunrock, GSwitch, Enterprise;
* :mod:`repro.gpusim` — the simulated RTX 3060/3090 execution model;
* :mod:`repro.matrices` — SuiteSparse-stand-in generators/collection;
* :mod:`repro.vectors` — sparse vectors and the paper's seed-1 inputs;
* :mod:`repro.graphs` — BC and RCM built on the primitives;
* :mod:`repro.bench` — one runner per paper table/figure.
"""

from .core import (BFSResult, KernelSelector, TileBFS, TileSpMSpV,
                   select_tile_size, tile_bfs, tile_spmspv)
from .errors import (ConversionError, DeviceError, FormatError,
                     IOFormatError, ReproError, ShapeError, TileError)
from .gpusim import RTX3060, RTX3090, Device, GPUSpec
from .semiring import MAX_TIMES, MIN_PLUS, OR_AND, PLUS_TIMES, Semiring
from .vectors import (PAPER_SPARSITIES, SparseVector, frontier_vector,
                      random_sparse_vector)

__version__ = "1.0.0"

__all__ = [
    "TileSpMSpV", "tile_spmspv", "TileBFS", "tile_bfs", "BFSResult",
    "KernelSelector", "select_tile_size",
    "SparseVector", "random_sparse_vector", "frontier_vector",
    "PAPER_SPARSITIES",
    "Device", "GPUSpec", "RTX3060", "RTX3090",
    "Semiring", "PLUS_TIMES", "OR_AND", "MIN_PLUS", "MAX_TIMES",
    "ReproError", "FormatError", "ShapeError", "TileError",
    "ConversionError", "DeviceError", "IOFormatError",
    "__version__",
]
