"""Multi-tenant plan-cache partitioning with per-tenant pin quotas.

The PR-1 :class:`~repro.runtime.PlanCache` is a single LRU shared by
everything in the process — fine for one workload, wrong for a service
where tenant A's burst of cold matrices must not evict tenant B's hot
pinned plans.  :class:`TenantPlanCache` closes that gap with hard
partitioning: each tenant gets its own :class:`PlanCache` of
``partition_size`` entries, so eviction pressure never crosses tenant
boundaries *by construction* (there is no shared LRU list for one
tenant to churn).

Pinning is the second budget.  A pinned plan is exempt from LRU
eviction, which makes it a memory liability — so each tenant may hold
at most ``pin_quota`` pins, enforced here (the underlying cache's
``pin`` is unmetered).  One tenant exhausting its quota raises
:class:`~repro.serving.errors.TenantQuotaError` for *that tenant only*;
other tenants' pins and partitions are untouched — the isolation
property ``tests/serving/test_tenancy.py`` pins down.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..runtime import PlanCache
from .errors import TenantQuotaError

__all__ = ["TenantPlanCache"]

DEFAULT_TENANT = "default"


class TenantPlanCache:
    """Per-tenant :class:`PlanCache` partitions with pin quotas.

    Parameters
    ----------
    partition_size:
        LRU capacity of each tenant's private partition (entries, not
        bytes — plans pin their matrices, so this bounds live plan
        count per tenant).
    pin_quota:
        Maximum plans a tenant may pin at once.  ``0`` disables
        pinning for all tenants.
    """

    def __init__(self, partition_size: int = 32, pin_quota: int = 4):
        if partition_size < 1:
            raise ValueError(
                f"partition_size must be >= 1, got {partition_size}")
        if pin_quota < 0:
            raise ValueError(f"pin_quota must be >= 0, got {pin_quota}")
        self.partition_size = int(partition_size)
        self.pin_quota = int(pin_quota)
        self._partitions: Dict[str, PlanCache] = {}
        self._pins: Dict[str, set] = {}

    # ------------------------------------------------------------------
    def partition(self, tenant: str = DEFAULT_TENANT) -> PlanCache:
        """The tenant's private plan cache (created on first use).

        Hand this to operators / queues serving the tenant's matrices;
        their plans then live and die inside the partition.
        """
        cache = self._partitions.get(tenant)
        if cache is None:
            cache = PlanCache(maxsize=self.partition_size)
            self._partitions[tenant] = cache
            self._pins[tenant] = set()
        return cache

    @property
    def tenants(self) -> tuple:
        return tuple(self._partitions)

    # ------------------------------------------------------------------
    def pin(self, tenant: str, key: Hashable) -> bool:
        """Pin ``key`` in the tenant's partition, charged against its
        quota.

        Returns ``False`` when the key is absent from the partition
        (nothing to pin); raises :class:`TenantQuotaError` when the
        tenant is already at quota.  Re-pinning an already-pinned key
        is a free no-op.
        """
        cache = self.partition(tenant)
        pins = self._pins[tenant]
        if key in pins and cache.is_pinned(key):
            return True
        if len(pins) >= self.pin_quota:
            raise TenantQuotaError(tenant, self.pin_quota)
        if not cache.pin(key):
            return False
        pins.add(key)
        return True

    def unpin(self, tenant: str, key: Hashable) -> bool:
        """Release one pin; returns ``False`` if it wasn't held."""
        cache = self._partitions.get(tenant)
        if cache is None:
            return False
        self._pins[tenant].discard(key)
        return cache.unpin(key)

    def pinned(self, tenant: str) -> int:
        """Pins the tenant currently holds against its quota."""
        return len(self._pins.get(tenant, ()))

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict]:
        """Per-tenant cache stats plus pin accounting."""
        out: Dict[str, Dict] = {}
        for tenant, cache in self._partitions.items():
            s = cache.stats()
            s["pin_quota"] = self.pin_quota
            s["pins_held"] = len(self._pins[tenant])
            out[tenant] = s
        return out

    def clear(self, tenant: Optional[str] = None) -> None:
        """Drop one tenant's partition (or all of them)."""
        if tenant is not None:
            self._partitions.pop(tenant, None)
            self._pins.pop(tenant, None)
            return
        self._partitions.clear()
        self._pins.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<TenantPlanCache {len(self._partitions)} tenants, "
                f"partition_size={self.partition_size}, "
                f"pin_quota={self.pin_quota}>")
