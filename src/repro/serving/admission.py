"""Admission control: bounded queues, reject-with-retry-after.

An open service with an unbounded queue converts overload into
unbounded latency; bounding the queue converts it into explicit,
retriable rejections — the correct failure mode for open-loop traffic
(the load generator in ``benchmarks/bench_serving.py`` drives exactly
this: past the saturation knee, goodput plateaus at capacity and the
reject rate absorbs the rest, instead of p99 diverging).

Two budgets, both optional:

* ``max_pending`` — a hard cap on requests enqueued but not yet
  dispatched (queue depth).
* ``max_backlog_ms`` — a cap on the modeled server backlog (how far
  ``busy_until`` runs ahead of now on the virtual-time server model).
  This is the budget that matters in simulated runs, where dispatch is
  instantaneous but modeled service time accumulates.

Rejections raise :class:`~repro.serving.errors.ServiceSaturated` with
a deterministic ``retry_after_ms`` (the time for the backlog to drain
under the budget, floored at ``min_retry_ms``) — deterministic so the
fake-clock tests can assert exact values.
"""

from __future__ import annotations

from typing import Dict, Optional

from .errors import ServiceSaturated

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded-queue admission policy for the serving layer.

    Parameters
    ----------
    max_pending:
        Maximum requests awaiting dispatch; ``None`` removes the
        depth bound.
    max_backlog_ms:
        Maximum modeled server backlog; ``None`` removes the backlog
        bound.
    min_retry_ms:
        Floor for the retry-after hint (a zero hint invites an
        immediate, equally doomed retry).
    """

    def __init__(self, max_pending: Optional[int] = 256,
                 max_backlog_ms: Optional[float] = None,
                 min_retry_ms: float = 1.0):
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        if max_backlog_ms is not None and max_backlog_ms < 0:
            raise ValueError(
                f"max_backlog_ms must be >= 0, got {max_backlog_ms}")
        if not min_retry_ms > 0:
            # A depth-cap rejection with zero modeled backlog would
            # otherwise hand back retry_after_ms == 0.
            raise ValueError(
                f"min_retry_ms must be > 0, got {min_retry_ms}")
        self.max_pending = max_pending
        self.max_backlog_ms = max_backlog_ms
        self.min_retry_ms = float(min_retry_ms)
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def admit(self, pending: int, backlog_ms: float) -> None:
        """Admit one request or raise :class:`ServiceSaturated`.

        ``pending`` is the current queue depth, ``backlog_ms`` the
        modeled server backlog; both are measured by the service on its
        injectable clock — no time is read here.
        """
        if self.max_pending is not None and pending >= self.max_pending:
            self.rejected += 1
            raise ServiceSaturated(
                retry_after_ms=max(backlog_ms, self.min_retry_ms),
                queue_depth=pending, backlog_ms=backlog_ms,
                reason=f"queue depth {pending} >= {self.max_pending}")
        if (self.max_backlog_ms is not None
                and backlog_ms > self.max_backlog_ms):
            self.rejected += 1
            raise ServiceSaturated(
                retry_after_ms=max(backlog_ms - self.max_backlog_ms,
                                   self.min_retry_ms),
                queue_depth=pending, backlog_ms=backlog_ms,
                reason=f"backlog {backlog_ms:.3f}ms > "
                       f"{self.max_backlog_ms:.3f}ms")
        self.admitted += 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        total = self.admitted + self.rejected
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "reject_rate": self.rejected / total if total else 0.0,
            "max_pending": self.max_pending,
            "max_backlog_ms": self.max_backlog_ms,
            "min_retry_ms": self.min_retry_ms,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<AdmissionController pending<={self.max_pending} "
                f"backlog<={self.max_backlog_ms}ms "
                f"admitted={self.admitted} rejected={self.rejected}>")
