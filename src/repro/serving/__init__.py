"""Async graph-query serving layer over the batching runtime.

The client-facing surface of the repo: register matrices with a
:class:`GraphQueryService`, submit :class:`MultiplyQuery` /
:class:`BFSQuery` / :class:`PageRankQuery` requests, and ``await`` the
results while a dispatch loop coalesces compatible multiplies into
batched TileSpMSpV launches.  Admission control
(:class:`AdmissionController`) bounds the queue and rejects with
retry-after under saturation; :class:`TenantPlanCache` hard-partitions
the plan cache per tenant with pin quotas; :class:`RequestLog` ties
each request to its kernel launches in the trace and rolls up
p50/p99 latency.  Everything runs on one injectable clock —
:class:`VirtualClock` makes whole traffic runs deterministic, which is
how the serving benchmark stays CI-guardable.
"""

from .admission import AdmissionController
from .clock import VirtualClock
from .errors import (ServiceSaturated, ServingError, TenantQuotaError,
                     UnknownMatrixError)
from .observability import RequestLog, RequestRecord
from .service import (BFSQuery, GraphQueryService, MultiplyQuery,
                      PageRankQuery, ServingTicket)
from .tenancy import DEFAULT_TENANT, TenantPlanCache

__all__ = [
    "GraphQueryService", "ServingTicket",
    "MultiplyQuery", "BFSQuery", "PageRankQuery",
    "AdmissionController", "TenantPlanCache", "DEFAULT_TENANT",
    "RequestLog", "RequestRecord", "VirtualClock",
    "ServingError", "ServiceSaturated", "TenantQuotaError",
    "UnknownMatrixError",
]
