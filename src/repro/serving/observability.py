"""Per-request observability riding the PR-1 tracer.

Every request the service admits gets a :class:`RequestRecord` —
request id, tenant, query kind, target matrix, submit / completion
times on the injectable clock, and how it was executed (batch id and
size for coalesced multiplies, a tracer sequence window for directly
executed BFS / PageRank queries).  The record is the join key between
the request stream and the kernel-launch trace:

* coalesced multiplies: the :class:`~repro.runtime.BatchQueue` stamps
  every launch of a batch with ``mat=<name>;batch=<id> size=<B>`` (the
  service sets the ``mat=`` prefix so batch ids from different queues
  sharing one tracer stay unambiguous), and the record stores that
  ``launch_tag`` — :meth:`RequestLog.events_for` recovers the
  request's launches from any tracer by matching it, so a request id
  resolves to concrete rows in the Chrome trace;
* direct queries (BFS, PageRank): the service brackets execution with
  the tracer's event count, and the record stores the ``[seq_start,
  seq_end)`` window.

:meth:`RequestLog.rollup` computes the p50/p99 latency summaries the
service exposes in ``stats()``; :meth:`RequestLog.write_jsonl` dumps
the raw request stream for offline analysis next to the launch-level
JSONL the tracer already writes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

__all__ = ["RequestRecord", "RequestLog"]


@dataclass
class RequestRecord:
    """One request's lifecycle as seen by the service."""

    request_id: int
    tenant: str
    kind: str                    # "multiply" | "bfs" | "pagerank"
    matrix: str
    semiring: Optional[str]
    submit_s: float
    done_s: Optional[float] = None
    status: str = "pending"      # pending | ok | rejected
    batch_id: Optional[int] = None
    batch_size: Optional[int] = None
    launch_tag: Optional[str] = None
    seq_start: Optional[int] = None
    seq_end: Optional[int] = None
    modeled_ms: float = 0.0

    @property
    def latency_ms(self) -> Optional[float]:
        """Submit-to-completion latency on the service clock (None
        until completed)."""
        if self.done_s is None:
            return None
        return (self.done_s - self.submit_s) * 1e3


class RequestLog:
    """Append-only request ledger with latency rollups."""

    def __init__(self):
        self.records: List[RequestRecord] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    def open(self, tenant: str, kind: str, matrix: str,
             semiring: Optional[str], submit_s: float) -> RequestRecord:
        rec = RequestRecord(request_id=self._next_id, tenant=tenant,
                            kind=kind, matrix=matrix, semiring=semiring,
                            submit_s=submit_s)
        self._next_id += 1
        self.records.append(rec)
        return rec

    def complete(self, rec: RequestRecord, done_s: float,
                 batch_id: Optional[int] = None,
                 batch_size: Optional[int] = None,
                 launch_tag: Optional[str] = None,
                 seq_start: Optional[int] = None,
                 seq_end: Optional[int] = None,
                 modeled_ms: float = 0.0) -> None:
        rec.done_s = done_s
        rec.status = "ok"
        rec.batch_id = batch_id
        rec.batch_size = batch_size
        rec.launch_tag = launch_tag
        rec.seq_start = seq_start
        rec.seq_end = seq_end
        rec.modeled_ms = modeled_ms

    def reject(self, rec: RequestRecord) -> None:
        rec.status = "rejected"

    def get(self, request_id: int) -> RequestRecord:
        rec = self.records[request_id]
        if rec.request_id != request_id:  # pragma: no cover - defensive
            raise KeyError(request_id)
        return rec

    # ------------------------------------------------------------------
    def latencies_ms(self, kind: Optional[str] = None) -> np.ndarray:
        """Completed-request latencies in ms (optionally one kind)."""
        return np.asarray([r.latency_ms for r in self.records
                           if r.status == "ok"
                           and (kind is None or r.kind == kind)],
                          dtype=np.float64)

    def rollup(self, kind: Optional[str] = None) -> Dict[str, float]:
        """count / mean / p50 / p99 / max latency summary.

        The tail percentile uses ``method="higher"`` — an observed
        latency, never a value interpolated *below* the slowest
        request.  With the default linear interpolation a 10-sample
        log would report a p99 under its own max, which reads as a
        latency no request actually paid.
        """
        lat = self.latencies_ms(kind)
        if lat.size == 0:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                    "p99_ms": 0.0, "max_ms": 0.0}
        return {
            "count": int(lat.size),
            "mean_ms": float(lat.mean()),
            "p50_ms": float(np.percentile(lat, 50)),
            "p99_ms": float(np.percentile(lat, 99, method="higher")),
            "max_ms": float(lat.max()),
        }

    def rollups(self) -> Dict[str, Dict[str, float]]:
        """Per-kind rollups plus the combined ``all`` row."""
        kinds = sorted({r.kind for r in self.records})
        out = {k: self.rollup(k) for k in kinds}
        out["all"] = self.rollup()
        return out

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.status == "ok")

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.records if r.status == "rejected")

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    def events_for(self, request_id: int, tracer) -> list:
        """The tracer events belonging to one request.

        Coalesced multiplies match by the recorded launch tag (the
        request shares these events with its batchmates — that is
        what coalescing means); direct queries slice the recorded
        ``[seq_start, seq_end)`` window.
        """
        rec = self.get(request_id)
        if rec.launch_tag is not None:
            want = rec.launch_tag + " "
            exact = rec.launch_tag
            return [ev for ev in tracer.events
                    if ev.tag is not None
                    and (ev.tag.startswith(want) or ev.tag == exact)]
        if rec.seq_start is not None:
            return [ev for ev in tracer.events
                    if rec.seq_start <= ev.seq < rec.seq_end]
        return []

    # ------------------------------------------------------------------
    def to_dicts(self) -> List[dict]:
        out = []
        for rec in self.records:
            row = asdict(rec)
            row["latency_ms"] = rec.latency_ms
            out.append(row)
        return out

    def to_jsonl(self) -> str:
        return "".join(json.dumps(row) + "\n" for row in self.to_dicts())

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<RequestLog {len(self.records)} requests, "
                f"{self.completed} completed, {self.rejected} rejected>")
