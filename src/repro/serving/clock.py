"""A settable monotonic clock for deterministic serving runs.

The whole timing stack is built on injectable clocks — the
:class:`~repro.runtime.BatchQueue` latency budget, the service's
latency accounting, and the load-generator bench all call one
zero-argument ``clock()`` returning seconds.  :class:`VirtualClock` is
the deterministic implementation: time advances only when the driver
says so, so a simulated open-loop traffic run (seeded Poisson
arrivals, modeled service times) produces bit-identical latency
percentiles on every machine — which is what lets CI guard the serving
benchmark with tight floors instead of flaky wall-time tolerances.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic seconds that move only on request.

    Callable (returns the current virtual time) so it drops in
    anywhere a ``time.monotonic``-shaped clock is expected.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by ``seconds`` (must be >= 0); returns the new
        time."""
        if seconds < 0:
            raise ValueError(
                f"cannot advance a monotonic clock by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to ``t``; a target in the past is a no-op
        (monotonicity wins over the request)."""
        if t > self._now:
            self._now = float(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VirtualClock t={self._now:.6f}s>"
