"""Service-layer errors.

Separated from the engine error hierarchy (:mod:`repro.errors`): these
describe *request* failures — a client asked for something the service
cannot serve right now — not algorithmic or format violations.
:class:`ServiceSaturated` is the retriable one; it carries everything a
well-behaved client needs to back off (retry-after hint, observed queue
depth and backlog) rather than hammer a saturated service.
"""

from __future__ import annotations

__all__ = ["ServingError", "UnknownMatrixError", "ServiceSaturated",
           "TenantQuotaError"]


class ServingError(Exception):
    """Base class for request-path failures of the serving layer."""


class UnknownMatrixError(ServingError, KeyError):
    """The query names a matrix the service has not registered."""

    def __init__(self, name: str, known):
        self.name = name
        self.known = tuple(known)
        super().__init__(
            f"unknown matrix {name!r}; registered: {list(self.known)}")


class ServiceSaturated(ServingError):
    """Admission control rejected the request — the service is over
    its pending-depth or backlog budget.

    Retriable by contract: ``retry_after_ms`` is the service's estimate
    of when capacity frees up, ``queue_depth`` and ``backlog_ms`` are
    the saturation evidence at rejection time (tests and clients can
    assert on them).
    """

    def __init__(self, retry_after_ms: float, queue_depth: int,
                 backlog_ms: float, reason: str = "saturated"):
        self.retry_after_ms = float(retry_after_ms)
        self.queue_depth = int(queue_depth)
        self.backlog_ms = float(backlog_ms)
        self.reason = reason
        self.retriable = True
        super().__init__(
            f"service saturated ({reason}): queue_depth="
            f"{self.queue_depth} backlog={self.backlog_ms:.3f}ms; "
            f"retry after {self.retry_after_ms:.3f}ms")


class TenantQuotaError(ServingError):
    """A tenant tried to pin more plans than its quota allows."""

    def __init__(self, tenant: str, quota: int):
        self.tenant = tenant
        self.quota = quota
        super().__init__(
            f"tenant {tenant!r} is at its pin quota ({quota} plans); "
            f"unpin one before pinning another")
