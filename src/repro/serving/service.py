"""The async graph-query service over :class:`~repro.runtime.BatchQueue`.

This is the front door the batching engine was missing: clients
``await service.submit(query)`` and the service coalesces, routes,
admits, and accounts.  One :class:`GraphQueryService` hosts many named
matrices; each gets its own :class:`~repro.runtime.BatchQueue` (so a
hot matrix's batches never wait on a cold one) plus lazily built
TileBFS / PageRank paths sharing the same tenant-partitioned plan
cache.

Query types
-----------
* :class:`MultiplyQuery` — ``y = A x`` under any semiring.  Coalesced:
  compatible requests (same matrix, same semiring) share one
  :class:`~repro.core.batched.BatchedSpMSpV` union launch, dispatched
  by size budget (``max_batch``), latency budget (``max_delay_ms``),
  or an explicit flush.  Routing to the sharded / parallel engines is
  automatic: register a
  :class:`~repro.shards.ShardedTiledMatrix` and every dispatched batch
  streams shards (with the queue's residency-affinity seeding); set
  ``parallel`` and shard batches fan out across workers.
* :class:`BFSQuery` — level-synchronous traversal via
  :class:`~repro.core.tilebfs.TileBFS`, executed at submit on a plan
  shared through the tenant's cache partition.
* :class:`PageRankQuery` — power iteration, memoized per
  ``(matrix, damping, tol, max_iter)``: the first request pays, repeat
  requests are cache hits (the hot/cold working-set effect the serving
  benchmark measures).

Time and determinism
--------------------
Every timestamp the service takes — submit, completion, latency
budgets, backlog — comes from one injectable ``clock`` (seconds,
monotonic).  The async dispatch loop computes its deadlines solely
through :meth:`~repro.runtime.BatchQueue.next_deadline_ms` on that
clock (asyncio only bounds the sleep), so handing the service a
:class:`~repro.serving.VirtualClock` makes an entire traffic run
deterministic: the fake-clock hypothesis tests and the CI-guarded
serving benchmark both rely on this.

With a virtual clock the service also runs a single-server completion
model: each dispatch costs its simulated device milliseconds
(``time_scale`` virtual ms per modeled ms), completions queue behind
``busy_until``, and admission control can bound the backlog — which is
what produces honest queueing latency (and a saturation knee) in
simulated open-loop runs.

Observability
-------------
Every admitted request gets a :class:`~repro.serving.RequestRecord`;
batched launches are tagged ``mat=<name>;batch=<id> size=<B>`` so a
request id resolves to its launches in the Chrome trace
(:meth:`RequestLog.events_for`), and :meth:`GraphQueryService.stats`
rolls up p50/p99 latency per query kind next to queue, admission,
tenant-cache, and memo counters.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..core.tilebfs import TileBFS
from ..graphs.pagerank import pagerank
from ..runtime import BatchQueue, ExecutionContext, matrix_token
from ..semiring import PLUS_TIMES, Semiring
from .admission import AdmissionController
from .clock import VirtualClock
from .errors import ServiceSaturated, UnknownMatrixError
from .observability import RequestLog
from .tenancy import DEFAULT_TENANT, TenantPlanCache

__all__ = ["GraphQueryService", "MultiplyQuery", "BFSQuery",
           "PageRankQuery", "ServingTicket"]


# ----------------------------------------------------------------------
# query types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MultiplyQuery:
    """``y = A x`` against the named matrix (coalesced)."""

    matrix: str
    x: Any
    semiring: Semiring = PLUS_TIMES
    output: str = "sparse"


@dataclass(frozen=True)
class BFSQuery:
    """BFS levels from ``source`` over the named matrix's pattern."""

    matrix: str
    source: int
    max_depth: Optional[int] = None


@dataclass(frozen=True)
class PageRankQuery:
    """PageRank over the named matrix (memoized per parameters)."""

    matrix: str
    damping: float = 0.85
    tol: float = 1e-10
    max_iter: int = 200


class ServingTicket:
    """Handle for one admitted request.

    ``done`` flips when the request's batch dispatches (immediately
    for BFS / PageRank / size-budget dispatches).  ``result()`` is the
    blocking get — it forces the pending group out early, exactly like
    :meth:`BatchTicket.result`.  The async path awaits the same ticket
    through :meth:`GraphQueryService.submit`.
    """

    __slots__ = ("record", "query", "value", "done",
                 "_served", "_batch_ticket", "_future")

    def __init__(self, record, query, served):
        self.record = record
        self.query = query
        self.value = None
        self.done = False
        self._served = served
        self._batch_ticket = None
        self._future: Optional[asyncio.Future] = None

    @property
    def request_id(self) -> int:
        return self.record.request_id

    def result(self):
        """The request's result, flushing its group if still pending."""
        if not self.done:
            self._served.queue.flush(self.query.semiring)
        if not self.done:  # pragma: no cover - defensive
            raise RuntimeError("flush did not complete the request")
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else "pending"
        return (f"<ServingTicket #{self.record.request_id} "
                f"{self.record.kind} {state}>")


@dataclass
class _ServedMatrix:
    """One registered matrix and its serving machinery."""

    name: str
    matrix: Any
    tenant: str
    queue: BatchQueue
    nt: int
    extract_threshold: int
    _bfs: Optional[TileBFS] = field(default=None, repr=False)


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class GraphQueryService:
    """Async serving layer: admission -> coalescing -> engines.

    Parameters
    ----------
    device:
        Simulated GPU (or shared :class:`ExecutionContext`) every
        dispatched launch lands on; ``None`` serves functionally with
        no accounting.
    tracer:
        Optional :class:`~repro.runtime.Tracer`; ignored when
        ``device`` is already a context carrying one.
    clock:
        Injectable monotonic time source in seconds (defaults to
        ``time.monotonic``).  Passing a :class:`VirtualClock` switches
        completion accounting to the deterministic server model.
    max_batch / max_delay_ms / nt / extract_threshold:
        Per-matrix defaults, overridable at :meth:`register_matrix`.
    admission:
        Admission policy (default: depth-bounded at 256 pending).
    tenants:
        The partitioned plan cache; a default one is created if not
        supplied.
    parallel:
        Optional :class:`~repro.parallel.ParallelConfig` forwarded to
        every queue (sharded matrices then dispatch multi-worker).
    time_scale:
        Virtual seconds charged per modeled second of device time in
        virtual-clock mode (1.0: one modeled ms costs one virtual ms).
    """

    def __init__(self, device=None, tracer=None,
                 clock: Callable[[], float] = time.monotonic,
                 max_batch: int = 32,
                 max_delay_ms: Optional[float] = 2.0,
                 nt: int = 16, extract_threshold: int = 2,
                 admission: Optional[AdmissionController] = None,
                 tenants: Optional[TenantPlanCache] = None,
                 parallel=None, time_scale: float = 1.0):
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("serving")
        else:
            self.ctx = ExecutionContext(device, tracer=tracer,
                                        operator="serving")
        self._clock = clock
        self._virtual = isinstance(clock, VirtualClock)
        self.time_scale = float(time_scale)
        self.max_batch = int(max_batch)
        self.max_delay_ms = max_delay_ms
        self.nt = int(nt)
        self.extract_threshold = int(extract_threshold)
        self.admission = admission if admission is not None \
            else AdmissionController()
        self.tenants = tenants if tenants is not None \
            else TenantPlanCache()
        self._parallel = parallel
        self.log = RequestLog()
        self._served: Dict[str, _ServedMatrix] = {}
        # multiply bookkeeping: BatchTicket id -> ServingTicket for
        # enqueued-but-undispatched requests; BatchTicket id ->
        # completion info for dispatches that fired inside the submit
        # call that created the ticket (before it could be registered)
        self._inflight: Dict[int, ServingTicket] = {}
        self._completions: Dict[int, tuple] = {}
        self._busy_until = 0.0
        self._pagerank_memo: Dict[tuple, tuple] = {}
        self._pagerank_hits = 0
        self._wake: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_matrix(self, name: str, matrix,
                        tenant: str = DEFAULT_TENANT,
                        max_batch: Optional[int] = None,
                        max_delay_ms: Optional[float] = "default",
                        nt: Optional[int] = None,
                        extract_threshold: Optional[int] = None,
                        pin: bool = False) -> None:
        """Register ``matrix`` under ``name`` for ``tenant``.

        Builds the matrix's :class:`BatchQueue` on the tenant's plan
        cache partition.  ``pin=True`` additionally pre-tiles the
        default-semiring plan and pins it against the tenant's quota
        (the hot-working-set move).  ``max_delay_ms`` defaults to the
        service-wide budget; pass ``None`` explicitly to disable
        time-based dispatch for this matrix.
        """
        if name in self._served:
            raise ValueError(f"matrix {name!r} already registered")
        nt = self.nt if nt is None else int(nt)
        extract_threshold = self.extract_threshold \
            if extract_threshold is None else int(extract_threshold)
        delay = self.max_delay_ms if max_delay_ms == "default" \
            else max_delay_ms
        queue = BatchQueue(
            matrix, nt=nt, extract_threshold=extract_threshold,
            device=self.ctx.scoped(f"serve:{name}"),
            max_batch=max_batch if max_batch is not None
            else self.max_batch,
            max_delay_ms=delay, clock=self._clock,
            plan_cache=self.tenants.partition(tenant),
            parallel=self._parallel,
            on_dispatch=self._batch_callback(name),
            tag_prefix=f"mat={name};")
        self._served[name] = _ServedMatrix(
            name=name, matrix=matrix, tenant=tenant, queue=queue,
            nt=nt, extract_threshold=extract_threshold)
        if pin:
            self.pin_plans(name)

    def pin_plans(self, name: str,
                  semiring: Semiring = PLUS_TIMES) -> bool:
        """Pre-tile and pin the matrix's plan for ``semiring`` against
        its tenant's quota.

        Returns ``False`` when there is no single cacheable plan to
        pin (sharded matrices hold per-shard plans the resident-set
        manager pins during kernels instead); raises
        :class:`~repro.serving.errors.TenantQuotaError` at quota.
        """
        served = self._lookup(name)
        served.queue.warm(semiring)
        key = ("tilespmspv", matrix_token(served.matrix), served.nt,
               served.extract_threshold, semiring, "csr")
        return self.tenants.pin(served.tenant, key)

    def unpin_plans(self, name: str,
                    semiring: Semiring = PLUS_TIMES) -> bool:
        served = self._lookup(name)
        key = ("tilespmspv", matrix_token(served.matrix), served.nt,
               served.extract_threshold, semiring, "csr")
        return self.tenants.unpin(served.tenant, key)

    def _lookup(self, name: str) -> _ServedMatrix:
        served = self._served.get(name)
        if served is None:
            raise UnknownMatrixError(name, self._served)
        return served

    @property
    def matrices(self) -> tuple:
        return tuple(self._served)

    # ------------------------------------------------------------------
    # time / load accounting
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests enqueued but not yet dispatched."""
        return sum(s.queue.pending for s in self._served.values())

    @property
    def backlog_ms(self) -> float:
        """How far the modeled server runs ahead of now (virtual-clock
        mode; 0.0 under a wall clock, where compute happens inline)."""
        return max(0.0, (self._busy_until - self._clock()) * 1e3)

    def _complete_time(self, modeled_ms: float) -> float:
        """Completion timestamp for work costing ``modeled_ms`` of
        device time, on the single-server model."""
        now = self._clock()
        if self._virtual:
            start = max(now, self._busy_until)
            done = start + modeled_ms * 1e-3 * self.time_scale
            self._busy_until = done
            return done
        self._busy_until = now
        return now

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_nowait(self, query,
                      tenant: Optional[str] = None) -> ServingTicket:
        """Admit and enqueue one query; returns its ticket.

        Multiply queries may stay pending (awaiting their batch); BFS
        and PageRank execute before returning.  Raises
        :class:`ServiceSaturated` when admission rejects (the request
        is recorded as rejected in the log), or
        :class:`UnknownMatrixError` for an unregistered matrix.
        """
        if isinstance(query, MultiplyQuery):
            return self._submit_multiply(query, tenant)
        if isinstance(query, BFSQuery):
            return self._submit_direct(query, "bfs", tenant,
                                       self._run_bfs)
        if isinstance(query, PageRankQuery):
            return self._submit_direct(query, "pagerank", tenant,
                                       self._run_pagerank)
        raise TypeError(f"unknown query type {type(query).__name__}")

    async def submit(self, query, tenant: Optional[str] = None):
        """Async submit: admit, enqueue, and await the result.

        The awaiting request is completed by whichever event dispatches
        its batch — a batchmate filling the size budget, the dispatch
        loop firing the latency budget, or a drain.
        """
        ticket = self.submit_nowait(query, tenant)
        if ticket.done:
            return ticket.value
        fut = asyncio.get_running_loop().create_future()
        ticket._future = fut
        self._kick()
        return await fut

    # -- multiply ------------------------------------------------------
    def _submit_multiply(self, query: MultiplyQuery,
                         tenant: Optional[str]) -> ServingTicket:
        served = self._lookup(query.matrix)
        rec = self.log.open(tenant or served.tenant, "multiply",
                            query.matrix, query.semiring.name,
                            self._clock())
        self._admit(rec)
        ticket = ServingTicket(rec, query, served)
        bt = served.queue.submit(query.x, semiring=query.semiring,
                                 output=query.output)
        ticket._batch_ticket = bt
        if bt.done:
            # dispatched inside submit (size budget / overdue sweep):
            # the callback parked our completion info under the ticket
            info = self._completions.pop(id(bt))
            self._resolve_multiply(ticket, *info)
        else:
            self._inflight[id(bt)] = ticket
        return ticket

    def _batch_callback(self, name: str):
        def on_dispatch(tickets, batch_id: int,
                        modeled_ms: float) -> None:
            done_s = self._complete_time(modeled_ms)
            tag = f"mat={name};batch={batch_id}"
            size = len(tickets)
            per_req = modeled_ms / size if size else 0.0
            for bt in tickets:
                st = self._inflight.pop(id(bt), None)
                info = (batch_id, size, per_req, done_s, tag)
                if st is None:
                    self._completions[id(bt)] = info
                else:
                    self._resolve_multiply(st, *info)
        return on_dispatch

    def _resolve_multiply(self, ticket: ServingTicket, batch_id: int,
                          batch_size: int, modeled_ms: float,
                          done_s: float, tag: str) -> None:
        bt = ticket._batch_ticket
        self.log.complete(ticket.record, done_s, batch_id=batch_id,
                          batch_size=batch_size, modeled_ms=modeled_ms,
                          launch_tag=tag)
        ticket.value = bt._result
        ticket.done = True
        fut = ticket._future
        if fut is not None and not fut.done():
            fut.set_result(ticket.value)

    # -- direct (BFS / PageRank) ---------------------------------------
    def _submit_direct(self, query, kind: str, tenant: Optional[str],
                       run) -> ServingTicket:
        served = self._lookup(query.matrix)
        rec = self.log.open(tenant or served.tenant, kind,
                            query.matrix, None, self._clock())
        self._admit(rec)
        ticket = ServingTicket(rec, query, served)
        tracer = self.ctx.tracer
        seq0 = len(tracer.events) if tracer is not None else None
        elapsed0 = self.ctx.elapsed_ms
        try:
            ticket.value = run(served, query)
        except Exception:
            rec.status = "error"
            raise
        modeled_ms = self.ctx.elapsed_ms - elapsed0
        done_s = self._complete_time(modeled_ms)
        self.log.complete(
            rec, done_s, modeled_ms=modeled_ms, seq_start=seq0,
            seq_end=len(tracer.events) if tracer is not None else None)
        ticket.done = True
        return ticket

    def _run_bfs(self, served: _ServedMatrix, query: BFSQuery):
        if served._bfs is None:
            served._bfs = TileBFS(
                served.matrix, nt=served.nt,
                extract_threshold=served.extract_threshold,
                device=self.ctx.scoped(f"serve:{served.name}"),
                plan_cache=self.tenants.partition(served.tenant),
                parallel=self._parallel)
        return served._bfs.run(int(query.source),
                               max_depth=query.max_depth)

    def _run_pagerank(self, served: _ServedMatrix,
                      query: PageRankQuery):
        key = (served.name, query.damping, query.tol, query.max_iter)
        hit = self._pagerank_memo.get(key)
        if hit is not None:
            self._pagerank_hits += 1
            ranks, iters = hit
            return ranks.copy(), iters
        ranks, iters = pagerank(
            served.matrix, damping=query.damping, tol=query.tol,
            max_iter=query.max_iter, nt=served.nt,
            device=self.ctx.scoped(f"serve:{served.name}"))
        self._pagerank_memo[key] = (ranks, iters)
        return ranks.copy(), iters

    def _admit(self, rec) -> None:
        try:
            self.admission.admit(self.pending, self.backlog_ms)
        except ServiceSaturated:
            self.log.reject(rec)
            raise

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def next_deadline_ms(self) -> Optional[float]:
        """Milliseconds until the earliest latency-budget deadline
        across every queue (injectable clock); ``None`` when nothing
        is armed."""
        deadlines = [d for d in (s.queue.next_deadline_ms()
                                 for s in self._served.values())
                     if d is not None]
        return min(deadlines) if deadlines else None

    def pump(self) -> int:
        """Dispatch every overdue group on every queue; returns the
        number of requests served.  The manual stepping hook for
        fake-clock tests and the virtual-time load generator."""
        return sum(s.queue.dispatch_overdue()
                   for s in self._served.values())

    def drain(self) -> int:
        """Flush everything pending (all queues, all groups)."""
        return sum(s.queue.flush() for s in self._served.values())

    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    async def start(self) -> None:
        """Start the background dispatch loop (idempotent)."""
        if self._task is not None:
            return
        self._wake = asyncio.Event()
        self._task = asyncio.create_task(self._dispatch_loop())

    async def stop(self, drain: bool = True) -> None:
        """Stop the dispatch loop; by default flush stragglers first."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
            self._wake = None
        if drain:
            self.drain()

    async def _dispatch_loop(self) -> None:
        # Deadline decisions come exclusively from the queues'
        # injectable clock (next_deadline_ms); asyncio only bounds how
        # long we sleep before looking again.
        while True:
            delay_ms = self.next_deadline_ms()
            if delay_ms is not None and delay_ms <= 0:
                # A group is already overdue: dispatch now, never
                # sleep a negative timeout.  If nothing fires (the
                # queue's own overdue check can trail the reported
                # deadline by one clock read), yield to the event loop
                # instead of spinning on it.
                if self.pump() == 0:
                    await asyncio.sleep(0)
                continue
            try:
                if delay_ms is None:
                    await self._wake.wait()
                else:
                    await asyncio.wait_for(self._wake.wait(),
                                           timeout=delay_ms / 1e3)
                self._wake.clear()
            except asyncio.TimeoutError:
                self.pump()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def events_for(self, request_id: int) -> list:
        """The tracer events belonging to one request (empty without
        an attached tracer)."""
        if self.ctx.tracer is None:
            return []
        return self.log.events_for(request_id, self.ctx.tracer)

    def stats(self) -> Dict[str, Any]:
        """Service-wide counters: request totals, per-kind p50/p99
        latency rollups, queue coalescing stats, admission and tenant
        accounting."""
        return {
            "requests": len(self.log),
            "completed": self.log.completed,
            "rejected": self.log.rejected,
            "pending": self.pending,
            "backlog_ms": self.backlog_ms,
            "latency": self.log.rollups(),
            "queues": {name: s.queue.stats()
                       for name, s in self._served.items()},
            "admission": self.admission.stats(),
            "tenants": self.tenants.stats(),
            "pagerank_memo": {"entries": len(self._pagerank_memo),
                              "hits": self._pagerank_hits},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<GraphQueryService matrices={list(self._served)} "
                f"pending={self.pending} requests={len(self.log)}>")
