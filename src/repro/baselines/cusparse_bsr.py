"""cuSPARSE ``bsrmv`` stand-in: block-sparse SpMV with dense blocks.

The paper's SpMV library baseline is ``cusparse?bsrmv()`` (Table 1).
BSR stores every non-empty block *densely* — explicit zeros included —
and multiplies each block against a dense slice of ``x``.  Its cost is
therefore proportional to ``n_blocks * b * b`` rather than to
``nnz``, and entirely independent of the input-vector sparsity: on a
0.0001-sparsity vector it performs the full SpMV work.  Both effects
are visible in Figure 6, where the TileSpMSpV/cuSPARSE gap widens from
~7.6x at sparsity 0.1 to ~25x at 0.0001 (up to 1825x on scattered
matrices whose blocks are nearly empty).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ShapeError
from ..formats.base import SparseMatrix
from ..formats.bsr import BSRMatrix
from ..formats.coo import COOMatrix
from ..gpusim import Device, KernelCounters
from ..runtime import ExecutionContext
from ..vectors.sparse_vector import SparseVector

__all__ = ["CuSparseBSRMV"]


class CuSparseBSRMV:
    """Prepared ``bsrmv``-style operator.

    Parameters
    ----------
    matrix:
        Any library matrix (converted to BSR).
    blocksize:
        Dense block edge (cuSPARSE supports 2..32; default 16 to match
        the tiled algorithms' tile size).
    device:
        Optional simulated GPU.
    """

    def __init__(self, matrix, blocksize: int = 16,
                 device: Optional[Device] = None):
        if isinstance(matrix, BSRMatrix):
            self.bsr = matrix
        else:
            if isinstance(matrix, SparseMatrix):
                coo = matrix.to_coo()
            else:
                coo = COOMatrix.from_dense(np.asarray(matrix))
            self.bsr = BSRMatrix.from_coo(coo, blocksize)
        self.ctx = ExecutionContext.wrap(device, operator="cusparse-bsr")

    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("cusparse-bsr")
        else:
            self.ctx.device = device

    @property
    def shape(self):
        return self.bsr.shape

    # ------------------------------------------------------------------
    def multiply(self, x: Union[SparseVector, np.ndarray]) -> SparseVector:
        """``y = A x`` with full dense-block work (bsrmv semantics)."""
        if isinstance(x, SparseVector):
            if x.n != self.shape[1]:
                raise ShapeError(
                    f"shape mismatch: A is {self.shape}, x has length {x.n}"
                )
            x_dense = x.to_dense()
            c = KernelCounters(launches=1)
            c.coalesced_write_bytes += self.shape[1] * 8.0
            c.coalesced_read_bytes += x.nnz * 16.0
            c.warps = max(1.0, self.shape[1] / (32.0 * 32.0))
            self.ctx.launch("bsrmv_densify_x", c, phase="densify")
        else:
            x_dense = np.asarray(x)
            if x_dense.shape != (self.shape[1],):
                raise ShapeError(
                    f"shape mismatch: A is {self.shape}, x has shape "
                    f"{x_dense.shape}"
                )

        y = self.bsr.matvec(x_dense)

        b = self.bsr.blocksize
        nb = self.bsr.n_blocks
        c = KernelCounters(launches=1)
        # block metadata + every stored block cell streams in
        c.coalesced_read_bytes += nb * 16.0 + nb * b * b * 8.0
        # the x slice of each block (dense, contiguous, L2-friendly)
        c.l2_read_bytes += nb * b * 8.0
        # full dense work per block, zeros included
        c.flops += 2.0 * nb * b * b
        c.coalesced_write_bytes += max(1, self.bsr.n_block_rows) * b * 8.0
        c.warps = float(max(1, nb))
        c.divergence = 1.0  # dense blocks keep every lane busy
        self.ctx.launch("bsrmv", c, phase="multiply")

        idx = np.flatnonzero(y)
        return SparseVector(self.shape[0], idx, y[idx])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CuSparseBSRMV {self.shape} b={self.bsr.blocksize} "
                f"blocks={self.bsr.n_blocks} "
                f"fill={self.bsr.fill_ratio():.3f}>")
