"""Shared functional machinery for the BFS baselines.

Gunrock, GSwitch and Enterprise all perform level-synchronous BFS over
CSR/CSC adjacency with an integer/boolean status array (unlike TileBFS,
whose state is bitmask words).  The *functional* expansion steps live
here; each baseline differs in its kernel structure, launch counts and
counter profile, which stay in the individual modules.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError
from ..formats.coo import COOMatrix
from ..formats.csc import CSCMatrix
from ..formats.csr import CSRMatrix

__all__ = ["build_adjacency", "expand_push", "expand_pull"]


def build_adjacency(matrix) -> Tuple[CSRMatrix, CSCMatrix]:
    """Normalise any matrix-like input into (CSR, CSC) pattern pair."""
    from ..formats.base import SparseMatrix

    if isinstance(matrix, SparseMatrix):
        coo = matrix.to_coo()
    else:
        coo = COOMatrix.from_dense(np.asarray(matrix))
    if coo.shape[0] != coo.shape[1]:
        raise ShapeError(f"BFS requires a square matrix, got {coo.shape}")
    return coo.to_csr(), coo.to_csc()


def expand_push(csc: CSCMatrix, frontier: np.ndarray,
                visited: np.ndarray) -> Tuple[np.ndarray, int]:
    """Push step: out-neighbours of the frontier that are unvisited.

    ``csc`` here is indexed by *source* vertex — for an adjacency
    matrix ``A`` where ``A[i, j] = 1`` means edge ``j -> i`` (the
    SpMSpV convention ``y = A x``), the out-neighbours of ``j`` are
    column ``j``.  Returns ``(new_vertices, edges_examined)``.
    """
    rows, _, _ = csc.gather_columns(frontier)
    edges = len(rows)
    if edges == 0:
        return np.zeros(0, dtype=np.int64), 0
    candidates = np.unique(rows)
    new = candidates[~visited[candidates]]
    return new, edges


def expand_pull(csr: CSRMatrix, visited: np.ndarray,
                frontier_mask: np.ndarray) -> Tuple[np.ndarray, int]:
    """Pull step: unvisited vertices scan their in-neighbours for a
    frontier member, stopping at the first hit.

    For ``y = A x`` adjacency, the in-neighbours of vertex ``i`` are
    row ``i`` of ``A``.  Returns ``(new_vertices, edges_scanned)`` with
    the early-exit scan count a sequential per-vertex loop would make.
    """
    unvisited = np.flatnonzero(~visited)
    if len(unvisited) == 0:
        return np.zeros(0, dtype=np.int64), 0
    sub = csr.select_rows(unvisited)
    hit = frontier_mask[sub.indices]
    # per-vertex early exit: edges scanned until (and including) the
    # first frontier parent; all of them when none is found.
    lengths = np.diff(sub.indptr)
    vertex_of = np.repeat(np.arange(len(unvisited)), lengths)
    seg_start = np.repeat(sub.indptr[:-1], lengths)
    pos = np.arange(len(hit), dtype=np.int64) - seg_start
    sentinel = np.iinfo(np.int64).max
    first_hit = np.full(len(unvisited), sentinel, dtype=np.int64)
    idx = np.flatnonzero(hit)
    if len(idx):
        np.minimum.at(first_hit, vertex_of[idx], pos[idx])
    scanned = int(np.where(first_hit < sentinel, first_hit + 1,
                           lengths).sum())
    new = unvisited[first_hit < sentinel]
    return new, scanned
