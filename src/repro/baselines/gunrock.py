"""Gunrock-style BFS baseline (Wang et al., PPoPP '16).

Gunrock structures each BFS iteration as an **advance** kernel (expand
the frontier over CSR with per-edge load balancing) followed by a
**filter** kernel (compact the output queue, dropping visited and
duplicate vertices) — two launches per iteration, operating on an
explicit vertex queue and a 4-byte-per-vertex label array.  With the
``direction_optimized`` flag (the paper enables "all the optimizations
... including push-pull"), it switches to a pull (bottom-up) advance
when the frontier grows past Beamer's alpha threshold.

Against TileBFS the structural handicaps this model captures are:
4-byte labels instead of 1-bit masks (32x the status traffic), per-edge
scattered label probes and atomic claims instead of word-wide tile
merges, and two kernel launches per iteration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.tilebfs import BFSResult, IterationRecord
from ..errors import ShapeError
from ..gpusim import Device, KernelCounters
from ..runtime import ExecutionContext
from ._bfs_common import build_adjacency, expand_pull, expand_push

__all__ = ["GunrockBFS"]


class GunrockBFS:
    """Prepared Gunrock-style BFS operator.

    Parameters
    ----------
    matrix:
        Square adjacency pattern.
    direction_optimized:
        Enable push/pull switching (on by default, as in the paper's
        comparison).
    alpha, beta:
        Beamer's switching parameters: go bottom-up when
        ``frontier_edges > remaining_edges / alpha``; return top-down
        when ``frontier_size < n / beta``.
    device:
        Optional simulated GPU.
    """

    def __init__(self, matrix, direction_optimized: bool = True,
                 alpha: float = 14.0, beta: float = 24.0,
                 device: Optional[Device] = None):
        self.csr, self.csc = build_adjacency(matrix)
        self.n = self.csr.shape[0]
        self.nnz = self.csr.nnz
        self.direction_optimized = direction_optimized
        self.alpha = alpha
        self.beta = beta
        self.ctx = ExecutionContext.wrap(device, operator="gunrock")

    # ------------------------------------------------------------------
    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("gunrock")
        else:
            self.ctx.device = device

    # ------------------------------------------------------------------
    def run(self, source: int, max_depth: Optional[int] = None) -> BFSResult:
        """Traverse from ``source``."""
        if not (0 <= source < self.n):
            raise ShapeError(f"source {source} out of range for n={self.n}")
        levels = np.full(self.n, -1, dtype=np.int64)
        levels[source] = 0
        visited = np.zeros(self.n, dtype=bool)
        visited[source] = True
        frontier = np.array([source], dtype=np.int64)
        result = BFSResult(levels=levels)
        depth = 0
        out_degrees = self.csc.col_degrees()
        remaining_edges = self.nnz
        pulling = False

        while len(frontier):
            if max_depth is not None and depth >= max_depth:
                break
            depth += 1
            frontier_edges = int(out_degrees[frontier].sum())
            if self.direction_optimized:
                if not pulling and frontier_edges > remaining_edges / self.alpha:
                    pulling = True
                elif pulling and len(frontier) < self.n / self.beta:
                    pulling = False
            if pulling:
                frontier_mask = np.zeros(self.n, dtype=bool)
                frontier_mask[frontier] = True
                new, work = expand_pull(self.csr, visited, frontier_mask)
                ms = self._account_pull(len(frontier), work, len(new))
                kernel = "gunrock_pull"
            else:
                new, work = expand_push(self.csc, frontier, visited)
                ms = self._account_push(len(frontier), work, len(new))
                kernel = "gunrock_push"

            result.iterations.append(IterationRecord(
                depth=depth, kernel=kernel, frontier_size=len(frontier),
                new_vertices=len(new), simulated_ms=ms))
            result.simulated_ms += ms
            if len(new) == 0:
                break
            levels[new] = depth
            visited[new] = True
            remaining_edges -= frontier_edges
            frontier = new
        return result

    # ------------------------------------------------------------------
    def _account_push(self, frontier_size: int, edges: int,
                      n_new: int) -> float:
        """Advance + filter kernel pair of a top-down iteration."""
        adv = KernelCounters(launches=1)
        adv.coalesced_read_bytes += frontier_size * 4.0      # input queue
        adv.l2_read_bytes += frontier_size * 8.0             # row offsets
        adv.coalesced_read_bytes += edges * 4.0              # neighbour ids
        adv.random_read_count += float(edges)                # label probes
        adv.atomic_ops += float(edges)                       # atomicCAS claims
        adv.coalesced_write_bytes += edges * 4.0             # output queue
        adv.warps = max(1.0, edges / 32.0)
        adv.divergence = _frontier_divergence(
            self.csc.col_degrees(), frontier_size, edges)
        t1 = self.ctx.launch("gunrock_advance", adv, phase="iteration")

        flt = KernelCounters(launches=1)
        flt.coalesced_read_bytes += edges * 4.0              # raw queue
        flt.random_read_count += float(edges)                # visited test
        flt.coalesced_write_bytes += n_new * 4.0             # compacted
        flt.word_ops += float(edges)
        flt.warps = max(1.0, edges / 32.0)
        t2 = self.ctx.launch("gunrock_filter", flt, phase="iteration")
        return t1 + t2

    def _account_pull(self, frontier_size: int, scanned: int,
                      n_new: int) -> float:
        """Bottom-up advance + filter pair."""
        adv = KernelCounters(launches=1)
        # build the frontier bitmap first (Gunrock converts queue->bitmap)
        adv.coalesced_write_bytes += self.n / 8.0
        adv.coalesced_read_bytes += frontier_size * 4.0
        adv.l2_read_bytes += self.n * 8.0                    # row offsets
        adv.coalesced_read_bytes += scanned * 4.0            # in-neighbours
        adv.random_read_count += float(scanned)              # bitmap probes
        adv.coalesced_write_bytes += n_new * 4.0
        adv.warps = max(1.0, self.n / 32.0)
        t1 = self.ctx.launch("gunrock_advance_pull", adv, phase="iteration")

        flt = KernelCounters(launches=1)
        flt.coalesced_read_bytes += n_new * 4.0
        flt.coalesced_write_bytes += n_new * 4.0
        flt.warps = max(1.0, n_new / 32.0)
        t2 = self.ctx.launch("gunrock_filter", flt, phase="iteration")
        return t1 + t2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GunrockBFS n={self.n} nnz={self.nnz}>"


def _frontier_divergence(degrees: np.ndarray, frontier_size: int,
                         edges: int) -> float:
    """Lane utilisation of per-vertex expansion: skewed degrees leave
    warps ragged despite Gunrock's load balancing."""
    if frontier_size == 0 or edges == 0:
        return 1.0
    mean_deg = edges / frontier_size
    util = min(1.0, mean_deg / 32.0)
    return float(max(util, 1.0 / 32.0))
