"""Enterprise-style BFS baseline (Liu & Huang, SC '15).

Enterprise's contribution — which the paper credits as "the first BFS
algorithm that performs different load balancing for different
out-degrees of the frontiers" (§4.7) — is a *classified* frontier:
each iteration scans the frontier once to split it into small / middle
/ large / hub queues by out-degree, then launches one expansion kernel
per non-empty class with a thread/warp/block/grid mapping matched to
the degree range, plus a hub-vertex cache in shared memory.

The model charges it the classification pass and the per-class
launches, but rewards it with near-perfect lane utilisation (that is
the whole point of the classification) and a status-array push without
atomics (Enterprise exploits BFS's benign races).  Figure 12's modest
average gap (TileBFS 1.39x geomean, up to 2.31x) reflects that this is
the strongest BFS baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.tilebfs import BFSResult, IterationRecord
from ..errors import ShapeError
from ..gpusim import Device, KernelCounters
from ..runtime import ExecutionContext
from ._bfs_common import build_adjacency, expand_push

__all__ = ["EnterpriseBFS"]

#: Out-degree boundaries of the four frontier classes (SC '15 §3).
CLASS_BOUNDS = (32, 256, 65536)


class EnterpriseBFS:
    """Prepared Enterprise-style BFS operator."""

    def __init__(self, matrix, device: Optional[Device] = None):
        self.csr, self.csc = build_adjacency(matrix)
        self.n = self.csr.shape[0]
        self.nnz = self.csr.nnz
        self.ctx = ExecutionContext.wrap(device, operator="enterprise")
        self._out_degrees = self.csc.col_degrees()

    # ------------------------------------------------------------------
    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("enterprise")
        else:
            self.ctx.device = device

    # ------------------------------------------------------------------
    def run(self, source: int, max_depth: Optional[int] = None) -> BFSResult:
        """Traverse from ``source``."""
        if not (0 <= source < self.n):
            raise ShapeError(f"source {source} out of range for n={self.n}")
        levels = np.full(self.n, -1, dtype=np.int64)
        levels[source] = 0
        visited = np.zeros(self.n, dtype=bool)
        visited[source] = True
        frontier = np.array([source], dtype=np.int64)
        result = BFSResult(levels=levels)
        depth = 0

        while len(frontier):
            if max_depth is not None and depth >= max_depth:
                break
            depth += 1
            new, edges = expand_push(self.csc, frontier, visited)
            ms = self._account_iteration(frontier, edges, len(new))
            result.iterations.append(IterationRecord(
                depth=depth, kernel="enterprise_push",
                frontier_size=len(frontier),
                new_vertices=len(new), simulated_ms=ms))
            result.simulated_ms += ms
            if len(new) == 0:
                break
            levels[new] = depth
            visited[new] = True
            frontier = new
        return result

    # ------------------------------------------------------------------
    def _account_iteration(self, frontier: np.ndarray, edges: int,
                           n_new: int) -> float:
        degs = self._out_degrees[frontier]
        classes = np.searchsorted(CLASS_BOUNDS, degs, side="right")
        n_classes = len(np.unique(classes)) if len(classes) else 0

        # classification scan: read frontier + degrees, write 4 queues
        cls = KernelCounters(launches=1)
        cls.coalesced_read_bytes += len(frontier) * 8.0
        cls.coalesced_write_bytes += len(frontier) * 4.0
        cls.word_ops += float(len(frontier))
        cls.warps = max(1.0, len(frontier) / 32.0)
        ms = self.ctx.launch("enterprise_classify", cls, phase="iteration")

        # one expansion launch per non-empty class; work split among
        # them but each pays a launch.  Load balancing keeps lanes full.
        exp = KernelCounters(launches=max(1, n_classes))
        exp.coalesced_read_bytes += len(frontier) * 4.0 + edges * 4.0
        exp.l2_read_bytes += len(frontier) * 8.0        # row offsets
        exp.random_read_count += float(edges)           # status probes
        # status-array writes ride benign races: plain scattered stores,
        # no atomics (SC '15 §4)
        exp.random_write_count += float(n_new)
        exp.coalesced_write_bytes += n_new * 4.0        # next queue
        exp.warps = max(1.0, edges / 32.0)
        exp.divergence = 1.0                            # classified mapping
        ms += self.ctx.launch("enterprise_expand", exp, phase="iteration")
        return ms

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<EnterpriseBFS n={self.n} nnz={self.nnz}>"
