"""Reference SpMSpV: the paper's Algorithms 1 and 2.

These are the textbook row-wise (matrix-driven) and column-wise
(vector-driven) formulations from §2.1.  They serve two roles: an
independent correctness oracle for every other SpMSpV in the repo, and
the "no tiling, no bucketing" baseline the smarter algorithms are
measured against in the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from ..formats.csc import CSCMatrix
from ..formats.csr import CSRMatrix
from ..gpusim import Device, KernelCounters
from ..runtime import ExecutionContext
from ..semiring import PLUS_TIMES, Semiring
from ..vectors.sparse_vector import SparseVector

__all__ = ["spmspv_rowwise", "spmspv_colwise"]


def spmspv_rowwise(A: CSRMatrix, x: SparseVector,
                   semiring: Semiring = PLUS_TIMES,
                   device: Optional[Device] = None) -> SparseVector:
    """Algorithm 1 — row-wise (matrix-driven) SpMSpV.

    Every matrix row computes a dot product with ``x``, testing each
    column index against the sparse vector (line 4's ``if x_j != 0``).
    Work is proportional to *all* of ``nnz(A)`` regardless of how
    sparse ``x`` is — the inefficiency the vector-driven methods fix.
    """
    if x.n != A.shape[1]:
        raise ShapeError(
            f"SpMSpV shape mismatch: A is {A.shape}, x has length {x.n}"
        )
    x_dense = np.full(A.shape[1], semiring.add_identity,
                      dtype=semiring.dtype)
    x_dense[x.indices] = x.values
    x_present = np.zeros(A.shape[1], dtype=bool)
    x_present[x.indices] = True

    hit = x_present[A.indices]
    products = semiring.mul(A.data[hit], x_dense[A.indices[hit]])
    rows = A.row_of_entry()[hit]
    y_dense = np.full(A.shape[0], semiring.add_identity,
                      dtype=semiring.dtype)
    if len(rows):
        semiring.add.at(y_dense, rows, products)

    ctx = ExecutionContext.wrap(device, operator="spmspv-rowwise")
    c = KernelCounters(launches=1)
    c.coalesced_read_bytes += A.nnz * 16.0        # indices + values
    c.random_read_count += A.nnz                  # x probes (line 4)
    c.flops += 2.0 * len(rows)
    c.coalesced_write_bytes += A.shape[0] * 8.0   # y row results
    c.warps = max(1.0, A.shape[0] / 32.0)
    ctx.launch("spmspv_rowwise", c, phase="multiply")

    idx = np.flatnonzero(~semiring.is_identity(y_dense))
    return SparseVector(A.shape[0], idx, y_dense[idx])


def spmspv_colwise(A: CSCMatrix, x: SparseVector,
                   semiring: Semiring = PLUS_TIMES,
                   device: Optional[Device] = None) -> SparseVector:
    """Algorithm 2 — column-wise (vector-driven) SpMSpV.

    Each nonzero ``x_j`` scales column ``a_{*j}`` and merges into ``y``.
    Work is proportional to the touched columns only, but the merge is
    a global scatter with atomics and no locality — the weakness the
    tiled and bucketed methods address.
    """
    if x.n != A.shape[1]:
        raise ShapeError(
            f"SpMSpV shape mismatch: A is {A.shape}, x has length {x.n}"
        )
    rows, vals, src = A.gather_columns(x.indices)
    products = semiring.mul(vals, x.values[src])
    y_dense = np.full(A.shape[0], semiring.add_identity,
                      dtype=semiring.dtype)
    if len(rows):
        semiring.add.at(y_dense, rows, products)

    ctx = ExecutionContext.wrap(device, operator="spmspv-colwise")
    c = KernelCounters(launches=1)
    c.l2_read_bytes += x.nnz * 16.0               # column pointers
    c.coalesced_read_bytes += len(rows) * 16.0    # column payloads
    c.flops += 2.0 * len(rows)
    c.atomic_ops += float(len(rows))              # global merge
    c.random_write_count += float(len(rows))
    c.warps = max(1.0, x.nnz)
    c.divergence = _column_divergence(A, x)
    ctx.launch("spmspv_colwise", c, phase="multiply")

    idx = np.flatnonzero(~semiring.is_identity(y_dense))
    return SparseVector(A.shape[0], idx, y_dense[idx])


def _column_divergence(A: CSCMatrix, x: SparseVector) -> float:
    """Lane utilisation when a warp strides one column: short columns
    leave lanes idle."""
    if x.nnz == 0:
        return 1.0
    lens = A.col_degrees()[x.indices]
    util = np.minimum(1.0, lens / 32.0).mean()
    return float(max(util, 1.0 / 32.0))
