"""TileSpMV baseline (Niu et al., IPDPS '21) — tiled SpMV with a dense
input vector.

TileSpMV is the paper's closest competitor (its own precursor): the
same sparse-tile storage, but the input vector is **dense**, so

* a sparse ``x`` must first be scattered into its dense form (an extra
  kernel + full-vector traffic), and
* every stored tile is processed — there is no ``x_ptr`` test, hence no
  tile skipping — which is exactly the gap Figure 6 measures
  (TileSpMSpV wins by ~1.1x at sparsity 0.1 up to ~2.4x at 0.0001).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ShapeError
from ..formats.base import SparseMatrix
from ..formats.coo import COOMatrix
from ..gpusim import Device, KernelCounters
from ..runtime import ExecutionContext
from ..semiring import PLUS_TIMES, Semiring
from ..tiles.tiled_matrix import TiledMatrix
from ..vectors.sparse_vector import SparseVector

__all__ = ["TileSpMV"]


class TileSpMV:
    """Prepared TileSpMV operator (dense-vector tiled SpMV).

    Parameters mirror :class:`repro.core.TileSpMSpV` minus extraction
    (TileSpMV stores everything in tiles).
    """

    def __init__(self, matrix, nt: int = 16,
                 semiring: Semiring = PLUS_TIMES,
                 device: Optional[Device] = None):
        if isinstance(matrix, TiledMatrix):
            self.tiled = matrix
        else:
            if isinstance(matrix, SparseMatrix):
                coo = matrix.to_coo()
            else:
                coo = COOMatrix.from_dense(np.asarray(matrix))
            self.tiled = TiledMatrix.from_coo(coo, nt)
        self.semiring = semiring
        self.ctx = ExecutionContext.wrap(device, operator="tilespmv")

    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("tilespmv")
        else:
            self.ctx.device = device

    @property
    def shape(self):
        return self.tiled.shape

    @property
    def nt(self) -> int:
        return self.tiled.nt

    # ------------------------------------------------------------------
    def multiply(self, x: Union[SparseVector, np.ndarray]) -> SparseVector:
        """Compute ``y = A x``.

        A sparse ``x`` is densified first (that cost is charged — it is
        how an SpMV library is actually used for SpMSpV, per the
        paper's introduction).
        """
        semiring = self.semiring
        if isinstance(x, SparseVector):
            if x.n != self.shape[1]:
                raise ShapeError(
                    f"shape mismatch: A is {self.shape}, x has length {x.n}"
                )
            x_dense = np.full(self.shape[1], semiring.add_identity,
                              dtype=semiring.dtype)
            x_dense[x.indices] = x.values
            c = KernelCounters(launches=1)
            c.coalesced_write_bytes += self.shape[1] * 8.0  # densify
            c.coalesced_read_bytes += x.nnz * 16.0
            c.warps = max(1.0, self.shape[1] / (32.0 * 32.0))
            self.ctx.launch("tilespmv_densify_x", c, phase="densify")
        else:
            x_dense = np.asarray(x)
            if x_dense.shape != (self.shape[1],):
                raise ShapeError(
                    f"shape mismatch: A is {self.shape}, x has shape "
                    f"{x_dense.shape}"
                )

        A = self.tiled
        nt = A.nt
        # every stored tile is processed: gather x per entry, reduce rows
        lcol = A.local_col.astype(np.int64)
        tcol = A.tile_colidx[A.tile_of_entry()]
        products = semiring.mul(A.values, x_dense[tcol * nt + lcol])
        grow = (A.tile_rowidx()[A.tile_of_entry()] * nt
                + A.local_row.astype(np.int64))
        y_dense = np.full(self.shape[0], semiring.add_identity,
                          dtype=semiring.dtype)
        if len(grow):
            semiring.add.at(y_dense, grow, products)

        c = KernelCounters(launches=1)
        idx_bytes = A.index_bytes_per_entry()
        c.coalesced_read_bytes += A.n_nonempty_tiles * 16.0
        c.coalesced_read_bytes += A.nnz * (8.0 + idx_bytes)
        # the dense-x tile of *every* stored tile streams through
        # shared memory — no skipping
        c.l2_read_bytes += A.n_nonempty_tiles * nt * 8.0
        c.shared_bytes += A.n_nonempty_tiles * nt * 8.0
        c.flops += 2.0 * A.nnz
        c.word_ops += A.n_nonempty_tiles * 5.0
        row_tiles = max(1, A.n_tile_rows)
        c.coalesced_write_bytes += row_tiles * nt * 8.0
        c.warps = float(row_tiles)
        nnz_tiles = np.diff(A.tile_nnz_ptr)
        if len(nnz_tiles):
            util = np.minimum(1.0, nnz_tiles / 32.0).mean()
            c.divergence = float(max(util, 1.0 / 32.0))
        self.ctx.launch("tilespmv", c, phase="multiply")

        idx = np.flatnonzero(~semiring.is_identity(y_dense))
        return SparseVector(self.shape[0], idx, y_dense[idx])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<TileSpMV {self.shape} nt={self.nt} "
                f"tiles={self.tiled.n_nonempty_tiles}>")
