"""CombBLAS SpMSpV-bucket baseline (Azad & Buluç, IPDPS '17).

The paper compares against "the GPU version of the SpMSpV-bucket
algorithm in the CombBLAS library" (§4.1).  SpMSpV-bucket is
vector-driven over CSC with a bucketed merge:

1. **Gather** — each nonzero ``x_j`` scales column ``a_{*j}`` into
   ``(row, value)`` pairs;
2. **Bucket** — pairs are scattered into buckets by row range, so each
   bucket can be merged independently (load balance);
3. **Sort+merge** — each bucket sorts by row and reduces duplicates;
4. **Compact** — surviving entries scatter into the sparse ``y``.

Its work is proportional to the touched columns (good), but the merge
makes a full off-chip round trip — pairs are written to global-memory
buckets, read back, and sorted — which is the weakness the paper's
§1 names ("working on the off-chip global memory makes merging or
sorting very slow") and that the tiled on-chip merge removes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import group_starts
from ..errors import ShapeError
from ..formats.base import SparseMatrix
from ..formats.coo import COOMatrix
from ..formats.csc import CSCMatrix
from ..gpusim import Device, KernelCounters
from ..runtime import ExecutionContext
from ..semiring import PLUS_TIMES, Semiring
from ..vectors.sparse_vector import SparseVector

__all__ = ["CombBLASSpMSpV"]

#: Rows per bucket — sized so a bucket's working set fits an SM's
#: shared memory during the merge phase (Azad & Buluç use a comparable
#: per-thread-block range).
DEFAULT_BUCKET_ROWS = 4096


class CombBLASSpMSpV:
    """Prepared SpMSpV-bucket operator over CSC storage."""

    def __init__(self, matrix, bucket_rows: int = DEFAULT_BUCKET_ROWS,
                 semiring: Semiring = PLUS_TIMES,
                 device: Optional[Device] = None):
        if isinstance(matrix, CSCMatrix):
            self.csc = matrix
        elif isinstance(matrix, SparseMatrix):
            self.csc = matrix.to_csc()
        else:
            self.csc = COOMatrix.from_dense(np.asarray(matrix)).to_csc()
        if bucket_rows <= 0:
            raise ShapeError(f"bucket_rows must be positive, got {bucket_rows}")
        self.bucket_rows = int(bucket_rows)
        self.semiring = semiring
        self.ctx = ExecutionContext.wrap(device, operator="combblas")

    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("combblas")
        else:
            self.ctx.device = device

    @property
    def shape(self):
        return self.csc.shape

    # ------------------------------------------------------------------
    def multiply(self, x: SparseVector) -> SparseVector:
        """``y = A x`` via gather → bucket → sort/merge → compact."""
        if x.n != self.shape[1]:
            raise ShapeError(
                f"shape mismatch: A is {self.shape}, x has length {x.n}"
            )
        semiring = self.semiring

        # Phase 1-2: gather touched columns and bucket the pairs.
        rows, vals, src = self.csc.gather_columns(x.indices)
        products = semiring.mul(vals, x.values[src])
        buckets = rows // self.bucket_rows

        # Phase 3: per-bucket sort + duplicate reduction (one global
        # lexsort is the vectorized equivalent of independent
        # per-bucket sorts).
        n_pairs = len(rows)
        if n_pairs:
            order = np.lexsort((rows, buckets))
            rows_s = rows[order]
            prods_s = products[order]
            starts = group_starts(rows_s)
            reduced = semiring.add.reduceat(prods_s, starts) \
                if len(starts) else prods_s[:0]
            out_rows = rows_s[starts]
        else:
            out_rows = rows
            reduced = products

        keep = ~semiring.is_identity(reduced)
        y = SparseVector(self.shape[0], out_rows[keep], reduced[keep])

        self._account(x, n_pairs, len(out_rows))
        return y

    # ------------------------------------------------------------------
    def _account(self, x: SparseVector, n_pairs: int, n_out: int) -> None:
        """Launch the five phases' kernel records."""
        n_buckets = max(1, int(np.ceil(self.shape[0] / self.bucket_rows)))
        # phase 0: per-call setup — clear the bucket-offset table and the
        # per-bucket accumulator flags (m-proportional, paid on every
        # multiply; this fixed cost is why SpMSpV-bucket cannot profit
        # from extremely sparse inputs)
        c = KernelCounters(launches=1)
        c.coalesced_write_bytes += n_buckets * 8.0 + self.shape[0] * 1.0
        c.warps = max(1.0, self.shape[0] / (32.0 * 32.0))
        self.ctx.launch("combblas_setup", c, phase="setup")

        # phase 0b: bucket sizing scan over the touched columns (the
        # algorithm needs per-bucket offsets before it can scatter)
        c = KernelCounters(launches=1)
        c.l2_read_bytes += x.nnz * 16.0
        c.atomic_ops += float(n_pairs)     # histogram increments
        c.coalesced_read_bytes += n_pairs * 8.0
        c.warps = max(1.0, x.nnz)
        self.ctx.launch("combblas_bucket_count", c, phase="bucket")

        # gather: column pointers (L2) + column payloads (coalesced)
        c = KernelCounters(launches=1)
        c.l2_read_bytes += x.nnz * 16.0
        c.coalesced_read_bytes += n_pairs * 16.0
        c.flops += 2.0 * n_pairs
        # bucket scatter: every (row, value) pair makes the off-chip
        # round trip; bucket targets are data-dependent.
        c.random_write_count += float(n_pairs)
        c.warps = max(1.0, x.nnz)
        lens = self.csc.col_degrees()[x.indices] if x.nnz else np.zeros(0)
        if len(lens):
            util = np.minimum(1.0, lens / 32.0).mean()
            c.divergence = float(max(util, 1.0 / 32.0))
        self.ctx.launch("combblas_gather_bucket", c, phase="gather")

        # sort inside buckets: a GPU radix sort by row key makes several
        # full read+write passes over the (row, value) pairs — this
        # off-chip round-tripping is the cost §1 of the paper pins on
        # merge-style SpMSpV.
        c = KernelCounters(launches=1)
        radix_passes = 4
        c.coalesced_read_bytes += n_pairs * 16.0 * radix_passes
        c.coalesced_write_bytes += n_pairs * 16.0 * radix_passes
        c.word_ops += 8.0 * n_pairs
        c.warps = max(1.0, n_pairs / 32.0)
        self.ctx.launch("combblas_sort", c, phase="sort")

        # merge: stream the sorted pairs, reduce duplicate rows
        c = KernelCounters(launches=1)
        c.coalesced_read_bytes += n_pairs * 16.0
        c.flops += float(max(0, n_pairs - n_out))   # duplicate adds
        c.coalesced_write_bytes += n_out * 16.0
        c.warps = max(1.0, n_pairs / 32.0)
        self.ctx.launch("combblas_merge", c, phase="merge")

        # compact into the sparse output
        c = KernelCounters(launches=1)
        c.coalesced_read_bytes += n_out * 16.0
        c.random_write_count += float(n_out)
        c.atomic_ops += float(n_out)    # output-offset counters
        c.warps = max(1.0, n_out / 32.0)
        self.ctx.launch("combblas_compact", c, phase="compact")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CombBLASSpMSpV {self.shape} "
                f"bucket_rows={self.bucket_rows}>")
