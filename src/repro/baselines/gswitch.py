"""GSwitch-style BFS baseline (Meng et al., PPoPP '19).

GSwitch is a *pattern-based algorithmic autotuner*: at every iteration
it extracts features of the current frontier (size, average degree,
fraction of the graph visited), consults a decision model, and picks
one of several execution patterns (push/pull x vertex-/edge-centric x
queue/bitmap frontier).  The decision machinery is what makes GSwitch
adaptive — and also what this model charges it for: a sampling kernel
plus host-side decision per iteration, and a warm-up autotuning phase
on the first iterations where candidate patterns are probed.

That overhead profile reproduces the paper's observations: GSwitch is
competitive on big graphs (good pattern choices) but loses dramatically
on small matrices where per-iteration overhead dominates (TileBFS wins
by up to ~1000x there, Fig. 7) — while still beating TileBFS on some
high-tile-count road networks (paper §4.5, 'roadNet-TX').
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.tilebfs import BFSResult, IterationRecord
from ..errors import ShapeError
from ..gpusim import Device, KernelCounters
from ..runtime import ExecutionContext
from ._bfs_common import build_adjacency, expand_pull, expand_push

__all__ = ["GSwitchBFS"]

#: Iterations during which the autotuner probes alternative patterns.
WARMUP_ITERATIONS = 3


class GSwitchBFS:
    """Prepared GSwitch-style adaptive BFS operator."""

    def __init__(self, matrix, device: Optional[Device] = None):
        self.csr, self.csc = build_adjacency(matrix)
        self.n = self.csr.shape[0]
        self.nnz = self.csr.nnz
        self.ctx = ExecutionContext.wrap(device, operator="gswitch")

    # ------------------------------------------------------------------
    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("gswitch")
        else:
            self.ctx.device = device

    # ------------------------------------------------------------------
    def run(self, source: int, max_depth: Optional[int] = None) -> BFSResult:
        """Traverse from ``source``."""
        if not (0 <= source < self.n):
            raise ShapeError(f"source {source} out of range for n={self.n}")
        levels = np.full(self.n, -1, dtype=np.int64)
        levels[source] = 0
        visited = np.zeros(self.n, dtype=bool)
        visited[source] = True
        frontier = np.array([source], dtype=np.int64)
        result = BFSResult(levels=levels)
        depth = 0
        out_degrees = self.csc.col_degrees()

        while len(frontier):
            if max_depth is not None and depth >= max_depth:
                break
            depth += 1
            ms = self._account_decision(depth, len(frontier))

            frontier_edges = int(out_degrees[frontier].sum())
            unvisited = self.n - int(visited.sum())
            use_pull = self._choose_pull(frontier_edges, unvisited)
            if use_pull:
                frontier_mask = np.zeros(self.n, dtype=bool)
                frontier_mask[frontier] = True
                new, work = expand_pull(self.csr, visited, frontier_mask)
                ms += self._account_pull(len(frontier), work, len(new))
                kernel = "gswitch_pull"
            else:
                new, work = expand_push(self.csc, frontier, visited)
                ms += self._account_push(len(frontier), work, len(new))
                kernel = "gswitch_push"

            result.iterations.append(IterationRecord(
                depth=depth, kernel=kernel, frontier_size=len(frontier),
                new_vertices=len(new), simulated_ms=ms))
            result.simulated_ms += ms
            if len(new) == 0:
                break
            levels[new] = depth
            visited[new] = True
            frontier = new
        return result

    # ------------------------------------------------------------------
    def _choose_pull(self, frontier_edges: int, unvisited: int) -> bool:
        """GSwitch's learned decision approximated by the frontier-work
        ratio its features encode."""
        return frontier_edges > max(1, unvisited) * 2

    def _account_decision(self, depth: int, frontier_size: int) -> float:
        """Feature sampling + host decision (+ warm-up probing)."""
        c = KernelCounters(launches=1)
        c.coalesced_read_bytes += min(frontier_size, 1024) * 8.0  # sample
        c.word_ops += 512.0                                       # features
        c.warps = 4.0
        ms = self.ctx.launch("gswitch_sample", c, phase="decision")
        if depth <= WARMUP_ITERATIONS:
            # autotuner probes an alternative pattern and discards it
            probe = KernelCounters(launches=1)
            probe.coalesced_read_bytes += min(frontier_size, 4096) * 8.0
            probe.word_ops += 2048.0
            probe.warps = 8.0
            ms += self.ctx.launch("gswitch_probe", probe,
                                  phase="decision")
        return ms

    def _account_push(self, frontier_size: int, edges: int,
                      n_new: int) -> float:
        c = KernelCounters(launches=1)
        c.coalesced_read_bytes += frontier_size * 4.0 + edges * 4.0
        c.l2_read_bytes += frontier_size * 8.0
        c.random_read_count += float(edges)          # status probes
        c.atomic_ops += float(edges)                 # claims
        c.coalesced_write_bytes += n_new * 4.0
        c.warps = max(1.0, edges / 32.0)
        return self.ctx.launch("gswitch_push", c, phase="iteration")

    def _account_pull(self, frontier_size: int, scanned: int,
                      n_new: int) -> float:
        c = KernelCounters(launches=1)
        c.coalesced_write_bytes += self.n / 8.0      # frontier bitmap
        c.coalesced_read_bytes += frontier_size * 4.0 + scanned * 4.0
        c.l2_read_bytes += self.n * 8.0
        c.random_read_count += float(scanned)
        c.coalesced_write_bytes += n_new * 4.0
        c.warps = max(1.0, self.n / 32.0)
        return self.ctx.launch("gswitch_pull", c, phase="iteration")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GSwitchBFS n={self.n} nnz={self.nnz}>"
