"""SpMSpV computed by calling a general SpGEMM — the paper's §1 strawman.

"Compared to SpGEMM, SpMSpV multiplies a sparse matrix with a sparse
vector, but not with another sparse matrix of possibly a large number
of columns. As a result, to compute SpMSpV, it is in general less
efficient to just call ... an SpGEMM (mostly needs to run the
Gustavson's row-row method, and encounters very bad data locality since
each non-empty row of the multiplier has only one element)." — §1.

This baseline does exactly that: reshape ``x`` into an ``n x 1`` sparse
matrix and run Gustavson.  The cost structure the quote describes is
what the counters charge: the row-row method walks *every stored entry
of A* to probe whether its ``B`` row (here: one vector element) exists
— a scattered single-element lookup per nonzero of ``A`` — and its
hash/sort machinery runs even though every output row has at most one
column.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from ..formats.base import SparseMatrix
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.spgemm import spgemm
from ..gpusim import Device, KernelCounters
from ..runtime import ExecutionContext
from ..vectors.sparse_vector import SparseVector

__all__ = ["SpMSpVViaSpGEMM"]


class SpMSpVViaSpGEMM:
    """SpMSpV by calling the general Gustavson SpGEMM on ``A @ x``."""

    def __init__(self, matrix, device: Optional[Device] = None):
        if isinstance(matrix, CSRMatrix):
            self.csr = matrix
        elif isinstance(matrix, SparseMatrix):
            self.csr = matrix.to_csr()
        else:
            self.csr = COOMatrix.from_dense(np.asarray(matrix)).to_csr()
        self.ctx = ExecutionContext.wrap(device, operator="spmspv-via-spgemm")

    @property
    def device(self) -> Optional[Device]:
        """The attached simulated GPU (held by the launch context)."""
        return self.ctx.device

    @device.setter
    def device(self, device) -> None:
        if isinstance(device, ExecutionContext):
            self.ctx = device.scoped("spmspv-via-spgemm")
        else:
            self.ctx.device = device

    @property
    def shape(self):
        return self.csr.shape

    def multiply(self, x: SparseVector) -> SparseVector:
        """``y = A x`` via ``C = A @ X`` with ``X`` an ``n x 1`` matrix."""
        if x.n != self.shape[1]:
            raise ShapeError(
                f"shape mismatch: A is {self.shape}, x has length {x.n}"
            )
        indptr = np.zeros(x.n + 1, dtype=np.int64)
        np.add.at(indptr, x.indices + 1, 1)
        np.cumsum(indptr, out=indptr)
        X = CSRMatrix((x.n, 1), indptr,
                      np.zeros(x.nnz, dtype=np.int64), x.values)
        C = spgemm(self.csr, X)

        c = KernelCounters(launches=3)   # expand / sort / compress
        nnz = self.csr.nnz
        matched = int(np.isin(self.csr.indices, x.indices).sum())
        # row-row walk: every A entry streams in and probes the
        # multiplier's row — a scattered single-element lookup
        c.coalesced_read_bytes += nnz * 16.0
        c.random_read_count += float(nnz)      # B-row existence probes
        c.flops += 2.0 * matched
        # partial products round-trip through global memory for the
        # sort/compress phases (general machinery, single column)
        c.coalesced_write_bytes += matched * 16.0
        c.coalesced_read_bytes += matched * 16.0 * 4   # radix passes
        c.coalesced_write_bytes += matched * 16.0 * 4
        c.coalesced_write_bytes += C.nnz * 16.0
        c.warps = max(1.0, nnz / 32.0)
        self.ctx.launch("spmspv_via_spgemm", c, phase="multiply")

        idx = C.row_of_entry()
        keep = C.data != 0
        return SparseVector(self.shape[0], idx[keep], C.data[keep])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SpMSpVViaSpGEMM {self.shape}>"
