"""Every baseline the paper compares against, implemented from scratch.

SpMSpV / SpMV (Figure 6):

* :func:`spmspv_rowwise`, :func:`spmspv_colwise` — paper Algorithms 1-2;
* :class:`TileSpMV` — tiled SpMV with dense input vector (IPDPS '21);
* :class:`CuSparseBSRMV` — cuSPARSE ``bsrmv`` stand-in (dense blocks);
* :class:`CombBLASSpMSpV` — SpMSpV-bucket (IPDPS '17).

BFS (Figures 7, 8, 12):

* :class:`GunrockBFS` — advance/filter frontier queues (PPoPP '16);
* :class:`GSwitchBFS` — pattern-based adaptive autotuner (PPoPP '19);
* :class:`EnterpriseBFS` — degree-classified frontiers (SC '15).

See DESIGN.md §1 for how each substitution preserves the cost profile
of the system it stands in for.
"""

from .combblas import CombBLASSpMSpV
from .cusparse_bsr import CuSparseBSRMV
from .enterprise import EnterpriseBFS
from .gswitch import GSwitchBFS
from .gunrock import GunrockBFS
from .spmspv_naive import spmspv_colwise, spmspv_rowwise
from .spmspv_via_spgemm import SpMSpVViaSpGEMM
from .tilespmv import TileSpMV

__all__ = [
    "spmspv_rowwise", "spmspv_colwise",
    "TileSpMV", "CuSparseBSRMV", "CombBLASSpMSpV",
    "SpMSpVViaSpGEMM",
    "GunrockBFS", "GSwitchBFS", "EnterpriseBFS",
]
