"""Connected components via label propagation over SpMSpV.

The classic algebraic formulation: every vertex starts with its own
label; each round propagates the minimum label across edges with a
``(min, min)``-flavoured SpMSpV until no label changes.  Only vertices
whose label changed stay in the frontier, so each round is a genuinely
*sparse* matrix-sparse vector product — the workload SpMSpV exists for.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.spmspv import TileSpMSpV
from ..errors import ShapeError
from ..gpusim import Device
from ..semiring import MIN_PLUS, Semiring
from ..vectors.sparse_vector import SparseVector

__all__ = ["connected_components"]

#: (min, first) propagation semiring: combine = take the neighbour's
#: label (edge values are 0 under min-plus so mul=+0 passes labels
#: through), reduce = min.
_PROPAGATE: Semiring = MIN_PLUS


def connected_components(matrix, nt: int = 16,
                         device: Optional[Device] = None,
                         max_rounds: Optional[int] = None) -> np.ndarray:
    """Component id per vertex (the minimum vertex id in the component).

    Parameters
    ----------
    matrix:
        Square symmetric adjacency pattern (values ignored).
    nt:
        Tile size of the underlying operator.
    device:
        Optional simulated GPU.
    max_rounds:
        Safety cap on propagation rounds (default: n).

    Returns
    -------
    ``int64[n]`` labels; ``labels[v]`` is the smallest vertex id
    reachable from ``v``.
    """
    from ..formats.base import SparseMatrix
    from ..formats.coo import COOMatrix

    if isinstance(matrix, SparseMatrix):
        coo = matrix.to_coo()
    else:
        coo = COOMatrix.from_dense(np.asarray(matrix))
    if coo.shape[0] != coo.shape[1]:
        raise ShapeError(
            f"connected_components requires a square matrix, "
            f"got {coo.shape}"
        )
    n = coo.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    # pattern matrix with zero weights: under (min, +) a multiply
    # forwards the source label unchanged
    pattern = COOMatrix(coo.shape, coo.row, coo.col,
                        np.zeros(coo.nnz))
    op = TileSpMSpV(pattern, nt=nt, semiring=_PROPAGATE, device=device)

    labels = np.arange(n, dtype=np.float64)
    frontier = SparseVector(n, np.arange(n), labels.copy())
    rounds = 0
    cap = max_rounds if max_rounds is not None else n + 1
    while frontier.nnz and rounds < cap:
        rounds += 1
        y = op.multiply(frontier)
        improved = y.indices[y.values < labels[y.indices] - 1e-12]
        if len(improved) == 0:
            break
        labels[improved] = y.to_dense()[improved]
        frontier = SparseVector(n, improved, labels[improved])
    return labels.astype(np.int64)
