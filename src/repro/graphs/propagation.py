"""Block propagation algorithms on top of the SpMM operator.

These are the workloads the SpMM regime exists for: many dense columns
pushed through one sparse matrix per iteration.

* :func:`multi_pagerank` — ``B`` personalized PageRank vectors (one
  per personalization column / seed vertex) advanced together; each
  iteration is a single :class:`~repro.core.spmm.TileSpMM` block
  multiply instead of ``B`` SpMV calls, so the matrix streams once.
* :func:`label_propagation` — semi-supervised label spreading: a
  one-hot seed block of ``L`` label columns is propagated through the
  column-normalised adjacency until the per-vertex ``argmax`` label
  assignment stabilises.

Both reuse :func:`~repro.graphs.pagerank.pagerank`'s conventions
exactly: ``A[i, j]`` is edge ``j -> i``, the transition matrix is the
column-weight-normalised ``P = A D^{-1}``, and duplicate / explicit-zero
entries are canonicalized away before degrees are computed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..core.spmm import TileSpMM
from ..errors import ShapeError
from ..gpusim import Device

__all__ = ["multi_pagerank", "label_propagation"]


def _normalized_transition(matrix):
    """``(P, dangling, n)``: the column-stochastic transition matrix,
    the dangling-vertex mask, and the vertex count — the exact
    preprocessing :func:`~repro.graphs.pagerank.pagerank` performs."""
    from ..formats.base import SparseMatrix
    from ..formats.coo import COOMatrix

    if isinstance(matrix, SparseMatrix):
        coo = matrix.to_coo()
    else:
        coo = COOMatrix.from_dense(np.asarray(matrix))
    if coo.shape[0] != coo.shape[1]:
        raise ShapeError(f"propagation requires a square matrix, "
                         f"got {coo.shape}")
    n = coo.shape[0]
    coo = coo.canonicalize().drop_zeros()
    out_weight = np.zeros(n, dtype=np.float64)
    np.add.at(out_weight, coo.col, coo.val.astype(np.float64))
    dangling = out_weight == 0
    inv_weight = np.where(dangling, 0.0,
                          1.0 / np.where(dangling, 1.0, out_weight))
    P = COOMatrix(coo.shape, coo.row, coo.col,
                  coo.val * inv_weight[coo.col])
    return P, dangling, n


def _personalization_block(personalization, n: int) -> np.ndarray:
    """Coerce seeds / columns to a column-stochastic ``(n, B)`` block."""
    p = np.asarray(personalization)
    if p.ndim == 1 and p.dtype.kind in "iu":
        # seed vertices: one personalization column per seed
        V = np.zeros((n, len(p)), dtype=np.float64)
        for j, s in enumerate(p):
            if not (0 <= int(s) < n):
                raise ShapeError(f"seed vertex {int(s)} out of range "
                                 f"for n={n}")
            V[int(s), j] = 1.0
        return V
    V = p.astype(np.float64, copy=True)
    if V.ndim == 1:
        V = V[:, None]
    if V.ndim != 2 or V.shape[0] != n:
        raise ShapeError(f"personalization block must be (n={n}, B), "
                         f"got shape {V.shape}")
    sums = V.sum(axis=0)
    if np.any(sums <= 0):
        raise ShapeError("every personalization column needs positive "
                         "total mass")
    return V / sums


def multi_pagerank(matrix, personalization,
                   damping: float = 0.85, tol: float = 1e-10,
                   max_iter: int = 200, nt: int = 16,
                   device: Optional[Device] = None,
                   ) -> Tuple[np.ndarray, int]:
    """``B`` personalized PageRank columns in one SpMM per iteration.

    Parameters
    ----------
    matrix:
        Square adjacency (``A[i, j]`` = edge ``j -> i``); weights are
        respected as in :func:`~repro.graphs.pagerank.pagerank`.
    personalization:
        Either an integer array of seed vertices (one one-hot column
        per seed) or an ``(n, B)`` array of non-negative columns
        (normalised to sum to 1).
    damping, tol, max_iter, nt, device:
        As in :func:`~repro.graphs.pagerank.pagerank`; ``tol`` is the
        per-column L1 convergence threshold and iteration stops when
        **every** column has converged.

    Returns ``(R, iterations)`` where ``R`` is ``(n, B)`` and every
    column sums to 1.  With a single uniform personalization column
    this computes exactly :func:`~repro.graphs.pagerank.pagerank`'s
    iterate (same fold, per column).
    """
    if not (0.0 < damping < 1.0):
        raise ShapeError(f"damping must be in (0, 1), got {damping}")
    P, dangling, n = _normalized_transition(matrix)
    if n == 0:
        return np.zeros((0, 1)), 0
    V = _personalization_block(personalization, n)
    B = V.shape[1]
    op = TileSpMM(P, nt=nt, device=device)

    R = V.copy()
    it = 0
    for it in range(1, max_iter + 1):
        spread = op.multiply_block(R, output="dense",
                                   tag=f"pr_iter={it}")
        dangling_mass = R[dangling].sum(axis=0)
        R_new = damping * (spread + dangling_mass[None, :] * V) \
            + (1.0 - damping) * V
        delta = np.abs(R_new - R).sum(axis=0)
        R = R_new
        if float(delta.max()) < tol:
            break
    return R / R.sum(axis=0), it


def label_propagation(matrix, seeds,
                      max_iter: int = 100, nt: int = 16,
                      device: Optional[Device] = None,
                      ) -> Tuple[np.ndarray, int]:
    """Semi-supervised label spreading through one SpMM per iteration.

    Parameters
    ----------
    matrix:
        Square adjacency (``A[i, j]`` = edge ``j -> i``): label mass
        flows along edges from ``j`` to ``i``.
    seeds:
        Length-``n`` integer array: label id per seeded vertex, ``-1``
        for unlabelled.  Labels are re-indexed densely into the block's
        columns.
    max_iter, nt, device:
        Iteration cap and the SpMM engine's tile size / device.

    The seed rows are clamped back to their one-hot rows after every
    multiply (the hard-clamp variant), and iteration stops as soon as
    the per-vertex ``argmax`` assignment is stable.  Returns
    ``(labels, iterations)``; vertices no label mass ever reaches keep
    ``-1``.
    """
    P, _dangling, n = _normalized_transition(matrix)
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.shape != (n,):
        raise ShapeError(f"seeds must be a length-{n} label array, "
                         f"got shape {seeds.shape}")
    seeded = np.flatnonzero(seeds >= 0)
    if seeded.size == 0:
        raise ShapeError("label propagation needs at least one seed")
    label_ids = np.unique(seeds[seeded])
    L = len(label_ids)
    col_of = {int(lab): j for j, lab in enumerate(label_ids)}

    Y = np.zeros((n, L), dtype=np.float64)
    for v in seeded:
        Y[v, col_of[int(seeds[v])]] = 1.0
    clamp = Y[seeded].copy()

    op = TileSpMM(P, nt=nt, device=device)
    reached = Y.any(axis=1)
    labels = np.where(reached, np.argmax(Y, axis=1), -1)
    it = 0
    for it in range(1, max_iter + 1):
        Y = op.multiply_block(Y, output="dense", tag=f"lp_iter={it}")
        Y[seeded] = clamp
        reached = Y.any(axis=1)
        new_labels = np.where(reached, np.argmax(Y, axis=1), -1)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    out = np.where(labels >= 0, label_ids[np.maximum(labels, 0)], -1)
    return out, it
