"""PageRank over the tiled SpMV path.

PageRank's iterate is dense (every vertex holds rank mass), so this is
the SpMV regime the TileSpMV baseline targets — including it exercises
the dense-vector path of the tiled kernels and gives the benchmark
suite a dense-iterate contrast to BFS's sparse frontiers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.spmspv import TileSpMSpV
from ..errors import ShapeError
from ..gpusim import Device

__all__ = ["pagerank"]


def pagerank(matrix, damping: float = 0.85, tol: float = 1e-10,
             max_iter: int = 200, nt: int = 16,
             device: Optional[Device] = None
             ) -> Tuple[np.ndarray, int]:
    """Power-iteration PageRank.

    Edge convention matches the library (``A[i, j]`` is ``j -> i``), so
    one iterate is ``r' = d * A D^{-1} r + (1 - d)/n`` with ``D`` the
    diagonal of *column weight sums* (total out-edge weight per
    vertex); dangling mass is redistributed uniformly.

    Edge weights are respected: vertex ``j`` spreads its rank to its
    out-neighbours proportionally to ``A[i, j]``, matching
    ``networkx.pagerank`` on weighted digraphs.  The matrix is
    canonicalized first, so duplicate COO entries merge into one edge
    (instead of inflating the degree) and explicit-zero edges do not
    make a dangling vertex look non-dangling.

    Returns ``(ranks, iterations)``; ``ranks`` sums to 1.
    """
    from ..formats.base import SparseMatrix
    from ..formats.coo import COOMatrix

    if not (0.0 < damping < 1.0):
        raise ShapeError(f"damping must be in (0, 1), got {damping}")
    if isinstance(matrix, SparseMatrix):
        coo = matrix.to_coo()
    else:
        coo = COOMatrix.from_dense(np.asarray(matrix))
    if coo.shape[0] != coo.shape[1]:
        raise ShapeError(f"pagerank requires a square matrix, "
                         f"got {coo.shape}")
    n = coo.shape[0]
    if n == 0:
        return np.zeros(0), 0

    coo = coo.canonicalize().drop_zeros()
    out_weight = np.zeros(n, dtype=np.float64)
    np.add.at(out_weight, coo.col, coo.val.astype(np.float64))
    dangling = out_weight == 0
    inv_weight = np.where(dangling, 0.0,
                          1.0 / np.where(dangling, 1.0, out_weight))
    # column-normalised transition matrix P = A D^{-1}
    P = COOMatrix(coo.shape, coo.row, coo.col,
                  coo.val * inv_weight[coo.col])
    op = TileSpMSpV(P, nt=nt, device=device)

    r = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for it in range(1, max_iter + 1):
        spread = op.multiply(r, output="dense")
        dangling_mass = r[dangling].sum() / n
        r_new = damping * (spread + dangling_mass) + teleport
        delta = np.abs(r_new - r).sum()
        r = r_new
        if delta < tol:
            break
    return r / r.sum(), it
