"""Single-source shortest paths via (min, +) SpMSpV relaxation.

Bellman-Ford in its algebraic form: each round relaxes
``dist' = dist (min.+) A x`` where ``x`` carries only the vertices
whose distance improved last round — the sparse-frontier pattern
TileSpMSpV accelerates (and the one the MIN_PLUS semiring plumbing
exists for).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.spmspv import TileSpMSpV
from ..errors import ShapeError
from ..gpusim import Device
from ..semiring import MIN_PLUS
from ..vectors.sparse_vector import SparseVector

__all__ = ["sssp"]


def sssp(matrix, source: int, nt: int = 16,
         device: Optional[Device] = None,
         max_rounds: Optional[int] = None) -> np.ndarray:
    """Shortest-path distances from ``source``.

    Parameters
    ----------
    matrix:
        Square weighted adjacency: ``A[i, j]`` is the weight of edge
        ``j -> i``; weights must be non-negative (Bellman-Ford with
        negative edges terminates but the round cap then matters).
    source:
        Start vertex.
    nt, device:
        Forwarded to the TileSpMSpV operator.
    max_rounds:
        Cap on relaxation rounds (default n-1, the Bellman-Ford bound).

    Returns
    -------
    ``float64[n]`` distances; unreachable vertices hold ``inf``.
    """
    from ..formats.base import SparseMatrix
    from ..formats.coo import COOMatrix

    if isinstance(matrix, SparseMatrix):
        coo = matrix.to_coo()
    else:
        coo = COOMatrix.from_dense(np.asarray(matrix))
    if coo.shape[0] != coo.shape[1]:
        raise ShapeError(f"sssp requires a square matrix, got {coo.shape}")
    n = coo.shape[0]
    if not (0 <= source < n):
        raise ShapeError(f"source {source} out of range for n={n}")

    op = TileSpMSpV(coo, nt=nt, semiring=MIN_PLUS, device=device)
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = SparseVector(n, np.array([source]), np.array([0.0]))
    cap = max_rounds if max_rounds is not None else max(1, n - 1)
    for _ in range(cap):
        y = op.multiply(frontier)
        # exact strict improvement: an absolute slack would make
        # convergence scale-dependent (legitimately small improvements
        # on large-weight graphs would be dropped); termination is
        # still guaranteed because each vertex's distance can only
        # strictly decrease, and the round cap bounds the loop anyway
        improved = y.indices[y.values < dist[y.indices]]
        if len(improved) == 0:
            break
        new_dist = y.to_dense()[improved]
        dist[improved] = new_dist
        frontier = SparseVector(n, improved, new_dist)
    return dist
