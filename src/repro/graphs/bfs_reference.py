"""Reference CPU BFS — the independent correctness oracle.

A plain level-synchronous BFS over CSR with no tiling, no bitmasks and
no cost model.  Every BFS implementation in the library (TileBFS and
the three baselines) is tested against this and against networkx.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..formats.csc import CSCMatrix

__all__ = ["bfs_levels"]


def bfs_levels(matrix, source: int) -> np.ndarray:
    """BFS depths from ``source``; ``-1`` marks unreachable vertices.

    Follows the SpMSpV edge convention ``y = A x``: an entry
    ``A[i, j]`` is the edge ``j -> i``, so the out-neighbours of ``j``
    are column ``j``.
    """
    from ..formats.base import SparseMatrix
    from ..formats.coo import COOMatrix

    if isinstance(matrix, SparseMatrix):
        csc = matrix.to_csc()
    else:
        csc = COOMatrix.from_dense(np.asarray(matrix)).to_csc()
    if csc.shape[0] != csc.shape[1]:
        raise ShapeError(f"BFS requires a square matrix, got {csc.shape}")
    n = csc.shape[0]
    if not (0 <= source < n):
        raise ShapeError(f"source {source} out of range for n={n}")

    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while len(frontier):
        depth += 1
        rows, _, _ = csc.gather_columns(frontier)
        new = np.unique(rows)
        new = new[levels[new] < 0]
        if len(new) == 0:
            break
        levels[new] = depth
        frontier = new
    return levels


def _validate_csc(csc: CSCMatrix) -> None:  # pragma: no cover - helper
    csc.validate()
