"""Reverse Cuthill-McKee ordering built on TileBFS levels.

RCM is the third application the paper's §1 motivates ("reverse
Cuthill-McKee (RCM) ordering can be accelerated by fast SpMSpV",
citing Azad et al., IPDPS '17).  The algorithm is BFS-shaped: pick a
pseudo-peripheral start vertex (two BFS sweeps), then emit vertices
level by level in increasing-degree order and reverse the result —
so the level structure comes straight from :class:`~repro.core.TileBFS`
and RCM doubles as an integration test of it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.tilebfs import TileBFS
from ..errors import ShapeError
from ..gpusim import Device

__all__ = ["rcm_ordering", "bandwidth"]


def rcm_ordering(matrix, start: Optional[int] = None,
                 nt: Optional[int] = None,
                 device: Optional[Device] = None) -> np.ndarray:
    """Reverse Cuthill-McKee permutation of a symmetric pattern.

    Returns ``perm`` such that ``A[perm][:, perm]`` has (typically)
    much smaller bandwidth.  Disconnected components are ordered one
    after another, each from its own pseudo-peripheral vertex.

    Parameters
    ----------
    matrix:
        Square symmetric sparse pattern.
    start:
        Optional start vertex; ``None`` picks a pseudo-peripheral one
        per component via the standard double-BFS heuristic.
    nt, device:
        Forwarded to the underlying :class:`TileBFS`.
    """
    bfs = TileBFS(matrix, nt=nt, device=device)
    n = bfs.n
    degrees = _degrees(matrix, n)

    visited = np.zeros(n, dtype=bool)
    order = np.zeros(n, dtype=np.int64)
    pos = 0
    forced = start
    while pos < n:
        remaining = np.flatnonzero(~visited)
        if forced is not None:
            if not (0 <= forced < n):
                raise ShapeError(f"start {forced} out of range for n={n}")
            s = forced
            forced = None
        else:
            # lowest-degree unvisited vertex, then one BFS hop to a
            # far vertex = pseudo-peripheral pick
            s = int(remaining[np.argmin(degrees[remaining])])
            far = bfs.run(s)
            reach = np.flatnonzero(far.levels >= 0)
            deepest = reach[far.levels[reach] == far.levels[reach].max()]
            s = int(deepest[np.argmin(degrees[deepest])])
        res = bfs.run(s)
        comp = np.flatnonzero(res.levels >= 0)
        comp = comp[~visited[comp]]
        # emit level by level, increasing degree inside a level
        key = res.levels[comp] * (degrees.max() + 1) + degrees[comp]
        comp_sorted = comp[np.argsort(key, kind="stable")]
        order[pos: pos + len(comp_sorted)] = comp_sorted
        visited[comp_sorted] = True
        pos += len(comp_sorted)
    return order[::-1].copy()


def bandwidth(matrix, perm: Optional[np.ndarray] = None) -> int:
    """Matrix bandwidth ``max |i - j|`` over nonzeros, optionally under
    a permutation — the quantity RCM minimises."""
    from ..formats.base import SparseMatrix
    from ..formats.coo import COOMatrix

    if isinstance(matrix, SparseMatrix):
        coo = matrix.to_coo()
    else:
        coo = COOMatrix.from_dense(np.asarray(matrix))
    if coo.nnz == 0:
        return 0
    if perm is not None:
        inv = np.empty(len(perm), dtype=np.int64)
        inv[perm] = np.arange(len(perm))
        rows, cols = inv[coo.row], inv[coo.col]
    else:
        rows, cols = coo.row, coo.col
    return int(np.abs(rows - cols).max())


def _degrees(matrix, n: int) -> np.ndarray:
    from ..formats.base import SparseMatrix
    from ..formats.coo import COOMatrix

    if isinstance(matrix, SparseMatrix):
        coo = matrix.to_coo()
    else:
        coo = COOMatrix.from_dense(np.asarray(matrix))
    return np.bincount(coo.row, minlength=n).astype(np.int64)
