"""Graph algorithms built on the SpMSpV/BFS primitives.

The paper's §1 motivates SpMSpV with BFS (the paper's own TileBFS, in
:mod:`repro.core`), betweenness centrality and reverse Cuthill-McKee
ordering; those two live here, plus the further SpMSpV-shaped
algorithms the GraphBLAS literature it cites builds on the same
primitive — connected components, shortest paths, PageRank — and the
plain CPU BFS oracle used by the tests.
"""

from .bc import betweenness_centrality
from .bfs_reference import bfs_levels
from .components import connected_components
from .pagerank import pagerank
from .propagation import label_propagation, multi_pagerank
from .rcm import bandwidth, rcm_ordering
from .sssp import sssp
from .triangles import triangle_count, triangles_per_vertex

__all__ = ["bfs_levels", "betweenness_centrality", "rcm_ordering",
           "bandwidth", "connected_components", "pagerank",
           "multi_pagerank", "label_propagation", "sssp",
           "triangle_count", "triangles_per_vertex"]
