"""Betweenness centrality via SpMSpV (Brandes' algorithm in linear
algebra).

The paper's §1 names betweenness centrality among the graph algorithms
"accelerated by fast SpMSpV" (citing Solomonik et al., SC '17).  This
is the standard algebraic Brandes formulation: a forward sweep of
SpMSpV operations counts shortest paths level by level, a backward
sweep accumulates dependencies — every matrix-vector product goes
through :class:`~repro.core.TileSpMSpV`, so BC doubles as a heavyweight
integration test of the core operator.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.spmspv import TileSpMSpV
from ..errors import ShapeError
from ..gpusim import Device
from ..vectors.sparse_vector import SparseVector

__all__ = ["betweenness_centrality"]


def betweenness_centrality(matrix, sources: Optional[Sequence[int]] = None,
                           nt: int = 16,
                           device: Optional[Device] = None,
                           normalized: bool = True,
                           batch_size: int = 1,
                           directed: bool = False) -> np.ndarray:
    """Approximate (or exact) betweenness centrality of an undirected,
    unweighted graph.

    Parameters
    ----------
    matrix:
        Square adjacency pattern (assumed symmetric, as in the paper's
        BFS experiments).
    sources:
        Pivot vertices for the Brandes sweeps; ``None`` runs all
        vertices (exact BC, O(n * nnz) — keep graphs small).
    nt:
        Tile size for the underlying TileSpMSpV operators.
    device:
        Optional simulated GPU shared by all the SpMSpV launches.
    normalized:
        Divide by ``(n-1)(n-2)`` (the undirected-pair count).
    batch_size:
        Pivots advanced per batched SpMSpV launch.  With
        ``batch_size > 1`` the forward and backward sweeps of a group
        of pivots run in lockstep through
        :meth:`~repro.core.TileSpMSpV.multiply_batch`, amortising the
        tile-metadata scan (the MS-BFS idea applied to Brandes).
        Batched mode requires an undirected graph.
    directed:
        Treat the matrix as a directed adjacency (``A[i, j]`` = edge
        ``j -> i``): the backward dependency sweep then runs through
        :meth:`~repro.core.TileSpMSpV.multiply_transpose` instead of
        relying on symmetry.

    Returns
    -------
    ``float64[n]`` centrality scores.
    """
    op = TileSpMSpV(matrix, nt=nt, device=device)
    n = op.shape[0]
    if op.shape[0] != op.shape[1]:
        raise ShapeError(f"BC requires a square matrix, got {op.shape}")
    if batch_size < 1:
        raise ShapeError(f"batch_size must be >= 1, got {batch_size}")
    if directed and batch_size > 1:
        raise ShapeError(
            "batched Brandes is only implemented for undirected graphs; "
            "use batch_size=1 with directed=True"
        )
    if sources is None:
        sources = range(n)
    sources = list(sources)
    for s in sources:
        if not (0 <= s < n):
            raise ShapeError(f"source {s} out of range for n={n}")

    bc = np.zeros(n, dtype=np.float64)
    if batch_size == 1:
        for s in sources:
            bc += _brandes_sweep(op, s, directed=directed)
    else:
        for lo in range(0, len(sources), batch_size):
            bc += _brandes_sweep_batched(op, sources[lo:lo + batch_size])

    if normalized and n > 2:
        bc /= (n - 1) * (n - 2)
    return bc


def _brandes_sweep_batched(op: TileSpMSpV,
                           pivots: Sequence[int]) -> np.ndarray:
    """A group of Brandes pivots advanced in lockstep.

    Every round batches the *active* pivots' frontiers into one
    :meth:`multiply_batch` launch; pivots whose traversal has finished
    drop out.  The backward sweeps batch the same way, from each
    pivot's own maximum depth downward.  Numerically identical to
    running :func:`_brandes_sweep` per pivot (tests assert this).
    """
    n = op.shape[0]
    k = len(pivots)
    sigma = np.zeros((k, n), dtype=np.float64)
    depth_of = np.full((k, n), -1, dtype=np.int64)
    frontiers: list = [[] for _ in range(k)]
    for b, s in enumerate(pivots):
        sigma[b, s] = 1.0
        depth_of[b, s] = 0
        frontiers[b].append(SparseVector(n, np.array([s]),
                                         np.array([1.0])))

    # forward: batch the current frontier of every unfinished pivot
    active = list(range(k))
    depth = 0
    while active:
        depth += 1
        ys = op.multiply_batch([frontiers[b][-1] for b in active])
        still = []
        for y, b in zip(ys, active):
            new_mask = depth_of[b, y.indices] < 0
            idx = y.indices[new_mask]
            if len(idx) == 0:
                continue
            depth_of[b, idx] = depth
            sigma[b, idx] = y.values[new_mask]
            frontiers[b].append(SparseVector(n, idx,
                                             y.values[new_mask]))
            still.append(b)
        active = still

    # backward: batch pivots that still have depth d to process
    delta = np.zeros((k, n), dtype=np.float64)
    max_depth = max(len(f) - 1 for f in frontiers)
    for d in range(max_depth, 0, -1):
        ready = [b for b in range(k) if len(frontiers[b]) - 1 >= d]
        if not ready:
            continue
        xs = []
        for b in ready:
            w = frontiers[b][d]
            coeff = (1.0 + delta[b, w.indices]) / sigma[b, w.indices]
            xs.append(SparseVector(n, w.indices, coeff))
        ys = op.multiply_batch(xs)
        for y, b in zip(ys, ready):
            parents = frontiers[b][d - 1].indices
            contrib = np.zeros(n, dtype=np.float64)
            contrib[y.indices] = y.values
            delta[b, parents] += sigma[b, parents] * contrib[parents]

    for b, s in enumerate(pivots):
        delta[b, s] = 0.0
    return delta.sum(axis=0)


def _brandes_sweep(op: TileSpMSpV, source: int,
                   directed: bool = False) -> np.ndarray:
    """One Brandes pivot: forward path counting + backward dependency
    accumulation, all through SpMSpV.  For directed graphs the backward
    sweep propagates against edge direction via ``A^T``."""
    n = op.shape[0]
    sigma = np.zeros(n, dtype=np.float64)    # shortest-path counts
    sigma[source] = 1.0
    depth_of = np.full(n, -1, dtype=np.int64)
    depth_of[source] = 0

    frontiers = [SparseVector(n, np.array([source]),
                              np.array([1.0]))]
    # forward sweep: sigma_{d+1} = (A sigma-frontier) masked to new
    depth = 0
    while True:
        y = op.multiply(frontiers[-1])
        new_mask = depth_of[y.indices] < 0
        idx = y.indices[new_mask]
        if len(idx) == 0:
            break
        depth += 1
        depth_of[idx] = depth
        sigma[idx] = y.values[new_mask]
        frontiers.append(SparseVector(n, idx, y.values[new_mask]))

    # backward sweep: delta_v = sum_{w child of v} sigma_v/sigma_w (1+delta_w)
    delta = np.zeros(n, dtype=np.float64)
    for d in range(depth, 0, -1):
        w = frontiers[d]
        coeff = (1.0 + delta[w.indices]) / sigma[w.indices]
        if directed:
            y = op.multiply_transpose(SparseVector(n, w.indices, coeff))
        else:
            # A symmetric: A itself propagates child -> parent
            y = op.multiply(SparseVector(n, w.indices, coeff))
        parents = frontiers[d - 1].indices
        contrib = np.zeros(n, dtype=np.float64)
        contrib[y.indices] = y.values
        delta[parents] += sigma[parents] * contrib[parents]

    delta[source] = 0.0
    return delta
