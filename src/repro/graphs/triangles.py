"""Triangle counting via batched SpMSpV.

``trace(A^3) / 6`` counts triangles in an undirected simple graph, and
each diagonal entry of ``A^3`` is ``a_v^T (A a_v)`` — one SpMSpV per
vertex against its own adjacency column, then a sparse dot product.
The per-vertex multiplies batch naturally through
:meth:`~repro.core.TileSpMSpV.multiply_batch`, making this a heavyweight
exerciser of the batched kernel (and a useful analytic in its own
right).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.spmspv import TileSpMSpV
from ..errors import ShapeError
from ..gpusim import Device
from ..vectors.sparse_vector import SparseVector

__all__ = ["triangle_count", "triangles_per_vertex"]


def triangles_per_vertex(matrix, nt: int = 16,
                         device: Optional[Device] = None,
                         batch_size: int = 32) -> np.ndarray:
    """Number of triangles through each vertex.

    Parameters
    ----------
    matrix:
        Square symmetric 0/1 adjacency pattern without self-loops
        (values are ignored; the pattern is what counts).
    nt, device:
        Forwarded to the TileSpMSpV operator.
    batch_size:
        Vertices processed per batched launch.

    Returns
    -------
    ``int64[n]``: ``t[v]`` = triangles containing ``v``; the global
    count is ``t.sum() / 3``.
    """
    from ..formats.base import SparseMatrix
    from ..formats.coo import COOMatrix

    if isinstance(matrix, SparseMatrix):
        coo = matrix.to_coo()
    else:
        coo = COOMatrix.from_dense(np.asarray(matrix))
    if coo.shape[0] != coo.shape[1]:
        raise ShapeError(
            f"triangle counting requires a square matrix, got {coo.shape}"
        )
    if batch_size < 1:
        raise ShapeError(f"batch_size must be >= 1, got {batch_size}")
    n = coo.shape[0]
    # force pattern values and drop any self-loops
    pattern = COOMatrix(coo.shape, coo.row, coo.col,
                        np.ones(coo.nnz)).without_diagonal()
    csc = pattern.to_csc()
    op = TileSpMSpV(pattern, nt=nt, device=device)

    counts = np.zeros(n, dtype=np.int64)
    vertices = [v for v in range(n)
                if csc.indptr[v + 1] > csc.indptr[v]]
    for lo in range(0, len(vertices), batch_size):
        group = vertices[lo:lo + batch_size]
        cols = []
        for v in group:
            rows_v, vals_v = csc.col_slice(v)
            cols.append(SparseVector(n, rows_v.copy(), vals_v.copy()))
        ys = op.multiply_batch(cols)
        for v, a_v, y in zip(group, cols, ys):
            # t_v = a_v . (A a_v) / 2  (each triangle counted twice)
            wedge = y.ewise_mult(SparseVector(n, a_v.indices,
                                              a_v.values))
            counts[v] = int(round(wedge.values.sum())) // 2
    return counts


def triangle_count(matrix, nt: int = 16,
                   device: Optional[Device] = None,
                   batch_size: int = 32) -> int:
    """Total number of triangles in the graph."""
    return int(triangles_per_vertex(matrix, nt=nt, device=device,
                                    batch_size=batch_size).sum() // 3)
