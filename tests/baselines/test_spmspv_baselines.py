"""Correctness + cost-profile tests for the SpMSpV baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (CombBLASSpMSpV, CuSparseBSRMV, TileSpMV,
                             spmspv_colwise, spmspv_rowwise)
from repro.core import TileSpMSpV
from repro.errors import ShapeError
from repro.formats import COOMatrix, to_csc, to_csr
from repro.gpusim import Device, RTX3090
from repro.vectors import SparseVector, random_sparse_vector

from ..conftest import random_dense


def cases():
    return st.tuples(st.integers(1, 60), st.integers(1, 60),
                     st.integers(0, 10**6), st.floats(0.0, 0.6))


class TestAllAgree:
    @given(cases())
    @settings(max_examples=40, deadline=None)
    def test_every_algorithm_matches_dense(self, params):
        m, n, seed, xdens = params
        d = random_dense(m, n, 0.2, seed=seed)
        coo = COOMatrix.from_dense(d)
        x = random_sparse_vector(n, xdens, seed=seed + 1)
        ref = d @ x.to_dense()
        results = {
            "rowwise": spmspv_rowwise(to_csr(coo), x),
            "colwise": spmspv_colwise(to_csc(coo), x),
            "tilespmv": TileSpMV(coo, nt=4).multiply(x),
            "bsr": CuSparseBSRMV(coo, 4).multiply(x),
            "combblas": CombBLASSpMSpV(coo).multiply(x),
            "tile": TileSpMSpV(coo, nt=4).multiply(x),
        }
        for name, y in results.items():
            assert np.allclose(y.to_dense(), ref), name


class TestNaive:
    def test_rowwise_shape_error(self):
        with pytest.raises(ShapeError):
            spmspv_rowwise(to_csr(COOMatrix.empty((3, 4))),
                           SparseVector.empty(5))

    def test_colwise_shape_error(self):
        with pytest.raises(ShapeError):
            spmspv_colwise(to_csc(COOMatrix.empty((3, 4))),
                           SparseVector.empty(5))

    def test_rowwise_work_independent_of_x_sparsity(self):
        """Algorithm 1 probes every stored entry no matter how sparse
        x is — the inefficiency §2.1 describes."""
        d = random_dense(50, 50, 0.2, seed=1)
        csr = to_csr(COOMatrix.from_dense(d))
        reads = {}
        for s in (0.5, 0.01):
            dev = Device(RTX3090)
            spmspv_rowwise(csr, random_sparse_vector(50, s), device=dev)
            reads[s] = dev.timeline[0].counters.random_read_count
        assert reads[0.5] == reads[0.01] == csr.nnz

    def test_colwise_work_scales_with_x(self):
        d = random_dense(50, 50, 0.2, seed=2)
        csc = to_csc(COOMatrix.from_dense(d))
        flops = {}
        for s in (0.5, 0.02):
            dev = Device(RTX3090)
            spmspv_colwise(csc, random_sparse_vector(50, s), device=dev)
            flops[s] = dev.timeline[0].counters.flops
        assert flops[0.02] < flops[0.5]


class TestTileSpMV:
    def test_dense_vector_input(self):
        d = random_dense(20, 20, 0.3, seed=3)
        x = np.random.default_rng(4).random(20)
        y = TileSpMV(d, nt=4).multiply(x)
        assert np.allclose(y.to_dense(), d @ x)

    def test_dense_vector_shape_error(self):
        with pytest.raises(ShapeError):
            TileSpMV(np.eye(4), nt=4).multiply(np.zeros(5))

    def test_sparse_vector_shape_error(self):
        with pytest.raises(ShapeError):
            TileSpMV(np.eye(4), nt=4).multiply(SparseVector.empty(5))

    def test_densify_cost_charged_for_sparse_input(self):
        dev = Device(RTX3090)
        d = random_dense(40, 40, 0.2, seed=5)
        TileSpMV(d, nt=4, device=dev).multiply(
            random_sparse_vector(40, 0.1))
        assert [r.name for r in dev.timeline][:1] == ["tilespmv_densify_x"]

    def test_processes_all_tiles_regardless_of_x(self):
        """No x_ptr skipping: flops == 2*nnz always."""
        d = random_dense(60, 60, 0.15, seed=6)
        op = TileSpMV(d, nt=4)
        for s in (0.3, 0.01):
            dev = Device(RTX3090)
            op.device = dev
            op.multiply(random_sparse_vector(60, s))
            spmv_rec = [r for r in dev.timeline if r.name == "tilespmv"][0]
            assert spmv_rec.counters.flops == 2.0 * op.tiled.nnz


class TestCuSparseBSR:
    def test_work_counts_block_zeros(self):
        d = np.zeros((32, 32))
        d[0, 0] = 1.0
        dev = Device(RTX3090)
        op = CuSparseBSRMV(d, blocksize=16, device=dev)
        op.multiply(SparseVector(32, np.array([0]), np.array([1.0])))
        rec = [r for r in dev.timeline if r.name == "bsrmv"][0]
        # one 16x16 dense block => 512 flops for a single true nonzero
        assert rec.counters.flops == 2.0 * 16 * 16

    def test_dense_vector_input(self):
        d = random_dense(20, 20, 0.3, seed=7)
        x = np.random.default_rng(8).random(20)
        assert np.allclose(CuSparseBSRMV(d, 4).multiply(x).to_dense(),
                           d @ x)

    def test_shape_errors(self):
        op = CuSparseBSRMV(np.eye(8), 4)
        with pytest.raises(ShapeError):
            op.multiply(SparseVector.empty(9))
        with pytest.raises(ShapeError):
            op.multiply(np.zeros(9))


class TestCombBLAS:
    def test_bucket_rows_validation(self):
        with pytest.raises(ShapeError):
            CombBLASSpMSpV(np.eye(4), bucket_rows=0)

    def test_shape_error(self):
        with pytest.raises(ShapeError):
            CombBLASSpMSpV(np.eye(4)).multiply(SparseVector.empty(5))

    def test_phases_submitted(self):
        dev = Device(RTX3090)
        d = random_dense(30, 30, 0.3, seed=9)
        CombBLASSpMSpV(d, device=dev).multiply(
            random_sparse_vector(30, 0.2))
        names = [r.name for r in dev.timeline]
        assert names == ["combblas_setup", "combblas_bucket_count",
                         "combblas_gather_bucket", "combblas_sort",
                         "combblas_merge", "combblas_compact"]

    def test_small_buckets_still_correct(self):
        d = random_dense(40, 40, 0.25, seed=10)
        x = random_sparse_vector(40, 0.3, seed=11)
        y = CombBLASSpMSpV(d, bucket_rows=8).multiply(x)
        assert np.allclose(y.to_dense(), d @ x.to_dense())

    def test_work_scales_with_x(self):
        d = random_dense(60, 60, 0.2, seed=12)
        op = CombBLASSpMSpV(d)
        t = {}
        for s in (0.5, 0.02):
            dev = Device(RTX3090)
            op.device = dev
            op.multiply(random_sparse_vector(60, s))
            t[s] = dev.elapsed_ms
        assert t[0.02] < t[0.5]


class TestPaperShape:
    """The qualitative claims of Figure 6 on a structured matrix."""

    @pytest.fixture(scope="class")
    def ops(self):
        from repro.matrices import banded

        coo = banded(30_000, bandwidth=4, seed=1)
        return coo, {
            "tile": TileSpMSpV(coo, nt=16),
            "tilespmv": TileSpMV(coo, nt=16),
            "bsr": CuSparseBSRMV(coo, 16),
            "combblas": CombBLASSpMSpV(coo),
        }

    def times(self, ops, sparsity):
        coo, algs = ops
        out = {}
        for name, alg in algs.items():
            dev = Device(RTX3090)
            alg.device = dev
            alg.multiply(random_sparse_vector(coo.shape[1], sparsity))
            out[name] = dev.elapsed_ms
        return out

    @pytest.mark.parametrize("sparsity", [0.1, 0.01, 0.001])
    def test_tilespmspv_wins(self, ops, sparsity):
        t = self.times(ops, sparsity)
        assert t["tile"] < t["tilespmv"]
        assert t["tile"] < t["bsr"]
        assert t["tile"] < t["combblas"]

    def test_gap_to_spmv_widens_with_sparsity(self, ops):
        """Fig. 6 trend: the TileSpMV gap grows as x gets sparser."""
        t_dense = self.times(ops, 0.1)
        t_sparse = self.times(ops, 0.001)
        assert (t_sparse["tilespmv"] / t_sparse["tile"]
                > t_dense["tilespmv"] / t_dense["tile"])
