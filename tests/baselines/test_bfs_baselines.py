"""Correctness + structural tests for the three BFS baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EnterpriseBFS, GSwitchBFS, GunrockBFS
from repro.baselines.enterprise import CLASS_BOUNDS
from repro.core import TileBFS
from repro.errors import ShapeError
from repro.formats import COOMatrix
from repro.gpusim import Device, RTX3090
from repro.matrices import fem_like, mesh2d, rmat

from ..conftest import nx_levels, random_graph_coo

ALL_BASELINES = [GunrockBFS, GSwitchBFS, EnterpriseBFS]


class TestCorrectness:
    @pytest.mark.parametrize("cls", ALL_BASELINES,
                             ids=lambda c: c.__name__)
    def test_matches_networkx(self, cls):
        coo = random_graph_coo(180, 4.0, seed=1)
        res = cls(coo).run(0)
        assert np.array_equal(res.levels, nx_levels(coo, 0))

    @pytest.mark.parametrize("cls", ALL_BASELINES,
                             ids=lambda c: c.__name__)
    def test_matches_tilebfs(self, cls):
        coo = rmat(9, edge_factor=6, seed=2)
        ours = TileBFS(coo, nt=16).run(0).levels
        theirs = cls(coo).run(0).levels
        assert np.array_equal(ours, theirs)

    @given(st.integers(2, 100), st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_property_all_agree(self, n, seed):
        coo = random_graph_coo(n, 4.0, seed)
        src = seed % n
        ref = nx_levels(coo, src)
        for cls in ALL_BASELINES:
            assert np.array_equal(cls(coo).run(src).levels, ref), \
                cls.__name__

    @pytest.mark.parametrize("cls", ALL_BASELINES,
                             ids=lambda c: c.__name__)
    def test_disconnected(self, cls):
        coo = COOMatrix((6, 6), np.array([0, 1]), np.array([1, 0]))
        res = cls(coo).run(0)
        assert res.levels.tolist() == [0, 1, -1, -1, -1, -1]

    @pytest.mark.parametrize("cls", ALL_BASELINES,
                             ids=lambda c: c.__name__)
    def test_source_out_of_range(self, cls):
        bfs = cls(COOMatrix.empty((4, 4)))
        with pytest.raises(ShapeError):
            bfs.run(9)

    @pytest.mark.parametrize("cls", ALL_BASELINES,
                             ids=lambda c: c.__name__)
    def test_nonsquare_rejected(self, cls):
        with pytest.raises(ShapeError):
            cls(COOMatrix.empty((4, 5)))

    @pytest.mark.parametrize("cls", ALL_BASELINES,
                             ids=lambda c: c.__name__)
    def test_max_depth(self, cls):
        coo = random_graph_coo(100, 4.0, seed=3)
        res = cls(coo).run(0, max_depth=2)
        assert res.levels.max() <= 2


class TestGunrockStructure:
    def test_direction_switching_happens(self):
        """On a low-diameter graph the frontier explodes and Gunrock
        should go bottom-up at least once."""
        coo = rmat(10, edge_factor=12, seed=4)
        dev = Device(RTX3090)
        res = GunrockBFS(coo, device=dev).run(0)
        kernels = {it.kernel for it in res.iterations}
        assert "gunrock_pull" in kernels

    def test_push_only_when_disabled(self):
        coo = rmat(9, edge_factor=10, seed=5)
        res = GunrockBFS(coo, direction_optimized=False).run(0)
        assert {it.kernel for it in res.iterations} == {"gunrock_push"}

    def test_two_launches_per_push_iteration(self):
        coo = random_graph_coo(100, 3.0, seed=6)
        dev = Device(RTX3090)
        res = GunrockBFS(coo, direction_optimized=False,
                         device=dev).run(0)
        assert len(dev.timeline) == 2 * len(res.iterations)


class TestGSwitchStructure:
    def test_sampling_kernel_every_iteration(self):
        coo = random_graph_coo(100, 3.0, seed=7)
        dev = Device(RTX3090)
        res = GSwitchBFS(coo, device=dev).run(0)
        samples = [r for r in dev.timeline if r.name == "gswitch_sample"]
        assert len(samples) == len(res.iterations)

    def test_warmup_probes_first_iterations(self):
        from repro.baselines.gswitch import WARMUP_ITERATIONS

        coo = mesh2d(15, seed=8)
        dev = Device(RTX3090)
        res = GSwitchBFS(coo, device=dev).run(0)
        probes = [r for r in dev.timeline if r.name == "gswitch_probe"]
        assert len(probes) == min(WARMUP_ITERATIONS, len(res.iterations))


class TestEnterpriseStructure:
    def test_class_bounds_from_paper(self):
        assert CLASS_BOUNDS == (32, 256, 65536)

    def test_classify_kernel_every_iteration(self):
        coo = random_graph_coo(100, 3.0, seed=9)
        dev = Device(RTX3090)
        res = EnterpriseBFS(coo, device=dev).run(0)
        classifies = [r for r in dev.timeline
                      if r.name == "enterprise_classify"]
        assert len(classifies) == len(res.iterations)

    def test_no_atomics_in_expand(self):
        """Enterprise's status-array push exploits benign races."""
        coo = random_graph_coo(100, 3.0, seed=10)
        dev = Device(RTX3090)
        EnterpriseBFS(coo, device=dev).run(0)
        for rec in dev.timeline:
            if rec.name == "enterprise_expand":
                assert rec.counters.atomic_ops == 0

    def test_perfect_divergence(self):
        coo = random_graph_coo(100, 3.0, seed=11)
        dev = Device(RTX3090)
        EnterpriseBFS(coo, device=dev).run(0)
        for rec in dev.timeline:
            if rec.name == "enterprise_expand":
                assert rec.counters.divergence == 1.0


class TestPaperShape:
    def test_tilebfs_beats_baselines_on_fem(self):
        """Fig. 8 shape: on dense-tile FEM matrices TileBFS leads."""
        coo = fem_like(12_000, nnz_per_row=50, block=16, spread=0.004,
                       seed=12)
        times = {}
        for name, make in (("tile", lambda d: TileBFS(coo, device=d)),
                           ("gunrock", lambda d: GunrockBFS(coo, device=d)),
                           ("gswitch", lambda d: GSwitchBFS(coo, device=d))):
            dev = Device(RTX3090)
            times[name] = make(dev).run(0).simulated_ms
        assert times["tile"] < times["gunrock"]
        assert times["tile"] < times["gswitch"]
