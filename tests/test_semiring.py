"""Tests for the semiring abstractions (incl. algebraic axioms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring import (MAX_TIMES, MIN_PLUS, OR_AND, PLUS_TIMES,
                            Semiring)

NUMERIC_SEMIRINGS = [PLUS_TIMES, MIN_PLUS, MAX_TIMES]

finite = st.floats(min_value=0.001, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


class TestIdentities:
    @pytest.mark.parametrize("sr", NUMERIC_SEMIRINGS, ids=lambda s: s.name)
    @given(v=finite)
    @settings(max_examples=25)
    def test_add_identity(self, sr: Semiring, v):
        assert sr.add(v, sr.add_identity) == pytest.approx(v)

    @pytest.mark.parametrize("sr", NUMERIC_SEMIRINGS, ids=lambda s: s.name)
    @given(v=finite)
    @settings(max_examples=25)
    def test_mul_identity(self, sr: Semiring, v):
        assert sr.mul(v, sr.mul_identity) == pytest.approx(v)

    @pytest.mark.parametrize("sr", NUMERIC_SEMIRINGS, ids=lambda s: s.name)
    @given(v=finite)
    @settings(max_examples=25)
    def test_add_identity_absorbs_mul(self, sr: Semiring, v):
        """``add(x, mul(v, add_identity)) == x`` — the property the
        tiled kernels rely on so sentinel-filled vector-tile slots fold
        away harmlessly."""
        product = sr.mul(v, sr.add_identity)
        x = 5.0
        assert sr.add(x, product) == pytest.approx(x)

    def test_or_and_identities(self):
        a = np.uint64(0b1011)
        assert OR_AND.add(a, np.uint64(0)) == a
        assert OR_AND.mul(a, OR_AND.mul_identity) == a


class TestAxioms:
    @pytest.mark.parametrize("sr", NUMERIC_SEMIRINGS, ids=lambda s: s.name)
    @given(a=finite, b=finite, c=finite)
    @settings(max_examples=25)
    def test_add_commutative_associative(self, sr, a, b, c):
        assert sr.add(a, b) == pytest.approx(sr.add(b, a))
        assert sr.add(sr.add(a, b), c) == pytest.approx(
            sr.add(a, sr.add(b, c)))

    @pytest.mark.parametrize("sr", [PLUS_TIMES, MIN_PLUS],
                             ids=lambda s: s.name)
    @given(a=finite, b=finite, c=finite)
    @settings(max_examples=25)
    def test_mul_distributes_over_add(self, sr, a, b, c):
        lhs = sr.mul(a, sr.add(b, c))
        rhs = sr.add(sr.mul(a, b), sr.mul(a, c))
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestReduceSegments:
    def test_plus_times(self):
        out = PLUS_TIMES.reduce_segments(
            np.array([1.0, 2.0, 4.0]), np.array([1, 1, 0]), 2)
        assert out.tolist() == [4.0, 3.0]

    def test_min_plus_identity_fill(self):
        out = MIN_PLUS.reduce_segments(
            np.array([3.0]), np.array([1]), 3)
        assert np.isinf(out[0]) and out[1] == 3.0 and np.isinf(out[2])

    def test_empty(self):
        out = MAX_TIMES.reduce_segments(
            np.zeros(0), np.zeros(0, dtype=np.int64), 2)
        assert out.tolist() == [0.0, 0.0]


class TestIsIdentity:
    def test_plus_times_zero(self):
        mask = PLUS_TIMES.is_identity(np.array([0.0, 1.0, 0.0]))
        assert mask.tolist() == [True, False, True]

    def test_min_plus_inf(self):
        mask = MIN_PLUS.is_identity(np.array([np.inf, 2.0, -np.inf]))
        assert mask.tolist() == [True, False, False]

    def test_max_times(self):
        mask = MAX_TIMES.is_identity(np.array([0.0, 0.5]))
        assert mask.tolist() == [True, False]


class TestScatterMergeSignedZero:
    """The bincount fast path must stay bit-identical to ``np.add.at``
    in the presence of negative zeros (the first bug the differential
    verification harness caught; its shrunk repro ships in
    ``src/repro/verify/repros/scatter_merge_signed_zero.json``)."""

    @staticmethod
    def bits(a):
        return np.asarray(a, dtype=np.float64).view(np.uint64)

    def test_negative_zero_base_receiving_negative_zero(self):
        # minimal shrunk repro: -0.0 slot, one -0.0 addend; add.at
        # keeps -0.0, the old bincount path flipped it to +0.0
        out = np.array([-0.0])
        ref = out.copy()
        PLUS_TIMES.scatter_merge(out, np.array([0]), np.array([-0.0]))
        np.add.at(ref, np.array([0]), np.array([-0.0]))
        assert np.array_equal(self.bits(out), self.bits(ref))
        assert np.signbit(out[0])

    def test_untouched_negative_zero_slot_preserved(self):
        # the full-length `out += bincount` must not add +0.0 to an
        # untouched -0.0 slot
        out = np.array([0.0, -0.0, 0.0, 0.0])
        ref = out.copy()
        idx = np.array([0, 2, 3, 0])
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        PLUS_TIMES.scatter_merge(out, idx, vals)
        np.add.at(ref, idx, vals)
        assert np.array_equal(self.bits(out), self.bits(ref))
        assert np.signbit(ref[1]) and np.signbit(out[1])

    def test_fast_path_still_taken_for_plain_zeros(self):
        # dense update over a +0.0 base: bit-identical and still exact
        r = np.random.default_rng(99)
        idx = r.integers(0, 16, size=200)
        vals = r.standard_normal(200)
        vals[::7] = -0.0
        out = np.zeros(16)
        ref = np.zeros(16)
        PLUS_TIMES.scatter_merge(out, idx, vals)
        np.add.at(ref, idx, vals)
        assert np.array_equal(self.bits(out), self.bits(ref))
