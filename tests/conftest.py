"""Shared fixtures: deterministic random matrices, graphs, and oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COOMatrix


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_dense(m, n, density=0.1, seed=0):
    """Dense array with the given fraction of nonzeros (exact values)."""
    r = np.random.default_rng(seed)
    d = (r.random((m, n)) < density) * r.random((m, n))
    return d


def random_coo(m, n, density=0.1, seed=0) -> COOMatrix:
    return COOMatrix.from_dense(random_dense(m, n, density, seed))


def random_graph_coo(n, avg_degree=4.0, seed=0) -> COOMatrix:
    """Symmetric unit-weight graph adjacency."""
    r = np.random.default_rng(seed)
    n_edges = int(n * avg_degree / 2)
    rows = r.integers(0, n, n_edges)
    cols = r.integers(0, n, n_edges)
    keep = rows != cols
    return COOMatrix((n, n), rows[keep], cols[keep],
                     np.ones(keep.sum())).symmetrize()


def nx_graph_of(coo: COOMatrix):
    """networkx graph from a symmetric adjacency COO."""
    import networkx as nx

    G = nx.Graph()
    G.add_nodes_from(range(coo.shape[0]))
    G.add_edges_from(zip(coo.row.tolist(), coo.col.tolist()))
    return G


def nx_levels(coo: COOMatrix, source: int) -> np.ndarray:
    """BFS level oracle via networkx."""
    import networkx as nx

    G = nx_graph_of(coo)
    lengths = nx.single_source_shortest_path_length(G, source)
    out = np.full(coo.shape[0], -1, dtype=np.int64)
    for v, l in lengths.items():
        out[v] = l
    return out


@pytest.fixture
def small_coo():
    return random_coo(37, 53, density=0.12, seed=7)


@pytest.fixture
def square_coo():
    return random_coo(64, 64, density=0.1, seed=8)


@pytest.fixture
def graph_coo():
    return random_graph_coo(120, avg_degree=5.0, seed=9)
