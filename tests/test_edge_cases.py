"""Cross-cutting edge cases and failure injection.

Degenerate inputs (empty matrices/vectors/frontiers, single elements,
all-dense, all-empty) pushed through every public entry point, plus
misuse paths that must raise typed errors rather than corrupt state.
"""

import numpy as np
import pytest

from repro import (Device, RTX3090, SparseVector, TileBFS, TileSpMSpV,
                   random_sparse_vector)
from repro.baselines import (CombBLASSpMSpV, CuSparseBSRMV, EnterpriseBFS,
                             GSwitchBFS, GunrockBFS, TileSpMV,
                             spmspv_colwise, spmspv_rowwise)
from repro.errors import ReproError, ShapeError
from repro.formats import COOMatrix, to_csc, to_csr
from repro.tiles import BitVector, TiledMatrix, TiledVector


class TestEmptyEverything:
    def test_empty_matrix_empty_vector(self):
        op = TileSpMSpV(COOMatrix.empty((8, 8)), nt=4)
        y = op.multiply(SparseVector.empty(8))
        assert y.nnz == 0

    def test_all_baselines_empty_vector(self):
        coo = COOMatrix.empty((6, 6))
        x = SparseVector.empty(6)
        assert spmspv_rowwise(to_csr(coo), x).nnz == 0
        assert spmspv_colwise(to_csc(coo), x).nnz == 0
        assert TileSpMV(coo, nt=2).multiply(x).nnz == 0
        assert CuSparseBSRMV(coo, 2).multiply(x).nnz == 0
        assert CombBLASSpMSpV(coo).multiply(x).nnz == 0

    def test_1x1_matrix(self):
        coo = COOMatrix((1, 1), np.array([0]), np.array([0]),
                        np.array([3.0]))
        y = TileSpMSpV(coo, nt=2).multiply(
            SparseVector(1, np.array([0]), np.array([2.0])))
        assert y.to_dense().tolist() == [6.0]

    def test_single_vertex_bfs(self):
        coo = COOMatrix.empty((1, 1))
        for cls in (lambda: TileBFS(coo, nt=2), lambda: GunrockBFS(coo),
                    lambda: GSwitchBFS(coo), lambda: EnterpriseBFS(coo)):
            res = cls().run(0)
            assert res.levels.tolist() == [0]

    def test_vector_longer_than_matrix_rows(self):
        """Tall rectangular: y longer than x."""
        coo = COOMatrix((100, 2), np.array([99]), np.array([1]),
                        np.array([5.0]))
        y = TileSpMSpV(coo, nt=2).multiply(
            SparseVector(2, np.array([1]), np.array([1.0])))
        assert y.indices.tolist() == [99]


class TestDenseExtremes:
    def test_fully_dense_matrix(self):
        d = np.arange(1.0, 37.0).reshape(6, 6)
        x = random_sparse_vector(6, 1.0, seed=1)
        y = TileSpMSpV(d, nt=2).multiply(x)
        assert np.allclose(y.to_dense(), d @ x.to_dense())

    def test_single_dense_column(self):
        d = np.zeros((32, 32))
        d[:, 5] = np.arange(1.0, 33.0)
        y = TileSpMSpV(d, nt=16).multiply(
            SparseVector(32, np.array([5]), np.array([2.0])))
        assert np.allclose(y.to_dense(), d[:, 5] * 2.0)

    def test_single_dense_row(self):
        d = np.zeros((32, 32))
        d[7, :] = 1.0
        x = random_sparse_vector(32, 0.5, seed=2)
        y = TileSpMSpV(d, nt=16).multiply(x)
        assert y.indices.tolist() == [7]
        assert y.values[0] == pytest.approx(x.values.sum())


class TestNumericalEdge:
    def test_negative_values(self):
        d = np.array([[1.0, -2.0], [-3.0, 4.0]])
        x = SparseVector(2, np.array([0, 1]), np.array([-1.0, 0.5]))
        y = TileSpMSpV(d, nt=2).multiply(x)
        assert np.allclose(y.to_dense(), d @ x.to_dense())

    def test_tiny_values_preserved(self):
        coo = COOMatrix((2, 2), np.array([0]), np.array([0]),
                        np.array([1e-300]))
        y = TileSpMSpV(coo, nt=2).multiply(
            SparseVector(2, np.array([0]), np.array([1e-300])))
        # 1e-600 underflows to exact zero and is dropped: documented
        # sparse-output behaviour, not data corruption
        assert y.nnz == 0 or y.values[0] >= 0

    def test_large_values(self):
        coo = COOMatrix((2, 2), np.array([1]), np.array([0]),
                        np.array([1e150]))
        y = TileSpMSpV(coo, nt=2).multiply(
            SparseVector(2, np.array([0]), np.array([1e150])))
        assert y.to_dense()[1] == pytest.approx(1e300)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro.errors import (ConversionError, DeviceError,
                                  FormatError, IOFormatError, ShapeError,
                                  TileError)

        for err in (FormatError, ShapeError, TileError, ConversionError,
                    DeviceError, IOFormatError):
            assert issubclass(err, ReproError)

    def test_catching_base_class_works(self):
        with pytest.raises(ReproError):
            TileSpMSpV(np.eye(4), nt=5)
        with pytest.raises(ReproError):
            COOMatrix((2, 2), np.array([5]), np.array([0]))


class TestStateIsolation:
    def test_multiply_does_not_mutate_inputs(self):
        d = np.eye(8)
        op = TileSpMSpV(d, nt=4)
        x = SparseVector(8, np.array([1, 3]), np.array([2.0, 4.0]))
        idx_before = x.indices.copy()
        val_before = x.values.copy()
        op.multiply(x)
        op.multiply(x, mask=np.ones(8, dtype=bool))
        assert np.array_equal(x.indices, idx_before)
        assert np.array_equal(x.values, val_before)

    def test_bfs_rerun_is_deterministic(self):
        from .conftest import random_graph_coo

        coo = random_graph_coo(100, 4.0, seed=1)
        bfs = TileBFS(coo, nt=16, device=Device(RTX3090))
        a = bfs.run(0)
        b = bfs.run(0)
        assert np.array_equal(a.levels, b.levels)
        assert a.simulated_ms == pytest.approx(b.simulated_ms)

    def test_tiled_structures_not_shared_between_ops(self):
        # Operators given separate plan caches must not share tilings;
        # the default (shared) cache intentionally reuses them, and
        # tiled structures are never mutated after construction.
        from repro.runtime import PlanCache

        d = np.eye(8)
        op1 = TileSpMSpV(d, nt=4, plan_cache=PlanCache())
        op2 = TileSpMSpV(d, nt=4, plan_cache=PlanCache())
        assert op1.hybrid is not op2.hybrid
        op1.hybrid.tiled.values[:] = 99.0
        y = op2.multiply(SparseVector(8, np.array([0]),
                                      np.array([1.0])))
        assert y.values[0] == 1.0

    def test_default_cache_shares_plans(self):
        d = np.eye(8)
        op1 = TileSpMSpV(d, nt=4)
        op2 = TileSpMSpV(d, nt=4)
        assert op2.hybrid is op1.hybrid


class TestBitVectorTailSafety:
    @pytest.mark.parametrize("n", [1, 7, 63, 64, 65, 100])
    def test_invert_never_leaks_past_n(self, n):
        v = BitVector.zeros(n, 64)
        inv = v.invert()
        assert inv.count() == n
        inv.validate()

    def test_ops_preserve_validity(self):
        a = BitVector.from_indices(np.array([0, 9]), 10, 4)
        b = a.invert()
        for out in (a | b, a & b, a.andnot(b), b.invert()):
            out.validate()


class TestTiledVectorDegenerate:
    def test_length_one(self):
        tv = TiledVector.from_dense(np.array([5.0]), 4)
        assert tv.get(0) == 5.0
        assert tv.to_dense().tolist() == [5.0]

    def test_all_tiles_full(self):
        x = np.arange(1.0, 17.0)
        tv = TiledVector.from_dense(x, 4)
        assert tv.n_nonempty_tiles == 4
        assert np.allclose(tv.to_dense(), x)

    def test_tiled_matrix_single_entry_corner(self):
        d = np.zeros((33, 33))
        d[32, 32] = 7.0   # in the ragged tail tile
        tm = TiledMatrix.from_dense(d, 16)
        assert np.allclose(tm.to_dense(), d)
