"""Logic tests for the loop-level fused kernels on tiny inputs.

The ``_py`` originals stay exported precisely so the loop logic is
testable where Numba is absent: each loop must produce the exact words
of its reference kernel / vectorized twin.  When the ``fastpath`` extra
is installed the compiled wrappers are additionally checked against the
same references (the loops themselves — `cache=True`-compiled — are
what the Numba CI leg runs everywhere else).
"""

import numpy as np
import pytest

from repro.core import reference_msbfs_expand
from repro.core.bfs_kernels import (pull_csc_kernel, push_csc_kernel,
                                    push_csr_kernel)
from repro.core.tilebfs import TileBFS
from repro.fastpath import numba_available
from repro.fastpath import numba_kernels as nb
from repro.fastpath.fused_layers import FusedBFSLayout, fused_side
from repro.tiles import BitVector

from ..conftest import random_graph_coo


def fixture(nt=8, extract_threshold=0, seed=4):
    coo = random_graph_coo(96, avg_degree=4.0, seed=seed)
    op = TileBFS(coo, nt=nt, extract_threshold=extract_threshold)
    layout = FusedBFSLayout(op.A1, op.A2, op.side, op.n, op.nt)
    rng = np.random.default_rng(seed + 1)
    fr = np.sort(rng.choice(op.n, size=12, replace=False))
    x = BitVector.from_indices(fr, op.n, nt)
    m = BitVector.from_indices(
        rng.choice(op.n, size=30, replace=False), op.n, nt)
    m |= x
    return op, layout, fr, x, m


#: (exported-name, py-name) pairs — the exported name is the compiled
#: wrapper when Numba is present, the plain loop otherwise.
VARIANTS = ["py"] + (["compiled"] if nb.NUMBA_COMPILED else [])


def kernel(variant, name):
    return getattr(nb, name if variant == "compiled" else f"_{name}_py")


def test_numba_compiled_flag_matches_probe():
    assert nb.NUMBA_COMPILED == numba_available()


@pytest.mark.parametrize("variant", VARIANTS)
def test_push_gather_masked_loop(variant):
    op, layout, fr, x, m = fixture()
    y = BitVector.zeros(op.n, op.nt)
    kernel(variant, "push_gather_masked")(
        op.A1.tile_ptr, op.A1.tile_otheridx, op.A1.words, op.nt,
        fr, m.words, y.words)
    assert np.array_equal(y.words, push_csc_kernel(op.A1, x, m)[0].words)


@pytest.mark.parametrize("variant", VARIANTS)
def test_push_sweep_loop(variant):
    op, layout, fr, x, m = fixture()
    y = BitVector.zeros(op.n, op.nt)
    kernel(variant, "push_sweep")(
        op.A2.words, op.A2.tile_otheridx, op.A2.tile_majoridx(), op.nt,
        x.words, y.words)
    y.words &= ~m.words
    assert np.array_equal(y.words, push_csr_kernel(op.A2, x, m)[0].words)

    # the loop accumulates into y; the vectorized sweep assigns — both
    # must agree on a cleared result vector
    y2 = BitVector.zeros(op.n, op.nt)
    layout.sweep(x.words, y2)
    y2.words &= ~m.words
    assert np.array_equal(y.words, y2.words)


@pytest.mark.parametrize("variant", VARIANTS)
def test_pull_columns_loop(variant):
    op, layout, fr, x, m = fixture()
    y = BitVector.zeros(op.n, op.nt)
    inv_words = op.A1.full_mask_words() & ~m.words
    kernel(variant, "pull_columns")(
        op.A1.tile_ptr, op.A1.tile_otheridx, op.A1.words, op.nt,
        m.words, inv_words, y.words)
    assert np.array_equal(y.words, pull_csc_kernel(op.A1, x, m)[0].words)


@pytest.mark.parametrize("variant", VARIANTS)
def test_side_push_loop(variant):
    op, layout, fr, x, m = fixture(extract_threshold=3, seed=9)
    assert layout.side_nnz > 0
    y = BitVector.zeros(op.n, op.nt)
    kernel(variant, "side_push")(
        layout.side_indptr, layout.side_dst_word, layout.side_dst_bit,
        fr, m.words, y.words)
    y_ref = BitVector.zeros(op.n, op.nt)
    fused_side(layout, fr, m, y_ref, want_stats=False, use_numba=False)
    assert np.array_equal(y.words, y_ref.words)


@pytest.mark.parametrize("variant", VARIANTS)
def test_msbfs_expand_words_loop(variant):
    coo = random_graph_coo(150, avg_degree=5.0, seed=8)
    csc = coo.to_csc()
    rng = np.random.default_rng(13)
    frontier = np.zeros(150, dtype=np.uint64)
    active = rng.choice(150, size=25, replace=False)
    frontier[active] = rng.integers(1, 2**63, size=25, dtype=np.uint64)
    next_words = np.zeros(150, dtype=np.uint64)
    n_active, n_edges = kernel(variant, "msbfs_expand_words")(
        csc.indptr, csc.indices, frontier, next_words)
    ref_w, ref_a, ref_e = reference_msbfs_expand(csc, frontier)
    assert np.array_equal(next_words, ref_w)
    assert (n_active, n_edges) == (ref_a, ref_e)
