"""Byte-identity of the compiled fast path against the reference loop.

The fused tier is a pure host-side execution strategy: for every graph,
tile size, frontier density, kernel, and regime, a fused traversal must
return the same levels and the same per-layer trace (kernel selection,
frontier sizes, newly claimed vertices) as the preserved per-launch
reference loop — and each fused layer kernel must produce the exact
result words of its reference twin.  The grid runs under every tier
implementation present (the vectorized NumPy fallback always; the
Numba loops when the ``fastpath`` extra is installed).
"""

import numpy as np
import pytest

from repro.core import bfs_kernels
from repro.core.bfs_kernels import (pull_csc_kernel, push_csc_kernel,
                                    push_csr_kernel)
from repro.core.selection import (PULL_CSC, PUSH_CSC, PUSH_CSR,
                                  KernelSelector)
from repro.core.tilebfs import TileBFS
from repro.errors import TileError
from repro.fastpath import FASTPATH_ENV, fastpath_tier, numba_available
from repro.fastpath import fused_layers
from repro.fastpath.fused_layers import (FusedBFSLayout, fused_pull_csc,
                                         fused_push_csc, fused_push_csr,
                                         fused_side)
from repro.tiles import BitVector

from ..conftest import random_coo, random_graph_coo

#: Tier implementations testable in this environment.
TIERS = ["numpy"] + (["numba"] if numba_available() else [])


def graph(symmetric, n=230, seed=3):
    if symmetric:
        return random_graph_coo(n, avg_degree=5.0, seed=seed)
    return random_coo(n, n, density=0.04, seed=seed)


def trace(res):
    return [(it.kernel, it.frontier_size, it.new_vertices)
            for it in res.iterations]


def assert_equivalent(coo, sources, nt=16, max_depth=None, **sel_kwargs):
    classic = TileBFS(coo, nt=nt,
                      selector=KernelSelector(tier="kernels",
                                              **sel_kwargs))
    fused = TileBFS(coo, nt=nt,
                    selector=KernelSelector(tier="fastpath",
                                            **sel_kwargs))
    for s in np.atleast_1d(sources):
        ref = classic.run(int(s), max_depth=max_depth)
        got = fused.run(int(s), max_depth=max_depth)
        assert np.array_equal(got.levels, ref.levels)
        assert trace(got) == trace(ref)


# ----------------------------------------------------------------------
# end-to-end traversal grid
# ----------------------------------------------------------------------
@pytest.mark.parametrize("env_tier", TIERS)
@pytest.mark.parametrize("symmetric", [True, False])
@pytest.mark.parametrize("nt", [16, 64])
def test_end_to_end_grid(monkeypatch, env_tier, symmetric, nt):
    monkeypatch.setenv(FASTPATH_ENV, env_tier)
    coo = graph(symmetric)
    assert_equivalent(coo, [0, 7, 101], nt=nt)


@pytest.mark.parametrize("env_tier", TIERS)
@pytest.mark.parametrize("kernel", [PUSH_CSC, PUSH_CSR, PULL_CSC])
@pytest.mark.parametrize("symmetric", [True, False])
def test_forced_kernel_grid(monkeypatch, env_tier, kernel, symmetric):
    """Every kernel driven across a whole traversal (the directed case
    exercises the Pull-CSC -> Push-CSR symmetry fallback)."""
    monkeypatch.setenv(FASTPATH_ENV, env_tier)
    coo = graph(symmetric, seed=9)
    assert_equivalent(coo, [0, 42], forced=kernel)


@pytest.mark.parametrize("env_tier", TIERS)
@pytest.mark.parametrize("factors", [(0, 0), (10**9, 10**9)])
def test_forced_regimes(monkeypatch, env_tier, factors):
    """Both Push-CSR host regimes (bit gather / streaming sweep) and
    both Pull-CSC regimes (word / vertex level) must stay equivalent,
    not just whichever the cost rule picks."""
    bg, pw = factors
    monkeypatch.setenv(FASTPATH_ENV, env_tier)
    for mod in (bfs_kernels, fused_layers):
        monkeypatch.setattr(mod, "BIT_GATHER_FACTOR", bg)
        monkeypatch.setattr(mod, "PULL_WORD_COST_FACTOR", pw)
    coo = graph(True, seed=5)
    assert_equivalent(coo, [0, 11], forced=PUSH_CSR)
    assert_equivalent(coo, [0, 11], forced=PULL_CSC)


def test_multi_source_and_max_depth(monkeypatch):
    monkeypatch.setenv(FASTPATH_ENV, "numpy")
    coo = graph(True, seed=13)
    sel_c = KernelSelector(tier="kernels")
    sel_f = KernelSelector(tier="fastpath")
    classic = TileBFS(coo, nt=16, selector=sel_c)
    fused = TileBFS(coo, nt=16, selector=sel_f)
    ref = classic.run_multi([0, 5, 77])
    got = fused.run_multi([0, 5, 77])
    assert np.array_equal(got.levels, ref.levels)
    assert trace(got) == trace(ref)
    for d in (0, 1, 2):
        assert np.array_equal(fused.run(3, max_depth=d).levels,
                              classic.run(3, max_depth=d).levels)


@pytest.mark.parametrize("extract_threshold", [0, 2, 5])
def test_extraction_thresholds(monkeypatch, extract_threshold):
    """Side-edge extraction changes what the sweep folds in — every
    threshold (none / default / aggressive) must stay equivalent."""
    monkeypatch.setenv(FASTPATH_ENV, "numpy")
    coo = random_graph_coo(170, avg_degree=3.0, seed=21)
    classic = TileBFS(coo, nt=8, extract_threshold=extract_threshold,
                      selector=KernelSelector(tier="kernels"))
    fused = TileBFS(coo, nt=8, extract_threshold=extract_threshold,
                    selector=KernelSelector(tier="fastpath"))
    for s in (0, 60):
        ref, got = classic.run(s), fused.run(s)
        assert np.array_equal(got.levels, ref.levels)
        assert trace(got) == trace(ref)


# ----------------------------------------------------------------------
# layer-kernel byte identity (side-free plans: the reference kernels
# know nothing about extracted side edges)
# ----------------------------------------------------------------------
def side_free_fixture(nt, seed=3):
    coo = random_graph_coo(210, avg_degree=5.0, seed=seed)
    op = TileBFS(coo, nt=nt, extract_threshold=0)
    assert op.side.nnz == 0
    layout = FusedBFSLayout(op.A1, op.A2, op.side, op.n, op.nt)
    return op, layout


def vectors(n, nt, frontier_density, seed):
    rng = np.random.default_rng(seed)
    k = max(1, int(round(n * frontier_density)))
    fr = np.sort(rng.choice(n, size=k, replace=False))
    x = BitVector.from_indices(fr, n, nt)
    m = BitVector.from_indices(
        rng.choice(n, size=min(n, 2 * k), replace=False), n, nt)
    m |= x
    return fr, x, m


@pytest.mark.parametrize("env_tier", TIERS)
@pytest.mark.parametrize("nt", [8, 16, 64])
@pytest.mark.parametrize("fd", [0.01, 0.1, 0.5, 0.95])
def test_layer_kernels_byte_identical(monkeypatch, env_tier, nt, fd):
    monkeypatch.setenv(FASTPATH_ENV, env_tier)
    use_numba = fastpath_tier() == "numba"
    op, layout = side_free_fixture(nt)
    fr, x, m = vectors(op.n, nt, fd, seed=11)

    y = BitVector.zeros(op.n, nt)
    fused_push_csc(layout, fr, m, y, use_numba)
    assert np.array_equal(y.words, push_csc_kernel(op.A1, x, m)[0].words)

    y.clear()
    fused_push_csr(layout, fr, x, m, y, use_numba)
    assert np.array_equal(y.words, push_csr_kernel(op.A2, x, m)[0].words)

    y.clear()
    fused_pull_csc(layout, m, y, use_numba)
    assert np.array_equal(y.words, pull_csc_kernel(op.A1, x, m)[0].words)


@pytest.mark.parametrize("factors", [(0, 0), (10**9, 10**9)])
def test_layer_kernels_forced_regimes(monkeypatch, factors):
    bg, pw = factors
    for mod in (bfs_kernels, fused_layers):
        monkeypatch.setattr(mod, "BIT_GATHER_FACTOR", bg)
        monkeypatch.setattr(mod, "PULL_WORD_COST_FACTOR", pw)
    op, layout = side_free_fixture(16, seed=7)
    for fd in (0.02, 0.4):
        fr, x, m = vectors(op.n, 16, fd, seed=int(fd * 100))
        y = BitVector.zeros(op.n, 16)
        fused_push_csr(layout, fr, x, m, y, use_numba=False)
        assert np.array_equal(y.words,
                              push_csr_kernel(op.A2, x, m)[0].words)
        y.clear()
        fused_pull_csc(layout, m, y, use_numba=False)
        assert np.array_equal(y.words,
                              pull_csc_kernel(op.A1, x, m)[0].words)


def test_sweep_folds_side_edges():
    """The compressed sweep must carry one single-bit word per extracted
    side edge in addition to the stored A2 words, and the sweep result
    must then equal reference-push OR reference-side."""
    coo = random_graph_coo(170, avg_degree=3.0, seed=21)
    op = TileBFS(coo, nt=8, extract_threshold=3)
    assert op.side.nnz > 0
    layout = FusedBFSLayout(op.A1, op.A2, op.side, op.n, op.nt)
    assert len(layout.sweep_words) == (
        int(np.count_nonzero(op.A2.words)) + op.side.nnz)
    assert layout.side_nnz == op.side.nnz


def test_fused_side_stats_without_scatter():
    """``want_stats`` + ``scatter=False`` (the folded-sweep production
    path) must return the side kernel's counter determinants without
    touching the result."""
    coo = random_graph_coo(170, avg_degree=3.0, seed=21)
    op = TileBFS(coo, nt=8, extract_threshold=3)
    layout = FusedBFSLayout(op.A1, op.A2, op.side, op.n, op.nt)
    fr, x, m = vectors(op.n, 8, 0.3, seed=2)
    y = BitVector.zeros(op.n, 8)
    y_scatter = BitVector.zeros(op.n, 8)
    stats = fused_side(layout, fr, m, y, want_stats=True, scatter=False)
    stats2 = fused_side(layout, fr, m, y_scatter, want_stats=True,
                        scatter=True)
    assert stats == stats2
    assert not y.words.any()
    n_src_active, n_claimed = stats
    assert n_src_active >= n_claimed >= int(
        np.count_nonzero(y_scatter.words & ~m.words))


# ----------------------------------------------------------------------
# tier resolution / routing
# ----------------------------------------------------------------------
def test_tier_resolution(monkeypatch):
    expect_auto = "numba" if numba_available() else "numpy"
    for env, want in (("off", "off"), ("numpy", "numpy"),
                      ("auto", expect_auto), ("numba", expect_auto),
                      ("  NumPy ", "numpy"), ("bogus", expect_auto)):
        monkeypatch.setenv(FASTPATH_ENV, env)
        assert fastpath_tier() == want
    monkeypatch.delenv(FASTPATH_ENV)
    assert fastpath_tier() == expect_auto


def test_selector_tier_validation():
    with pytest.raises(TileError):
        KernelSelector(tier="turbo")


def test_routing_rules(monkeypatch):
    """The fused tier engages exactly when counters are not needed
    inline; ``tier=`` pins override the env kill switch."""
    from repro.gpusim import Device
    coo = random_graph_coo(64, avg_degree=4.0, seed=1)
    monkeypatch.setenv(FASTPATH_ENV, "numpy")
    assert TileBFS(coo, nt=8)._use_fused()
    assert not TileBFS(coo, nt=8, device=Device())._use_fused()
    assert not TileBFS(coo, nt=8,
                       selector=KernelSelector(tier="kernels"))._use_fused()
    monkeypatch.setenv(FASTPATH_ENV, "off")
    assert not TileBFS(coo, nt=8)._use_fused()
    assert TileBFS(coo, nt=8,
                   selector=KernelSelector(tier="fastpath"))._use_fused()


def test_sharded_matrix_falls_back(monkeypatch, tmp_path):
    """Sharded matrices run the level loop regardless of tier — and the
    pinned fastpath tier must still produce reference levels."""
    from repro.shards.sharded_matrix import ShardedTiledMatrix
    monkeypatch.setenv(FASTPATH_ENV, "numpy")
    coo = random_graph_coo(120, avg_degree=4.0, seed=3)
    sm = ShardedTiledMatrix.from_coo(coo, nt=16, n_shards=3,
                                     store_dir=tmp_path)
    op = TileBFS(sm, selector=KernelSelector(tier="fastpath"))
    assert not op._use_fused()
    ref = TileBFS(coo, nt=16,
                  selector=KernelSelector(tier="kernels")).run(0)
    assert np.array_equal(op.run(0).levels, ref.levels)
