"""Counters-off production mode and its post-hoc replay.

``ExecutionContext(mode="production")`` compiles accounting out of the
hot loops; :meth:`replay` must then price a timeline identical launch
for launch — names, tags, phases, and every counter field — to a
counters-on modeled run of the same workload, for every operator that
participates (TileBFS through the fused tier, MS-BFS, TileSpMSpV, the
sharded engine).
"""

import dataclasses

import numpy as np
import pytest

from repro.core.msbfs import MultiSourceBFS
from repro.core.selection import KernelSelector
from repro.core.spmspv import TileSpMSpV
from repro.core.tilebfs import TileBFS
from repro.gpusim import Device, KernelCounters
from repro.runtime import ExecutionContext
from repro.shards.engine import ShardedSpMSpV
from repro.vectors.sparse_vector import SparseVector

from ..conftest import random_coo, random_graph_coo


def assert_timelines_identical(dev_ref: Device, dev_got: Device):
    ref, got = dev_ref.timeline, dev_got.timeline
    assert len(ref) == len(got), (
        f"{len(got)} replayed launches vs {len(ref)} counters-on")
    for a, b in zip(ref, got):
        assert (a.name, a.tag) == (b.name, b.tag)
        for f in dataclasses.fields(a.counters):
            av, bv = getattr(a.counters, f.name), getattr(b.counters,
                                                          f.name)
            assert av == bv, f"{a.name}: counter {f.name} {bv} != {av}"


def sparse_x(n, k, seed, dtype=np.float64):
    rng = np.random.default_rng(seed)
    idx = np.sort(rng.choice(n, size=k, replace=False))
    return SparseVector(n, idx, rng.random(k).astype(dtype) + 0.5)


# ----------------------------------------------------------------------
# context-mode unit tests
# ----------------------------------------------------------------------
class TestContextModes:
    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            ExecutionContext(mode="benchmark")

    def test_mode_properties(self):
        dev = Device()
        modeled = ExecutionContext(dev)
        assert modeled.active and modeled.accounting
        assert not modeled.production
        functional = ExecutionContext(None)
        assert not (functional.active or functional.accounting
                    or functional.production)
        prod = ExecutionContext(mode="production")
        assert prod.production and prod.accounting and not prod.active

    def test_launch_defers_and_replays(self):
        ctx = ExecutionContext(mode="production", operator="op")
        c = KernelCounters(launches=1)
        c.coalesced_read_bytes = 256.0
        assert ctx.launch("k1", c, tag="t", phase="p") == 0.0
        ctx.defer("k2", lambda: c, phase="p")
        assert ctx.deferred_launches == 2
        dev = ctx.replay()
        assert [r.name for r in dev.timeline] == ["k1", "k2"]
        assert dev.timeline[1].counters.coalesced_read_bytes == 256.0
        # the log survives a replay (re-derivable timeline) ...
        assert ctx.deferred_launches == 2
        ctx.clear_replay()
        assert ctx.deferred_launches == 0

    def test_defer_is_noop_outside_production(self):
        ctx = ExecutionContext(Device())
        ctx.defer("k", lambda: KernelCounters(launches=1))
        assert ctx.deferred_launches == 0
        assert not ctx.device.timeline

    def test_scoped_views_share_the_log(self):
        ctx = ExecutionContext(mode="production", operator="a")
        view = ctx.scoped("b")
        view.launch("k", KernelCounters(launches=1))
        assert ctx.deferred_launches == 1
        assert view.production


# ----------------------------------------------------------------------
# whole-operator production replay
# ----------------------------------------------------------------------
@pytest.mark.parametrize("symmetric", [True, False])
def test_tilebfs_production_replay(monkeypatch, symmetric):
    monkeypatch.setenv("REPRO_FASTPATH", "numpy")
    if symmetric:
        coo = random_graph_coo(230, avg_degree=5.0, seed=3)
    else:
        coo = random_coo(230, 230, density=0.04, seed=3)

    dev_ref = Device()
    ref = TileBFS(coo, nt=16, device=dev_ref,
                  selector=KernelSelector(tier="kernels")).run(0)

    op = TileBFS(coo, nt=16, device=ExecutionContext(mode="production"))
    assert op._use_fused()
    got = op.run(0)
    assert np.array_equal(got.levels, ref.levels)
    # one deferred closure per layer, resolved only at replay time
    assert op.ctx.deferred_launches == len(got.iterations)
    assert got.simulated_ms == 0.0
    assert_timelines_identical(dev_ref, op.ctx.replay())


def test_msbfs_production_replay():
    coo = random_graph_coo(300, avg_degree=5.0, seed=8)
    sources = [0, 17, 120, 250]

    dev_ref = Device()
    ref = MultiSourceBFS(coo, device=dev_ref).run(sources)

    op = MultiSourceBFS(coo, device=ExecutionContext(mode="production"))
    got = op.run(sources)
    assert np.array_equal(got.levels, ref.levels)
    assert op.ctx.deferred_launches > 0
    assert_timelines_identical(dev_ref, op.ctx.replay())


@pytest.mark.parametrize("mode", ["csr", "csc", "adaptive"])
def test_tilespmspv_production_replay(mode):
    coo = random_coo(200, 200, density=0.05, seed=6)
    xs = [sparse_x(200, k, seed=k) for k in (3, 40, 150)]

    dev_ref = Device()
    ref_op = TileSpMSpV(coo, nt=16, mode=mode, device=dev_ref)
    refs = [ref_op.multiply(x, output="dense") for x in xs]

    op = TileSpMSpV(coo, nt=16, mode=mode,
                    device=ExecutionContext(mode="production"))
    for x, want in zip(xs, refs):
        got = op.multiply(x, output="dense")
        assert np.array_equal(got, want)
    assert op.ctx.deferred_launches > 0
    assert_timelines_identical(dev_ref, op.ctx.replay())


def test_sharded_production_replay(tmp_path):
    """The sharded engine keeps counters inline even in production
    (replaying would re-fault evicted shards) — but the launches still
    defer into the log and replay to the counters-on timeline."""
    coo = random_coo(240, 240, density=0.05, seed=2)
    xs = [sparse_x(240, k, seed=k) for k in (5, 60)]

    dev_ref = Device()
    ref_op = ShardedSpMSpV(coo, nt=16, n_shards=3, device=dev_ref,
                           store_dir=tmp_path / "ref")
    refs = [ref_op.multiply(x, output="dense") for x in xs]

    op = ShardedSpMSpV(coo, nt=16, n_shards=3,
                       device=ExecutionContext(mode="production"),
                       store_dir=tmp_path / "prod")
    for x, want in zip(xs, refs):
        assert np.array_equal(op.multiply(x, output="dense"), want)
    assert op.ctx.deferred_launches > 0
    assert_timelines_identical(dev_ref, op.ctx.replay())


def test_production_replay_onto_shared_device():
    """A whole multi-operator workload replays in launch order onto one
    device, through the shared scoped-context log."""
    coo = random_graph_coo(150, avg_degree=4.0, seed=5)
    ctx = ExecutionContext(mode="production")
    TileBFS(coo, nt=16, device=ctx).run(0)
    TileSpMSpV(coo, nt=16, device=ctx).multiply(sparse_x(150, 10, 1))
    dev = Device()
    ctx.replay(dev)
    names = [r.name for r in dev.timeline]
    assert any(n.startswith("tilebfs_") for n in names)
    assert any(n.startswith("tile_spmspv") for n in names)
    # BFS layers precede the multiply: the log preserves launch order
    assert names.index("tile_spmspv_csr") > 0
    assert ctx.deferred_launches == len(names)
